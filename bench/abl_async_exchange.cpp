// Ablation E (ours): synchronous versus asynchronous exchange.
//
// The EE pattern's pairwise mode exists because real replica runtimes
// are heterogeneous: under a global barrier every cycle waits for the
// slowest replica before anyone exchanges. We quantify that on the
// simulated SuperMIC: 256 replicas whose per-cycle runtimes vary
// (deterministically) by up to +-40%, 4 cycles, global-sweep versus
// pairwise exchange.
//
// Expected: the pairwise mode's TTC tracks the *mean* replica runtime
// while the global sweep pays the *max* every cycle — the gap grows
// with runtime spread. (RepEx's asynchronous REMD motivation.)
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace {

using namespace entk;

/// Deterministic heterogeneous duration for replica r in a cycle.
double replica_duration(Count replica, Count cycle, double spread) {
  Xoshiro256 rng(static_cast<std::uint64_t>(replica) * 7919 +
                 static_cast<std::uint64_t>(cycle) * 104729 + 5);
  return 100.0 * (1.0 + spread * (2.0 * rng.uniform() - 1.0));
}

double run_mode(core::EnsembleExchange::ExchangeMode mode, double spread) {
  const Count n_replicas = 256;
  const Count n_cycles = 4;
  core::EnsembleExchange pattern(n_replicas, n_cycles, mode);
  pattern.set_simulation([spread](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration",
                  replica_duration(context.instance, context.iteration,
                                   spread));
    return spec;
  });
  if (mode == core::EnsembleExchange::ExchangeMode::kGlobalSweep) {
    pattern.set_exchange([n_replicas](const core::StageContext&) {
      core::TaskSpec spec;
      spec.kernel = "md.exchange";
      spec.args.set("n_replicas", n_replicas);
      return spec;
    });
  } else {
    pattern.set_pair_exchange([](Count, Count, Count) {
      core::TaskSpec spec;
      spec.kernel = "misc.sleep";
      spec.args.set("duration", 1.0);  // one pairwise decision
      return spec;
    });
  }
  auto result = bench::run_on_simulated_machine(sim::supermic_profile(),
                                                n_replicas, pattern);
  bench::require_ok(result, "abl_async_exchange");
  return result.overheads.ttc;
}

}  // namespace

int main() {
  using namespace entk;
  std::cout << "=== Ablation E: synchronous vs asynchronous exchange, "
               "256 replicas x 4 cycles (simulated SuperMIC) ===\n\n";
  Table table({"runtime spread", "global-sweep TTC [s]",
               "pairwise TTC [s]", "async advantage [%]"});
  for (const double spread : {0.0, 0.2, 0.4}) {
    const double sync_ttc =
        run_mode(core::EnsembleExchange::ExchangeMode::kGlobalSweep,
                 spread);
    const double async_ttc =
        run_mode(core::EnsembleExchange::ExchangeMode::kPairwise, spread);
    table.add_row(
        {"+-" + format_double(100.0 * spread, 0) + " %",
         format_double(sync_ttc, 1), format_double(async_ttc, 1),
         format_double(100.0 * (sync_ttc - async_ttc) / sync_ttc, 1)});
  }
  std::cout << table.to_string()
            << "\nexpected: at zero spread the modes tie (pairwise even "
               "pays small per-pair tasks); the async advantage grows "
               "with runtime heterogeneity because the global sweep "
               "waits for the slowest replica every cycle.\n";
  return 0;
}
