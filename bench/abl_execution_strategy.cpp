// Ablation C (ours): execution strategies — the paper's Section V
// outlook, measured. For the Figure 7 workload (1024 x 0.6 ps Amber
// simulations) we compare three resource choices:
//   naive-small : user guesses a 64-core pilot,
//   naive-max   : user requests one core per simulation,
//   strategy    : the ExecutionStrategy picks machine + pilot size
//                 under queue pressure.
// Each plan is then executed on the discrete-event backend, which also
// validates the strategy's analytic TTC model against simulation.
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace entk;

struct Execution {
  Duration queue_wait = 0.0;
  Duration run_span = 0.0;
  Duration ttc = 0.0;
};

Execution execute_plan(const core::ResourcePlan& plan,
                       const sim::MachineCatalog& catalog,
                       Count n_simulations) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(catalog.find(plan.machine).value());
  core::ResourceOptions options;
  options.cores = plan.pilot_cores;
  options.runtime = std::max(plan.pilot_runtime, 1.0e6);
  options.scheduler_policy = plan.scheduler_policy;
  core::ResourceHandle handle(backend, registry, options);
  ENTK_CHECK(handle.allocate().is_ok(), "allocate failed");
  core::BagOfTasks pattern(n_simulations, [](const core::StageContext&) {
    core::TaskSpec spec;
    spec.kernel = "md.simulate";
    spec.args.set("engine", "amber");
    spec.args.set("steps", 300);
    spec.args.set("n_particles", 2881);
    return spec;
  });
  auto report = handle.run(pattern);
  ENTK_CHECK(report.ok() && report.value().outcome.is_ok(), "run failed");
  Execution execution;
  execution.run_span = report.value().run_span;
  execution.queue_wait = handle.pilot()->startup_time() -
                         backend.machine().pilot_bootstrap;
  execution.ttc = execution.queue_wait + execution.run_span;
  (void)handle.deallocate();
  return execution;
}

}  // namespace

int main() {
  using namespace entk;
  const Count n_simulations = 1024;

  // A queue-pressured catalog: as on production machines, large
  // requests wait much longer.
  sim::MachineCatalog catalog;
  for (auto machine : {sim::comet_profile(), sim::stampede_profile(),
                       sim::supermic_profile()}) {
    machine.batch_wait_per_node = 8.0;  // heavy backlog
    ENTK_CHECK(catalog.register_machine(machine).is_ok(), "catalog");
  }

  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  core::TaskSpec sample;
  sample.kernel = "md.simulate";
  sample.args.set("engine", "amber");
  sample.args.set("steps", 300);
  sample.args.set("n_particles", 2881);
  auto workload =
      core::profile_for_ensemble(n_simulations, 1, sample, registry);
  ENTK_CHECK(workload.ok(), "workload profiling failed");

  std::cout << "=== Ablation C: execution strategy vs naive resource "
               "choices (" << n_simulations
            << " x 0.6 ps Amber, queue-pressured machines) ===\n\n";

  // Candidate plans.
  core::ExecutionStrategy strategy(catalog);
  core::StrategyObjective objective;
  auto chosen = strategy.plan(workload.value(), objective);
  ENTK_CHECK(chosen.ok(), "strategy failed");

  auto naive_plan = [&](const char* machine, Count cores) {
    return core::ExecutionStrategy::evaluate(
        catalog.find(machine).value(), cores, workload.value());
  };
  struct Row {
    std::string label;
    core::ResourcePlan plan;
  };
  std::vector<Row> rows{
      {"naive-small (stampede, 64)", naive_plan("xsede.stampede", 64)},
      {"naive-max (stampede, 1024)", naive_plan("xsede.stampede", 1024)},
      {"strategy (" + chosen.value().machine + ", " +
           std::to_string(chosen.value().pilot_cores) + ")",
       chosen.value()},
  };

  Table table({"plan", "predicted TTC [s]", "simulated TTC [s]",
               "queue wait [s]", "model error [%]"});
  for (const auto& row : rows) {
    const Execution execution =
        execute_plan(row.plan, catalog, n_simulations);
    const double predicted = row.plan.predicted_ttc;
    const double error =
        100.0 * (predicted - execution.ttc) / execution.ttc;
    table.add_row({row.label, format_double(predicted, 1),
                   format_double(execution.ttc, 1),
                   format_double(execution.queue_wait, 1),
                   format_double(error, 1)});
  }
  std::cout << table.to_string()
            << "\nexpected: the strategy's pick beats both naive choices "
               "on simulated TTC, and its analytic model tracks the "
               "simulation within a few percent.\n";
  return 0;
}
