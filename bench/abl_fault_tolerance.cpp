// Ablation (ours): ensemble completion under injected machine faults.
//
// The paper argues the pilot abstraction exists so ensembles survive
// machine faults; this ablation quantifies that. A fixed bag of tasks
// runs on the simulated machine while the FaultModel injects transient
// launch failures and whole-node failures, and we report how many
// units completed, how many attempts were retried, and what the
// failures cost in time-to-completion — with and without retry budget.
// A final scenario kills the pilot itself (walltime expiry) and lets
// the ResourceHandle submit a replacement mid-workload.
#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/unit_manager.hpp"

namespace {

using namespace entk;

struct FaultRunResult {
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t retries = 0;
  Count lost_cores = 0;
  double ttc = 0.0;
};

/// Runs 64 x 30 s single-core tasks on a 32-core pilot under the given
/// fault spec; every task carries `max_retries` budget with 5 s
/// exponential backoff.
FaultRunResult run_bag(const sim::FaultSpec& fault, Count max_retries) {
  auto machine = sim::localhost_profile();
  machine.fault = fault;
  pilot::SimBackend backend(machine);

  pilot::PilotManager pilot_manager(backend);
  pilot::PilotDescription pilot_description;
  pilot_description.resource = machine.name;
  pilot_description.cores = 32;
  pilot_description.runtime = 1e6;
  auto pilot = pilot_manager.submit_pilot(pilot_description);
  ENTK_CHECK(pilot.ok(), "pilot submit failed");
  ENTK_CHECK(pilot_manager.wait_active(pilot.value()).is_ok(),
             "pilot never became active");

  pilot::UnitManager manager(backend);
  manager.add_pilot(pilot.value());
  pilot::UnitDescription unit_description;
  unit_description.name = "abl.ft";
  unit_description.executable = "/bin/true";
  unit_description.simulated_duration = 30.0;
  unit_description.retry.max_retries = max_retries;
  unit_description.retry.backoff_base = 5.0;
  std::vector<pilot::UnitDescription> descriptions(64, unit_description);
  const double start = backend.clock().now();
  auto units = manager.submit_units(std::move(descriptions));
  ENTK_CHECK(units.ok(), "unit submit failed");
  ENTK_CHECK(manager.wait_units(units.value()).is_ok(),
             "wait_units failed");

  FaultRunResult result;
  result.ttc = backend.clock().now() - start;
  result.retries = manager.total_retries();
  result.lost_cores = 32 - pilot.value()->agent()->total_cores();
  for (const auto& unit : units.value()) {
    if (unit->state() == pilot::UnitState::kDone) ++result.done;
    if (unit->state() == pilot::UnitState::kFailed) ++result.failed;
  }
  return result;
}

std::string counts(const FaultRunResult& r) {
  return std::to_string(r.done) + " / " + std::to_string(r.failed);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: fault-tolerant ensemble execution "
               "(64 x 30 s tasks, 32-core simulated pilot) ===\n\n";

  // --- Transient launch failures, with and without retry budget.
  Table launches({"launch fail rate", "retry budget", "done / failed",
                  "retries", "TTC [s]"});
  for (const double rate : {0.0, 0.05, 0.2}) {
    for (const Count budget : {0, 5}) {
      sim::FaultSpec fault;
      fault.seed = 0xab1;
      fault.launch_failure_rate = rate;
      const auto result = run_bag(fault, budget);
      launches.add_row({format_double(rate, 2), std::to_string(budget),
                        counts(result), std::to_string(result.retries),
                        format_double(result.ttc, 1)});
    }
  }
  std::cout << "transient launch failures:\n"
            << launches.to_string() << '\n';

  // --- Node failures: the pilot shrinks, killed units are retried.
  Table nodes({"node MTBF [s]", "nodes lost", "done / failed", "retries",
               "TTC [s]"});
  for (const double mtbf : {0.0, 2000.0, 500.0}) {
    sim::FaultSpec fault;
    fault.seed = 0xab2;
    fault.node_mtbf = mtbf;
    fault.max_node_failures = 2;  // keep half the machine alive
    const auto result = run_bag(fault, 5);
    nodes.add_row(
        {format_double(mtbf, 0),
         std::to_string(result.lost_cores / 8),  // localhost: 8/node
         counts(result), std::to_string(result.retries),
         format_double(result.ttc, 1)});
  }
  std::cout << "node failures (retry budget 5, backoff 5 s):\n"
            << nodes.to_string() << '\n';

  // --- Pilot death mid-workload: replacement pilot via ResourceHandle.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 8;
  options.runtime = 100.0;  // expires after the third 30 s wave
  options.restart_failed_pilots = true;
  options.max_pilot_restarts = 4;
  core::ResourceHandle handle(backend, registry, options);
  ENTK_CHECK(handle.allocate().is_ok(), "allocate failed");
  core::BagOfTasks bag(64, [](const core::StageContext&) {
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", 30.0);
    return spec;
  });
  auto report = handle.run(bag);
  ENTK_CHECK(report.ok(), "run failed");
  std::cout << "pilot walltime expiry with restart_failed_pilots "
               "(8 cores, 100 s walltime, 64 x 30 s tasks):\n"
            << "  outcome:         "
            << (report.value().outcome.is_ok() ? "ok"
                                               : report.value()
                                                     .outcome.to_string())
            << "\n  units done:      " << report.value().units_done
            << "\n  units failed:    " << report.value().units_failed
            << "\n  recovered units: " << report.value().recovered_units
            << "\n  pilots used:     " << handle.pilots().size()
            << "\n\nexpected: without retry budget every launch failure "
               "permanently kills a unit; with budget the same ensemble "
               "completes and the failures only cost backoff time. Node "
               "failures shrink the pilot (longer TTC) but the ensemble "
               "still finishes, and a dead pilot is replaced "
               "transparently — the unit manager's late binding rebinds "
               "the stranded units to the new pilot.\n";
  return 0;
}
