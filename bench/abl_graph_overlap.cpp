// Ablation G (ours): graph-driven pipeline overlap versus a
// bulk-synchronous barrier baseline.
//
// An ensemble of pipelines has no semantic barrier between stages:
// pipeline p's stage s+1 may start the moment ITS stage s finishes.
// The TaskGraph compiler expresses exactly that (per-pipeline
// dependency chains), and the event-driven executor exploits it. A
// bulk-synchronous driver — "run stage s for everyone, wait, run
// stage s+1" — inserts a barrier the pattern never asked for, so
// every stage pays for the slowest pipeline.
//
// We quantify the gap on the simulated Stampede: 64 pipelines x 4
// stages whose per-task runtimes vary (deterministically) by up to
// +-50%, executed (a) as the EnsembleOfPipelines graph and (b) as an
// artificial barrier-compiled variant of the same workload.
//
// Expected: identical TTC at zero spread (with full-width cores the
// schedules coincide); the overlap advantage grows with runtime
// heterogeneity because the barrier baseline sums per-stage maxima
// while the graph executor's makespan tracks the slowest *chain*.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace {

using namespace entk;

constexpr Count kPipelines = 64;
constexpr Count kStages = 4;

/// Deterministic heterogeneous duration for one (pipeline, stage) task.
double task_duration(Count pipeline, Count stage, double spread) {
  Xoshiro256 rng(static_cast<std::uint64_t>(pipeline) * 7919 +
                 static_cast<std::uint64_t>(stage) * 104729 + 11);
  return 100.0 * (1.0 + spread * (2.0 * rng.uniform() - 1.0));
}

core::StageFn heterogeneous_stage(double spread) {
  return [spread](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration",
                  task_duration(context.instance, context.stage, spread));
    return spec;
  };
}

/// The barrier baseline: the same tasks as EnsembleOfPipelines, but
/// compiled bulk-synchronously — each stage is a stage group and the
/// next stage is gated on its verdict, like a pre-dataflow run loop
/// would drive it.
class BarrierPipelines final : public core::ExecutionPattern {
 public:
  BarrierPipelines(Count n_pipelines, Count n_stages, core::StageFn fn)
      : n_pipelines_(n_pipelines),
        n_stages_(n_stages),
        stage_fn_(std::move(fn)) {}

  std::string name() const override { return "barrier_pipelines"; }

  Status validate() const override {
    if (n_pipelines_ < 1 || n_stages_ < 1 || !stage_fn_) {
      return make_error(Errc::kInvalidArgument,
                        "barrier baseline misconfigured");
    }
    return Status::ok();
  }

  Status compile(core::TaskGraph& graph) override {
    bool gated = false;
    core::GroupId previous = 0;
    for (Count s = 1; s <= n_stages_; ++s) {
      const core::GroupId group = graph.add_stage_group(name(), failure_rules_);
      for (Count p = 0; p < n_pipelines_; ++p) {
        core::StageContext context;
        context.stage = s;
        context.instance = p;
        context.instances = n_pipelines_;
        auto fn = stage_fn_;
        const core::NodeId node = graph.add_node(
            "p" + std::to_string(p) + ".s" + std::to_string(s),
            [fn, context] { return fn(context); }, context);
        if (gated) graph.gate_on(node, previous);
        graph.add_member(group, node);
      }
      previous = group;
      gated = true;
    }
    return Status::ok();
  }

 private:
  Count n_pipelines_;
  Count n_stages_;
  core::StageFn stage_fn_;
};

double run_overlapped(double spread) {
  core::EnsembleOfPipelines pattern(kPipelines, kStages);
  for (Count s = 1; s <= kStages; ++s) {
    pattern.set_stage(s, heterogeneous_stage(spread));
  }
  auto result = bench::run_on_simulated_machine(sim::stampede_profile(),
                                                kPipelines, pattern);
  bench::require_ok(result, "abl_graph_overlap/graph");
  return result.overheads.ttc;
}

double run_barriered(double spread) {
  BarrierPipelines pattern(kPipelines, kStages, heterogeneous_stage(spread));
  auto result = bench::run_on_simulated_machine(sim::stampede_profile(),
                                                kPipelines, pattern);
  bench::require_ok(result, "abl_graph_overlap/barrier");
  return result.overheads.ttc;
}

}  // namespace

int main() {
  using namespace entk;
  std::cout << "=== Ablation G: pipeline overlap vs barrier baseline, "
            << kPipelines << " pipelines x " << kStages
            << " stages (simulated Stampede) ===\n\n";
  Table table({"runtime spread", "barrier TTC [s]", "graph TTC [s]",
               "overlap advantage [%]"});
  for (const double spread : {0.0, 0.25, 0.5}) {
    const double barrier_ttc = run_barriered(spread);
    const double graph_ttc = run_overlapped(spread);
    table.add_row(
        {"+-" + format_double(100.0 * spread, 0) + " %",
         format_double(barrier_ttc, 1), format_double(graph_ttc, 1),
         format_double(100.0 * (barrier_ttc - graph_ttc) / barrier_ttc, 1)});
  }
  std::cout << table.to_string()
            << "\nexpected: the modes tie at zero spread; with "
               "heterogeneous runtimes the barrier baseline pays the "
               "slowest pipeline at every stage boundary while the "
               "graph executor lets fast pipelines run ahead, so the "
               "overlap advantage grows with the spread.\n";
  return 0;
}
