// Ablation B (ours): overhead growth with task count — quantifying the
// paper's central overhead claim ("overheads depend on the number of
// tasks, not on task size") across two orders of magnitude.
//
// Fixed 256-core pilot on simulated Stampede; bags of 16 -> 4096
// identical tasks. We report the EnTK pattern overhead and the agent's
// serialized spawn overhead, then fit both against the task count; and
// we repeat one configuration with 16x larger tasks to show the
// overheads do not move.
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pilot/agent.hpp"

namespace {

using namespace entk;

struct Sample {
  Count tasks = 0;
  Duration pattern_overhead = 0.0;
  Duration spawn_overhead = 0.0;
  Duration ttc = 0.0;
};

Sample run_bag(Count n_tasks, double task_duration) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::stampede_profile());
  core::ResourceOptions options;
  options.cores = 256;
  options.runtime = 4.0e6;
  core::ResourceHandle handle(backend, registry, options);
  ENTK_CHECK(handle.allocate().is_ok(), "allocate failed");
  core::BagOfTasks pattern(n_tasks,
                           [task_duration](const core::StageContext&) {
                             core::TaskSpec spec;
                             spec.kernel = "misc.sleep";
                             spec.args.set("duration", task_duration);
                             return spec;
                           });
  auto report = handle.run(pattern);
  ENTK_CHECK(report.ok() && report.value().outcome.is_ok(), "run failed");
  Sample sample;
  sample.tasks = n_tasks;
  sample.pattern_overhead = report.value().overheads.pattern_overhead;
  sample.spawn_overhead =
      handle.pilot()->agent()->total_spawn_overhead();
  sample.ttc = report.value().overheads.ttc;
  (void)handle.deallocate();
  return sample;
}

}  // namespace

int main() {
  std::cout << "=== Ablation B: overhead scaling with #tasks "
               "(256-core pilot, simulated Stampede) ===\n\n";

  Table table({"tasks", "pattern overhead [s]", "spawn overhead [s]",
               "TTC [s]"});
  std::vector<double> counts, pattern_overheads, spawn_overheads;
  for (const Count n : {16, 64, 256, 1024, 4096}) {
    const Sample sample = run_bag(n, /*task_duration=*/60.0);
    table.add_row({std::to_string(sample.tasks),
                   format_double(sample.pattern_overhead, 3),
                   format_double(sample.spawn_overhead, 3),
                   format_double(sample.ttc, 1)});
    counts.push_back(static_cast<double>(n));
    pattern_overheads.push_back(sample.pattern_overhead);
    spawn_overheads.push_back(sample.spawn_overhead);
  }
  std::cout << table.to_string();

  const LinearFit pattern_fit = linear_fit(counts, pattern_overheads);
  const LinearFit spawn_fit = linear_fit(counts, spawn_overheads);
  std::cout << "\npattern overhead: " << format_double(pattern_fit.slope * 1e3, 3)
            << " ms/task (R^2 " << format_double(pattern_fit.r_squared, 4)
            << ")\nspawn overhead:   "
            << format_double(spawn_fit.slope * 1e3, 3) << " ms/task (R^2 "
            << format_double(spawn_fit.r_squared, 4) << ")\n";

  // Task-size invariance: same task count, 16x the work per task.
  const Sample small = run_bag(256, 60.0);
  const Sample large = run_bag(256, 960.0);
  std::cout << "\ntask-size invariance at 256 tasks:\n"
            << "  60 s tasks: pattern "
            << format_double(small.pattern_overhead, 3) << " s, spawn "
            << format_double(small.spawn_overhead, 3) << " s\n"
            << "  960 s tasks: pattern "
            << format_double(large.pattern_overhead, 3) << " s, spawn "
            << format_double(large.spawn_overhead, 3) << " s\n"
            << "(paper: overheads depend on #tasks, not task size)\n";
  return 0;
}
