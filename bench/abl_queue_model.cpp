// Ablation D (ours): queue-wait dynamics under background load.
//
// The paper's queue-wait treatment is static (submit, wait, run). Here
// the simulated machine carries competing background jobs (Poisson
// arrivals, log-uniform widths) and we measure how long pilots of
// different sizes actually wait, under strict-FIFO versus
// EASY-backfill batch scheduling. Expected: waits grow with pilot
// size; backfill shortens the wait of *small* pilots on a busy machine
// dramatically, while big pilots still pay for draining the backlog.
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"
#include "pilot/pilot_manager.hpp"
#include "sim/load_generator.hpp"

namespace {

using namespace entk;

/// Mean queue wait of `trials` pilots of `cores`, submitted at spaced
/// times into a machine under sustained background load.
double mean_pilot_wait(sim::BatchPolicy policy, Count cores, int trials) {
  auto machine = sim::supermic_profile();
  machine.batch_base_wait = 5.0;
  machine.batch_wait_per_node = 0.0;  // waits come from the load now
  RunningStats waits;
  for (int trial = 0; trial < trials; ++trial) {
    pilot::SimBackend backend(machine, policy);
    sim::LoadGenerator::Options load;
    load.arrival_rate = 1.0 / 180.0;  // ~75% sustained utilization
    load.min_cores = 20;
    load.max_cores = 2000;
    load.min_runtime = 600.0;
    load.max_runtime = 4000.0;
    load.horizon = 50000.0;
    load.seed = 1000 + static_cast<std::uint64_t>(trial);
    sim::LoadGenerator generator(backend.engine(), backend.batch(),
                                 backend.cluster(), load);
    generator.start();
    backend.engine().run_until(20000.0);  // reach steady state

    pilot::PilotManager manager(backend);
    pilot::PilotDescription description;
    description.resource = machine.name;
    description.cores = cores;
    description.runtime = 50000.0;
    auto pilot = manager.submit_pilot(description);
    ENTK_CHECK(pilot.ok(), "pilot submit failed");
    ENTK_CHECK(manager.wait_active(pilot.value()).is_ok(),
               "pilot never became active");
    waits.add(pilot.value()->startup_time() - machine.pilot_bootstrap);
  }
  return waits.mean();
}

}  // namespace

/// Queue waits of every pilot when the same 2560 cores are requested
/// as `n_pilots` equal allocations (multi-pilot ResourceHandle).
std::pair<double, double> split_pilot_waits(Count n_pilots,
                                            std::uint64_t seed) {
  auto machine = sim::supermic_profile();
  machine.batch_base_wait = 5.0;
  machine.batch_wait_per_node = 0.0;
  pilot::SimBackend backend(machine, sim::BatchPolicy::kFifo);
  sim::LoadGenerator::Options load;
  load.arrival_rate = 1.0 / 180.0;
  load.min_cores = 20;
  load.max_cores = 2000;
  load.min_runtime = 600.0;
  load.max_runtime = 4000.0;
  load.horizon = 50000.0;
  load.seed = seed;
  sim::LoadGenerator generator(backend.engine(), backend.batch(),
                               backend.cluster(), load);
  generator.start();
  backend.engine().run_until(20000.0);

  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  core::ResourceOptions options;
  options.cores = 2560;
  options.n_pilots = n_pilots;
  options.runtime = 50000.0;
  core::ResourceHandle handle(backend, registry, options);
  ENTK_CHECK(handle.allocate().is_ok(), "allocate failed");
  double first = 1e300;
  double last = 0.0;
  for (const auto& held : handle.pilots()) {
    const double wait = held->startup_time() - machine.pilot_bootstrap;
    first = std::min(first, wait);
    last = std::max(last, wait);
  }
  return {first, last};
}

int main() {
  std::cout << "=== Ablation D: pilot queue wait under background load "
               "(simulated SuperMIC, sustained utilization) ===\n\n";
  Table table({"pilot cores", "FIFO wait [s]", "EASY-backfill wait [s]"});
  for (const Count cores : {20, 160, 640, 2560}) {
    const double fifo =
        mean_pilot_wait(sim::BatchPolicy::kFifo, cores, 5);
    const double easy =
        mean_pilot_wait(sim::BatchPolicy::kEasyBackfill, cores, 5);
    table.add_row({std::to_string(cores), format_double(fifo, 1),
                   format_double(easy, 1)});
  }
  std::cout << table.to_string() << '\n';

  // Multi-pilot splitting: the same 2560 cores as 1, 2 or 4 pilots.
  Table split({"pilots x cores", "first pilot wait [s]",
               "all pilots up [s]"});
  for (const Count n_pilots : {1, 2, 4}) {
    RunningStats first_stats;
    RunningStats last_stats;
    for (int trial = 0; trial < 5; ++trial) {
      const auto [first, last] = split_pilot_waits(
          n_pilots, 2000 + static_cast<std::uint64_t>(trial));
      first_stats.add(first);
      last_stats.add(last);
    }
    split.add_row({std::to_string(n_pilots) + " x " +
                       std::to_string(2560 / n_pilots),
                   format_double(first_stats.mean(), 1),
                   format_double(last_stats.mean(), 1)});
  }
  std::cout << "multi-pilot splitting of a 2560-core request "
               "(ResourceOptions::n_pilots, FIFO queue):\n"
            << split.to_string()
            << "\nexpected: waits grow steeply with pilot size; under "
               "EASY backfill *without reservations* wide pilots wait "
               "even longer (small background jobs keep jumping them — "
               "the classic starvation effect). Another reason EnTK "
               "decouples workload size from the resources requested: "
               "a modest pilot starts orders of magnitude sooner than "
               "a full-width request.\n";
  return 0;
}
