// Ablation A (ours): how much does the in-pilot scheduling policy
// matter when the workload far exceeds the instantaneously available
// cores? The paper delegates this choice to RADICAL-Pilot; we expose it
// and measure it.
//
// Workload: 512 units with mixed core counts (1-32) on a 64-core pilot
// — heavy over-subscription with fragmentation pressure, where the
// policies genuinely differ. FIFO suffers head-of-line blocking;
// backfill (the default) fills gaps; largest-first reduces
// fragmentation further for big units.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace {

using namespace entk;

core::TaskSpec mixed_spec(Count instance) {
  // Deterministic mixed sizes: mostly small, some wide MPI units.
  static const Count kSizes[] = {1, 1, 2, 1, 4, 1, 8, 2, 16, 1, 32, 4};
  const Count cores = kSizes[instance % (sizeof(kSizes) / sizeof(Count))];
  core::TaskSpec spec;
  spec.kernel = "misc.sleep";
  // Duration loosely correlated with size plus deterministic jitter.
  Xoshiro256 rng(static_cast<std::uint64_t>(instance) * 7919 + 13);
  spec.args.set("duration", 20.0 + 4.0 * static_cast<double>(cores) +
                                rng.uniform(0.0, 10.0));
  spec.args.set("cores", cores);
  return spec;
}

}  // namespace

int main() {
  using namespace entk;
  const auto machine = sim::comet_profile();
  const Count n_tasks = 512;
  const Count pilot_cores = 64;

  std::cout << "=== Ablation A: in-pilot scheduler policy, " << n_tasks
            << " mixed-size units on a " << pilot_cores
            << "-core pilot ===\n\n";

  Table table({"policy", "TTC [s]", "exec span [s]",
               "runtime overhead [s]"});
  for (const char* policy : {"fifo", "backfill", "largest_first"}) {
    auto registry = kernels::KernelRegistry::with_builtin_kernels();
    pilot::SimBackend backend(machine);
    core::ResourceOptions options;
    options.cores = pilot_cores;
    options.runtime = 4.0e6;
    options.scheduler_policy = policy;
    core::ResourceHandle handle(backend, registry, options);
    if (Status status = handle.allocate(); !status.is_ok()) {
      std::cerr << "allocate failed: " << status.to_string() << "\n";
      return 1;
    }
    core::BagOfTasks pattern(n_tasks, [](const core::StageContext& context) {
      return mixed_spec(context.instance);
    });
    auto report = handle.run(pattern);
    if (!report.ok() || !report.value().outcome.is_ok()) {
      std::cerr << "run failed for policy " << policy << "\n";
      return 1;
    }
    table.add_row({policy, format_double(report.value().overheads.ttc, 1),
                   format_double(report.value().overheads.execution_time, 1),
                   format_double(
                       report.value().overheads.runtime_overhead, 1)});
    (void)handle.deallocate();
  }
  std::cout << table.to_string()
            << "\nexpected: fifo slowest (head-of-line blocking on wide "
               "units); backfill and largest-first close, both much "
               "better.\n";
  return 0;
}
