// Shared helpers for the figure-reproduction bench harnesses.
//
// Every harness follows the same shape: build a simulated backend for
// the paper's machine, allocate a pilot, run a pattern, and report the
// decomposed times. These helpers keep the per-figure code about the
// experiment, not the plumbing.
#pragma once

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "common/strings.hpp"
#include "core/entk.hpp"

namespace entk::bench {

/// One experiment run: everything a figure's row needs.
struct RunResult {
  core::OverheadProfile overheads;
  Duration simulation_time = 0.0;  ///< Exec span of "simulation" units.
  Duration analysis_time = 0.0;    ///< Exec span of analysis/exchange units.
  std::size_t n_units = 0;
  Status outcome;
};

/// Span (first exec start -> last exec stop) of a unit subset.
inline Duration exec_span(const std::vector<pilot::ComputeUnitPtr>& units) {
  TimePoint first = kTimeInfinity;
  TimePoint last = -kTimeInfinity;
  for (const auto& unit : units) {
    if (unit->exec_started_at() != kNoTime) {
      first = std::min(first, unit->exec_started_at());
    }
    if (unit->exec_stopped_at() != kNoTime) {
      last = std::max(last, unit->exec_stopped_at());
    }
  }
  if (first == kTimeInfinity || last <= first) return 0.0;
  return last - first;
}

/// Allocates a pilot of `cores` on a fresh simulated `machine`, runs
/// `pattern`, fills the spans from the given unit subsets.
template <typename Pattern>
RunResult run_on_simulated_machine(const sim::MachineProfile& machine,
                                   Count cores, Pattern& pattern,
                                   Duration pilot_runtime = 4.0e6) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(machine);
  core::ResourceOptions options;
  options.cores = cores;
  options.runtime = pilot_runtime;
  core::ResourceHandle handle(backend, registry, options);

  RunResult result;
  if (Status status = handle.allocate(); !status.is_ok()) {
    result.outcome = status;
    return result;
  }
  auto report = handle.run(pattern);
  if (!report.ok()) {
    result.outcome = report.status();
    return result;
  }
  result.outcome = report.value().outcome;
  result.overheads = report.value().overheads;
  result.n_units = report.value().units.size();
  (void)handle.deallocate();
  return result;
}

/// Exits loudly if a run failed — a bench must never silently report
/// numbers from a broken run.
inline void require_ok(const RunResult& result, const std::string& label) {
  if (!result.outcome.is_ok()) {
    std::cerr << "BENCH FAILURE (" << label
              << "): " << result.outcome.to_string() << "\n";
    std::exit(1);
  }
}

}  // namespace entk::bench
