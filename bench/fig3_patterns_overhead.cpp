// Figure 3 reproduction: the character-count application implemented
// with the EoP, SAL and EE patterns on (simulated) XSEDE Comet.
//
// The paper varies tasks and cores together over 24-192 (ratio 1:1,
// everything concurrent) and shows (a) application execution time is
// pattern-independent and roughly constant, (b) the EnTK core overhead
// is constant, and (c) the EnTK pattern overhead grows with the number
// of tasks.
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace entk;

core::TaskSpec mkfile_spec(Count instance) {
  core::TaskSpec spec;
  spec.kernel = "misc.mkfile";
  spec.args.set("size_kb", 16.0);
  spec.args.set("filename", "file_" + std::to_string(instance) + ".txt");
  return spec;
}

core::TaskSpec ccount_spec(Count instance) {
  core::TaskSpec spec;
  spec.kernel = "misc.ccount";
  spec.args.set("input", "file_" + std::to_string(instance) + ".txt");
  return spec;
}

}  // namespace

int main() {
  using namespace entk;
  const auto machine = sim::comet_profile();
  const std::vector<Count> sizes{24, 48, 96, 192};

  std::cout << "=== Figure 3: char-count app, three patterns, "
            << machine.name << ", tasks = cores ===\n\n";

  Table execution({"pattern", "tasks=cores", "exec time [s]", "TTC [s]"});
  Table decomposition({"tasks=cores", "core overhead [s]",
                       "pattern overhead [s]", "runtime overhead [s]"});

  for (const Count n : sizes) {
    // --- Ensemble of Pipelines: n pipelines x 2 stages ---
    core::EnsembleOfPipelines eop(n, 2);
    eop.set_stage(1, [](const core::StageContext& context) {
      return mkfile_spec(context.instance);
    });
    eop.set_stage(2, [](const core::StageContext& context) {
      return ccount_spec(context.instance);
    });
    auto eop_result = bench::run_on_simulated_machine(machine, n, eop);
    bench::require_ok(eop_result, "fig3 eop n=" + std::to_string(n));
    execution.add_row(
        {"pipeline", std::to_string(n),
         format_double(eop_result.overheads.execution_time, 2),
         format_double(eop_result.overheads.ttc, 2)});
    decomposition.add_row(
        {std::to_string(n),
         format_double(eop_result.overheads.core_overhead, 2),
         format_double(eop_result.overheads.pattern_overhead, 3),
         format_double(eop_result.overheads.runtime_overhead, 2)});

    // --- Simulation Analysis Loop: 1 iteration, n sims + n analyses ---
    core::SimulationAnalysisLoop sal(1, n, n);
    sal.set_simulation([](const core::StageContext& context) {
      return mkfile_spec(context.instance);
    });
    sal.set_analysis([](const core::StageContext& context) {
      return ccount_spec(context.instance);
    });
    auto sal_result = bench::run_on_simulated_machine(machine, n, sal);
    bench::require_ok(sal_result, "fig3 sal n=" + std::to_string(n));
    execution.add_row(
        {"SAL", std::to_string(n),
         format_double(sal_result.overheads.execution_time, 2),
         format_double(sal_result.overheads.ttc, 2)});

    // --- Ensemble Exchange: 1 cycle, n sims + global ccount exchange ---
    core::EnsembleExchange ee(n, 1,
                              core::EnsembleExchange::ExchangeMode::kGlobalSweep);
    ee.set_simulation([](const core::StageContext& context) {
      return mkfile_spec(context.instance);
    });
    ee.set_exchange([](const core::StageContext&) { return ccount_spec(0); });
    auto ee_result = bench::run_on_simulated_machine(machine, n, ee);
    bench::require_ok(ee_result, "fig3 ee n=" + std::to_string(n));
    execution.add_row(
        {"EE", std::to_string(n),
         format_double(ee_result.overheads.execution_time, 2),
         format_double(ee_result.overheads.ttc, 2)});
  }

  std::cout << "Application execution time by pattern "
               "(paper: similar across patterns and sizes):\n"
            << execution.to_string() << '\n';
  std::cout << "EnTK overhead decomposition, pipeline pattern "
               "(paper: core overhead constant, pattern overhead grows "
               "with #tasks):\n"
            << decomposition.to_string();
  return 0;
}
