// Figure 4 reproduction: swapping kernel plugins (Gromacs + LSDMap
// under the SAL pattern on simulated Comet, 24-192 tasks = cores).
//
// The paper's point: with the *same* pattern but completely different
// kernels (real MD + diffusion-map analysis instead of mkfile/ccount),
// the EnTK overheads are unchanged — the toolkit is kernel-agnostic.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace entk;
  const auto machine = sim::comet_profile();
  const std::vector<Count> sizes{24, 48, 96, 192};

  std::cout << "=== Figure 4: Gromacs + LSDMap under SAL, " << machine.name
            << " ===\n\n";

  Table table({"tasks=cores", "sim time [s]", "analysis time [s]",
               "core overhead [s]", "pattern overhead [s]", "TTC [s]"});

  for (const Count n : sizes) {
    core::SimulationAnalysisLoop sal(1, n, n);
    sal.set_simulation([](const core::StageContext& context) {
      core::TaskSpec spec;
      spec.kernel = "md.simulate";
      spec.args.set("engine", "gromacs");
      spec.args.set("steps", 300);  // 0.6 ps equivalent
      spec.args.set("n_particles", 2881);
      spec.args.set("out", "traj_" + std::to_string(context.instance) +
                               ".dat");
      return spec;
    });
    sal.set_analysis([](const core::StageContext& context) {
      core::TaskSpec spec;
      spec.kernel = "md.lsdmap";
      spec.args.set("traj",
                    "traj_" + std::to_string(context.instance) + ".dat");
      spec.args.set("n_frames", 30);
      return spec;
    });
    auto result = bench::run_on_simulated_machine(machine, n, sal);
    bench::require_ok(result, "fig4 n=" + std::to_string(n));
    table.add_row({std::to_string(n),
                   format_double(bench::exec_span(sal.simulation_units()), 2),
                   format_double(bench::exec_span(sal.analysis_units()), 2),
                   format_double(result.overheads.core_overhead, 2),
                   format_double(result.overheads.pattern_overhead, 3),
                   format_double(result.overheads.ttc, 2)});
  }
  std::cout << table.to_string()
            << "\npaper: overheads match Figure 3's magnitudes although "
               "the kernels changed\n   (core overhead constant, pattern "
               "overhead grows only with #tasks).\n";
  return 0;
}
