// Figure 5 reproduction: strong scaling of the EE pattern on
// (simulated) SuperMIC — Amber temperature-exchange REMD of solvated
// alanine dipeptide, 2560 replicas fixed, cores varied 20 -> 2560.
//
// Paper shape: simulation time halves when cores double; exchange time
// is constant (it depends on the replica count, which is fixed).
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace entk;
  const auto machine = sim::supermic_profile();
  const Count n_replicas = 2560;
  const std::vector<Count> core_counts{20, 40, 80, 160, 320, 640, 1280,
                                       2560};

  std::cout << "=== Figure 5: EE strong scaling, " << machine.name << ", "
            << n_replicas << " replicas (6 ps Amber, 2881 atoms) ===\n\n";

  Table table({"cores", "simulation time [s]", "exchange time [s]",
               "TTC [s]"});
  std::vector<double> xs, ys;

  for (const Count cores : core_counts) {
    core::EnsembleExchange ee(
        n_replicas, 1, core::EnsembleExchange::ExchangeMode::kGlobalSweep);
    ee.set_simulation([](const core::StageContext& context) {
      core::TaskSpec spec;
      spec.kernel = "md.simulate";
      spec.args.set("engine", "amber");
      spec.args.set("steps", 3000);  // 6 ps
      spec.args.set("n_particles", 2881);
      spec.args.set("out", "traj_" + std::to_string(context.instance) +
                               ".dat");
      spec.args.set("energy_out",
                    "replica_" + std::to_string(context.instance) +
                        ".energy");
      return spec;
    });
    ee.set_exchange([n_replicas](const core::StageContext&) {
      core::TaskSpec spec;
      spec.kernel = "md.exchange";
      spec.args.set("n_replicas", n_replicas);
      return spec;
    });
    auto result = bench::run_on_simulated_machine(machine, cores, ee,
                                                  /*pilot_runtime=*/4.0e6);
    bench::require_ok(result, "fig5 cores=" + std::to_string(cores));
    const double sim_time = bench::exec_span(ee.simulation_units());
    const double exchange_time = bench::exec_span(ee.exchange_units());
    table.add_row({std::to_string(cores), format_double(sim_time, 1),
                   format_double(exchange_time, 2),
                   format_double(result.overheads.ttc, 1)});
    xs.push_back(std::log2(static_cast<double>(cores)));
    ys.push_back(std::log2(sim_time));
  }

  std::cout << table.to_string();
  const LinearFit fit = linear_fit(xs, ys);
  std::cout << "\nlog2(sim time) vs log2(cores): slope = "
            << format_double(fit.slope, 3) << " (ideal strong scaling = -1)"
            << ", R^2 = " << format_double(fit.r_squared, 4) << '\n'
            << "paper: simulation time halves per core doubling; exchange "
               "time constant.\n";
  return 0;
}
