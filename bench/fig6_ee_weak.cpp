// Figure 6 reproduction: weak scaling of the EE pattern on (simulated)
// SuperMIC — replicas = cores, varied 20 -> 2560, one core per replica.
//
// Paper shape: simulation time roughly constant (fixed work per core);
// exchange time grows with the number of replicas.
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace entk;
  const auto machine = sim::supermic_profile();
  const std::vector<Count> sizes{20, 40, 80, 160, 320, 640, 1280, 2560};

  std::cout << "=== Figure 6: EE weak scaling, " << machine.name
            << ", replicas = cores (6 ps Amber, 2881 atoms) ===\n\n";

  Table table({"replicas=cores", "simulation time [s]",
               "exchange time [s]", "TTC [s]"});
  RunningStats sim_times;
  std::vector<double> replica_counts, exchange_times;

  for (const Count n : sizes) {
    core::EnsembleExchange ee(
        n, 1, core::EnsembleExchange::ExchangeMode::kGlobalSweep);
    ee.set_simulation([](const core::StageContext& context) {
      core::TaskSpec spec;
      spec.kernel = "md.simulate";
      spec.args.set("engine", "amber");
      spec.args.set("steps", 3000);
      spec.args.set("n_particles", 2881);
      spec.args.set("out", "traj_" + std::to_string(context.instance) +
                               ".dat");
      return spec;
    });
    ee.set_exchange([n](const core::StageContext&) {
      core::TaskSpec spec;
      spec.kernel = "md.exchange";
      spec.args.set("n_replicas", n);
      return spec;
    });
    auto result = bench::run_on_simulated_machine(machine, n, ee);
    bench::require_ok(result, "fig6 n=" + std::to_string(n));
    const double sim_time = bench::exec_span(ee.simulation_units());
    const double exchange_time = bench::exec_span(ee.exchange_units());
    table.add_row({std::to_string(n), format_double(sim_time, 1),
                   format_double(exchange_time, 2),
                   format_double(result.overheads.ttc, 1)});
    sim_times.add(sim_time);
    replica_counts.push_back(static_cast<double>(n));
    exchange_times.push_back(exchange_time);
  }

  std::cout << table.to_string();
  const LinearFit exchange_fit = linear_fit(replica_counts, exchange_times);
  std::cout << "\nsimulation time: mean "
            << format_double(sim_times.mean(), 1) << " s, spread "
            << format_double(sim_times.max() - sim_times.min(), 2)
            << " s (paper: roughly constant)\n"
            << "exchange time vs replicas: slope "
            << format_double(exchange_fit.slope, 4) << " s/replica, R^2 "
            << format_double(exchange_fit.r_squared, 4)
            << " (paper: grows with replica count)\n";
  return 0;
}
