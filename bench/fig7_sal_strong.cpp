// Figure 7 reproduction: strong scaling of the SAL pattern on
// (simulated) Stampede — Amber + CoCo over solvated alanine dipeptide,
// 1024 simulations fixed (0.6 ps each, one core per simulation), cores
// varied 64 -> 1024; the CoCo analysis is serial.
//
// Paper shape: simulation time decreases linearly with core count; the
// serial analysis time is constant (it depends on the fixed #sims).
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace entk;
  const auto machine = sim::stampede_profile();
  const Count n_simulations = 1024;
  const std::vector<Count> core_counts{64, 128, 256, 512, 1024};

  std::cout << "=== Figure 7: SAL strong scaling, " << machine.name << ", "
            << n_simulations << " simulations (0.6 ps Amber + CoCo) ===\n\n";

  Table table({"cores", "simulation time [s]", "analysis time [s]",
               "TTC [s]"});
  std::vector<double> xs, ys;

  for (const Count cores : core_counts) {
    core::SimulationAnalysisLoop sal(1, n_simulations, 1);
    sal.set_simulation([](const core::StageContext& context) {
      core::TaskSpec spec;
      spec.kernel = "md.simulate";
      spec.args.set("engine", "amber");
      spec.args.set("steps", 300);  // 0.6 ps
      spec.args.set("n_particles", 2881);
      spec.args.set("out", "traj_" + std::to_string(context.instance) +
                               ".dat");
      return spec;
    });
    sal.set_analysis([n_simulations](const core::StageContext&) {
      core::TaskSpec spec;
      spec.kernel = "md.coco";  // serial over every trajectory
      spec.args.set("n_sims", n_simulations);
      spec.args.set("frames_per_sim", 10);
      return spec;
    });
    auto result = bench::run_on_simulated_machine(machine, cores, sal);
    bench::require_ok(result, "fig7 cores=" + std::to_string(cores));
    const double sim_time = bench::exec_span(sal.simulation_units());
    const double analysis_time = bench::exec_span(sal.analysis_units());
    table.add_row({std::to_string(cores), format_double(sim_time, 1),
                   format_double(analysis_time, 2),
                   format_double(result.overheads.ttc, 1)});
    xs.push_back(std::log2(static_cast<double>(cores)));
    ys.push_back(std::log2(sim_time));
  }

  std::cout << table.to_string();
  const LinearFit fit = linear_fit(xs, ys);
  std::cout << "\nlog2(sim time) vs log2(cores): slope = "
            << format_double(fit.slope, 3)
            << " (ideal strong scaling = -1), R^2 = "
            << format_double(fit.r_squared, 4) << '\n'
            << "paper: simulation time scales down linearly; serial "
               "analysis time constant.\n";
  return 0;
}
