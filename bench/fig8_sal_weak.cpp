// Figure 8 reproduction: weak scaling of the SAL pattern on
// (simulated) Stampede — simulations = cores, varied 64 -> 4096.
//
// Paper shape: simulation time constant (fixed work per core); the
// serial analysis time grows with the number of simulations. The paper
// notes the analysis kernel's absolute performance is unrelated to the
// toolkit's scalability.
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace entk;
  const auto machine = sim::stampede_profile();
  const std::vector<Count> sizes{64, 128, 256, 512, 1024, 2048, 4096};

  std::cout << "=== Figure 8: SAL weak scaling, " << machine.name
            << ", simulations = cores (0.6 ps Amber + CoCo) ===\n\n";

  Table table({"sims=cores", "simulation time [s]", "analysis time [s]",
               "TTC [s]"});
  RunningStats sim_times;
  std::vector<double> sim_counts, analysis_times;

  for (const Count n : sizes) {
    core::SimulationAnalysisLoop sal(1, n, 1);
    sal.set_simulation([](const core::StageContext& context) {
      core::TaskSpec spec;
      spec.kernel = "md.simulate";
      spec.args.set("engine", "amber");
      spec.args.set("steps", 300);
      spec.args.set("n_particles", 2881);
      spec.args.set("out", "traj_" + std::to_string(context.instance) +
                               ".dat");
      return spec;
    });
    sal.set_analysis([n](const core::StageContext&) {
      core::TaskSpec spec;
      spec.kernel = "md.coco";
      spec.args.set("n_sims", n);
      spec.args.set("frames_per_sim", 10);
      return spec;
    });
    auto result = bench::run_on_simulated_machine(machine, n, sal);
    bench::require_ok(result, "fig8 n=" + std::to_string(n));
    const double sim_time = bench::exec_span(sal.simulation_units());
    const double analysis_time = bench::exec_span(sal.analysis_units());
    table.add_row({std::to_string(n), format_double(sim_time, 1),
                   format_double(analysis_time, 2),
                   format_double(result.overheads.ttc, 1)});
    sim_times.add(sim_time);
    sim_counts.push_back(static_cast<double>(n));
    analysis_times.push_back(analysis_time);
  }

  std::cout << table.to_string();
  const LinearFit fit = linear_fit(sim_counts, analysis_times);
  std::cout << "\nsimulation time: mean "
            << format_double(sim_times.mean(), 1) << " s, spread "
            << format_double(sim_times.max() - sim_times.min(), 2)
            << " s (paper: roughly constant)\n"
            << "analysis time vs #sims: slope "
            << format_double(fit.slope, 4) << " s/sim, R^2 "
            << format_double(fit.r_squared, 4)
            << " (paper: serial analysis grows with ensemble size)\n";
  return 0;
}
