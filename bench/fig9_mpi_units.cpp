// Figure 9 reproduction: MPI capability — Amber-CoCo SAL on (simulated)
// Stampede with 64 concurrent simulations fixed, 6 ps each, and the
// cores *per simulation* varied 1, 16, 32, 64 (total cores 64 -> 4096).
//
// Paper shape: the simulations' execution time drops linearly with the
// per-simulation core count, demonstrating multi-core (MPI) units.
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace entk;
  const auto machine = sim::stampede_profile();
  const Count n_simulations = 64;
  const std::vector<Count> cores_per_sim{1, 16, 32, 64};

  std::cout << "=== Figure 9: MPI units, " << machine.name << ", "
            << n_simulations
            << " concurrent simulations (6 ps Amber + CoCo) ===\n\n";

  Table table({"cores/sim", "total cores", "simulation time [s]",
               "analysis time [s]", "TTC [s]"});
  std::vector<double> xs, ys;

  for (const Count cores : cores_per_sim) {
    const Count total_cores = cores * n_simulations;
    core::SimulationAnalysisLoop sal(1, n_simulations, 1);
    sal.set_simulation([cores](const core::StageContext& context) {
      core::TaskSpec spec;
      spec.kernel = "md.simulate";
      spec.args.set("engine", "amber");
      spec.args.set("steps", 3000);  // 6 ps (10x the strong-scaling runs)
      spec.args.set("n_particles", 2881);
      spec.args.set("cores", cores);  // MPI ranks per simulation
      spec.args.set("out", "traj_" + std::to_string(context.instance) +
                               ".dat");
      return spec;
    });
    sal.set_analysis([n_simulations](const core::StageContext&) {
      core::TaskSpec spec;
      spec.kernel = "md.coco";
      spec.args.set("n_sims", n_simulations);
      spec.args.set("frames_per_sim", 10);
      return spec;
    });
    auto result =
        bench::run_on_simulated_machine(machine, total_cores, sal);
    bench::require_ok(result, "fig9 cores/sim=" + std::to_string(cores));
    const double sim_time = bench::exec_span(sal.simulation_units());
    table.add_row({std::to_string(cores), std::to_string(total_cores),
                   format_double(sim_time, 1),
                   format_double(bench::exec_span(sal.analysis_units()), 2),
                   format_double(result.overheads.ttc, 1)});
    xs.push_back(std::log2(static_cast<double>(cores)));
    ys.push_back(std::log2(sim_time));
  }

  std::cout << table.to_string();
  const LinearFit fit = linear_fit(xs, ys);
  std::cout << "\nlog2(sim time) vs log2(cores/sim): slope = "
            << format_double(fit.slope, 3)
            << " (ideal = -1), R^2 = " << format_double(fit.r_squared, 4)
            << '\n'
            << "paper: execution time of the simulations drops linearly "
               "with the cores used per (MPI) simulation.\n";
  return 0;
}
