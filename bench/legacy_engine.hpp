// The pre-pool discrete-event engine, preserved verbatim for the
// scale_sweep before/after comparison.
//
// This is the engine the toolkit shipped before the slab/free-list
// rework (see docs/PERFORMANCE.md): every scheduled event allocates a
// shared_ptr<Event> control block, the cancellation index is an
// unordered_map of weak_ptrs, and cancelled events linger in the
// priority queue until popped. bench/scale_sweep drives this copy and
// the production entk::sim::Engine through the same workload and
// reports both events/sec numbers in BENCH_scale.json, so the speedup
// claim stays measurable instead of anecdotal.
//
// Nothing outside bench/ may include this header.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace entk::bench {

using LegacyEventId = std::uint64_t;

class LegacyEngine {
 public:
  LegacyEngine() = default;
  LegacyEngine(const LegacyEngine&) = delete;
  LegacyEngine& operator=(const LegacyEngine&) = delete;

  TimePoint now() const { return clock_.now(); }

  LegacyEventId schedule(Duration delay, std::function<void()> fn) {
    ENTK_CHECK(delay >= 0.0, "cannot schedule an event in the past");
    return schedule_at(clock_.now() + delay, std::move(fn));
  }

  LegacyEventId schedule_at(TimePoint t, std::function<void()> fn) {
    ENTK_CHECK(t >= clock_.now(), "cannot schedule an event in the past");
    auto event = std::make_shared<Event>();
    event->time = t;
    event->seq = next_seq_++;
    event->id = next_id_++;
    event->fn = std::move(fn);
    index_[event->id] = event;
    queue_.push(event);
    ++live_events_;
    return event->id;
  }

  bool cancel(LegacyEventId id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    auto event = it->second.lock();
    index_.erase(it);
    if (!event || event->cancelled) return false;
    event->cancelled = true;
    --live_events_;
    return true;
  }

  bool step() {
    while (!queue_.empty()) {
      auto event = queue_.top();
      queue_.pop();
      if (event->cancelled) continue;
      index_.erase(event->id);
      --live_events_;
      clock_.advance_to(event->time);
      ++dispatched_;
      auto fn = std::move(event->fn);
      fn();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

  std::size_t pending_events() const { return live_events_; }
  std::uint64_t dispatched_events() const { return dispatched_; }
  /// Entries physically sitting in the priority queue, cancelled
  /// included — the lazy-cancel bloat the pooled engine eliminated.
  std::size_t queue_entries() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    LegacyEventId id;
    std::function<void()> fn;
    bool cancelled = false;
  };
  struct EventOrder {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  ManualClock clock_;
  std::priority_queue<std::shared_ptr<Event>,
                      std::vector<std::shared_ptr<Event>>, EventOrder>
      queue_;
  std::unordered_map<LegacyEventId, std::weak_ptr<Event>> index_;
  std::uint64_t next_seq_ = 0;
  LegacyEventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace entk::bench
