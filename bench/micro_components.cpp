// Microbenchmarks of the toolkit's hot paths (google-benchmark):
// event-engine throughput, scheduler selection, kernel translation,
// task-callable construction (TaskFn vs std::function), the MD force
// loop and the analysis eigensolver.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>

#include "analysis/eigen.hpp"
#include "common/rng.hpp"
#include "common/task_fn.hpp"
#include "common/uid.hpp"
#include "core/execution_plugin.hpp"
#include "kernels/registry.hpp"
#include "md/builder.hpp"
#include "md/forcefield.hpp"
#include "pilot/scheduler.hpp"
#include "pilot/sim_backend.hpp"
#include "pilot/unit_manager.hpp"
#include "sim/engine.hpp"

namespace {

using namespace entk;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      engine.schedule(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          state.iterations());
}
BENCHMARK(BM_EngineScheduleDispatch)->Arg(1000)->Arg(10000);

void BM_SchedulerSelect(benchmark::State& state) {
  WallClock clock;
  Xoshiro256 rng(1234);
  std::deque<pilot::ComputeUnitPtr> waiting;
  for (int i = 0; i < state.range(0); ++i) {
    pilot::UnitDescription description;
    description.name = "bench";
    description.executable = "x";
    description.cores = 1 + static_cast<Count>(rng.uniform_index(8));
    description.uses_mpi = description.cores > 1;
    description.simulated_duration = 1.0;
    auto unit = std::make_shared<pilot::ComputeUnit>(
        next_uid("benchunit"), std::move(description), clock);
    (void)unit->advance_state(pilot::UnitState::kPendingExecution);
    waiting.push_back(std::move(unit));
  }
  pilot::BackfillScheduler scheduler;
  for (auto _ : state) {
    auto picks = scheduler.select(waiting, 64);
    benchmark::DoNotOptimize(picks);
  }
}
BENCHMARK(BM_SchedulerSelect)->Arg(64)->Arg(1024);

void BM_KernelTranslate(benchmark::State& state) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::comet_profile());
  pilot::UnitManager manager(backend);
  core::ExecutionPlugin plugin(registry, manager, backend);
  core::TaskSpec spec;
  spec.kernel = "md.simulate";
  spec.args.set("steps", 3000);
  spec.args.set("n_particles", 2881);
  for (auto _ : state) {
    auto description = plugin.translate(spec);
    benchmark::DoNotOptimize(description);
  }
}
BENCHMARK(BM_KernelTranslate);

void BM_ForceFieldCompute(benchmark::State& state) {
  md::System system =
      md::build_fluid(static_cast<std::size_t>(state.range(0)));
  const md::ForceField forcefield;
  for (auto _ : state) {
    const double energy = forcefield.compute(system);
    benchmark::DoNotOptimize(energy);
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_ForceFieldCompute)->Arg(512)->Arg(2881);

// ---- task-callable construction: the pools' enqueue hot path ------
//
// The pools wrap every submission in a callable; the capture below
// (two pointers + a counter) is the typical size of a pool task
// (LocalAgent: this + a shared_ptr). TaskFn stores it inline —
// counted allocations must be ZERO — while std::function's copyable
// erasure generally heap-allocates. The counter instruments global
// operator new, so the two benchmarks report allocations per
// construct+invoke in the "allocs_per_op" counter.

std::atomic<std::size_t> g_allocs{0};

struct AllocationCounting {
  static void* allocate(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
  }
};

}  // namespace

void* operator new(std::size_t size) {
  return AllocationCounting::allocate(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

template <typename Callable>
void run_callable_bench(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::uint64_t* out = &sink;
  const std::uint64_t step = 3;
  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    Callable task([out, step, local = std::uint64_t{0}]() mutable {
      local += step;
      *out += local;
    });
    task();
    benchmark::DoNotOptimize(task);
  }
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(sink);
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(after - before) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1)));
}

void BM_TaskFnConstructInvoke(benchmark::State& state) {
  run_callable_bench<TaskFn>(state);
}
BENCHMARK(BM_TaskFnConstructInvoke);

void BM_StdFunctionConstructInvoke(benchmark::State& state) {
  run_callable_bench<std::function<void()>>(state);
}
BENCHMARK(BM_StdFunctionConstructInvoke);

void BM_JacobiEigensolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(777);
  analysis::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double value = rng.normal();
      m(i, j) = value;
      m(j, i) = value;
    }
  }
  for (auto _ : state) {
    auto eig = analysis::eigen_symmetric(m);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_JacobiEigensolver)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
