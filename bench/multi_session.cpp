// Standalone multi-session bench lane.
//
// Runs the shared probe (bench/multi_session_probe.hpp): 1/2/4/8
// concurrent sessions splitting one machine, per-session TTC compared
// against the same carve-up run serially and against a solo run on
// the full machine. Prints a table and writes a JSON document
// tools/check_bench_regression.py can gate with
// --multi-session-isolation-ceiling / --multi-session-inflation-
// ceiling (bench/scale_sweep embeds the identical block into
// BENCH_scale.json).
//
//   multi_session [--full] [--out BENCH_multi_session.json]
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "common/atomic_file.hpp"
#include "multi_session_probe.hpp"

int main(int argc, char** argv) {
  using namespace entk;
  bool full = false;
  std::string out_path = "BENCH_multi_session.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: multi_session [--full] [--out path]\n";
      return 2;
    }
  }
  const std::string mode = full ? "full" : "smoke";
  const Count total_cores = full ? 2048 : 512;
  const Count units = full ? 10000 : 1000;

  std::cout << "=== Multi-session sweep (" << mode
            << " mode): concurrent sessions on one backend ===\n\n";
  const bench::MultiSessionProbe probe =
      bench::run_multi_session_probe(total_cores, units);
  bench::print_multi_session_table(probe);

  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"entk.bench.scale/1\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"multi_session\": " << bench::multi_session_json(probe, "  ")
      << "\n";
  out << "}\n";
  if (Status status = write_file_atomic(out_path, out.str());
      !status.is_ok()) {
    std::cerr << "BENCH FAILURE: cannot write " << out_path << ": "
              << status.to_string() << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";

  // Inline gates mirroring the regression script's defaults, so the
  // lane fails fast even without the baseline comparison step.
  if (probe.max_isolation_ratio > 1.05) {
    std::cerr << "BENCH FAILURE: cross-session isolation ratio "
              << format_double(probe.max_isolation_ratio, 4)
              << " above the 1.05 ceiling (a session's presence moved "
                 "another session's virtual schedule)\n";
    return 1;
  }
  if (probe.max_normalized_inflation > 3.0) {
    std::cerr << "BENCH FAILURE: normalised shared-capacity inflation "
              << format_double(probe.max_normalized_inflation, 2)
              << " above the 3.0 ceiling\n";
    return 1;
  }
  return 0;
}
