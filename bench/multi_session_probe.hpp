// Multi-session TTC-inflation probe, shared by bench/multi_session
// (the standalone lane) and bench/scale_sweep (which embeds the
// result into BENCH_scale.json).
//
// The question: what does sharing one process / one engine cost a
// workload? For each fleet size n in {1, 2, 4, 8}, n sessions each
// run the same heterogeneous bag concurrently on one backend, with
// the machine's cores split evenly between them, and we compare
// against two baselines:
//
//  - the SAME carve-up run serially (one fresh backend per workload,
//    same cores-per-session): `isolation_ratio`, concurrent mean
//    per-session TTC over serial mean. Sessions multiplex one engine
//    but own their pilots, so the expected value is exactly 1.0 —
//    any drift means one session's presence perturbed another's
//    virtual schedule. This is the gated number (deterministic, like
//    the checkpoint probe's TTC delta).
//
//  - a solo run on the FULL machine: `inflation_vs_full`, the
//    shared-capacity inflation — with 1/n of the cores a session's
//    TTC stretches roughly n-fold, so the normalised form
//    `inflation_vs_full / n` is gated with generous headroom (it
//    exceeds 1.0 only through scheduling granularity at the thinner
//    per-session allocation, not through cross-session interference).
//
// The makespan speedup (serial total over concurrent total) is the
// headline "sharing pays off" number and is reported, not gated: at
// equal carve-ups the n sessions' spans overlap almost perfectly, so
// it approaches n.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"

namespace entk::bench {

/// Same synthetic large machine as the scale sweeps (light overheads,
/// no batch wait) under its own name.
inline sim::MachineProfile multi_session_profile(Count cores) {
  sim::MachineProfile p;
  p.name = "bench.multi";
  p.cores_per_node = 64;
  p.nodes = (cores + p.cores_per_node - 1) / p.cores_per_node;
  p.memory_per_node_gb = 256.0;
  p.performance_factor = 1.0;
  p.unit_spawn_overhead = 0.001;
  p.spawner_concurrency = 64;
  p.unit_launch_latency = 0.002;
  p.pilot_bootstrap = 0.1;
  p.batch_base_wait = 0.0;
  p.batch_wait_per_node = 0.0;
  p.staging_latency = 0.001;
  p.staging_bandwidth_mb_per_s = 1000.0;
  return p;
}

/// Deterministically heterogeneous sleep bag (100 s +- 50%), the
/// sweep workload shape.
inline core::BagOfTasks multi_session_workload(Count n_units) {
  return core::BagOfTasks(n_units, [](const core::StageContext& context) {
    Xoshiro256 rng(static_cast<std::uint64_t>(context.instance) * 7919 +
                   17);
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", 100.0 * (0.5 + rng.uniform()));
    return spec;
  });
}

struct MultiSessionPoint {
  std::size_t n_sessions = 0;
  Count cores_per_session = 0;
  std::size_t units_per_session = 0;
  double concurrent_mean_ttc = 0.0;  ///< Virtual s, mean over sessions.
  double concurrent_max_ttc = 0.0;
  double concurrent_makespan = 0.0;  ///< Virtual span of the shared wait.
  double serial_mean_ttc = 0.0;      ///< Same carve-up, run one-at-a-time.
  double serial_makespan = 0.0;      ///< Sum of the serial TTCs.
  double isolation_ratio = 0.0;      ///< concurrent/serial mean (gate: 1.0).
  double inflation_vs_full = 0.0;    ///< concurrent mean / solo-full TTC.
  double normalized_inflation = 0.0; ///< inflation_vs_full / n_sessions.
  double makespan_speedup = 0.0;     ///< serial/concurrent makespan.
  double wall_seconds = 0.0;         ///< Real time of the concurrent run.
};

struct MultiSessionProbe {
  Count total_cores = 0;
  std::size_t units_per_session = 0;
  double solo_full_ttc = 0.0;  ///< One session, all cores.
  std::vector<MultiSessionPoint> points;
  double max_isolation_ratio = 0.0;
  double max_normalized_inflation = 0.0;
};

namespace multi_session_detail {

inline core::ResourceOptions session_resources(Count cores) {
  core::ResourceOptions options;
  options.cores = cores;
  options.runtime = 4.0e6;
  options.scheduler_policy = "backfill";
  return options;
}

[[noreturn]] inline void fail(const std::string& where,
                              const Status& status) {
  std::cerr << "BENCH FAILURE (multi_session/" << where
            << "): " << status.to_string() << "\n";
  std::exit(1);
}

/// One workload alone on a fresh backend; returns its TTC.
inline double solo_ttc(Count machine_cores, Count session_cores,
                       Count n_units) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_session_profile(machine_cores));
  core::Runtime runtime(backend, registry);
  auto session = runtime.create_session(
      {"solo", session_resources(session_cores)});
  if (!session.ok()) fail("solo/create", session.status());
  if (Status status = session.value()->allocate(); !status.is_ok()) {
    fail("solo/allocate", status);
  }
  core::BagOfTasks pattern = multi_session_workload(n_units);
  auto report = session.value()->run(pattern);
  if (!report.ok()) fail("solo/run", report.status());
  if (!report.value().outcome.is_ok()) {
    fail("solo/outcome", report.value().outcome);
  }
  (void)session.value()->deallocate();
  return report.value().overheads.ttc;
}

}  // namespace multi_session_detail

/// Runs the full probe: solo-full baseline, then one concurrent +
/// serial pair per fleet size.
inline MultiSessionProbe run_multi_session_probe(
    Count total_cores, Count units_per_session,
    const std::vector<std::size_t>& fleet_sizes = {1, 2, 4, 8}) {
  namespace detail = multi_session_detail;
  MultiSessionProbe probe;
  probe.total_cores = total_cores;
  probe.units_per_session = static_cast<std::size_t>(units_per_session);
  probe.solo_full_ttc =
      detail::solo_ttc(total_cores, total_cores, units_per_session);

  for (const std::size_t n : fleet_sizes) {
    MultiSessionPoint point;
    point.n_sessions = n;
    point.cores_per_session = total_cores / static_cast<Count>(n);
    point.units_per_session = probe.units_per_session;

    // Concurrent: n sessions, one backend, one shared wait.
    {
      auto registry = kernels::KernelRegistry::with_builtin_kernels();
      pilot::SimBackend backend(multi_session_profile(total_cores));
      core::Runtime runtime(backend, registry);
      std::vector<std::shared_ptr<core::Session>> sessions;
      std::vector<std::unique_ptr<core::BagOfTasks>> patterns;
      for (std::size_t i = 0; i < n; ++i) {
        auto session = runtime.create_session(
            {"s" + std::to_string(i + 1),
             detail::session_resources(point.cores_per_session)});
        if (!session.ok()) {
          detail::fail("concurrent/create", session.status());
        }
        if (Status status = session.value()->allocate();
            !status.is_ok()) {
          detail::fail("concurrent/allocate", status);
        }
        sessions.push_back(session.take());
        patterns.push_back(std::make_unique<core::BagOfTasks>(
            multi_session_workload(units_per_session)));
      }
      std::vector<core::Runtime::SessionRun> runs;
      for (std::size_t i = 0; i < n; ++i) {
        runs.push_back({sessions[i], patterns[i].get()});
      }
      const TimePoint virtual_start = backend.clock().now();
      const auto start = std::chrono::steady_clock::now();
      auto reports = runtime.run_concurrent(runs);
      point.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!reports.ok()) detail::fail("concurrent/run", reports.status());
      point.concurrent_makespan = backend.clock().now() - virtual_start;
      for (const auto& report : reports.value()) {
        if (!report.outcome.is_ok()) {
          detail::fail("concurrent/outcome", report.outcome);
        }
        point.concurrent_mean_ttc += report.overheads.ttc;
        point.concurrent_max_ttc =
            std::max(point.concurrent_max_ttc, report.overheads.ttc);
      }
      point.concurrent_mean_ttc /= static_cast<double>(n);
      for (auto& session : sessions) (void)session->deallocate();
    }

    // Serial baseline: the same carve-up, one workload at a time.
    for (std::size_t i = 0; i < n; ++i) {
      const double ttc = detail::solo_ttc(
          total_cores, point.cores_per_session, units_per_session);
      point.serial_mean_ttc += ttc;
      point.serial_makespan += ttc;
    }
    point.serial_mean_ttc /= static_cast<double>(n);

    point.isolation_ratio =
        point.serial_mean_ttc > 0.0
            ? point.concurrent_mean_ttc / point.serial_mean_ttc
            : 0.0;
    point.inflation_vs_full =
        probe.solo_full_ttc > 0.0
            ? point.concurrent_mean_ttc / probe.solo_full_ttc
            : 0.0;
    point.normalized_inflation =
        point.inflation_vs_full / static_cast<double>(n);
    point.makespan_speedup =
        point.concurrent_makespan > 0.0
            ? point.serial_makespan / point.concurrent_makespan
            : 0.0;
    probe.max_isolation_ratio =
        std::max(probe.max_isolation_ratio, point.isolation_ratio);
    probe.max_normalized_inflation = std::max(
        probe.max_normalized_inflation, point.normalized_inflation);
    probe.points.push_back(point);
  }
  return probe;
}

/// The probe as a JSON object (no trailing newline); `indent` is the
/// column the opening brace sits at, for embedding into a larger
/// document.
inline std::string multi_session_json(const MultiSessionProbe& probe,
                                      const std::string& indent) {
  const auto number = [](double value) {
    std::ostringstream out;
    out.precision(6);
    out << std::fixed << value;
    return out.str();
  };
  std::ostringstream out;
  out << "{\n";
  out << indent << "  \"total_cores\": " << probe.total_cores << ",\n";
  out << indent << "  \"units_per_session\": " << probe.units_per_session
      << ",\n";
  out << indent << "  \"solo_full_ttc\": " << number(probe.solo_full_ttc)
      << ",\n";
  out << indent << "  \"max_isolation_ratio\": "
      << number(probe.max_isolation_ratio) << ",\n";
  out << indent << "  \"max_normalized_inflation\": "
      << number(probe.max_normalized_inflation) << ",\n";
  out << indent << "  \"points\": [\n";
  for (std::size_t i = 0; i < probe.points.size(); ++i) {
    const MultiSessionPoint& p = probe.points[i];
    out << indent << "    {\"n_sessions\": " << p.n_sessions
        << ", \"cores_per_session\": " << p.cores_per_session
        << ", \"units_per_session\": " << p.units_per_session
        << ", \"concurrent_mean_ttc\": " << number(p.concurrent_mean_ttc)
        << ", \"concurrent_max_ttc\": " << number(p.concurrent_max_ttc)
        << ", \"concurrent_makespan\": " << number(p.concurrent_makespan)
        << ", \"serial_mean_ttc\": " << number(p.serial_mean_ttc)
        << ", \"serial_makespan\": " << number(p.serial_makespan)
        << ", \"isolation_ratio\": " << number(p.isolation_ratio)
        << ", \"inflation_vs_full\": " << number(p.inflation_vs_full)
        << ", \"normalized_inflation\": "
        << number(p.normalized_inflation)
        << ", \"makespan_speedup\": " << number(p.makespan_speedup)
        << ", \"wall_seconds\": " << number(p.wall_seconds) << "}"
        << (i + 1 < probe.points.size() ? "," : "") << "\n";
  }
  out << indent << "  ]\n";
  out << indent << "}";
  return out.str();
}

inline void print_multi_session_table(const MultiSessionProbe& probe) {
  std::cout << "multi-session probe: " << probe.units_per_session
            << " units/session on " << probe.total_cores
            << " shared cores (solo-full TTC "
            << format_double(probe.solo_full_ttc, 1) << " virtual-s)\n";
  Table table({"sessions", "cores/session", "ttc [vs]", "serial ttc [vs]",
               "isolation", "inflation/n", "makespan speedup",
               "wall [s]"});
  for (const MultiSessionPoint& p : probe.points) {
    table.add_row({std::to_string(p.n_sessions),
                   std::to_string(p.cores_per_session),
                   format_double(p.concurrent_mean_ttc, 1),
                   format_double(p.serial_mean_ttc, 1),
                   format_double(p.isolation_ratio, 4),
                   format_double(p.normalized_inflation, 3),
                   format_double(p.makespan_speedup, 2),
                   format_double(p.wall_seconds, 2)});
  }
  std::cout << table.to_string();
}

}  // namespace entk::bench
