// Scale sweep: the toolkit's perf-regression harness.
//
// Two questions, answered with machine-readable numbers
// (BENCH_scale.json):
//
//  1. How fast is the event engine itself?  A cancel-heavy timer-churn
//     microbench — the agent's walltime-timer idiom: every unit
//     schedules a completion AND a timeout, completion cancels the
//     timeout — drives the pre-rework engine (bench/legacy_engine.hpp,
//     preserved verbatim) and the production pooled engine through the
//     identical workload and reports both events/sec numbers. The
//     pooled engine must stay >= 5x at 100k units; the ratio is
//     machine-relative, so it is the robust regression signal across
//     differently-sized CI runners.
//
//  2. Does the whole stack stay sublinear per unit at ensemble scale?
//     Weak- and strong-scaling sweeps of the paper's patterns
//     (BoT / EoP / SAL) up to 100k units on a synthetic large machine,
//     reporting wall-clock events/sec, scheduler cycles, toolkit
//     overhead per unit and peak RSS for each point.
//
// Modes: the default run is CI-sized (seconds); --full runs the
// 100k-unit points the acceptance numbers come from.
//
//   scale_sweep [--full] [--out BENCH_scale.json]
//
// docs/PERFORMANCE.md describes the methodology and the JSON schema;
// tools/check_bench_regression.py gates CI on the result.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/coordinator.hpp"
#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/task_fn.hpp"
#include "common/work_stealing_pool.hpp"
#include "legacy_engine.hpp"
#include "multi_session_probe.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pilot/sim_agent.hpp"
#include "serve_probe.hpp"

namespace {

using namespace entk;

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Linux: ru_maxrss is KiB. Monotone per process (high-water mark).
double peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// ---------------------------------------------------------------------
// Part 1: engine comparison (legacy vs pooled), identical workload.
// ---------------------------------------------------------------------

struct ChurnResult {
  double wall_seconds = 0.0;
  std::uint64_t dispatched = 0;
  std::size_t peak_entries = 0;  ///< Queue/heap high-water mark.
  double events_per_sec = 0.0;
};

/// Shared state of one churn run. Callbacks capture exactly (context
/// pointer, timer handle) — 16 trivially-copyable bytes, inside
/// std::function's small-object buffer — so the measurement isolates
/// the engines' own costs (allocation, index maintenance, heap depth)
/// instead of closure heap traffic both engines would pay alike.
template <typename EngineT>
struct ChurnContext {
  EngineT& engine;
  std::size_t (*entries)(EngineT&);
  const std::vector<double>& durations;
  std::size_t next_unit = 0;
  std::size_t n_units = 0;
  std::size_t peak_entries = 0;
};

/// One unit's lifecycle, the agent's walltime-timer idiom: arm a
/// watchdog and schedule the spawn; at launch re-arm the watchdog for
/// the execution phase; at completion cancel it and start the next
/// unit. Per unit: 4 schedules, 2 dispatches, 2 cancels. The legacy
/// engine leaves every cancelled watchdog as a tombstone in its
/// priority queue (they sort 1h into the future), so its heap grows
/// O(n_units); the pooled engine recycles the slot immediately and
/// stays O(window).
template <typename EngineT>
void churn_start_unit(ChurnContext<EngineT>* ctx) {
  if (ctx->next_unit >= ctx->n_units) return;
  const std::size_t i = ctx->next_unit++;
  const double spawn_delay =
      0.05 * ctx->durations[i % ctx->durations.size()];
  const auto spawn_watchdog = ctx->engine.schedule(3600.0, [] {});
  ctx->engine.schedule(spawn_delay, [ctx, spawn_watchdog] {
    // Launched: re-arm the walltime watchdog for the execution phase.
    ctx->engine.cancel(spawn_watchdog);
    const auto exec_watchdog = ctx->engine.schedule(3600.0, [] {});
    const double run_delay =
        ctx->durations[ctx->next_unit % ctx->durations.size()];
    ctx->engine.schedule(run_delay, [ctx, exec_watchdog] {
      ctx->engine.cancel(exec_watchdog);
      if ((ctx->next_unit & 63u) == 0) {
        ctx->peak_entries =
            std::max(ctx->peak_entries, ctx->entries(ctx->engine));
      }
      churn_start_unit(ctx);
    });
  });
}

template <typename EngineT>
ChurnResult drive_timer_churn(EngineT& engine, std::size_t n_units,
                              std::size_t window,
                              std::size_t (*entries)(EngineT&)) {
  // Deterministic per-unit durations, identical for both engines.
  std::vector<double> durations(1024);
  Xoshiro256 rng(0x5ca1ab1eULL);
  for (double& d : durations) d = 0.5 + rng.uniform();

  ChurnContext<EngineT> ctx{engine, entries, durations};
  ctx.n_units = n_units;

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < window && i < n_units; ++i) {
    churn_start_unit(&ctx);
  }
  engine.run();
  ChurnResult result;
  result.wall_seconds = wall_seconds_since(start);
  result.dispatched = engine.dispatched_events();
  result.peak_entries = std::max(ctx.peak_entries, entries(engine));
  result.events_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.dispatched) / result.wall_seconds
          : 0.0;
  return result;
}

struct EngineCompare {
  std::size_t n_units = 0;
  ChurnResult legacy;
  ChurnResult pooled;
  double speedup = 0.0;
};

EngineCompare compare_engines(std::size_t n_units, std::size_t window) {
  EngineCompare compare;
  compare.n_units = n_units;
  {
    bench::LegacyEngine legacy;
    compare.legacy = drive_timer_churn<bench::LegacyEngine>(
        legacy, n_units, window,
        [](bench::LegacyEngine& e) { return e.queue_entries(); });
  }
  {
    sim::Engine pooled;
    compare.pooled = drive_timer_churn<sim::Engine>(
        pooled, n_units, window,
        [](sim::Engine& e) { return e.pool_slots(); });
  }
  compare.speedup = compare.legacy.events_per_sec > 0.0
                        ? compare.pooled.events_per_sec /
                              compare.legacy.events_per_sec
                        : 0.0;
  return compare;
}

// ---------------------------------------------------------------------
// Part 2: whole-stack pattern sweeps.
// ---------------------------------------------------------------------

/// Synthetic large machine: enough cores for 100k single-core units,
/// with light (localhost-grade) overhead parameters so virtual time
/// stays bounded while every unit still pays spawn/launch/staging
/// events — the toolkit machinery is what is being measured.
sim::MachineProfile scale_profile(Count cores) {
  sim::MachineProfile p;
  p.name = "bench.scale";
  p.cores_per_node = 64;
  p.nodes = (cores + p.cores_per_node - 1) / p.cores_per_node;
  p.memory_per_node_gb = 256.0;
  p.performance_factor = 1.0;
  p.unit_spawn_overhead = 0.001;
  p.spawner_concurrency = 64;
  p.unit_launch_latency = 0.002;
  p.pilot_bootstrap = 0.1;
  p.batch_base_wait = 0.0;
  p.batch_wait_per_node = 0.0;
  p.staging_latency = 0.001;
  p.staging_bandwidth_mb_per_s = 1000.0;
  return p;
}

/// Deterministically heterogeneous sleep task (so schedules are not
/// degenerate all-identical).
core::StageFn sleep_stage(double base, double spread) {
  return [base, spread](const core::StageContext& context) {
    Xoshiro256 rng(static_cast<std::uint64_t>(context.instance) * 7919 +
                   static_cast<std::uint64_t>(context.stage) * 104729 + 17);
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration",
                  base * (1.0 + spread * (2.0 * rng.uniform() - 1.0)));
    return spec;
  };
}

struct SweepPoint {
  std::string pattern;  ///< "bot" / "eop" / "sal"
  std::string scaling;  ///< "weak" / "strong"
  std::size_t n_units = 0;
  Count cores = 0;
  double wall_seconds = 0.0;
  std::uint64_t engine_events = 0;
  double events_per_sec = 0.0;
  std::uint64_t scheduler_cycles = 0;
  double scheduler_us_per_cycle = 0.0;
  double wall_us_per_unit = 0.0;
  double toolkit_overhead_per_unit_s = 0.0;  ///< Virtual-time overhead.
  double ttc = 0.0;                          ///< Virtual time-to-completion.
  double peak_rss_mb = 0.0;
};

SweepPoint run_pattern(const std::string& label, const std::string& scaling,
                       core::ExecutionPattern& pattern, Count cores,
                       const ckpt::Coordinator::Options* ckpt_options = nullptr,
                       std::uint64_t* snapshots_written = nullptr) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(scale_profile(cores));
  core::ResourceOptions options;
  options.cores = cores;
  options.runtime = 4.0e6;
  core::ResourceHandle handle(backend, registry, options);

  SweepPoint point;
  point.pattern = label;
  point.scaling = scaling;
  point.cores = cores;

  if (Status status = handle.allocate(); !status.is_ok()) {
    std::cerr << "BENCH FAILURE (" << label
              << "/allocate): " << status.to_string() << "\n";
    std::exit(1);
  }
  std::optional<ckpt::Coordinator> coordinator;
  if (ckpt_options != nullptr) {
    coordinator.emplace(backend, handle, *ckpt_options);
    coordinator->set_identity(label, "");
    pattern.set_graph_run_observer(&*coordinator);
  }
  const std::uint64_t events_before = backend.engine().dispatched_events();
  const auto start = std::chrono::steady_clock::now();
  auto report = handle.run(pattern);
  point.wall_seconds = wall_seconds_since(start);
  if (!report.ok() || !report.value().outcome.is_ok()) {
    const Status status =
        report.ok() ? report.value().outcome : report.status();
    std::cerr << "BENCH FAILURE (" << label
              << "/run): " << status.to_string() << "\n";
    std::exit(1);
  }
  if (coordinator) {
    pattern.set_graph_run_observer(nullptr);
    if (snapshots_written != nullptr) {
      *snapshots_written = coordinator->snapshots_written();
    }
  }
  point.n_units = report.value().units.size();
  point.engine_events =
      backend.engine().dispatched_events() - events_before;
  point.events_per_sec =
      point.wall_seconds > 0.0
          ? static_cast<double>(point.engine_events) / point.wall_seconds
          : 0.0;
  if (auto* agent =
          dynamic_cast<pilot::SimAgent*>(handle.pilot()->agent())) {
    point.scheduler_cycles = agent->scheduler_cycles();
  }
  point.scheduler_us_per_cycle =
      point.scheduler_cycles > 0
          ? 1.0e6 * point.wall_seconds /
                static_cast<double>(point.scheduler_cycles)
          : 0.0;
  point.wall_us_per_unit =
      point.n_units > 0 ? 1.0e6 * point.wall_seconds /
                              static_cast<double>(point.n_units)
                        : 0.0;
  const auto& overheads = report.value().overheads;
  point.toolkit_overhead_per_unit_s =
      point.n_units > 0
          ? (overheads.pattern_overhead + overheads.runtime_overhead) /
                static_cast<double>(point.n_units)
          : 0.0;
  point.ttc = overheads.ttc;
  (void)handle.deallocate();
  point.peak_rss_mb = peak_rss_mb();
  return point;
}

SweepPoint run_bot(std::size_t n_units, Count cores,
                   const std::string& scaling) {
  core::BagOfTasks pattern(static_cast<Count>(n_units),
                           sleep_stage(100.0, 0.5));
  return run_pattern("bot", scaling, pattern, cores);
}

SweepPoint run_eop(Count pipelines, Count stages, Count cores) {
  core::EnsembleOfPipelines pattern(pipelines, stages);
  for (Count s = 1; s <= stages; ++s) {
    pattern.set_stage(s, sleep_stage(50.0, 0.5));
  }
  return run_pattern("eop", "weak", pattern, cores);
}

SweepPoint run_sal(Count iterations, Count simulations, Count analyses,
                   Count cores) {
  core::SimulationAnalysisLoop pattern(iterations, simulations, analyses);
  pattern.set_simulation(sleep_stage(80.0, 0.5));
  pattern.set_analysis(sleep_stage(20.0, 0.25));
  return run_pattern("sal", "weak", pattern, cores);
}

// ---------------------------------------------------------------------
// Tracing-overhead probe: the same BoT point with the recorder off and
// on, in this binary. With ENTK_ENABLE_TRACING=0 both runs are the
// uninstrumented hot path, so traced == baseline demonstrates the
// compiled-out macros are free; with tracing compiled in, the delta is
// the cost of the enabled recorder.
// ---------------------------------------------------------------------

struct TracingProbe {
  bool compiled_in = false;
  std::size_t n_units = 0;
  double baseline_cpu_seconds = 0.0;
  double traced_cpu_seconds = 0.0;
  double baseline_wall_seconds = 0.0;
  double traced_wall_seconds = 0.0;
  double baseline_events_per_sec = 0.0;
  double traced_events_per_sec = 0.0;
  double overhead_fraction = 0.0;  ///< From best-of-N CPU seconds.
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
};

// One run's wall time fluctuates roughly +/-10% (allocator and OS
// scheduler noise dwarfs the recorder at this scale) and the machine
// drifts over the probe's lifetime. The probe therefore (a) scores on
// process-CPU seconds, which for this single-threaded CPU-bound run
// is far steadier than wall time, (b) interleaves the configurations
// and alternates which goes first each repetition, so both drift and
// within-repetition ordering bias cancel, and (c) takes best-of-N:
// the minimum is the least-noise estimate of the true cost. Twelve
// repetitions put the minimum within ~1% on a machine whose
// single-run CPU time wobbles by +/-5%.
constexpr int kProbeRepetitions = 12;

TracingProbe run_tracing_probe(std::size_t n_units,
                               const std::string& trace_out) {
  TracingProbe probe;
  probe.compiled_in = obs::tracing_compiled_in();
  probe.n_units = n_units;

  // Untimed warm-up: the first run at a new size pays allocator and
  // page-cache population that later runs do not, which would bias
  // the baseline batch slow (and the overhead negative).
  run_bot(n_units, static_cast<Count>(n_units), "weak");

  const auto timed_run = [n_units](SweepPoint& best, double& best_cpu) {
    const std::clock_t start = std::clock();
    const SweepPoint point =
        run_bot(n_units, static_cast<Count>(n_units), "weak");
    const double cpu = static_cast<double>(std::clock() - start) /
                       CLOCKS_PER_SEC;
    if (best_cpu < 0.0 || cpu < best_cpu) {
      best = point;
      best_cpu = cpu;
    }
  };

  auto& recorder = obs::TraceRecorder::instance();
  recorder.set_capacity_per_thread(std::size_t{1} << 20);
  SweepPoint baseline;
  SweepPoint traced;
  double baseline_cpu = -1.0;
  double traced_cpu = -1.0;
  const auto traced_run = [&] {
    recorder.clear();  // each repetition records a fresh trace
    recorder.set_enabled(true);
    timed_run(traced, traced_cpu);
    recorder.set_enabled(false);
  };
  for (int rep = 0; rep < kProbeRepetitions; ++rep) {
    if (rep % 2 == 0) {
      timed_run(baseline, baseline_cpu);
      traced_run();
    } else {
      traced_run();
      timed_run(baseline, baseline_cpu);
    }
  }
  probe.baseline_cpu_seconds = baseline_cpu;
  probe.traced_cpu_seconds = traced_cpu;
  probe.baseline_wall_seconds = baseline.wall_seconds;
  probe.baseline_events_per_sec = baseline.events_per_sec;
  probe.traced_wall_seconds = traced.wall_seconds;
  probe.traced_events_per_sec = traced.events_per_sec;
  probe.overhead_fraction =
      probe.baseline_cpu_seconds > 0.0
          ? probe.traced_cpu_seconds / probe.baseline_cpu_seconds - 1.0
          : 0.0;
  const auto stats = recorder.stats();
  probe.events_recorded = stats.recorded;
  probe.events_dropped = stats.dropped;

  if (!trace_out.empty()) {
    if (Status status =
            obs::write_chrome_trace(trace_out, recorder.snapshot());
        !status.is_ok()) {
      std::cerr << "BENCH FAILURE: trace export: " << status.to_string()
                << "\n";
      std::exit(1);
    }
    std::cout << "wrote " << trace_out << "\n";
  }
  recorder.clear();
  return probe;
}

// ---------------------------------------------------------------------
// Checkpoint-overhead probe: the same BoT point with the checkpoint
// coordinator detached and attached (snapshotting every n_units/8
// settled units), in this binary. The gated number is the virtual-TTC
// delta: captures happen at engine-step boundaries in wall time, off
// the virtual-time path, so checkpointing must not move TTC at all —
// any drift means a capture perturbed the engine, the scheduler or a
// unit, which is exactly the regression the kill/resume determinism
// tests depend on never happening. The wall-clock cost of the capture
// serialization and the crash-consistent file writes is reported
// alongside (process-CPU seconds, interleaved order-alternating
// best-of-N, same methodology as the tracing probe) but not gated:
// in this all-virtual bench the units do no real work, so the O(n)
// capture is measured against a run that is nothing but toolkit
// bookkeeping — a denominator real campaigns never see.
// ---------------------------------------------------------------------

struct CheckpointProbe {
  std::size_t n_units = 0;
  std::uint64_t every_settled = 0;
  std::uint64_t snapshots_written = 0;
  double baseline_cpu_seconds = 0.0;
  double checkpointed_cpu_seconds = 0.0;
  double baseline_ttc = 0.0;
  double checkpointed_ttc = 0.0;
  double overhead_fraction = 0.0;      ///< Virtual-TTC delta (gated).
  double cpu_overhead_fraction = 0.0;  ///< Best-of-N CPU seconds (info).
};

CheckpointProbe run_checkpoint_probe(std::size_t n_units) {
  CheckpointProbe probe;
  probe.n_units = n_units;
  probe.every_settled = std::max<std::uint64_t>(1, n_units / 8);

  const std::filesystem::path ckpt_dir =
      std::filesystem::temp_directory_path() / "entk-bench-ckpt";

  // Untimed warm-up (same rationale as the tracing probe).
  run_bot(n_units, static_cast<Count>(n_units), "weak");

  SweepPoint baseline;
  SweepPoint checkpointed;
  double baseline_cpu = -1.0;
  double checkpointed_cpu = -1.0;
  const auto baseline_run = [&] {
    const std::clock_t start = std::clock();
    const SweepPoint point =
        run_bot(n_units, static_cast<Count>(n_units), "weak");
    const double cpu =
        static_cast<double>(std::clock() - start) / CLOCKS_PER_SEC;
    if (baseline_cpu < 0.0 || cpu < baseline_cpu) {
      baseline = point;
      baseline_cpu = cpu;
    }
  };
  // The gated TTC delta is deterministic, so repetitions only tighten
  // the informational CPU numbers; four keep the full-mode probe (each
  // checkpointed run writes eight ~100k-unit snapshots) affordable.
  constexpr int kCheckpointRepetitions = 4;
  const auto checkpointed_run = [&] {
    ckpt::Coordinator::Options options;
    options.directory = ckpt_dir.string();
    options.policy.every_settled = probe.every_settled;
    core::BagOfTasks pattern(static_cast<Count>(n_units),
                             sleep_stage(100.0, 0.5));
    std::uint64_t snapshots = 0;
    const std::clock_t start = std::clock();
    const SweepPoint point =
        run_pattern("bot", "weak", pattern, static_cast<Count>(n_units),
                    &options, &snapshots);
    const double cpu =
        static_cast<double>(std::clock() - start) / CLOCKS_PER_SEC;
    if (checkpointed_cpu < 0.0 || cpu < checkpointed_cpu) {
      checkpointed = point;
      checkpointed_cpu = cpu;
      probe.snapshots_written = snapshots;
    }
  };
  for (int rep = 0; rep < kCheckpointRepetitions; ++rep) {
    if (rep % 2 == 0) {
      baseline_run();
      checkpointed_run();
    } else {
      checkpointed_run();
      baseline_run();
    }
  }
  probe.baseline_cpu_seconds = baseline_cpu;
  probe.checkpointed_cpu_seconds = checkpointed_cpu;
  probe.baseline_ttc = baseline.ttc;
  probe.checkpointed_ttc = checkpointed.ttc;
  probe.overhead_fraction =
      probe.baseline_ttc > 0.0
          ? probe.checkpointed_ttc / probe.baseline_ttc - 1.0
          : 0.0;
  probe.cpu_overhead_fraction =
      probe.baseline_cpu_seconds > 0.0
          ? probe.checkpointed_cpu_seconds / probe.baseline_cpu_seconds -
                1.0
          : 0.0;

  std::error_code ec;
  std::filesystem::remove_all(ckpt_dir, ec);
  return probe;
}

// ---------------------------------------------------------------------
// Part 4: work-stealing parallel runtime (common/work_stealing_pool).
// ---------------------------------------------------------------------

struct ParallelPoint {
  std::size_t threads = 0;
  double wall_seconds = 0.0;
  double speedup = 1.0;  ///< wall(first point) / wall(this point).
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  std::uint64_t parks = 0;
};

struct ParallelRuntimeProbe {
  std::size_t n_tasks = 0;
  double task_block_ms = 0.0;
  std::vector<ParallelPoint> points;

  double speedup_at(std::size_t threads) const {
    for (const ParallelPoint& point : points) {
      if (point.threads == threads) return point.speedup;
    }
    return 0.0;
  }
};

/// Sweeps WorkStealingPool sizes over a fixed batch of BLOCKING
/// kernels. Real-mode payloads (LocalAgent units, saga jobs) spend
/// their time blocked in I/O or subprocess waits, not spinning, so
/// each kernel sleeps: the pool's job is to keep `threads` of them
/// in flight at once, and the wall-clock ratio against the one-thread
/// run is the concurrency actually delivered. (Blocking kernels also
/// make the measurement meaningful on single-core CI runners, where a
/// cpu-bound sweep could never beat 1x.) Each external submission
/// spawns half its work as a submit_local continuation, so the sweep
/// exercises the per-worker deques and the steal path, not just the
/// shared inject queue.
ParallelRuntimeProbe run_parallel_probe(
    std::size_t n_tasks, double block_ms,
    const std::vector<std::size_t>& thread_counts) {
  ParallelRuntimeProbe probe;
  probe.n_tasks = n_tasks;
  probe.task_block_ms = block_ms;
  const auto half_block = std::chrono::microseconds(
      static_cast<std::int64_t>(block_ms * 500.0));
  for (const std::size_t threads : thread_counts) {
    WorkStealingPool pool(threads);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n_tasks; ++i) {
      pool.submit_external(TaskFn([&pool, half_block] {
        std::this_thread::sleep_for(half_block);
        (void)pool.submit_local(TaskFn(
            [half_block] { std::this_thread::sleep_for(half_block); }));
      }));
    }
    pool.wait_idle();
    ParallelPoint point;
    point.threads = threads;
    point.wall_seconds = wall_seconds_since(start);
    const WorkStealingPool::Stats stats = pool.stats();
    point.executed = stats.executed;
    point.stolen = stats.stolen;
    point.parks = stats.parks;
    point.speedup = probe.points.empty()
                        ? 1.0
                        : probe.points.front().wall_seconds /
                              std::max(point.wall_seconds, 1e-9);
    probe.points.push_back(point);
  }
  return probe;
}

// ---------------------------------------------------------------------
// JSON emission (hand-rolled: no third-party deps in the toolkit).
// ---------------------------------------------------------------------

std::string json_number(double value) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << value;
  return out.str();
}

void write_json(const std::string& path, const std::string& mode,
                const EngineCompare& compare,
                const std::vector<SweepPoint>& sweeps,
                const TracingProbe& probe,
                const CheckpointProbe& ckpt_probe,
                const bench::MultiSessionProbe& multi_probe,
                const ParallelRuntimeProbe& parallel_probe,
                const bench::ServeProbe& serve_probe) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"entk.bench.scale/1\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"engine_compare\": {\n";
  out << "    \"workload\": \"timer_churn\",\n";
  out << "    \"n_units\": " << compare.n_units << ",\n";
  out << "    \"legacy_events_per_sec\": "
      << json_number(compare.legacy.events_per_sec) << ",\n";
  out << "    \"legacy_wall_seconds\": "
      << json_number(compare.legacy.wall_seconds) << ",\n";
  out << "    \"legacy_peak_queue_entries\": "
      << compare.legacy.peak_entries << ",\n";
  out << "    \"pooled_events_per_sec\": "
      << json_number(compare.pooled.events_per_sec) << ",\n";
  out << "    \"pooled_wall_seconds\": "
      << json_number(compare.pooled.wall_seconds) << ",\n";
  out << "    \"pooled_peak_pool_slots\": "
      << compare.pooled.peak_entries << ",\n";
  out << "    \"speedup\": " << json_number(compare.speedup) << "\n";
  out << "  },\n";
  out << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const SweepPoint& p = sweeps[i];
    out << "    {\"pattern\": \"" << p.pattern << "\", \"scaling\": \""
        << p.scaling << "\", \"n_units\": " << p.n_units
        << ", \"cores\": " << p.cores
        << ", \"wall_seconds\": " << json_number(p.wall_seconds)
        << ", \"engine_events\": " << p.engine_events
        << ", \"events_per_sec\": " << json_number(p.events_per_sec)
        << ", \"scheduler_cycles\": " << p.scheduler_cycles
        << ", \"scheduler_us_per_cycle\": "
        << json_number(p.scheduler_us_per_cycle)
        << ", \"wall_us_per_unit\": " << json_number(p.wall_us_per_unit)
        << ", \"toolkit_overhead_per_unit_s\": "
        << json_number(p.toolkit_overhead_per_unit_s)
        << ", \"ttc\": " << json_number(p.ttc)
        << ", \"peak_rss_mb\": " << json_number(p.peak_rss_mb) << "}"
        << (i + 1 < sweeps.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"tracing\": {\n";
  out << "    \"compiled_in\": " << (probe.compiled_in ? "true" : "false")
      << ",\n";
  out << "    \"n_units\": " << probe.n_units << ",\n";
  out << "    \"baseline_cpu_seconds\": "
      << json_number(probe.baseline_cpu_seconds) << ",\n";
  out << "    \"traced_cpu_seconds\": "
      << json_number(probe.traced_cpu_seconds) << ",\n";
  out << "    \"baseline_wall_seconds\": "
      << json_number(probe.baseline_wall_seconds) << ",\n";
  out << "    \"traced_wall_seconds\": "
      << json_number(probe.traced_wall_seconds) << ",\n";
  out << "    \"baseline_events_per_sec\": "
      << json_number(probe.baseline_events_per_sec) << ",\n";
  out << "    \"traced_events_per_sec\": "
      << json_number(probe.traced_events_per_sec) << ",\n";
  out << "    \"overhead_fraction\": "
      << json_number(probe.overhead_fraction) << ",\n";
  out << "    \"events_recorded\": " << probe.events_recorded << ",\n";
  out << "    \"events_dropped\": " << probe.events_dropped << "\n";
  out << "  },\n";
  out << "  \"checkpoint\": {\n";
  out << "    \"n_units\": " << ckpt_probe.n_units << ",\n";
  out << "    \"every_settled\": " << ckpt_probe.every_settled << ",\n";
  out << "    \"snapshots_written\": " << ckpt_probe.snapshots_written
      << ",\n";
  out << "    \"baseline_cpu_seconds\": "
      << json_number(ckpt_probe.baseline_cpu_seconds) << ",\n";
  out << "    \"checkpointed_cpu_seconds\": "
      << json_number(ckpt_probe.checkpointed_cpu_seconds) << ",\n";
  out << "    \"baseline_ttc\": " << json_number(ckpt_probe.baseline_ttc)
      << ",\n";
  out << "    \"checkpointed_ttc\": "
      << json_number(ckpt_probe.checkpointed_ttc) << ",\n";
  out << "    \"overhead_fraction\": "
      << json_number(ckpt_probe.overhead_fraction) << ",\n";
  out << "    \"cpu_overhead_fraction\": "
      << json_number(ckpt_probe.cpu_overhead_fraction) << "\n";
  out << "  },\n";
  out << "  \"multi_session\": "
      << bench::multi_session_json(multi_probe, "  ") << ",\n";
  out << "  \"parallel_runtime\": {\n";
  out << "    \"workload\": \"blocking_kernels\",\n";
  out << "    \"n_tasks\": " << parallel_probe.n_tasks << ",\n";
  out << "    \"task_block_ms\": "
      << json_number(parallel_probe.task_block_ms) << ",\n";
  out << "    \"points\": [\n";
  for (std::size_t i = 0; i < parallel_probe.points.size(); ++i) {
    const ParallelPoint& p = parallel_probe.points[i];
    out << "      {\"threads\": " << p.threads
        << ", \"wall_seconds\": " << json_number(p.wall_seconds)
        << ", \"speedup\": " << json_number(p.speedup)
        << ", \"executed\": " << p.executed
        << ", \"stolen\": " << p.stolen << ", \"parks\": " << p.parks
        << "}" << (i + 1 < parallel_probe.points.size() ? "," : "")
        << "\n";
  }
  out << "    ],\n";
  out << "    \"speedup_at_4\": "
      << json_number(parallel_probe.speedup_at(4)) << ",\n";
  out << "    \"speedup_at_16\": "
      << json_number(parallel_probe.speedup_at(16)) << "\n";
  out << "  },\n";
  out << "  \"serve\": " << bench::serve_json(serve_probe, "  ") << "\n";
  out << "}\n";

  if (Status status = write_file_atomic(path, out.str());
      !status.is_ok()) {
    std::cerr << "BENCH FAILURE: cannot write " << path << ": "
              << status.to_string() << "\n";
    std::exit(1);
  }
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::string out_path = "BENCH_scale.json";
  std::string trace_out;
  // The speedup baseline is the first point, so it should stay 1.
  std::vector<std::size_t> thread_counts = {1, 4, 16};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      std::istringstream list(argv[++i]);
      std::string token;
      while (std::getline(list, token, ',')) {
        const unsigned long value = std::strtoul(token.c_str(), nullptr, 10);
        if (value == 0) {
          std::cerr << "scale_sweep: bad --threads entry '" << token
                    << "' (want a comma-separated list like 1,4,16)\n";
          return 2;
        }
        thread_counts.push_back(static_cast<std::size_t>(value));
      }
      if (thread_counts.empty()) {
        std::cerr << "scale_sweep: --threads needs at least one count\n";
        return 2;
      }
    } else {
      std::cerr << "usage: scale_sweep [--full] [--out path] "
                   "[--trace-out trace.json] [--threads 1,4,16]\n";
      return 2;
    }
  }
  const std::string mode = full ? "full" : "smoke";

  std::cout << "=== Scale sweep (" << mode
            << " mode): pooled event engine + indexed scheduling ===\n\n";

  // Part 0: tracing-overhead probe at the largest weak-scaling point.
  // Runs FIRST, before the sweeps heat the machine: the probe chases
  // a few-percent effect, and thermal drift over a minutes-long bench
  // is visible in per-run CPU time.
  const std::size_t probe_units = full ? 100000 : 4096;
  const TracingProbe probe = run_tracing_probe(probe_units, trace_out);
  std::cout << "tracing probe (" << probe.n_units << " units, compiled "
            << (probe.compiled_in ? "in" : "out") << "): baseline "
            << format_double(probe.baseline_cpu_seconds, 2)
            << " cpu-s, traced "
            << format_double(probe.traced_cpu_seconds, 2)
            << " cpu-s, overhead "
            << format_double(100.0 * probe.overhead_fraction, 1) << " % ("
            << probe.events_recorded << " events, " << probe.events_dropped
            << " dropped)\n\n";

  // Part 0b: checkpoint-overhead probe at the same point, same
  // methodology (it chases the same few-percent effect).
  const CheckpointProbe ckpt_probe = run_checkpoint_probe(probe_units);
  std::cout << "checkpoint probe (" << ckpt_probe.n_units
            << " units, snapshot every " << ckpt_probe.every_settled
            << " settled, " << ckpt_probe.snapshots_written
            << " snapshots): TTC "
            << format_double(ckpt_probe.baseline_ttc, 1) << " -> "
            << format_double(ckpt_probe.checkpointed_ttc, 1)
            << " virtual-s (overhead "
            << format_double(100.0 * ckpt_probe.overhead_fraction, 1)
            << " %), capture cost "
            << format_double(ckpt_probe.baseline_cpu_seconds, 2) << " -> "
            << format_double(ckpt_probe.checkpointed_cpu_seconds, 2)
            << " cpu-s (not gated)\n\n";

  // Part 1: engine comparison at the acceptance scale.
  const std::size_t compare_units = full ? 100000 : 20000;
  const EngineCompare compare = compare_engines(compare_units, 4096);
  Table engine_table({"engine", "events", "wall [s]", "events/sec",
                      "peak queue/pool"});
  engine_table.add_row(
      {"legacy (shared_ptr + lazy cancel)",
       std::to_string(compare.legacy.dispatched),
       format_double(compare.legacy.wall_seconds, 3),
       format_double(compare.legacy.events_per_sec, 0),
       std::to_string(compare.legacy.peak_entries)});
  engine_table.add_row({"pooled (slab + indexed heap)",
                        std::to_string(compare.pooled.dispatched),
                        format_double(compare.pooled.wall_seconds, 3),
                        format_double(compare.pooled.events_per_sec, 0),
                        std::to_string(compare.pooled.peak_entries)});
  std::cout << "timer churn, " << compare_units << " units, window 4096:\n"
            << engine_table.to_string() << "speedup: "
            << format_double(compare.speedup, 2) << "x\n\n";

  // Part 2: pattern sweeps.
  std::vector<SweepPoint> sweeps;
  if (full) {
    // Weak scaling: units == cores.
    for (const std::size_t n : {1000UL, 10000UL, 100000UL}) {
      sweeps.push_back(run_bot(n, static_cast<Count>(n), "weak"));
    }
    // Strong scaling: fixed bag, shrinking machine (deep backlog).
    for (const Count cores : {16384, 4096, 1024}) {
      sweeps.push_back(run_bot(32768, cores, "strong"));
    }
    sweeps.push_back(run_eop(2500, 4, 2500));    // 10k units
    sweeps.push_back(run_eop(25000, 4, 25000));  // 100k units
    sweeps.push_back(run_sal(4, 2000, 500, 2000));    // 10k units
    sweeps.push_back(run_sal(4, 20000, 5000, 20000));  // 100k units
  } else {
    for (const std::size_t n : {256UL, 1024UL, 4096UL}) {
      sweeps.push_back(run_bot(n, static_cast<Count>(n), "weak"));
    }
    for (const Count cores : {1024, 256}) {
      sweeps.push_back(run_bot(4096, cores, "strong"));
    }
    sweeps.push_back(run_eop(256, 4, 256));
    sweeps.push_back(run_sal(2, 256, 64, 256));
  }

  Table sweep_table({"pattern", "scaling", "units", "cores", "wall [s]",
                     "events/sec", "sched cycles", "us/unit",
                     "peak RSS [MB]"});
  for (const SweepPoint& p : sweeps) {
    sweep_table.add_row(
        {p.pattern, p.scaling, std::to_string(p.n_units),
         std::to_string(p.cores), format_double(p.wall_seconds, 2),
         format_double(p.events_per_sec, 0),
         std::to_string(p.scheduler_cycles),
         format_double(p.wall_us_per_unit, 1),
         format_double(p.peak_rss_mb, 0)});
  }
  std::cout << sweep_table.to_string();

  // Part 3: multi-session sharing. Per-session TTC inflation at
  // 1/2/4/8 concurrent workloads on one backend vs serial baselines
  // (bench/multi_session_probe.hpp documents the two ratios).
  std::cout << "\n";
  const bench::MultiSessionProbe multi_probe =
      full ? bench::run_multi_session_probe(2048, 10000)
           : bench::run_multi_session_probe(512, 1000);
  bench::print_multi_session_table(multi_probe);

  // Part 4: work-stealing pool thread sweep over blocking kernels.
  const ParallelRuntimeProbe parallel_probe =
      run_parallel_probe(full ? 480 : 240, 4.0, thread_counts);
  Table parallel_table({"threads", "wall [s]", "speedup", "executed",
                        "stolen", "parks"});
  for (const ParallelPoint& p : parallel_probe.points) {
    parallel_table.add_row(
        {std::to_string(p.threads), format_double(p.wall_seconds, 3),
         format_double(p.speedup, 2) + "x", std::to_string(p.executed),
         std::to_string(p.stolen), std::to_string(p.parks)});
  }
  std::cout << "\nparallel runtime (" << parallel_probe.n_tasks
            << " blocking kernels, "
            << format_double(parallel_probe.task_block_ms, 1)
            << " ms each):\n"
            << parallel_table.to_string();

  // Part 5: the entk-serve submission storm. 8 tenants of equal
  // weight race >= 1000 workloads through admission and the global
  // dispatch budget; fairness and the latency tail are gated
  // (bench/serve_probe.hpp documents the metrics).
  std::cout << "\n";
  const bench::ServeProbe serve_probe =
      full ? bench::run_serve_probe(8, 256, 16)
           : bench::run_serve_probe(8, 128, 16);
  bench::print_serve_table(serve_probe);

  write_json(out_path, mode, compare, sweeps, probe, ckpt_probe,
             multi_probe, parallel_probe, serve_probe);

  if (compare.speedup < (full ? 5.0 : 2.0)) {
    std::cerr << "BENCH FAILURE: pooled/legacy speedup "
              << format_double(compare.speedup, 2) << "x below the floor\n";
    return 1;
  }
  // Enabled-tracing budget: <5% at the full acceptance point. Smoke
  // points run for a second or so, where scheduler noise swamps the
  // recorder; gate loosely there so small CI runners stay green.
  const double overhead_ceiling = full ? 0.05 : 0.50;
  if (probe.overhead_fraction > overhead_ceiling) {
    std::cerr << "BENCH FAILURE: tracing overhead "
              << format_double(100.0 * probe.overhead_fraction, 1)
              << " % above the "
              << format_double(100.0 * overhead_ceiling, 0)
              << " % ceiling\n";
    return 1;
  }
  // Checkpoint budget: <5% of virtual TTC at every point. TTC is
  // deterministic (captures are off the virtual-time path), so unlike
  // the CPU-noise-limited tracing gate this one needs no smoke slack —
  // the expected delta is exactly zero.
  if (ckpt_probe.overhead_fraction > 0.05) {
    std::cerr << "BENCH FAILURE: checkpoint TTC overhead "
              << format_double(100.0 * ckpt_probe.overhead_fraction, 1)
              << " % above the 5 % ceiling\n";
    return 1;
  }
  // Multi-session budgets: the isolation ratio is deterministic (the
  // expected value is exactly 1.0, like the checkpoint TTC delta);
  // the normalised shared-capacity inflation only exceeds 1.0 through
  // scheduling granularity at the thinner per-session allocation.
  if (multi_probe.max_isolation_ratio > 1.05) {
    std::cerr << "BENCH FAILURE: cross-session isolation ratio "
              << format_double(multi_probe.max_isolation_ratio, 4)
              << " above the 1.05 ceiling\n";
    return 1;
  }
  if (multi_probe.max_normalized_inflation > 3.0) {
    std::cerr << "BENCH FAILURE: normalised shared-capacity inflation "
              << format_double(multi_probe.max_normalized_inflation, 2)
              << " above the 3.0 ceiling\n";
    return 1;
  }
  // Parallel-runtime floors: blocking kernels make the delivered
  // concurrency a deterministic wall-clock ratio, so the full gate
  // sits close to the ideal 16x; smoke gates the cheaper 4-thread
  // point so one-core CI runners finish in seconds. A custom
  // --threads list that omits the gated point skips its floor
  // (speedup_at returns 0 for absent points).
  if (full && parallel_probe.speedup_at(16) > 0.0 &&
      parallel_probe.speedup_at(16) < 10.0) {
    std::cerr << "BENCH FAILURE: parallel runtime speedup at 16 threads "
              << format_double(parallel_probe.speedup_at(16), 2)
              << "x below the 10x floor\n";
    return 1;
  }
  if (!full && parallel_probe.speedup_at(4) > 0.0 &&
      parallel_probe.speedup_at(4) < 2.0) {
    std::cerr << "BENCH FAILURE: parallel runtime speedup at 4 threads "
              << format_double(parallel_probe.speedup_at(4), 2)
              << "x below the 2x floor\n";
    return 1;
  }
  // Serve gates: admission must not shed from a queue sized for the
  // storm, every workload must complete, equal weights must dispatch
  // within 1.5x of each other in contended rounds, and the p99
  // submit-to-first-dispatch tail must stay under a generous ceiling
  // (it catches stalled drive loops, not scheduler jitter).
  const auto serve_failures =
      bench::serve_gate_failures(serve_probe, 1.5, 30.0);
  for (const std::string& failure : serve_failures) {
    std::cerr << "BENCH FAILURE: " << failure << "\n";
  }
  if (!serve_failures.empty()) return 1;
  return 0;
}
