// Standalone entk-serve load lane: the submission storm from
// bench/serve_probe.hpp with its gates, runnable on its own (CI's
// serve lane) without the full scale sweep.
//
//   serve_load [--tenants N] [--per-tenant M] [--units U]
//              [--fairness-ceiling R] [--p99-ceiling-ms MS]
//
// Defaults are the acceptance shape: 8 tenants x 128 submissions
// (1024 workloads) of 16-unit bags, fairness dispersion <= 1.5,
// p99 submit-to-first-dispatch <= 30 s (generous: the tail includes
// admission queue wait, and the gate is for order-of-magnitude
// stalls, not scheduler jitter).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve_probe.hpp"

int main(int argc, char** argv) {
  std::size_t tenants = 8;
  std::size_t per_tenant = 128;
  std::size_t units = 16;
  double fairness_ceiling = 1.5;
  double p99_ceiling_ms = 30000.0;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "serve_load: " << argv[i] << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tenants") == 0) {
      tenants = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--per-tenant") == 0) {
      per_tenant = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--units") == 0) {
      units = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--fairness-ceiling") == 0) {
      fairness_ceiling = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--p99-ceiling-ms") == 0) {
      p99_ceiling_ms = std::strtod(next(), nullptr);
    } else {
      std::cerr << "usage: serve_load [--tenants N] [--per-tenant M] "
                   "[--units U] [--fairness-ceiling R] "
                   "[--p99-ceiling-ms MS]\n";
      return 2;
    }
  }
  if (tenants == 0 || per_tenant == 0 || units == 0) {
    std::cerr << "serve_load: tenants, per-tenant and units must be "
                 "positive\n";
    return 2;
  }

  const entk::bench::ServeProbe probe =
      entk::bench::run_serve_probe(tenants, per_tenant, units);
  entk::bench::print_serve_table(probe);

  const auto failures = entk::bench::serve_gate_failures(
      probe, fairness_ceiling, p99_ceiling_ms / 1000.0);
  for (const std::string& failure : failures) {
    std::cerr << "BENCH FAILURE: " << failure << "\n";
  }
  return failures.empty() ? 0 : 1;
}
