// entk-serve load probe, shared by bench/serve_load (the standalone
// lane) and bench/scale_sweep (which embeds the result into
// BENCH_scale.json).
//
// The question: does the service hold its admission and fairness
// contracts under a submission storm? N tenant threads each fire M
// SUBMITs (through the same Service::submit the socket listener
// calls) at one in-process Service while a single drive thread runs
// the admit/advance/flush/reap loop, and we measure:
//
//  - submission-to-first-dispatch latency per workload (wall seconds
//    from SUBMIT to the fair-share pass flushing the workload's first
//    unit — queue wait for admission included). p50 is the headline;
//    p99 is gated with a generous ceiling, because under a storm the
//    tail measures the whole service staying live, and an
//    order-of-magnitude blowout means a lost wakeup or a stalled
//    drive loop, not noise.
//
//  - fairness dispersion: max/min per-tenant units dispatched in
//    CONTENDED fair-share rounds (rounds where every live tenant had
//    backlog — uncontended dispatch tracks demand, not policy, so it
//    is excluded). Equal weights + identical demand → the expected
//    value is 1.0; the gate allows 1.5 for round-granularity.
//
//  - rejected count: the queue is sized for the storm, so any
//    REJECTED here means admission shed load it had room for
//    (gate: exactly 0).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/workload_file.hpp"
#include "serve/service.hpp"

namespace entk::bench {

struct ServeTenantRow {
  std::string name;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t dispatched_units = 0;
  std::uint64_t contended_dispatched_units = 0;
  std::size_t peak_active_sessions = 0;
};

struct ServeProbe {
  std::size_t n_tenants = 0;
  std::size_t per_tenant = 0;   ///< Submissions per tenant thread.
  std::size_t workloads = 0;    ///< n_tenants * per_tenant.
  std::size_t units_per_workload = 0;
  std::size_t queue_capacity = 0;
  std::size_t max_active_sessions = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  double p50_submit_latency = 0.0;  ///< Wall s, SUBMIT -> first dispatch.
  double p99_submit_latency = 0.0;
  double max_submit_latency = 0.0;
  /// max/min per-tenant contended dispatched units; huge when a
  /// tenant starved entirely (min == 0).
  double fairness_dispersion = 0.0;
  std::uint64_t contended_total = 0;
  double wall_seconds = 0.0;  ///< Full storm, submit -> drained.
  std::vector<ServeTenantRow> tenants;
};

namespace serve_probe_detail {

[[noreturn]] inline void fail(const std::string& where,
                              const Status& status) {
  std::cerr << "BENCH FAILURE (serve/" << where
            << "): " << status.to_string() << "\n";
  std::exit(1);
}

/// The storm workload: a bag wider than the DRR quantum, so every
/// workload needs several fair-share rounds to fully dispatch.
inline core::WorkloadSpec storm_spec(const std::string& machine,
                                     std::size_t units) {
  std::ostringstream text;
  text << "backend = sim\n"
       << "machine = " << machine << "\n"
       << "cores   = 2\n"
       << "runtime = 36000\n"
       << "pattern = bag\n"
       << "tasks   = " << units << "\n"
       << "\n"
       << "[task]\n"
       << "kernel   = misc.sleep\n"
       << "duration = 2\n";
  auto spec = core::parse_workload(text.str());
  if (!spec.ok()) fail("spec", spec.status());
  return spec.take();
}

inline double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank)];
}

}  // namespace serve_probe_detail

/// Runs the storm: `n_tenants` submitter threads x `per_tenant`
/// workloads of `units_per_workload` sleeps each, one drive thread,
/// equal tenant weights.
inline ServeProbe run_serve_probe(std::size_t n_tenants,
                                  std::size_t per_tenant,
                                  std::size_t units_per_workload) {
  namespace detail = serve_probe_detail;
  ServeProbe probe;
  probe.n_tenants = n_tenants;
  probe.per_tenant = per_tenant;
  probe.workloads = n_tenants * per_tenant;
  probe.units_per_workload = units_per_workload;

  serve::ServiceConfig config;
  config.machine = "localhost";
  // Sized for the whole storm: admission must never shed here.
  config.queue_capacity = probe.workloads + 8;
  config.max_active_sessions = 2 * n_tenants;
  // Quantum below the bag width: full dispatch takes several rounds,
  // so the contended counters see real arbitration.
  config.drr_quantum = std::max<std::size_t>(1, units_per_workload / 4);
  probe.queue_capacity = config.queue_capacity;
  probe.max_active_sessions = config.max_active_sessions;

  auto service = serve::Service::create(config);
  if (!service.ok()) detail::fail("create", service.status());
  serve::Service& daemon = *service.value();

  std::vector<std::string> tenant_names;
  for (std::size_t i = 0; i < n_tenants; ++i) {
    tenant_names.push_back("tenant" + std::to_string(i));
    serve::TenantConfig tenant;
    tenant.weight = 1.0;
    tenant.max_sessions = 2;
    tenant.max_inflight_units = 4 * units_per_workload;
    if (Status status =
            daemon.configure_tenant(tenant_names.back(), tenant);
        !status.is_ok()) {
      detail::fail("configure_tenant", status);
    }
  }

  const core::WorkloadSpec spec =
      detail::storm_spec(config.machine, units_per_workload);

  std::thread driver([&daemon] { daemon.run(); });

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::vector<std::uint64_t>> ids(n_tenants);
  {
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < n_tenants; ++t) {
      submitters.emplace_back([&, t] {
        ids[t].reserve(per_tenant);
        for (std::size_t i = 0; i < per_tenant; ++i) {
          auto id = daemon.submit(tenant_names[t], spec,
                                  "storm" + std::to_string(i));
          if (id.ok()) ids[t].push_back(id.value());
        }
      });
    }
    for (auto& thread : submitters) thread.join();
  }
  daemon.drain();
  probe.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  std::vector<double> latencies;
  latencies.reserve(probe.workloads);
  for (const auto& tenant_ids : ids) {
    for (const std::uint64_t id : tenant_ids) {
      auto status = daemon.status(id);
      if (!status.ok()) detail::fail("status", status.status());
      if (status.value().submit_latency_seconds >= 0.0) {
        latencies.push_back(status.value().submit_latency_seconds);
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  probe.p50_submit_latency = detail::percentile(latencies, 0.50);
  probe.p99_submit_latency = detail::percentile(latencies, 0.99);
  probe.max_submit_latency =
      latencies.empty() ? 0.0 : latencies.back();

  const serve::ServiceStats stats = daemon.stats();
  probe.accepted = stats.accepted;
  probe.rejected = stats.rejected;
  probe.completed = stats.completed;
  probe.failed = stats.failed;
  probe.cancelled = stats.cancelled;
  std::uint64_t min_contended = 0;
  std::uint64_t max_contended = 0;
  bool first = true;
  for (const serve::TenantStats& tenant : stats.tenants) {
    ServeTenantRow row;
    row.name = tenant.name;
    row.accepted = tenant.accepted;
    row.completed = tenant.completed;
    row.dispatched_units = tenant.dispatched_units;
    row.contended_dispatched_units = tenant.contended_dispatched_units;
    row.peak_active_sessions = tenant.peak_active_sessions;
    probe.tenants.push_back(row);
    probe.contended_total += tenant.contended_dispatched_units;
    if (first) {
      min_contended = max_contended = tenant.contended_dispatched_units;
      first = false;
    } else {
      min_contended =
          std::min(min_contended, tenant.contended_dispatched_units);
      max_contended =
          std::max(max_contended, tenant.contended_dispatched_units);
    }
  }
  probe.fairness_dispersion =
      min_contended > 0 ? static_cast<double>(max_contended) /
                              static_cast<double>(min_contended)
                        : (max_contended > 0 ? 1.0e9 : 0.0);

  daemon.shutdown();
  driver.join();
  return probe;
}

/// Gate failures, empty when the probe holds its contracts; shared by
/// serve_load and scale_sweep so the two lanes cannot drift.
inline std::vector<std::string> serve_gate_failures(
    const ServeProbe& probe, double fairness_ceiling,
    double p99_ceiling_seconds) {
  std::vector<std::string> failures;
  if (probe.rejected != 0) {
    failures.push_back("admission shed " +
                       std::to_string(probe.rejected) +
                       " workloads from a queue sized for the storm");
  }
  if (probe.completed != probe.workloads) {
    failures.push_back(
        "only " + std::to_string(probe.completed) + "/" +
        std::to_string(probe.workloads) + " workloads completed");
  }
  if (probe.contended_total == 0) {
    failures.push_back(
        "no contended fair-share rounds: the storm never exercised "
        "arbitration (sizing drift?)");
  }
  if (probe.fairness_dispersion > fairness_ceiling) {
    failures.push_back(
        "fairness dispersion " +
        format_double(probe.fairness_dispersion, 3) + " above the " +
        format_double(fairness_ceiling, 2) + " ceiling");
  }
  if (probe.p99_submit_latency > p99_ceiling_seconds) {
    failures.push_back(
        "p99 submit-to-first-dispatch latency " +
        format_double(probe.p99_submit_latency, 3) + " s above the " +
        format_double(p99_ceiling_seconds, 1) + " s ceiling");
  }
  return failures;
}

/// The probe as a JSON object (no trailing newline); `indent` is the
/// column the opening brace sits at.
inline std::string serve_json(const ServeProbe& probe,
                              const std::string& indent) {
  const auto number = [](double value) {
    std::ostringstream out;
    out.precision(6);
    out << std::fixed << value;
    return out.str();
  };
  std::ostringstream out;
  out << "{\n";
  out << indent << "  \"tenants\": " << probe.n_tenants << ",\n";
  out << indent << "  \"per_tenant\": " << probe.per_tenant << ",\n";
  out << indent << "  \"workloads\": " << probe.workloads << ",\n";
  out << indent
      << "  \"units_per_workload\": " << probe.units_per_workload
      << ",\n";
  out << indent << "  \"queue_capacity\": " << probe.queue_capacity
      << ",\n";
  out << indent
      << "  \"max_active_sessions\": " << probe.max_active_sessions
      << ",\n";
  out << indent << "  \"accepted\": " << probe.accepted << ",\n";
  out << indent << "  \"rejected\": " << probe.rejected << ",\n";
  out << indent << "  \"completed\": " << probe.completed << ",\n";
  out << indent << "  \"failed\": " << probe.failed << ",\n";
  out << indent << "  \"cancelled\": " << probe.cancelled << ",\n";
  out << indent << "  \"p50_submit_latency_seconds\": "
      << number(probe.p50_submit_latency) << ",\n";
  out << indent << "  \"p99_submit_latency_seconds\": "
      << number(probe.p99_submit_latency) << ",\n";
  out << indent << "  \"max_submit_latency_seconds\": "
      << number(probe.max_submit_latency) << ",\n";
  out << indent << "  \"fairness_dispersion\": "
      << number(probe.fairness_dispersion) << ",\n";
  out << indent << "  \"contended_total\": " << probe.contended_total
      << ",\n";
  out << indent << "  \"wall_seconds\": " << number(probe.wall_seconds)
      << ",\n";
  out << indent << "  \"per_tenant_stats\": [\n";
  for (std::size_t i = 0; i < probe.tenants.size(); ++i) {
    const ServeTenantRow& row = probe.tenants[i];
    out << indent << "    {\"name\": \"" << row.name
        << "\", \"accepted\": " << row.accepted
        << ", \"completed\": " << row.completed
        << ", \"dispatched_units\": " << row.dispatched_units
        << ", \"contended_dispatched_units\": "
        << row.contended_dispatched_units
        << ", \"peak_active_sessions\": " << row.peak_active_sessions
        << "}" << (i + 1 < probe.tenants.size() ? "," : "") << "\n";
  }
  out << indent << "  ]\n";
  out << indent << "}";
  return out.str();
}

inline void print_serve_table(const ServeProbe& probe) {
  std::cout << "serve storm: " << probe.workloads << " workloads ("
            << probe.n_tenants << " tenants x " << probe.per_tenant
            << "), " << probe.units_per_workload
            << " units each, queue " << probe.queue_capacity
            << ", active cap " << probe.max_active_sessions << "\n"
            << "  accepted " << probe.accepted << ", rejected "
            << probe.rejected << ", completed " << probe.completed
            << "; submit->dispatch p50 "
            << format_double(1000.0 * probe.p50_submit_latency, 1)
            << " ms, p99 "
            << format_double(1000.0 * probe.p99_submit_latency, 1)
            << " ms, max "
            << format_double(1000.0 * probe.max_submit_latency, 1)
            << " ms; fairness dispersion "
            << format_double(probe.fairness_dispersion, 3) << "; wall "
            << format_double(probe.wall_seconds, 2) << " s\n";
  Table table({"tenant", "accepted", "completed", "dispatched",
               "contended", "peak sessions"});
  for (const ServeTenantRow& row : probe.tenants) {
    table.add_row({row.name, std::to_string(row.accepted),
                   std::to_string(row.completed),
                   std::to_string(row.dispatched_units),
                   std::to_string(row.contended_dispatched_units),
                   std::to_string(row.peak_active_sessions)});
  }
  std::cout << table.to_string();
}

}  // namespace entk::bench
