# Sanitizer build presets.
#
# Usage:
#   cmake -DENTK_SANITIZE="address;undefined" ...   (ASan + UBSan)
#   cmake -DENTK_SANITIZE=thread ...                (TSan)
# or, preferably, the CMakePresets.json presets `asan-ubsan` / `tsan`.
#
# The flags apply globally (add_compile_options) so every target —
# library, tests, tools, benches — runs instrumented; mixing
# instrumented and uninstrumented TUs yields false negatives.

set(ENTK_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers: address;undefined;thread;leak")

if(NOT ENTK_SANITIZE)
  return()
endif()

set(_entk_san_known address undefined thread leak)
foreach(_san IN LISTS ENTK_SANITIZE)
  if(NOT _san IN_LIST _entk_san_known)
    message(FATAL_ERROR "ENTK_SANITIZE: unknown sanitizer '${_san}' "
                        "(known: ${_entk_san_known})")
  endif()
endforeach()

if("thread" IN_LIST ENTK_SANITIZE AND
   ("address" IN_LIST ENTK_SANITIZE OR "leak" IN_LIST ENTK_SANITIZE))
  message(FATAL_ERROR
          "ENTK_SANITIZE: 'thread' cannot be combined with "
          "'address'/'leak' (incompatible runtimes)")
endif()

string(REPLACE ";" "," _entk_san_flags "${ENTK_SANITIZE}")
message(STATUS "entk: building with -fsanitize=${_entk_san_flags}")

add_compile_options(
  -fsanitize=${_entk_san_flags}
  -fno-omit-frame-pointer
  -fno-sanitize-recover=all
  -g)
add_link_options(-fsanitize=${_entk_san_flags})
