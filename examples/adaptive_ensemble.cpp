// Adaptive ensembles — the paper's Section V "future work", working:
//  * the ensemble size adapts between iterations (grows while the
//    previous iteration keeps "discovering" new states),
//  * failure-injected tasks are killed and replaced automatically
//    (max_retries), and
//  * everything runs at cluster scale on the *simulated* XSEDE Comet
//    backend, so 100s of tasks finish instantly in virtual time.
//
// Usage: adaptive_ensemble [base_tasks] [iterations]
#include <cstdlib>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"

int main(int argc, char** argv) {
  using namespace entk;

  const entk::Count base_tasks = argc > 1 ? std::atoll(argv[1]) : 64;
  const entk::Count iterations = argc > 2 ? std::atoll(argv[2]) : 4;

  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::comet_profile());
  core::ResourceOptions options;
  options.cores = 96;  // 4 Comet nodes
  core::ResourceHandle handle(backend, registry, options);
  if (Status status = handle.allocate(); !status.is_ok()) {
    std::cerr << "allocate failed: " << status.to_string() << "\n";
    return 1;
  }

  // Simulation count grows 1.5x per iteration: the adaptive-sampling
  // behaviour the paper wants to "vary the number of tasks between
  // stages".
  std::vector<entk::Count> sims_per_iteration;
  core::SimulationAnalysisLoop pattern(iterations, base_tasks, 1);
  pattern.set_adaptive_counts([&](entk::Count iteration) {
    entk::Count n = base_tasks;
    for (entk::Count i = 1; i < iteration; ++i) n = n * 3 / 2;
    sims_per_iteration.push_back(n);
    return std::make_pair(n, entk::Count{1});
  });
  pattern.set_simulation([](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.simulate";
    spec.args.set("steps", 3000);       // ~6 ps
    spec.args.set("n_particles", 2881); // the paper's system
    // Kill-replace: every 16th task fails once and is resubmitted.
    spec.inject_failure = context.instance % 16 == 7;
    spec.retry.max_retries = 2;
    return spec;
  });
  pattern.set_analysis([&](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.coco";
    spec.args.set("n_sims", sims_per_iteration.empty()
                                ? base_tasks
                                : sims_per_iteration.back());
    spec.args.set("frames_per_sim", 10);
    (void)context;
    return spec;
  });

  auto report = handle.run(pattern);
  if (!report.ok() || !report.value().outcome.is_ok()) {
    std::cerr << "adaptive run failed: "
              << (report.ok() ? report.value().outcome.to_string()
                              : report.status().to_string())
              << "\n";
    return 1;
  }

  std::size_t retried = 0;
  for (const auto& unit : report.value().units) {
    if (unit->retries() > 0) ++retried;
  }

  std::cout << "adaptive ensemble on simulated " << backend.machine().name
            << " (" << options.cores << "-core pilot)\n\n";
  Table table({"iteration", "simulations"});
  for (std::size_t i = 0; i < sims_per_iteration.size(); ++i) {
    table.add_row({std::to_string(i + 1),
                   std::to_string(sims_per_iteration[i])});
  }
  std::cout << table.to_string();
  std::cout << "\ntasks total:        " << report.value().units.size()
            << "\ntasks kill-replaced: " << retried
            << "\nvirtual TTC:        "
            << format_seconds(report.value().overheads.ttc)
            << "\npattern overhead:   "
            << format_seconds(report.value().overheads.pattern_overhead)
            << "\n";
  (void)handle.deallocate();
  return 0;
}
