// Geoscience ensemble: perturbed-parameter pollutant-dispersion
// forecasts (the paper's geoscience motivation) as an Ensemble of
// Pipelines, demonstrating a *custom* kernel plugin registered beside
// the built-ins.
//
// Stage 1 (geo.advect) integrates a 1-D advection-diffusion equation
// with per-member wind speed and diffusivity; stage 2 (geo.assess)
// reads the final concentration profile and reports the plume's peak
// and spread. Members are independent — exactly the EoP pattern.
//
// Usage: geoscience_ensemble [n_members]
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"

namespace {

using namespace entk;

/// geo.advect — explicit finite-difference advection-diffusion:
///   c_t + u c_x = D c_xx  on a periodic domain.
/// Arguments: u (wind), diffusivity, t_end (physical horizon), cells,
/// out.
class AdvectKernel final : public kernels::KernelBase {
 public:
  AdvectKernel()
      : KernelBase("geo.advect", "1-D advection-diffusion forecast") {
    add_machine_entry("*", {"geo-advect", {}});
  }

  Status validate(const Config& args) const override {
    if (args.get_double_or("diffusivity", 0.05) < 0.0) {
      return make_error(Errc::kInvalidArgument,
                        "geo.advect: diffusivity must be >= 0");
    }
    if (args.get_int_or("cells", 200) < 8) {
      return make_error(Errc::kInvalidArgument,
                        "geo.advect: need at least 8 cells");
    }
    return Status::ok();
  }

  Result<kernels::BoundKernel> bind(
      const Config& args, const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();
    const double u = args.get_double_or("u", 1.0);
    const double diffusivity = args.get_double_or("diffusivity", 0.05);
    const double t_end = args.get_double_or("t_end", 0.3);
    const auto cells = args.get_int_or("cells", 200);
    const std::string out = args.get_string_or("out", "plume.txt");

    kernels::BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.estimated_duration =
        2e-3 * t_end * static_cast<double>(cells) /
        machine.performance_factor;
    bound.payload = [=](const pilot::UnitRuntimeContext& context)
        -> Status {
      const auto n = static_cast<std::size_t>(cells);
      const double dx = 1.0 / static_cast<double>(n);
      // CFL-stable explicit step.
      const double dt =
          0.4 * std::min(dx / std::max(std::fabs(u), 1e-9),
                         dx * dx / std::max(diffusivity, 1e-9) / 2.0);
      const auto steps = static_cast<std::int64_t>(std::ceil(t_end / dt));
      std::vector<double> c(n, 0.0), next(n, 0.0);
      // Initial condition: a Gaussian puff released at x = 0.2.
      for (std::size_t i = 0; i < n; ++i) {
        const double x = (static_cast<double>(i) + 0.5) * dx;
        c[i] = std::exp(-std::pow((x - 0.2) / 0.05, 2));
      }
      for (std::int64_t step = 0; step < steps; ++step) {
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t left = (i + n - 1) % n;
          const std::size_t right = (i + 1) % n;
          const double advection =
              -u * (c[right] - c[left]) / (2.0 * dx);
          const double diffusion = diffusivity *
                                   (c[right] - 2.0 * c[i] + c[left]) /
                                   (dx * dx);
          next[i] = c[i] + dt * (advection + diffusion);
        }
        c.swap(next);
      }
      std::ofstream file(context.sandbox / out);
      if (!file) return make_error(Errc::kIoError, "cannot open " + out);
      file.precision(10);
      for (std::size_t i = 0; i < n; ++i) file << c[i] << '\n';
      return Status::ok();
    };
    pilot::StagingDirective stage_out;
    stage_out.source = out;
    stage_out.size_mb = 0.01;
    bound.output_staging.push_back(std::move(stage_out));
    return bound;
  }
};

/// geo.assess — reads a plume profile, writes peak and spread.
class AssessKernel final : public kernels::KernelBase {
 public:
  AssessKernel() : KernelBase("geo.assess", "plume risk summary") {
    add_machine_entry("*", {"geo-assess", {}});
  }

  Status validate(const Config& args) const override {
    if (!args.contains("input")) {
      return make_error(Errc::kInvalidArgument,
                        "geo.assess: 'input' is required");
    }
    return Status::ok();
  }

  Result<kernels::BoundKernel> bind(
      const Config& args, const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();
    const std::string input = args.get_string("input").value();
    const std::string out = args.get_string_or("out", input + ".summary");

    kernels::BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.estimated_duration = 0.1 / machine.performance_factor;
    bound.payload = [=](const pilot::UnitRuntimeContext& context)
        -> Status {
      std::ifstream file(context.sandbox / input);
      if (!file) return make_error(Errc::kIoError, "missing " + input);
      std::vector<double> c;
      double value = 0.0;
      while (file >> value) c.push_back(value);
      if (c.empty()) return make_error(Errc::kIoError, "empty profile");
      double peak = 0.0, mass = 0.0, centre = 0.0;
      for (std::size_t i = 0; i < c.size(); ++i) {
        peak = std::max(peak, c[i]);
        mass += c[i];
        centre += c[i] * static_cast<double>(i);
      }
      centre /= std::max(mass, 1e-12) * static_cast<double>(c.size());
      std::ofstream summary(context.sandbox / out);
      summary.precision(8);
      summary << peak << ' ' << centre << ' ' << mass / c.size() << '\n';
      return Status::ok();
    };
    pilot::StagingDirective stage_in;
    stage_in.source = input;
    stage_in.size_mb = 0.01;
    bound.input_staging.push_back(std::move(stage_in));
    pilot::StagingDirective stage_out;
    stage_out.source = out;
    stage_out.size_mb = 0.001;
    bound.output_staging.push_back(std::move(stage_out));
    return bound;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace entk;
  const entk::Count n_members = argc > 1 ? std::atoll(argv[1]) : 6;

  // Register the domain kernels next to the built-ins — the paper's
  // "minimise the last-mile effort" in action.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  if (!registry.register_kernel(std::make_shared<AdvectKernel>()).is_ok() ||
      !registry.register_kernel(std::make_shared<AssessKernel>()).is_ok()) {
    std::cerr << "kernel registration failed\n";
    return 1;
  }

  pilot::LocalBackend backend(4);
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  if (Status status = handle.allocate(); !status.is_ok()) {
    std::cerr << "allocate failed: " << status.to_string() << "\n";
    return 1;
  }

  core::EnsembleOfPipelines pattern(n_members, 2);
  pattern.set_stage(1, [&](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "geo.advect";
    // Perturbed physics per ensemble member.
    spec.args.set("u", 0.5 + 0.25 * static_cast<double>(context.instance));
    spec.args.set("diffusivity",
                  0.02 + 0.01 * static_cast<double>(context.instance));
    spec.args.set("t_end", 0.3);
    spec.args.set("out",
                  "plume_" + std::to_string(context.instance) + ".txt");
    return spec;
  });
  pattern.set_stage(2, [](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "geo.assess";
    spec.args.set("input",
                  "plume_" + std::to_string(context.instance) + ".txt");
    return spec;
  });

  auto report = handle.run(pattern);
  if (!report.ok() || !report.value().outcome.is_ok()) {
    std::cerr << "forecast ensemble failed: "
              << (report.ok() ? report.value().outcome.to_string()
                              : report.status().to_string())
              << "\n";
    return 1;
  }

  std::cout << "pollutant-dispersion ensemble: " << n_members
            << " perturbed members\n\n";
  entk::Table table({"member", "peak concentration", "plume centre"});
  for (entk::Count member = 0; member < n_members; ++member) {
    const std::string summary_name =
        "plume_" + std::to_string(member) + ".txt.summary";
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             backend.session_dir())) {
      if (entry.path().filename() == summary_name &&
          entry.path().parent_path().filename() == "shared") {
        std::ifstream in(entry.path());
        double peak = 0.0, centre = 0.0, mean = 0.0;
        if (in >> peak >> centre >> mean) {
          table.add_row({std::to_string(member),
                         entk::format_double(peak, 4),
                         entk::format_double(centre, 4)});
        }
        break;
      }
    }
  }
  std::cout << table.to_string();
  std::cout << "\nTTC " << entk::format_seconds(report.value().overheads.ttc)
            << " for " << report.value().units.size() << " tasks\n";
  (void)handle.deallocate();
  return 0;
}
