// Quickstart: the paper's character-count validation application.
//
// An ensemble of pipelines where stage 1 (misc.mkfile) creates a file
// in every task and stage 2 (misc.ccount) counts its characters. Runs
// for real on the local backend and prints the TTC decomposition the
// paper reports in Figure 3.
//
// Usage: quickstart [n_pipelines] [cores]
#include <cstdlib>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"

int main(int argc, char** argv) {
  using namespace entk;

  const entk::Count n_pipelines = argc > 1 ? std::atoll(argv[1]) : 8;
  const entk::Count cores = argc > 2 ? std::atoll(argv[2]) : 4;

  // Step 3 of the paper's workflow: create a resource handle and
  // request resources (a pilot) on the execution backend.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(cores);
  core::ResourceOptions options;
  options.cores = cores;
  core::ResourceHandle handle(backend, registry, options);
  if (Status status = handle.allocate(); !status.is_ok()) {
    std::cerr << "allocate failed: " << status.to_string() << "\n";
    return 1;
  }

  // Steps 1-2: pick a pattern and define the kernels of its stages.
  core::EnsembleOfPipelines pattern(n_pipelines, 2);
  pattern.set_stage(1, [](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "misc.mkfile";
    spec.args.set("size_kb", 16.0);
    spec.args.set("filename",
                  "file_" + std::to_string(context.instance) + ".txt");
    return spec;
  });
  pattern.set_stage(2, [](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "misc.ccount";
    spec.args.set("input",
                  "file_" + std::to_string(context.instance) + ".txt");
    return spec;
  });

  // Step 4: run. The execution plugin binds pattern x kernels and
  // forwards units to the pilot runtime.
  auto report = handle.run(pattern);
  if (!report.ok()) {
    std::cerr << "run failed: " << report.status().to_string() << "\n";
    return 1;
  }
  if (!report.value().outcome.is_ok()) {
    std::cerr << "pattern failed: " << report.value().outcome.to_string()
              << "\n";
    return 1;
  }

  // Step 5: control returns to the user. Inspect the decomposition.
  const core::OverheadProfile& overheads = report.value().overheads;
  std::cout << "character-count application: " << n_pipelines
            << " pipelines x 2 stages on " << cores << " local cores\n\n";
  Table table({"metric", "value"});
  table.add_row({"tasks executed", std::to_string(overheads.n_units)});
  table.add_row({"TTC", format_seconds(overheads.ttc)});
  table.add_row({"core overhead", format_seconds(overheads.core_overhead)});
  table.add_row(
      {"pattern overhead", format_seconds(overheads.pattern_overhead)});
  table.add_row(
      {"execution time", format_seconds(overheads.execution_time)});
  table.add_row(
      {"runtime overhead", format_seconds(overheads.runtime_overhead)});
  table.add_row(
      {"pilot startup", format_seconds(overheads.pilot_startup)});
  std::cout << table.to_string();

  if (Status status = handle.deallocate(); !status.is_ok()) {
    std::cerr << "deallocate failed: " << status.to_string() << "\n";
    return 1;
  }
  std::cout << "\nall pipelines completed.\n";
  return 0;
}
