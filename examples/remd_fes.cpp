// REMD with post-analysis: free-energy surface and conformational
// states of the (coarse) solvated dipeptide.
//
// Runs temperature replica exchange through the EE pattern on the
// local backend (real MD), then post-processes the replica
// trajectories with the analysis toolbox: the two backbone torsions
// phi = (0,1,2,3) and psi = (1,2,3,4) become a 2-D free-energy
// surface, and k-means over (phi, psi) identifies conformational
// states — the full science loop a production REMD study performs.
//
// Usage: remd_fes [n_replicas] [n_cycles]
#include <cstdlib>
#include <iostream>

#include "analysis/clustering.hpp"
#include "analysis/fes.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"
#include "md/observables.hpp"
#include "md/remd.hpp"
#include "md/trajectory.hpp"

namespace {

namespace fs = std::filesystem;

/// Gathers (phi, psi) samples from every cycle's trajectory of every
/// replica found under the session directory.
std::vector<std::vector<double>> collect_torsions(
    const fs::path& session_dir) {
  std::vector<std::vector<double>> samples;
  for (const auto& entry : fs::recursive_directory_iterator(session_dir)) {
    const std::string name = entry.path().filename().string();
    if (!entk::starts_with(name, "traj_") ||
        !entk::ends_with(name, ".dat") ||
        entry.path().parent_path().filename() != "shared") {
      continue;
    }
    auto trajectory = entk::md::Trajectory::load(entry.path().string());
    if (!trajectory.ok()) continue;
    for (const auto& frame : trajectory.value().frames()) {
      if (frame.positions.size() < 5) continue;
      const double phi = entk::md::dihedral_angle(
          frame.positions[0], frame.positions[1], frame.positions[2],
          frame.positions[3]);
      const double psi = entk::md::dihedral_angle(
          frame.positions[1], frame.positions[2], frame.positions[3],
          frame.positions[4]);
      samples.push_back({phi, psi});
    }
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk;

  const Count n_replicas = argc > 1 ? std::atoll(argv[1]) : 6;
  const Count n_cycles = argc > 2 ? std::atoll(argv[2]) : 4;
  const double t_min = 0.6;
  const double t_max = 1.8;

  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(4);
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  if (Status status = handle.allocate(); !status.is_ok()) {
    std::cerr << "allocate failed: " << status.to_string() << "\n";
    return 1;
  }

  const auto ladder = md::geometric_ladder(
      static_cast<std::size_t>(n_replicas), t_min, t_max);

  core::EnsembleExchange pattern(
      n_replicas, n_cycles,
      core::EnsembleExchange::ExchangeMode::kGlobalSweep);
  pattern.set_simulation([&](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.simulate";
    spec.args.set("system", "dipeptide");
    spec.args.set("n_particles", 100);  // 22-bead solute + 26 waters
    spec.args.set("steps", 120);
    spec.args.set("sample_every", 12);
    spec.args.set("temperature",
                  ladder[static_cast<std::size_t>(context.instance)]);
    spec.args.set("seed",
                  500 + 40 * context.iteration + context.instance);
    spec.args.set("out", "traj_" + std::to_string(context.instance) +
                             "_c" + std::to_string(context.iteration) +
                             ".dat");
    spec.args.set("energy_out",
                  "replica_" + std::to_string(context.instance) +
                      ".energy");
    if (context.iteration > 1) {
      spec.args.set("start_from",
                    "traj_" + std::to_string(context.instance) + "_c" +
                        std::to_string(context.iteration - 1) + ".dat");
    }
    return spec;
  });
  pattern.set_exchange([&](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.exchange";
    spec.args.set("n_replicas", n_replicas);
    spec.args.set("t_min", t_min);
    spec.args.set("t_max", t_max);
    spec.args.set("sweep", context.iteration - 1);
    spec.args.set("out",
                  "exchange_c" + std::to_string(context.iteration) +
                      ".txt");
    return spec;
  });

  auto report = handle.run(pattern);
  if (!report.ok() || !report.value().outcome.is_ok()) {
    std::cerr << "REMD failed: "
              << (report.ok() ? report.value().outcome.to_string()
                              : report.status().to_string())
              << "\n";
    return 1;
  }

  // --- post-analysis: torsion FES + conformational states ---
  const auto samples = collect_torsions(backend.session_dir());
  if (samples.size() < 8) {
    std::cerr << "not enough torsion samples collected\n";
    return 1;
  }
  analysis::Histogram2D fes(-M_PI, M_PI, 6, -M_PI, M_PI, 6);
  for (const auto& sample : samples) fes.add(sample[0], sample[1]);
  const auto surface = fes.free_energy(1.0);

  std::cout << "REMD: " << n_replicas << " replicas x " << n_cycles
            << " cycles, " << samples.size()
            << " (phi, psi) samples\n\nfree-energy surface (kT units; "
               "rows phi, cols psi; '  inf' = unsampled):\n";
  for (std::size_t bx = 0; bx < fes.x_bins(); ++bx) {
    for (std::size_t by = 0; by < fes.y_bins(); ++by) {
      const double g = surface[bx * fes.y_bins() + by];
      if (std::isfinite(g)) {
        std::printf("%5.1f", g);
      } else {
        std::printf("  inf");
      }
    }
    std::printf("\n");
  }

  analysis::KMeansOptions kmeans_options;
  kmeans_options.k = std::min<std::size_t>(3, samples.size());
  auto clusters = analysis::kmeans(samples, kmeans_options);
  if (clusters.ok()) {
    std::cout << "\nconformational states (k-means over phi/psi):\n";
    Table table({"state", "phi", "psi", "population"});
    std::vector<std::size_t> population(kmeans_options.k, 0);
    for (const auto assigned : clusters.value().assignment) {
      ++population[assigned];
    }
    for (std::size_t c = 0; c < kmeans_options.k; ++c) {
      table.add_row({std::to_string(c),
                     format_double(clusters.value().centroids[c][0], 2),
                     format_double(clusters.value().centroids[c][1], 2),
                     std::to_string(population[c])});
    }
    std::cout << table.to_string();
  }
  (void)handle.deallocate();
  return 0;
}
