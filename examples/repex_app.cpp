// The RepEx application framework in action: temperature REMD and
// Hamiltonian (lambda) REMD with three lines of configuration each.
//
// Where examples/replica_exchange.cpp wires the EE pattern by hand,
// this example uses apps/repex — persistent replica->rung assignments,
// synchronous or asynchronous exchange, acceptance and round-trip
// bookkeeping come for free.
//
// Usage: repex_app [n_replicas] [n_cycles]
#include <cstdlib>
#include <iostream>

#include "apps/repex/repex.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"

namespace {

using namespace entk;

void print_report(const char* title, const apps::RepexReport& report) {
  std::cout << title << "\n";
  Table table({"metric", "value"});
  table.add_row({"cycles", std::to_string(report.cycles_completed)});
  table.add_row({"tasks", std::to_string(report.tasks_executed)});
  table.add_row({"swaps attempted",
                 std::to_string(report.swaps_attempted)});
  table.add_row({"swaps accepted", std::to_string(report.swaps_accepted)});
  table.add_row({"acceptance",
                 format_double(report.acceptance_ratio(), 3)});
  table.add_row({"round trips", std::to_string(report.round_trips)});
  table.add_row({"total TTC", format_seconds(report.total_ttc)});
  std::cout << table.to_string();
  std::cout << "final rung per replica:";
  for (const std::size_t rung : report.rung_history.back()) {
    std::cout << ' ' << rung;
  }
  std::cout << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Count n_replicas = argc > 1 ? std::atoll(argv[1]) : 6;
  const Count n_cycles = argc > 2 ? std::atoll(argv[2]) : 4;

  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(4);
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  if (Status status = handle.allocate(); !status.is_ok()) {
    std::cerr << "allocate failed: " << status.to_string() << "\n";
    return 1;
  }

  // --- temperature REMD, asynchronous exchange ---
  apps::RepexConfig temperature;
  temperature.n_replicas = n_replicas;
  temperature.n_cycles = n_cycles;
  temperature.asynchronous = true;
  temperature.system = "fluid";
  temperature.n_particles = 48;
  temperature.steps_per_cycle = 60;
  apps::RepexApplication temperature_study(temperature);
  auto temperature_report = temperature_study.run(handle);
  if (!temperature_report.ok()) {
    std::cerr << "temperature REMD failed: "
              << temperature_report.status().to_string() << "\n";
    return 1;
  }
  print_report("temperature REMD (asynchronous pairwise exchange):",
               temperature_report.value());

  // --- Hamiltonian (lambda) REMD: cross-energy exchange ---
  apps::RepexConfig hamiltonian = temperature;
  hamiltonian.dimension = apps::RepexConfig::Dimension::kHamiltonian;
  hamiltonian.eps_min = 0.5;
  hamiltonian.eps_max = 1.0;
  hamiltonian.seed = 90210;
  apps::RepexApplication hamiltonian_study(hamiltonian);
  auto hamiltonian_report = hamiltonian_study.run(handle);
  if (!hamiltonian_report.ok()) {
    std::cerr << "Hamiltonian REMD failed: "
              << hamiltonian_report.status().to_string() << "\n";
    return 1;
  }
  print_report(
      "Hamiltonian (lambda) REMD — replicas walk a potential-scale "
      "ladder at one temperature:",
      hamiltonian_report.value());

  (void)handle.deallocate();
  return 0;
}
