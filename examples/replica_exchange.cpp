// Replica-exchange molecular dynamics with the Ensemble Exchange
// pattern (the paper's REMD use case), executed for real on the local
// backend with the toy MD engine.
//
// Each cycle every replica runs Langevin dynamics at its ladder
// temperature (md.simulate), writes its final potential energy to the
// pilot's shared space, and a temperature-exchange stage (md.exchange)
// performs one Metropolis sweep over neighbour pairs. The application
// tracks the rung assignment between cycles — the coupling the EE
// pattern exists for.
//
// Usage: replica_exchange [n_replicas] [n_cycles]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"
#include "md/remd.hpp"

int main(int argc, char** argv) {
  using namespace entk;

  const entk::Count n_replicas = argc > 1 ? std::atoll(argv[1]) : 8;
  const entk::Count n_cycles = argc > 2 ? std::atoll(argv[2]) : 4;
  const double t_min = 0.8;
  const double t_max = 2.0;

  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(/*cores=*/4);
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  if (Status status = handle.allocate(); !status.is_ok()) {
    std::cerr << "allocate failed: " << status.to_string() << "\n";
    return 1;
  }

  // Application-level REMD state: which ladder rung each replica
  // currently holds. The exchange kernel writes the next assignment to
  // the shared space; we read it back after each cycle.
  const auto ladder =
      md::geometric_ladder(static_cast<std::size_t>(n_replicas), t_min,
                           t_max);
  std::vector<std::size_t> rung_of(n_replicas);
  for (entk::Count r = 0; r < n_replicas; ++r) rung_of[r] = r;

  core::EnsembleExchange pattern(
      n_replicas, n_cycles, core::EnsembleExchange::ExchangeMode::kGlobalSweep);
  pattern.set_simulation([&](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.simulate";
    spec.args.set("steps", 60);
    spec.args.set("n_particles", 48);
    spec.args.set("temperature", ladder[rung_of[context.instance]]);
    spec.args.set("seed", 7000 + 100 * context.iteration + context.instance);
    spec.args.set("sample_every", 30);
    spec.args.set("out", "traj_" + std::to_string(context.instance) +
                             "_c" + std::to_string(context.iteration) +
                             ".dat");
    spec.args.set("energy_out",
                  "replica_" + std::to_string(context.instance) +
                      ".energy");
    // Continue each replica from its previous cycle's trajectory.
    if (context.iteration > 1) {
      spec.args.set("start_from",
                    "traj_" + std::to_string(context.instance) + "_c" +
                        std::to_string(context.iteration - 1) + ".dat");
    }
    return spec;
  });
  pattern.set_exchange([&](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.exchange";
    spec.args.set("n_replicas", n_replicas);
    spec.args.set("t_min", t_min);
    spec.args.set("t_max", t_max);
    spec.args.set("sweep", context.iteration - 1);
    spec.args.set("seed", 40 + context.iteration);
    spec.args.set("out",
                  "exchange_c" + std::to_string(context.iteration) + ".txt");
    return spec;
  });

  auto report = handle.run(pattern);
  if (!report.ok() || !report.value().outcome.is_ok()) {
    std::cerr << "REMD run failed: "
              << (report.ok() ? report.value().outcome.to_string()
                              : report.status().to_string())
              << "\n";
    return 1;
  }

  // Read the final exchange result from the shared space.
  const auto shared = backend.session_dir();
  std::size_t attempted = 0, accepted = 0;
  for (entk::Count cycle = 1; cycle <= n_cycles; ++cycle) {
    // Pilot session dirs are per-pilot; find the exchange file.
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(shared)) {
      if (entry.path().filename() ==
          "exchange_c" + std::to_string(cycle) + ".txt") {
        std::ifstream in(entry.path());
        std::string key;
        std::size_t value = 0;
        while (in >> key >> value) {
          if (key == "attempted") attempted += value;
          if (key == "accepted") {
            accepted += value;
            break;
          }
        }
        break;
      }
    }
  }

  std::cout << "replica exchange: " << n_replicas << " replicas, "
            << n_cycles << " cycles, ladder [" << t_min << ", " << t_max
            << "]\n\n";
  Table table({"metric", "value"});
  table.add_row({"simulation tasks",
                 std::to_string(pattern.simulation_units().size())});
  table.add_row({"exchange tasks",
                 std::to_string(pattern.exchange_units().size())});
  table.add_row({"swaps attempted", std::to_string(attempted)});
  table.add_row({"swaps accepted", std::to_string(accepted)});
  table.add_row(
      {"acceptance ratio",
       attempted ? format_double(static_cast<double>(accepted) /
                                     static_cast<double>(attempted),
                                 3)
                 : "n/a"});
  table.add_row({"TTC", format_seconds(report.value().overheads.ttc)});
  std::cout << table.to_string();

  (void)handle.deallocate();
  std::cout << "\nREMD completed.\n";
  return 0;
}
