// Iterative simulation-analysis workflow (the paper's ExTASY-style
// Amber-CoCo use case) with the SAL pattern on the local backend.
//
// Each iteration runs an ensemble of MD simulations, then one serial
// CoCo (PCA resampling) analysis over all trajectories. The analysis
// reports the occupancy of PC space; as iterations proceed the
// ensemble samples more of it — the convergence the algorithm exists
// to accelerate.
//
// Usage: sim_analysis_loop [n_simulations] [n_iterations]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"

int main(int argc, char** argv) {
  using namespace entk;

  const entk::Count n_simulations = argc > 1 ? std::atoll(argv[1]) : 4;
  const entk::Count n_iterations = argc > 2 ? std::atoll(argv[2]) : 3;

  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(/*cores=*/4);
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  if (Status status = handle.allocate(); !status.is_ok()) {
    std::cerr << "allocate failed: " << status.to_string() << "\n";
    return 1;
  }

  core::SimulationAnalysisLoop pattern(n_iterations, n_simulations, 1);
  pattern.set_simulation([&](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.simulate";
    spec.args.set("steps", 60);
    spec.args.set("n_particles", 48);
    spec.args.set("sample_every", 10);
    spec.args.set("seed",
                  9000 + 100 * context.iteration + context.instance);
    // Iterations > 1 restart from the previous iteration's trajectory;
    // a production CoCo would instead start from the resampled points.
    spec.args.set("out", "traj_" + std::to_string(context.instance) +
                             ".dat");
    if (context.iteration > 1) {
      spec.args.set("start_from",
                    "traj_" + std::to_string(context.instance) + ".dat");
    }
    return spec;
  });
  pattern.set_analysis([&](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.coco";
    spec.args.set("n_sims", n_simulations);
    spec.args.set("n_new_points", n_simulations);
    spec.args.set("out",
                  "coco_iter" + std::to_string(context.iteration) + ".txt");
    return spec;
  });

  auto report = handle.run(pattern);
  if (!report.ok() || !report.value().outcome.is_ok()) {
    std::cerr << "SAL run failed: "
              << (report.ok() ? report.value().outcome.to_string()
                              : report.status().to_string())
              << "\n";
    return 1;
  }

  std::cout << "simulation-analysis loop: " << n_simulations
            << " simulations x " << n_iterations << " iterations\n\n";
  Table table({"iteration", "PC-space occupancy"});
  for (entk::Count iteration = 1; iteration <= n_iterations; ++iteration) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             backend.session_dir())) {
      if (entry.path().filename() ==
          "coco_iter" + std::to_string(iteration) + ".txt") {
        std::ifstream in(entry.path());
        std::string key;
        double occupancy = 0.0;
        if (in >> key >> occupancy) {
          table.add_row({std::to_string(iteration),
                         format_double(occupancy, 3)});
        }
        break;
      }
    }
  }
  std::cout << table.to_string();
  std::cout << "\nsimulation tasks: " << pattern.simulation_units().size()
            << ", analysis tasks: " << pattern.analysis_units().size()
            << ", TTC " << format_seconds(report.value().overheads.ttc)
            << "\n";

  (void)handle.deallocate();
  return 0;
}
