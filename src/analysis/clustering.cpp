#include "analysis/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace entk::analysis {

namespace {
double distance2(const std::vector<double>& a,
                 const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double delta = a[d] - b[d];
    sum += delta * delta;
  }
  return sum;
}
}  // namespace

Result<KMeansResult> kmeans(const std::vector<std::vector<double>>& points,
                            const KMeansOptions& options) {
  if (options.k == 0) {
    return make_error(Errc::kInvalidArgument, "k must be >= 1");
  }
  if (points.size() < options.k) {
    return make_error(Errc::kInvalidArgument,
                      "need at least k points to form k clusters");
  }
  const std::size_t dims = points.front().size();
  for (const auto& point : points) {
    if (point.size() != dims) {
      return make_error(Errc::kInvalidArgument,
                        "points have inconsistent dimensions");
    }
  }
  if (dims == 0) {
    return make_error(Errc::kInvalidArgument, "points must have dims >= 1");
  }

  Xoshiro256 rng(options.seed);
  KMeansResult result;
  result.centroids.reserve(options.k);

  // k-means++ seeding: first centroid uniform, then proportional to
  // squared distance from the nearest chosen centroid.
  result.centroids.push_back(points[rng.uniform_index(points.size())]);
  std::vector<double> nearest2(points.size(),
                               std::numeric_limits<double>::max());
  while (result.centroids.size() < options.k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      nearest2[i] = std::min(nearest2[i],
                             distance2(points[i], result.centroids.back()));
      total += nearest2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      result.centroids.push_back(points[rng.uniform_index(points.size())]);
      continue;
    }
    double draw = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      draw -= nearest2[i];
      if (draw <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  // Lloyd iterations.
  result.assignment.assign(points.size(), 0);
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best2 = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < options.k; ++c) {
        const double d2 = distance2(points[i], result.centroids[c]);
        if (d2 < best2) {
          best2 = d2;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && result.iterations > 0) break;
    // Recompute centroids; empty clusters keep their position.
    std::vector<std::vector<double>> sums(options.k,
                                          std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(options.k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < options.k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] =
            sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia +=
        distance2(points[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

double cluster_separation_score(
    const std::vector<std::vector<double>>& points,
    const KMeansResult& result) {
  if (result.centroids.size() < 2 || points.empty()) return 0.0;
  double score = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double own = std::sqrt(
        distance2(points[i], result.centroids[result.assignment[i]]));
    double other = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < result.centroids.size(); ++c) {
      if (c == result.assignment[i]) continue;
      other = std::min(other,
                       std::sqrt(distance2(points[i],
                                           result.centroids[c])));
    }
    const double denominator = std::max(own, other);
    score += denominator > 0.0 ? (other - own) / denominator : 0.0;
  }
  return score / static_cast<double>(points.size());
}

}  // namespace entk::analysis
