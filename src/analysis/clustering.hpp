// k-means clustering of projected conformations.
//
// Used by adaptive-sampling workflows to identify conformational
// states in PC / diffusion-coordinate space (the step between "find
// collective coordinates" and "decide where to spawn new
// simulations").
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace entk::analysis {

struct KMeansOptions {
  std::size_t k = 2;
  int max_iterations = 100;
  /// Converged when no assignment changes in an iteration.
  std::uint64_t seed = 7;
};

struct KMeansResult {
  /// centroids[c] is a point in the input space.
  std::vector<std::vector<double>> centroids;
  /// assignment[i] = cluster index of points[i].
  std::vector<std::size_t> assignment;
  /// Sum of squared distances of points to their centroid.
  double inertia = 0.0;
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. Points must share a
/// dimension; k must not exceed the number of distinct points needed
/// (k <= points.size()).
Result<KMeansResult> kmeans(
    const std::vector<std::vector<double>>& points,
    const KMeansOptions& options);

/// Silhouette-like quality score in [-1, 1] (higher = tighter,
/// better-separated clusters); simplified to centroid distances.
double cluster_separation_score(
    const std::vector<std::vector<double>>& points,
    const KMeansResult& result);

}  // namespace entk::analysis
