#include "analysis/cpp_lexer.hpp"

#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

namespace entk::analysis {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the scanners depend on (longest first
/// within each leading character so greedy matching works).
constexpr std::array<std::string_view, 21> kPunctuators = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "++", "--",
};

/// Cursor over the source with line/column bookkeeping and blanking
/// support for the code_lines view.
class Lexer {
 public:
  Lexer(std::string path, std::string_view source) : source_(source) {
    out_.path = std::move(path);
    split_lines();
  }

  LexedFile run() {
    while (!at_end()) {
      const char c = peek();
      if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (at_line_start_hash()) {
        preprocessor();
      } else if (c == '"') {
        string_literal(pos_);
      } else if (c == '\'') {
        char_literal(pos_);
      } else if (ident_start(c)) {
        identifier();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
      } else {
        punct();
      }
    }
    return std::move(out_);
  }

 private:
  bool at_end() const { return pos_ >= source_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  void advance() {
    if (at_end()) return;
    if (source_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  /// True when the cursor sits on a '#' that begins a preprocessor
  /// directive (only whitespace before it on the line).
  bool at_line_start_hash() const {
    if (peek() != '#') return false;
    for (std::size_t i = pos_; i-- > 0;) {
      const char c = source_[i];
      if (c == '\n') return true;
      if (!std::isspace(static_cast<unsigned char>(c))) return false;
    }
    return true;
  }

  void split_lines() {
    std::string current;
    for (const char c : source_) {
      if (c == '\n') {
        out_.raw_lines.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    if (!current.empty()) out_.raw_lines.push_back(current);
    out_.code_lines = out_.raw_lines;
  }

  /// Overwrites [begin, end) of the source with spaces in code_lines.
  void blank_range(std::size_t begin, std::size_t end, int begin_line,
                   int begin_column) {
    int line = begin_line;
    int column = begin_column;
    for (std::size_t i = begin; i < end && i < source_.size(); ++i) {
      if (source_[i] == '\n') {
        ++line;
        column = 1;
        continue;
      }
      auto& text = out_.code_lines[static_cast<std::size_t>(line - 1)];
      text[static_cast<std::size_t>(column - 1)] = ' ';
      ++column;
    }
  }

  bool only_ws_before_on_line(int line, int column) const {
    const auto& text = out_.raw_lines[static_cast<std::size_t>(line - 1)];
    for (int i = 0; i < column - 1; ++i) {
      if (!std::isspace(
              static_cast<unsigned char>(text[static_cast<std::size_t>(i)]))) {
        return false;
      }
    }
    return true;
  }

  void line_comment() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    const int begin_column = column_;
    while (!at_end() && peek() != '\n') advance();
    Comment comment;
    comment.text = std::string(source_.substr(begin + 2, pos_ - begin - 2));
    comment.line = begin_line;
    comment.end_line = begin_line;
    comment.own_line = only_ws_before_on_line(begin_line, begin_column);
    out_.comments.push_back(std::move(comment));
    blank_range(begin, pos_, begin_line, begin_column);
  }

  void block_comment() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    const int begin_column = column_;
    advance();  // '/'
    advance();  // '*'
    while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
    if (!at_end()) {
      advance();  // '*'
      advance();  // '/'
    }
    Comment comment;
    comment.text = std::string(
        source_.substr(begin + 2, pos_ >= begin + 4 ? pos_ - begin - 4 : 0));
    comment.line = begin_line;
    comment.end_line = line_;
    comment.own_line = only_ws_before_on_line(begin_line, begin_column);
    out_.comments.push_back(std::move(comment));
    blank_range(begin, pos_, begin_line, begin_column);
  }

  /// Consumes a whole directive (with backslash continuations),
  /// recording #include targets. Directive bodies produce no tokens.
  void preprocessor() {
    const int begin_line = line_;
    advance();  // '#'
    while (!at_end() && peek() != '\n' &&
           std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
    std::string directive;
    while (!at_end() && ident_char(peek())) {
      directive.push_back(peek());
      advance();
    }
    if (directive == "include") {
      while (!at_end() && peek() != '\n' &&
             std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      const char open = peek();
      if (open == '"' || open == '<') {
        const char close = open == '<' ? '>' : '"';
        advance();
        IncludeDirective include;
        include.angled = open == '<';
        include.line = begin_line;
        while (!at_end() && peek() != close && peek() != '\n') {
          include.path.push_back(peek());
          advance();
        }
        out_.includes.push_back(std::move(include));
      }
    }
    // Skip the rest of the directive; comments inside it still need
    // normal handling so code_lines stays blanked.
    while (!at_end() && peek() != '\n') {
      if (peek() == '\\' && peek(1) == '\n') {
        advance();
        advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      if (peek() == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      advance();
    }
  }

  /// `literal_begin` points at the first character of the literal
  /// including any encoding prefix already consumed by identifier().
  void string_literal(std::size_t literal_begin, bool raw = false) {
    const int begin_line = line_;
    const int begin_column =
        column_ - static_cast<int>(pos_ - literal_begin);
    advance();  // opening '"'
    if (raw) {
      std::string delim;
      while (!at_end() && peek() != '(') {
        delim.push_back(peek());
        advance();
      }
      advance();  // '('
      const std::string terminator = ")" + delim + "\"";
      while (!at_end() &&
             source_.compare(pos_, terminator.size(), terminator) != 0) {
        advance();
      }
      for (std::size_t i = 0; i < terminator.size() && !at_end(); ++i) {
        advance();
      }
    } else {
      while (!at_end() && peek() != '"' && peek() != '\n') {
        if (peek() == '\\') advance();
        advance();
      }
      if (peek() == '"') advance();
    }
    while (!at_end() && ident_char(peek())) advance();  // ud-suffix
    Token token;
    token.kind = TokKind::kString;
    token.text =
        std::string(source_.substr(literal_begin, pos_ - literal_begin));
    token.line = begin_line;
    token.column = begin_column;
    out_.tokens.push_back(std::move(token));
    // Keep the delimiters, blank the body: positions survive, decoy
    // text does not.
    blank_range(literal_begin, pos_, begin_line, begin_column);
    auto& first = out_.code_lines[static_cast<std::size_t>(begin_line - 1)];
    first[static_cast<std::size_t>(begin_column - 1)] = '"';
    if (line_ == begin_line && column_ - 2 >= 0) {
      auto& last = out_.code_lines[static_cast<std::size_t>(line_ - 1)];
      // Restore a closing quote on single-line literals (approximate
      // for suffixed literals; the body stays blank either way).
      const int close = column_ - 2;
      if (close >= begin_column) {
        last[static_cast<std::size_t>(close)] = '"';
      }
    }
  }

  void char_literal(std::size_t literal_begin) {
    const int begin_line = line_;
    const int begin_column =
        column_ - static_cast<int>(pos_ - literal_begin);
    advance();  // opening '\''
    while (!at_end() && peek() != '\'' && peek() != '\n') {
      if (peek() == '\\') advance();
      advance();
    }
    if (peek() == '\'') advance();
    Token token;
    token.kind = TokKind::kChar;
    token.text =
        std::string(source_.substr(literal_begin, pos_ - literal_begin));
    token.line = begin_line;
    token.column = begin_column;
    out_.tokens.push_back(std::move(token));
    blank_range(literal_begin, pos_, begin_line, begin_column);
  }

  void identifier() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    const int begin_column = column_;
    while (!at_end() && ident_char(peek())) advance();
    const std::string_view text = source_.substr(begin, pos_ - begin);
    if (peek() == '"' || peek() == '\'') {
      // Encoding prefix / raw-string marker glued to a literal.
      const bool raw = !text.empty() && text.back() == 'R' &&
                       (text == "R" || text == "LR" || text == "uR" ||
                        text == "UR" || text == "u8R");
      const bool prefix = raw || text == "L" || text == "u" || text == "U" ||
                          text == "u8";
      if (prefix) {
        if (peek() == '"') {
          string_literal(begin, raw);
        } else {
          char_literal(begin);
        }
        return;
      }
    }
    Token token;
    token.kind = TokKind::kIdentifier;
    token.text = std::string(text);
    token.line = begin_line;
    token.column = begin_column;
    out_.tokens.push_back(std::move(token));
  }

  void number() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    const int begin_column = column_;
    while (!at_end()) {
      const char c = peek();
      if (ident_char(c) || c == '.' || c == '\'') {
        advance();
      } else if ((c == '+' || c == '-') && pos_ > begin &&
                 (source_[pos_ - 1] == 'e' || source_[pos_ - 1] == 'E' ||
                  source_[pos_ - 1] == 'p' || source_[pos_ - 1] == 'P')) {
        advance();
      } else {
        break;
      }
    }
    Token token;
    token.kind = TokKind::kNumber;
    token.text = std::string(source_.substr(begin, pos_ - begin));
    token.line = begin_line;
    token.column = begin_column;
    out_.tokens.push_back(std::move(token));
  }

  void punct() {
    const int begin_line = line_;
    const int begin_column = column_;
    for (const std::string_view op : kPunctuators) {
      if (source_.compare(pos_, op.size(), op) == 0) {
        for (std::size_t i = 0; i < op.size(); ++i) advance();
        out_.tokens.push_back(
            {TokKind::kPunct, std::string(op), begin_line, begin_column});
        return;
      }
    }
    const char c = peek();
    advance();
    out_.tokens.push_back(
        {TokKind::kPunct, std::string(1, c), begin_line, begin_column});
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  LexedFile out_;
};

}  // namespace

LexedFile lex_source(std::string path, std::string_view source) {
  return Lexer(std::move(path), source).run();
}

Result<LexedFile> lex_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(Errc::kIoError, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();
  return lex_source(path, source);
}

}  // namespace entk::analysis
