// Token-aware C++ lexer for the in-repo static analyzers.
//
// This is NOT a compiler front end: it tokenizes one translation unit
// well enough that entk-lint and entk-analyze never mistake the inside
// of a string literal, character literal, or comment for code — the
// classic failure mode of regex line scanners. It understands line and
// block comments, ordinary and raw string literals (including
// encoding prefixes), character literals, preprocessor directives
// (recording #include targets, hiding directive bodies from the token
// stream), and the multi-character punctuators that matter for
// downstream scanning ("::", "->", ...).
//
// Consumers get three synchronized views of a file:
//   tokens      code tokens only, each with its 1-based line/column;
//   comments    every comment with its text and placement, for
//               suppression markers (analysis/suppressions.hpp);
//   code_lines  the original lines with comments and literal BODIES
//               blanked by spaces — same length, same columns — so
//               substring rules stay position-accurate without
//               tripping over decoys in strings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace entk::analysis {

enum class TokKind {
  kIdentifier,  ///< Identifiers and keywords (no keyword table here).
  kNumber,
  kString,  ///< Any string literal; text is the raw spelling.
  kChar,
  kPunct,
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;    ///< 1-based.
  int column = 0;  ///< 1-based byte column of the first character.
};

struct Comment {
  std::string text;  ///< Without the // or /* */ delimiters.
  int line = 0;      ///< First line, 1-based.
  int end_line = 0;  ///< Last line (== line for // comments).
  /// True when no code precedes the comment on its first line — a
  /// "comment-only" line for suppression purposes.
  bool own_line = false;
};

struct IncludeDirective {
  std::string path;  ///< Target as written, without the delimiters.
  bool angled = false;
  int line = 0;
};

struct LexedFile {
  std::string path;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Tokenizes `source`; `path` is carried through for diagnostics.
LexedFile lex_source(std::string path, std::string_view source);

/// Reads and tokenizes a file from disk.
Result<LexedFile> lex_file(const std::string& path);

}  // namespace entk::analysis
