#include "analysis/diffusion_map.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/eigen.hpp"
#include "common/stats.hpp"

namespace entk::analysis {

Result<DiffusionMapResult> diffusion_map(const Matrix& distances,
                                         const DiffusionMapOptions& options) {
  if (distances.rows() != distances.cols() || distances.rows() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "diffusion map needs a square distance matrix (>= 2)");
  }
  if (options.n_coordinates == 0) {
    return make_error(Errc::kInvalidArgument,
                      "need at least one diffusion coordinate");
  }
  const std::size_t n = distances.rows();

  // Kernel scale(s).
  double epsilon = options.epsilon;
  if (epsilon <= 0.0) {
    // Median of squared off-diagonal distances.
    std::vector<double> squared;
    squared.reserve(n * (n - 1) / 2);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        squared.push_back(distances(a, b) * distances(a, b));
      }
    }
    epsilon = std::max(median(std::move(squared)), 1e-12);
  }

  std::vector<double> local_scale(n, std::sqrt(epsilon));
  if (options.local_scale_neighbour > 0) {
    const std::size_t k = std::min(options.local_scale_neighbour, n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> row;
      row.reserve(n - 1);
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) row.push_back(distances(i, j));
      }
      std::nth_element(row.begin(), row.begin() + (k - 1), row.end());
      local_scale[i] = std::max(row[k - 1], 1e-9);
    }
  }

  // Gaussian kernel; with local scaling K_ij = exp(-d^2 / (s_i s_j)).
  Matrix kernel(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    kernel(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d2 = distances(i, j) * distances(i, j);
      const double value = std::exp(-d2 / (local_scale[i] * local_scale[j]));
      kernel(i, j) = value;
      kernel(j, i) = value;
    }
  }

  // Row sums -> normalised symmetric form S = D^-1/2 K D^-1/2, which is
  // similar to the Markov matrix M = D^-1 K, so S's eigenvalues are
  // M's, and M's right eigenvectors are D^-1/2 times S's.
  std::vector<double> row_sum(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_sum[i] += kernel(i, j);
  }
  Matrix symmetric(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      symmetric(i, j) =
          kernel(i, j) / std::sqrt(row_sum[i] * row_sum[j]);
    }
  }
  auto decomposition = eigen_symmetric(symmetric);
  if (!decomposition.ok()) return decomposition.status();
  const EigenDecomposition& eig = decomposition.value();

  DiffusionMapResult result;
  result.epsilon_used = epsilon;
  const std::size_t k_coords = std::min(options.n_coordinates, n - 1);
  result.eigenvalues.assign(eig.values.begin(),
                            eig.values.begin() +
                                static_cast<std::ptrdiff_t>(k_coords + 1));
  result.coordinates = Matrix(n, k_coords);
  for (std::size_t k = 0; k < k_coords; ++k) {
    // Skip the trivial first eigenvector (constant, eigenvalue 1).
    for (std::size_t i = 0; i < n; ++i) {
      result.coordinates(i, k) =
          eig.vectors(i, k + 1) / std::sqrt(row_sum[i]);
    }
  }
  return result;
}

}  // namespace entk::analysis
