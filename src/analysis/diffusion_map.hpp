// Diffusion maps (the LSDMap analogue).
//
// LSDMap (locally scaled diffusion maps; Preto & Clementi 2014) finds
// slow collective coordinates of an MD ensemble: build pairwise RMSD
// distances, form a Gaussian kernel, row-normalise it into a Markov
// matrix and take its dominant non-trivial eigenvectors as diffusion
// coordinates. We implement the standard (single-epsilon) variant with
// optional local scaling by the k-th nearest neighbour distance.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/matrix.hpp"
#include "common/status.hpp"
#include "md/trajectory.hpp"

namespace entk::analysis {

struct DiffusionMapOptions {
  std::size_t n_coordinates = 2;  ///< Diffusion coordinates to return.
  double epsilon = 0.0;           ///< Kernel scale; <= 0 = median rule.
  /// If > 0, use locally scaled kernels with the distance to this
  /// nearest neighbour as the per-point scale (LSDMap's key feature).
  std::size_t local_scale_neighbour = 0;
};

struct DiffusionMapResult {
  /// Eigenvalues of the Markov matrix, descending; values[0] == 1.
  std::vector<double> eigenvalues;
  /// coordinates(i, k): diffusion coordinate k of frame i (the
  /// trivial constant eigenvector is skipped).
  Matrix coordinates;
  double epsilon_used = 0.0;
};

/// Full pairwise RMSD distance matrix of the given frames.
Matrix rmsd_distance_matrix(const std::vector<md::Frame>& frames);

/// Computes a diffusion map from a precomputed distance matrix.
Result<DiffusionMapResult> diffusion_map(const Matrix& distances,
                                         const DiffusionMapOptions& options);

/// Convenience: distances + diffusion map from frames.
Result<DiffusionMapResult> diffusion_map_frames(
    const std::vector<md::Frame>& frames,
    const DiffusionMapOptions& options);

}  // namespace entk::analysis
