// Diffusion maps (the LSDMap analogue).
//
// LSDMap (locally scaled diffusion maps; Preto & Clementi 2014) finds
// slow collective coordinates of an MD ensemble: build pairwise RMSD
// distances, form a Gaussian kernel, row-normalise it into a Markov
// matrix and take its dominant non-trivial eigenvectors as diffusion
// coordinates. We implement the standard (single-epsilon) variant with
// optional local scaling by the k-th nearest neighbour distance.
//
// This module is pure math over a precomputed distance matrix; the
// RMSD distance matrix and the frame-level convenience wrapper live in
// md/ensemble_analysis.hpp so the analysis layer stays a leaf.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/matrix.hpp"
#include "common/status.hpp"

namespace entk::analysis {

struct DiffusionMapOptions {
  std::size_t n_coordinates = 2;  ///< Diffusion coordinates to return.
  double epsilon = 0.0;           ///< Kernel scale; <= 0 = median rule.
  /// If > 0, use locally scaled kernels with the distance to this
  /// nearest neighbour as the per-point scale (LSDMap's key feature).
  std::size_t local_scale_neighbour = 0;
};

struct DiffusionMapResult {
  /// Eigenvalues of the Markov matrix, descending; values[0] == 1.
  std::vector<double> eigenvalues;
  /// coordinates(i, k): diffusion coordinate k of frame i (the
  /// trivial constant eigenvector is skipped).
  Matrix coordinates;
  double epsilon_used = 0.0;
};

/// Computes a diffusion map from a precomputed distance matrix.
Result<DiffusionMapResult> diffusion_map(const Matrix& distances,
                                         const DiffusionMapOptions& options);

}  // namespace entk::analysis
