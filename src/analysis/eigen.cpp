#include "analysis/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace entk::analysis {

Result<EigenDecomposition> eigen_symmetric(const Matrix& input,
                                           double tolerance,
                                           int max_sweeps) {
  if (input.rows() != input.cols()) {
    return make_error(Errc::kInvalidArgument,
                      "eigensolver needs a square matrix");
  }
  if (!input.is_symmetric(1e-8)) {
    return make_error(Errc::kInvalidArgument,
                      "eigensolver needs a symmetric matrix");
  }
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  auto off_diagonal_norm = [&] {
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = r + 1; c < n; ++c) sum += a(r, c) * a(r, c);
    }
    return std::sqrt(sum);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tolerance) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p, q, theta) on both sides of A and
        // accumulate it into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (off_diagonal_norm() > std::max(tolerance, 1e-8)) {
    return make_error(Errc::kInternal, "Jacobi failed to converge");
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a(x, x) > a(y, y);
  });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors(i, k) = v(i, order[k]);
    }
  }
  return out;
}

}  // namespace entk::analysis
