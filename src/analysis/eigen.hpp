// Symmetric eigensolver (cyclic Jacobi rotations).
//
// Robust and simple; the analysis matrices are small enough
// (O(100–1000)) that Jacobi's O(n^3) per sweep is fine.
#pragma once

#include <vector>

#include "analysis/matrix.hpp"
#include "common/status.hpp"

namespace entk::analysis {

struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// vectors(i, k): component i of the eigenvector for values[k];
  /// columns are orthonormal.
  Matrix vectors;
};

/// Diagonalises a symmetric matrix. Fails with kInvalidArgument if the
/// input is not square/symmetric, kInternal if convergence is not
/// reached (practically impossible for symmetric input).
Result<EigenDecomposition> eigen_symmetric(const Matrix& input,
                                           double tolerance = 1e-12,
                                           int max_sweeps = 100);

}  // namespace entk::analysis
