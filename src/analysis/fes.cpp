#include "analysis/fes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace entk::analysis {

Histogram2D::Histogram2D(double x_lo, double x_hi, std::size_t x_bins,
                         double y_lo, double y_hi, std::size_t y_bins)
    : x_lo_(x_lo),
      x_hi_(x_hi),
      y_lo_(y_lo),
      y_hi_(y_hi),
      x_bins_(x_bins),
      y_bins_(y_bins),
      counts_(x_bins * y_bins, 0) {
  ENTK_CHECK(x_bins > 0 && y_bins > 0, "histogram needs bins");
  ENTK_CHECK(x_hi > x_lo && y_hi > y_lo, "histogram range must be non-empty");
}

void Histogram2D::add(double x, double y) {
  auto bin_of = [](double value, double lo, double hi, std::size_t bins) {
    const double fraction = (value - lo) / (hi - lo);
    auto bin = static_cast<std::ptrdiff_t>(
        std::floor(fraction * static_cast<double>(bins)));
    return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        bin, 0, static_cast<std::ptrdiff_t>(bins) - 1));
  };
  ++counts_[index(bin_of(x, x_lo_, x_hi_, x_bins_),
                  bin_of(y, y_lo_, y_hi_, y_bins_))];
  ++total_;
}

std::size_t Histogram2D::count(std::size_t bx, std::size_t by) const {
  ENTK_CHECK(bx < x_bins_ && by < y_bins_, "bin out of range");
  return counts_[index(bx, by)];
}

double Histogram2D::x_center(std::size_t bx) const {
  ENTK_CHECK(bx < x_bins_, "bin out of range");
  const double width = (x_hi_ - x_lo_) / static_cast<double>(x_bins_);
  return x_lo_ + (static_cast<double>(bx) + 0.5) * width;
}

double Histogram2D::y_center(std::size_t by) const {
  ENTK_CHECK(by < y_bins_, "bin out of range");
  const double width = (y_hi_ - y_lo_) / static_cast<double>(y_bins_);
  return y_lo_ + (static_cast<double>(by) + 0.5) * width;
}

std::vector<double> Histogram2D::probabilities() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) return p;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return p;
}

std::vector<double> Histogram2D::free_energy(double kT) const {
  ENTK_CHECK(kT > 0.0, "temperature must be positive");
  const auto p = probabilities();
  std::vector<double> g(p.size(),
                        std::numeric_limits<double>::infinity());
  double minimum = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0.0) {
      g[i] = -kT * std::log(p[i]);
      minimum = std::min(minimum, g[i]);
    }
  }
  if (std::isfinite(minimum)) {
    for (auto& value : g) {
      if (std::isfinite(value)) value -= minimum;
    }
  }
  return g;
}

}  // namespace entk::analysis
