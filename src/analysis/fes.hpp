// 2-D histograms and free-energy surfaces over collective coordinates
// (the standard way REMD/CoCo results are presented).
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.hpp"

namespace entk::analysis {

class Histogram2D {
 public:
  Histogram2D(double x_lo, double x_hi, std::size_t x_bins, double y_lo,
              double y_hi, std::size_t y_bins);

  /// Out-of-range samples clamp into the edge bins.
  void add(double x, double y);

  std::size_t x_bins() const { return x_bins_; }
  std::size_t y_bins() const { return y_bins_; }
  std::size_t count(std::size_t bx, std::size_t by) const;
  std::size_t total() const { return total_; }
  double x_center(std::size_t bx) const;
  double y_center(std::size_t by) const;

  /// Normalised probability grid (row-major, x outer), sums to 1.
  std::vector<double> probabilities() const;

  /// Free-energy surface -kT ln p, min-shifted to 0; empty bins are
  /// +infinity.
  std::vector<double> free_energy(double kT) const;

 private:
  std::size_t index(std::size_t bx, std::size_t by) const {
    return bx * y_bins_ + by;
  }

  double x_lo_, x_hi_, y_lo_, y_hi_;
  std::size_t x_bins_, y_bins_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace entk::analysis
