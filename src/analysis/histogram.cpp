#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace entk::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ENTK_CHECK(bins > 0, "histogram needs at least one bin");
  ENTK_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double value) {
  const double fraction = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      std::floor(fraction * static_cast<double>(counts_.size())));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& values) {
  for (const double value : values) add(value);
}

std::size_t Histogram::count(std::size_t bin) const {
  ENTK_CHECK(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  ENTK_CHECK(bin < counts_.size(), "bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::vector<double> Histogram::probabilities() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) return p;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    p[b] = static_cast<double>(counts_[b]) / static_cast<double>(total_);
  }
  return p;
}

std::vector<double> Histogram::free_energy(double kT) const {
  ENTK_CHECK(kT > 0.0, "temperature must be positive");
  const auto p = probabilities();
  std::vector<double> g(p.size(),
                        std::numeric_limits<double>::infinity());
  double minimum = std::numeric_limits<double>::infinity();
  for (std::size_t b = 0; b < p.size(); ++b) {
    if (p[b] > 0.0) {
      g[b] = -kT * std::log(p[b]);
      minimum = std::min(minimum, g[b]);
    }
  }
  if (std::isfinite(minimum)) {
    for (auto& value : g) {
      if (std::isfinite(value)) value -= minimum;
    }
  }
  return g;
}

}  // namespace entk::analysis
