// 1-D histogramming and free-energy profiles for example workflows.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.hpp"

namespace entk::analysis {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds a sample; out-of-range samples clamp into the edge bins.
  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  double bin_center(std::size_t bin) const;

  /// Normalised probability per bin (sums to 1; 0 if empty).
  std::vector<double> probabilities() const;

  /// Free-energy profile -kT ln p(bin), shifted so the minimum is 0.
  /// Empty bins get +infinity.
  std::vector<double> free_energy(double kT) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace entk::analysis
