#include "analysis/include_graph.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <tuple>

#include "analysis/suppressions.hpp"

namespace entk::analysis {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  std::size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Module of a file path: the first component after the last "/src/"
/// segment (or a leading "src/"), provided a further component
/// follows. "" for files outside src/ or directly inside it.
std::string module_of(const std::string& path) {
  std::size_t at = path.rfind("/src/");
  std::size_t begin;
  if (at != std::string::npos) {
    begin = at + 5;
  } else if (path.rfind("src/", 0) == 0) {
    begin = 4;
  } else {
    return "";
  }
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return "";  // file directly in src/
  return path.substr(begin, slash - begin);
}

/// Module of a quoted include path like "common/mutex.hpp".
std::string include_module(const std::string& include_path) {
  const std::size_t slash = include_path.find('/');
  return slash == std::string::npos ? "" : include_path.substr(0, slash);
}

}  // namespace

Result<LayeringConfig> parse_layering_config(const std::string& text) {
  LayeringConfig config;
  std::istringstream in(text);
  std::string raw;
  std::string section;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    if (section != "modules") continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status(Errc::kInvalidArgument,
                    "layering config line " + std::to_string(line_no) +
                        ": expected `module = [..]`, got: " + line);
    }
    const std::string name = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (name.empty() || value.size() < 2 || value.front() != '[' ||
        value.back() != ']') {
      return Status(Errc::kInvalidArgument,
                    "layering config line " + std::to_string(line_no) +
                        ": expected `module = [\"dep\", ...]`");
    }
    value = value.substr(1, value.size() - 2);
    std::vector<std::string> deps;
    std::istringstream items(value);
    std::string item;
    while (std::getline(items, item, ',')) {
      item = trim(item);
      if (item.empty()) continue;
      if (item.size() < 2 || item.front() != '"' || item.back() != '"') {
        return Status(Errc::kInvalidArgument,
                      "layering config line " + std::to_string(line_no) +
                          ": dependency names must be quoted");
      }
      deps.push_back(item.substr(1, item.size() - 2));
    }
    config.modules[name] = std::move(deps);
  }
  return config;
}

Result<LayeringConfig> load_layering_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(Errc::kIoError, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_layering_config(buffer.str());
}

LayerAnalysis analyze_layering(const std::vector<LexedFile>& files,
                               const LayeringConfig& config) {
  LayerAnalysis out;

  // Declared-DAG cycle check (DFS with colors).
  {
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> path;
    // Iterative DFS carrying an explicit path for the report.
    std::function<bool(const std::string&)> visit =
        [&](const std::string& module) -> bool {
      color[module] = 1;
      path.push_back(module);
      const auto it = config.modules.find(module);
      if (it != config.modules.end()) {
        for (const std::string& dep : it->second) {
          if (color[dep] == 1) {
            std::ostringstream message;
            message << "declared layering is cyclic: ";
            const auto loop =
                std::find(path.begin(), path.end(), dep);
            for (auto at = loop; at != path.end(); ++at) {
              message << *at << " -> ";
            }
            message << dep;
            out.findings.push_back(
                {"config-cycle", "", 0, message.str()});
            path.pop_back();
            color[module] = 2;
            return true;
          }
          if (color[dep] == 0 && visit(dep)) {
            path.pop_back();
            color[module] = 2;
            return true;
          }
        }
      }
      path.pop_back();
      color[module] = 2;
      return false;
    };
    for (const auto& [module, deps] : config.modules) {
      if (color[module] == 0 && visit(module)) break;
    }
  }

  // Index scanned files by src-relative path for include resolution.
  std::map<std::string, const LexedFile*> by_relative;
  std::map<std::string, SuppressionSet> suppressions;
  std::set<std::string> modules_seen;
  for (const LexedFile& file : files) {
    const std::string module = module_of(file.path);
    if (module.empty()) continue;
    const std::size_t at = file.path.rfind("/src/");
    const std::string relative =
        at != std::string::npos ? file.path.substr(at + 5)
                                : file.path.substr(4);
    by_relative[relative] = &file;
    modules_seen.insert(module);
    suppressions[file.path] = scan_suppressions(file, "entk-analyze");
  }
  out.module_count = modules_seen.size();

  for (const std::string& module : modules_seen) {
    if (config.modules.count(module) != 0) continue;
    out.findings.push_back(
        {"undeclared-module", "", 0,
         "module `" + module +
             "` (a directory under src/) is missing from the "
             "[modules] section of the layering config"});
  }

  // File-level include edges (quoted, resolved to scanned files).
  std::map<std::string, std::vector<std::string>> file_edges;
  for (const LexedFile& file : files) {
    const std::string module = module_of(file.path);
    if (module.empty()) continue;
    const auto allowed_it = config.modules.find(module);
    for (const IncludeDirective& include : file.includes) {
      if (include.angled) continue;
      const auto target = by_relative.find(include.path);
      if (target == by_relative.end()) continue;
      ++out.edge_count;
      file_edges[file.path].push_back(target->second->path);

      const std::string target_module = include_module(include.path);
      if (target_module.empty() || target_module == module) continue;
      if (suppressions[file.path].allows("layering", include.line)) {
        continue;
      }
      const bool declared =
          allowed_it != config.modules.end() &&
          std::find(allowed_it->second.begin(), allowed_it->second.end(),
                    target_module) != allowed_it->second.end();
      if (declared) continue;
      out.findings.push_back(
          {"undeclared-dependency", file.path, include.line,
           "module `" + module + "` must not depend on `" +
               target_module + "`: #include \"" + include.path +
               "\" is not covered by the declared layering (" +
               (allowed_it == config.modules.end()
                    ? "module undeclared"
                    : module + " may use: " +
                          [&] {
                            std::string joined;
                            for (const std::string& dep :
                                 allowed_it->second) {
                              if (!joined.empty()) joined += ", ";
                              joined += dep;
                            }
                            return joined.empty() ? "nothing" : joined;
                          }()) +
               ")"});
    }
  }

  // Include-cycle detection over the file graph (DFS with colors).
  {
    std::map<std::string, int> color;
    std::vector<std::string> path;
    std::function<void(const std::string&)> visit =
        [&](const std::string& file) {
          color[file] = 1;
          path.push_back(file);
          for (const std::string& next : file_edges[file]) {
            if (color[next] == 1) {
              std::ostringstream message;
              message << "#include cycle: ";
              const auto loop =
                  std::find(path.begin(), path.end(), next);
              for (auto at = loop; at != path.end(); ++at) {
                message << *at << " -> ";
              }
              message << next;
              out.findings.push_back(
                  {"include-cycle", file, 0, message.str()});
              continue;
            }
            if (color[next] == 0) visit(next);
          }
          path.pop_back();
          color[file] = 2;
        };
    for (const auto& [file, edges] : file_edges) {
      if (color[file] == 0) visit(file);
    }
  }

  std::sort(out.findings.begin(), out.findings.end(),
            [](const LayerFinding& a, const LayerFinding& b) {
              return std::tie(a.rule, a.file, a.line, a.message) <
                     std::tie(b.rule, b.file, b.line, b.message);
            });
  return out;
}

}  // namespace entk::analysis
