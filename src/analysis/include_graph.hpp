// Module-layering analysis over the #include graph.
//
// The repo declares its intended module DAG in tools/layering.toml (a
// small TOML subset, parsed here without external dependencies):
//
//   [modules]
//   common = []
//   obs    = ["common"]
//   pilot  = ["common", "obs", "sim", "saga"]
//
// A module is a top-level directory under src/; a file belongs to the
// module named by the first path component after the last "src/"
// segment of its path. analyze_layering() builds the quoted-#include
// graph of the scanned files and checks it against the declaration:
//
//   undeclared-module      a scanned file's module is missing from
//                          [modules] (every module must be declared);
//   undeclared-dependency  file in module A includes a file in module
//                          B, but B is not in A's declared list — the
//                          "downward or sideways edge" that erodes
//                          layering;
//   include-cycle          a cycle among the scanned files' quoted
//                          includes (reported once per cycle with the
//                          full file path around it);
//   config-cycle           the declared DAG itself is cyclic, so the
//                          declaration is meaningless.
//
// Only quoted includes that resolve to a scanned file participate;
// angled (system) includes are ignored. A standalone
// `// entk-analyze: allow(layering)` above an #include (or trailing on
// its line) exempts that single edge.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/cpp_lexer.hpp"
#include "common/status.hpp"

namespace entk::analysis {

struct LayeringConfig {
  /// Module name -> modules it may depend on (not including itself).
  std::map<std::string, std::vector<std::string>> modules;
};

/// Parses the TOML subset described above. Unknown sections are
/// ignored; malformed lines inside [modules] are errors.
Result<LayeringConfig> parse_layering_config(const std::string& text);

/// Reads and parses a layering config file.
Result<LayeringConfig> load_layering_config(const std::string& path);

struct LayerFinding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

struct LayerAnalysis {
  std::vector<LayerFinding> findings;
  std::size_t module_count = 0;  ///< Modules seen among the files.
  std::size_t edge_count = 0;    ///< Resolved file-level include edges.
};

LayerAnalysis analyze_layering(const std::vector<LexedFile>& files,
                               const LayeringConfig& config);

}  // namespace entk::analysis
