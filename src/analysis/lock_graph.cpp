#include "analysis/lock_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "analysis/suppressions.hpp"

namespace entk::analysis {

namespace {

constexpr int kUnranked = -1000000;

struct Site {
  std::string file;
  int line = 0;
  std::string str() const {
    return file + ":" + std::to_string(line);
  }
};

struct LockDecl {
  std::string id;         ///< "Class::member" or "file.cpp::name".
  std::string rank_name;  ///< "kX" or "" when unranked.
  Site site;
};

/// A lock expression as written, resolved to a LockDecl in phase 2
/// (the declaring class may live in a file scanned later).
struct LockRef {
  std::string base_type;    ///< Receiver type name for x.m / x->m.
  std::string member;       ///< The lock member / global name.
  std::string owner_class;  ///< Enclosing class for bare references.
  std::string file;         ///< For file-scope globals.
};

/// A call expression awaiting phase-2 target resolution.
struct CallRef {
  std::string method;
  std::string explicit_class;   ///< A::m(...).
  std::string receiver_type;    ///< Declared type name of x in x->m().
  std::string receiver_member;  ///< x is a member of the enclosing
                                ///< class (x->m() with x unknown
                                ///< locally).
  std::string chain_base_type;  ///< Type of x in x.y->m().
  std::string chain_member;     ///< y in x.y->m().
  bool bare = false;
  std::string enclosing_class;
};

struct Event {
  enum Kind { kAcquire, kScopeEnd, kWait, kCall } kind;
  LockRef lock;      // kAcquire / kWait
  CallRef call;      // kCall
  std::size_t depth = 0;  // kAcquire: scope depth; kScopeEnd: new depth
  Site site;
};

struct ResolvedCall {
  std::string callee;
  std::vector<std::string> held;
  Site site;
};

struct FunctionSummary {
  std::string key;    ///< "Class::method", "method", or "...::<lambda@N>".
  std::string klass;  ///< Enclosing class ("" for free functions).
  std::string file;
  std::vector<Event> events;
  // Phase-2 results:
  std::set<std::string> acquires;
  std::map<std::string, Site> acquire_sites;
  std::vector<ResolvedCall> calls;
  std::set<std::string> may_acquire;
};

struct ClassInfo {
  std::map<std::string, std::string> member_types;  ///< member -> type name.
  std::map<std::string, LockDecl> locks;
};

struct Repo {
  std::map<std::string, ClassInfo> classes;
  std::map<std::string, std::string> typedefs;
  std::deque<FunctionSummary> functions;
  std::map<std::string, FunctionSummary*> by_key;
  std::map<std::string, std::vector<FunctionSummary*>> free_by_name;
  std::map<std::string, int> ranks;  ///< enumerator name -> value.
  /// file path -> namespace-scope lock decls visible in that file.
  std::map<std::string, std::map<std::string, LockDecl>> file_globals;
  std::map<std::string, SuppressionSet> suppressions;  ///< by file.
};

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kWords = {
      "if",       "for",      "while",    "switch",   "return",
      "sizeof",   "alignof",  "catch",    "throw",    "new",
      "delete",   "void",     "operator", "decltype", "noexcept",
      "else",     "do",       "case",     "goto",     "co_return",
      "co_await", "co_yield", "static_assert"};
  return kWords.count(s) != 0;
}

bool is_guard_name(const std::string& s) {
  return s == "MutexLock" || s == "SharedMutexLock" ||
         s == "SharedReaderLock";
}

bool is_wait_name(const std::string& s) {
  return s == "wait" || s == "wait_for" || s == "wait_until";
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Last identifier of a type token sequence after stripping
/// qualifiers, references and smart pointers; "" when the core type is
/// a std type or cannot be named.
std::string core_type(const std::vector<const Token*>& toks) {
  std::size_t begin = 0;
  std::size_t end = toks.size();
  while (begin < end &&
         (toks[begin]->text == "const" || toks[begin]->text == "mutable" ||
          toks[begin]->text == "typename" || toks[begin]->text == "static" ||
          toks[begin]->text == "constexpr" ||
          toks[begin]->text == "volatile")) {
    ++begin;
  }
  while (end > begin &&
         (toks[end - 1]->text == "&" || toks[end - 1]->text == "*" ||
          toks[end - 1]->text == "&&" || toks[end - 1]->text == "const")) {
    --end;
  }
  if (begin >= end) return "";
  // std::shared_ptr<T> / std::unique_ptr<T> -> T.
  if (end - begin >= 5 && toks[begin]->text == "std" &&
      toks[begin + 1]->text == "::" &&
      (toks[begin + 2]->text == "shared_ptr" ||
       toks[begin + 2]->text == "unique_ptr") &&
      toks[begin + 3]->text == "<") {
    std::vector<const Token*> inner(toks.begin() + begin + 4,
                                    toks.begin() + end -
                                        (toks[end - 1]->text == ">" ? 1 : 0));
    return core_type(inner);
  }
  if (toks[begin]->text == "std") return "";
  // Qualified chain: take the last identifier before any '<'.
  std::string last;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i]->text == "<") break;
    if (toks[i]->kind == TokKind::kIdentifier) last = toks[i]->text;
  }
  return last;
}

/// Walks one lexed file and accumulates declarations + function event
/// streams into the repo tables.
class FileScanner {
 public:
  FileScanner(const LexedFile& file, Repo& repo)
      : file_(file), toks_(file.tokens), repo_(repo) {}

  void run() {
    parse_lock_rank_enum();
    std::size_t head = 0;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct && t.text == "{") {
        open_brace(head, i);
        head = i + 1;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "}") {
        close_brace();
        head = i + 1;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ";") {
        end_statement(head, i);
        head = i + 1;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ":" && i > head &&
          (toks_[i - 1].text == "public" ||
           toks_[i - 1].text == "private" ||
           toks_[i - 1].text == "protected")) {
        head = i + 1;
        continue;
      }
      if (current_fn() != nullptr) inline_event(i);
    }
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kEnum, kFunction, kBlock } kind;
    std::string name;
    FunctionSummary* fn = nullptr;
    bool is_lambda = false;
    std::vector<std::pair<LockRef, std::size_t>> saved_guards;
  };

  FunctionSummary* current_fn() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return it->fn;
      if (it->kind == Scope::kClass || it->kind == Scope::kNamespace ||
          it->kind == Scope::kEnum) {
        return nullptr;
      }
    }
    return nullptr;
  }

  std::string current_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
      if (it->kind == Scope::kFunction && !it->fn->klass.empty()) {
        return it->fn->klass;
      }
    }
    return "";
  }

  bool at_type_scope() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      switch (it->kind) {
        case Scope::kClass:
          return true;
        case Scope::kNamespace:
          return false;
        case Scope::kEnum:
          return false;
        case Scope::kFunction:
          return false;
        case Scope::kBlock:
          continue;
      }
    }
    return false;
  }

  std::map<std::string, std::string>& locals() {
    static std::map<std::string, std::string> empty;
    if (locals_stack_.empty()) {
      empty.clear();
      return empty;
    }
    return locals_stack_.back();
  }

  // ---- rank table ----

  void parse_lock_rank_enum() {
    for (std::size_t i = 0; i + 3 < toks_.size(); ++i) {
      if (toks_[i].text != "enum" || toks_[i + 1].text != "class" ||
          toks_[i + 2].text != "LockRank") {
        continue;
      }
      std::size_t j = i + 3;
      while (j < toks_.size() && toks_[j].text != "{") ++j;
      ++j;
      while (j < toks_.size() && toks_[j].text != "}") {
        if (toks_[j].kind == TokKind::kIdentifier &&
            j + 2 < toks_.size() && toks_[j + 1].text == "=") {
          int sign = 1;
          std::size_t v = j + 2;
          if (toks_[v].text == "-") {
            sign = -1;
            ++v;
          }
          if (v < toks_.size() && toks_[v].kind == TokKind::kNumber) {
            repo_.ranks[toks_[j].text] =
                sign * std::stoi(toks_[v].text);
            j = v;
          }
        }
        ++j;
      }
      return;
    }
  }

  // ---- brace classification ----

  void open_brace(std::size_t head, std::size_t brace) {
    const FunctionSummary* fn = current_fn();
    if (fn != nullptr ||
        (!scopes_.empty() && scopes_.back().kind == Scope::kBlock &&
         fn != nullptr)) {
      if (fn != nullptr && is_lambda_head(head, brace)) {
        open_lambda(brace);
        return;
      }
      if (fn != nullptr) {
        maybe_range_for_local(head, brace);
        scopes_.push_back({Scope::kBlock, "", nullptr, false, {}});
        return;
      }
    }
    // Namespace / class / enum / function / member-initializer.
    if (contains(head, brace, "namespace")) {
      std::string name;
      for (std::size_t i = head; i < brace; ++i) {
        if (toks_[i].kind == TokKind::kIdentifier &&
            toks_[i].text != "namespace" && toks_[i].text != "inline") {
          name = toks_[i].text;
        }
      }
      scopes_.push_back({Scope::kNamespace, name, nullptr, false, {}});
      return;
    }
    if (contains(head, brace, "enum")) {
      scopes_.push_back({Scope::kEnum, "", nullptr, false, {}});
      return;
    }
    const std::string class_name = class_head_name(head, brace);
    if (!class_name.empty()) {
      repo_.classes[class_name];  // touch
      scopes_.push_back({Scope::kClass, class_name, nullptr, false, {}});
      return;
    }
    if (member_decl_with_init(head, brace)) {
      scopes_.push_back({Scope::kBlock, "", nullptr, false, {}});
      return;
    }
    std::string fn_name;
    std::string fn_class;
    if (!contains(head, brace, "=") &&
        find_function_name(head, brace, fn_name, fn_class)) {
      open_function(fn_name, fn_class, head, brace);
      return;
    }
    scopes_.push_back({Scope::kBlock, "", nullptr, false, {}});
  }

  bool contains(std::size_t head, std::size_t brace,
                const std::string& text) const {
    for (std::size_t i = head; i < brace; ++i) {
      if (toks_[i].text == text) return true;
    }
    return false;
  }

  /// "class Foo final : public Bar {" -> "Foo"; "" when the head is
  /// not a class definition. Skips attribute macros such as
  /// ENTK_CAPABILITY("mutex").
  std::string class_head_name(std::size_t head, std::size_t brace) const {
    std::size_t kw = head;
    for (; kw < brace; ++kw) {
      if ((toks_[kw].text == "class" || toks_[kw].text == "struct" ||
           toks_[kw].text == "union") &&
          (kw == head ||
           (toks_[kw - 1].text != "<" && toks_[kw - 1].text != ","))) {
        break;
      }
    }
    if (kw >= brace) return "";
    std::string name;
    for (std::size_t i = kw + 1; i < brace; ++i) {
      if (toks_[i].text == ":") break;
      if (toks_[i].kind != TokKind::kIdentifier) continue;
      if (toks_[i].text == "final") continue;
      if (i + 1 < brace && toks_[i + 1].text == "(") {
        // Attribute macro: skip its argument list.
        std::size_t depth = 0;
        ++i;
        do {
          if (toks_[i].text == "(") ++depth;
          if (toks_[i].text == ")") --depth;
          ++i;
        } while (i < brace && depth > 0);
        --i;
        continue;
      }
      name = toks_[i].text;
    }
    return name;
  }

  /// Handles `Mutex mutex_{LockRank::kX};` (and plain members with
  /// brace initializers) at class or namespace scope. Returns true
  /// when the head was consumed as a declaration.
  bool member_decl_with_init(std::size_t head, std::size_t brace) {
    if (brace <= head + 1) return false;
    if (contains(head, brace, "(") || contains(head, brace, "=")) {
      return false;
    }
    const Token& name_tok = toks_[brace - 1];
    if (name_tok.kind != TokKind::kIdentifier) return false;
    std::vector<const Token*> type;
    for (std::size_t i = head; i + 1 < brace; ++i) {
      type.push_back(&toks_[i]);
    }
    if (type.empty()) return false;
    const std::string last = type.back()->text;
    if (last == "Mutex" || last == "SharedMutex") {
      register_lock(name_tok, rank_name_in_init(brace));
    } else {
      register_member_type(name_tok.text, core_type(type));
    }
    return true;
  }

  /// Extracts "kX" from the `{LockRank::kX}` initializer starting at
  /// `brace`; "" when the initializer names no rank.
  std::string rank_name_in_init(std::size_t brace) const {
    std::size_t depth = 0;
    for (std::size_t i = brace; i < toks_.size(); ++i) {
      if (toks_[i].text == "{") ++depth;
      if (toks_[i].text == "}") {
        if (--depth == 0) break;
      }
      if (toks_[i].text == "LockRank" && i + 2 < toks_.size() &&
          toks_[i + 1].text == "::" &&
          toks_[i + 2].kind == TokKind::kIdentifier) {
        return toks_[i + 2].text;
      }
    }
    return "";
  }

  void register_lock(const Token& name_tok, const std::string& rank_name) {
    LockDecl decl;
    decl.rank_name = rank_name;
    decl.site = {file_.path, name_tok.line};
    const std::string owner = current_class();
    if (at_type_scope() && !owner.empty()) {
      decl.id = owner + "::" + name_tok.text;
      repo_.classes[owner].locks[name_tok.text] = decl;
    } else {
      decl.id = basename_of(file_.path) + "::" + name_tok.text;
      repo_.file_globals[file_.path][name_tok.text] = decl;
    }
  }

  void register_member_type(const std::string& name,
                            const std::string& type) {
    if (type.empty()) return;
    const std::string owner = current_class();
    if (at_type_scope() && !owner.empty()) {
      repo_.classes[owner].member_types[name] = type;
    }
  }

  bool is_lambda_head(std::size_t head, std::size_t brace) const {
    for (std::size_t i = brace; i-- > head;) {
      if (toks_[i].text != "[") continue;
      if (i == head) return true;
      const std::string& prev = toks_[i - 1].text;
      if (prev == "(" || prev == "," || prev == "=" || prev == "return" ||
          prev == "&&" || prev == "||" || prev == "{" || prev == ";" ||
          prev == ":") {
        return true;
      }
      return false;
    }
    return false;
  }

  void open_lambda(std::size_t brace) {
    FunctionSummary* outer = current_fn();
    repo_.functions.push_back({});
    FunctionSummary* fn = &repo_.functions.back();
    fn->key = outer->key + "::<lambda@" +
              std::to_string(toks_[brace].line) + ">";
    fn->klass = outer->klass;
    fn->file = file_.path;
    Scope scope{Scope::kFunction, fn->key, fn, true, {}};
    scope.saved_guards = std::move(guards_);
    guards_.clear();
    scopes_.push_back(std::move(scope));
    locals_stack_.push_back(locals_stack_.empty()
                                ? std::map<std::string, std::string>{}
                                : locals_stack_.back());
  }

  /// Finds "name(" in a head at angle depth 0, chaining back through
  /// "::" qualifiers. Returns false when the head is not a function
  /// definition.
  bool find_function_name(std::size_t head, std::size_t brace,
                          std::string& name, std::string& klass) const {
    int angle = 0;
    for (std::size_t i = head; i + 1 < brace; ++i) {
      const Token& t = toks_[i];
      if (t.text == "<") {
        if (i > head && toks_[i - 1].kind == TokKind::kIdentifier) ++angle;
        continue;
      }
      if (t.text == ">" && angle > 0) {
        --angle;
        continue;
      }
      if (t.text == ">>" && angle > 0) {
        angle = std::max(0, angle - 2);
        continue;
      }
      if (angle > 0) continue;
      if (t.kind != TokKind::kIdentifier) continue;
      if (toks_[i + 1].text != "(") continue;
      if (is_keyword(t.text)) continue;
      if (t.text.rfind("ENTK_", 0) == 0) {
        // Attribute macro: skip its argument list.
        std::size_t depth = 0;
        std::size_t j = i + 1;
        do {
          if (toks_[j].text == "(") ++depth;
          if (toks_[j].text == ")") --depth;
          ++j;
        } while (j < brace && depth > 0);
        i = j - 1;
        continue;
      }
      // Chain back through :: qualifiers (and ~ for destructors).
      name = t.text;
      std::size_t j = i;
      if (j > head && toks_[j - 1].text == "~") {
        name = "~" + name;
        --j;
      }
      std::vector<std::string> parts = {name};
      while (j >= head + 2 && toks_[j - 1].text == "::" &&
             toks_[j - 2].kind == TokKind::kIdentifier) {
        parts.insert(parts.begin(), toks_[j - 2].text);
        j -= 2;
      }
      if (parts.size() >= 2) {
        klass = parts[parts.size() - 2];
        name = parts[parts.size() - 2] + "::" + parts.back();
      } else {
        klass = "";
        name = parts.back();
      }
      return true;
    }
    return false;
  }

  void open_function(const std::string& name, const std::string& klass,
                     std::size_t head, std::size_t brace) {
    repo_.functions.push_back({});
    FunctionSummary* fn = &repo_.functions.back();
    fn->klass = klass;
    if (klass.empty()) {
      const std::string owner = current_class();
      if (!owner.empty()) {
        fn->klass = owner;
        fn->key = owner + "::" + name;
      } else {
        fn->key = name;
      }
    } else {
      fn->key = name;
    }
    fn->file = file_.path;
    scopes_.push_back({Scope::kFunction, fn->key, fn, false, {}});
    locals_stack_.push_back({});
    parse_params(head, brace);
    if (fn->klass.empty()) {
      repo_.free_by_name[fn->key].push_back(fn);
    } else if (repo_.by_key.count(fn->key) == 0) {
      repo_.by_key[fn->key] = fn;
    }
  }

  /// Records `Type name` pairs from the parameter list in the head.
  void parse_params(std::size_t head, std::size_t brace) {
    // The parameter list is the first top-level (...) group after the
    // function name; heads are short, so re-scan for the first '('.
    std::size_t open = head;
    while (open < brace && toks_[open].text != "(") ++open;
    if (open >= brace) return;
    std::size_t depth = 0;
    std::size_t start = open + 1;
    for (std::size_t i = open; i < brace; ++i) {
      if (toks_[i].text == "(") {
        ++depth;
        continue;
      }
      if (toks_[i].text == ")") {
        --depth;
        if (depth == 0) {
          record_param(start, i);
          break;
        }
        continue;
      }
      if (toks_[i].text == "," && depth == 1) {
        record_param(start, i);
        start = i + 1;
      }
    }
  }

  void record_param(std::size_t begin, std::size_t end) {
    // Strip default arguments.
    for (std::size_t i = begin; i < end; ++i) {
      if (toks_[i].text == "=") {
        end = i;
        break;
      }
    }
    if (end <= begin + 1) return;
    const Token& name_tok = toks_[end - 1];
    if (name_tok.kind != TokKind::kIdentifier) return;
    std::vector<const Token*> type;
    for (std::size_t i = begin; i + 1 < end; ++i) type.push_back(&toks_[i]);
    const std::string core = core_type(type);
    if (!core.empty()) locals()[name_tok.text] = core;
  }

  /// `for (const JobPtr& job : jobs) {` — record job's declared type.
  void maybe_range_for_local(std::size_t head, std::size_t brace) {
    if (head >= brace || toks_[head].text != "for") return;
    std::size_t colon = head;
    std::size_t depth = 0;
    for (std::size_t i = head; i < brace; ++i) {
      if (toks_[i].text == "(") ++depth;
      if (toks_[i].text == ")") --depth;
      if (toks_[i].text == ":" && depth == 1) {
        colon = i;
        break;
      }
    }
    if (colon == head) return;
    const Token& name_tok = toks_[colon - 1];
    if (name_tok.kind != TokKind::kIdentifier) return;
    std::vector<const Token*> type;
    for (std::size_t i = head + 2; i + 1 < colon; ++i) {
      type.push_back(&toks_[i]);
    }
    const std::string core = core_type(type);
    if (!core.empty()) locals()[name_tok.text] = core;
  }

  void close_brace() {
    if (scopes_.empty()) return;
    Scope scope = std::move(scopes_.back());
    scopes_.pop_back();
    if (scope.kind == Scope::kFunction) {
      if (scope.is_lambda) {
        guards_ = std::move(scope.saved_guards);
      } else {
        guards_.clear();
      }
      if (!locals_stack_.empty()) locals_stack_.pop_back();
      return;
    }
    // Release guards that belonged to the closed block.
    const std::size_t depth = scopes_.size();
    while (!guards_.empty() && guards_.back().second > depth) {
      guards_.pop_back();
    }
    FunctionSummary* fn = current_fn();
    if (fn != nullptr) {
      fn->events.push_back(
          {Event::kScopeEnd, {}, {}, depth, {file_.path, 0}});
    }
  }

  // ---- statements ----

  void end_statement(std::size_t head, std::size_t semi) {
    if (semi <= head) return;
    if (toks_[head].text == "using" && contains(head, semi, "=")) {
      register_typedef(head, semi);
      return;
    }
    FunctionSummary* fn = current_fn();
    if (fn != nullptr) {
      maybe_local_decl(head, semi);
      return;
    }
    if (contains(head, semi, "(")) return;  // method / function decl
    const Token& name_tok = toks_[semi - 1];
    if (name_tok.kind != TokKind::kIdentifier) return;
    std::vector<const Token*> type;
    for (std::size_t i = head; i + 1 < semi; ++i) type.push_back(&toks_[i]);
    if (type.empty()) return;
    const std::string last = type.back()->text;
    if (last == "Mutex" || last == "SharedMutex") {
      register_lock(name_tok, "");
    } else {
      register_member_type(name_tok.text, core_type(type));
    }
  }

  void register_typedef(std::size_t head, std::size_t semi) {
    std::size_t eq = head;
    while (eq < semi && toks_[eq].text != "=") ++eq;
    if (eq <= head + 1 || eq >= semi) return;
    const Token& name_tok = toks_[eq - 1];
    if (name_tok.kind != TokKind::kIdentifier) return;
    std::vector<const Token*> target;
    for (std::size_t i = eq + 1; i < semi; ++i) target.push_back(&toks_[i]);
    const std::string core = core_type(target);
    if (!core.empty()) repo_.typedefs[name_tok.text] = core;
  }

  void maybe_local_decl(std::size_t head, std::size_t semi) {
    // `auto x = std::make_shared<T>(...)`.
    for (std::size_t i = head; i + 6 < semi; ++i) {
      if (toks_[i].text == "make_shared" && toks_[i + 1].text == "<" &&
          toks_[i + 2].kind == TokKind::kIdentifier) {
        for (std::size_t j = i; j-- > head;) {
          if (toks_[j].text == "=" && j > head &&
              toks_[j - 1].kind == TokKind::kIdentifier) {
            locals()[toks_[j - 1].text] = toks_[i + 2].text;
            return;
          }
        }
      }
    }
    std::size_t end = semi;
    for (std::size_t i = head; i < semi; ++i) {
      if (toks_[i].text == "=") {
        end = i;
        break;
      }
    }
    if (end <= head + 1) return;
    if (contains(head, end, "(") || contains(head, end, "{")) return;
    const Token& name_tok = toks_[end - 1];
    if (name_tok.kind != TokKind::kIdentifier) return;
    std::vector<const Token*> type;
    for (std::size_t i = head; i + 1 < end; ++i) type.push_back(&toks_[i]);
    if (type.empty()) return;
    if (is_keyword(type.front()->text) || type.front()->text == "return") {
      return;
    }
    const std::string core = core_type(type);
    if (!core.empty()) locals()[name_tok.text] = core;
  }

  // ---- in-function events ----

  void inline_event(std::size_t i) {
    const Token& t = toks_[i];
    if (t.kind != TokKind::kIdentifier) return;
    FunctionSummary* fn = current_fn();
    // Guard declaration: `MutexLock name(expr);`.
    if (is_guard_name(t.text) && i + 2 < toks_.size() &&
        toks_[i + 1].kind == TokKind::kIdentifier &&
        toks_[i + 2].text == "(") {
      LockRef ref;
      if (lock_expr(i + 3, ref)) {
        fn->events.push_back({Event::kAcquire, ref, {}, scopes_.size(),
                              {file_.path, t.line}});
        guards_.push_back({ref, scopes_.size()});
      }
      return;
    }
    if (i + 1 >= toks_.size() || toks_[i + 1].text != "(") return;
    if (is_keyword(t.text) || t.text.rfind("ENTK_", 0) == 0) return;
    const std::string prev = i > 0 ? toks_[i - 1].text : "";
    const bool prev_ident =
        i > 0 && toks_[i - 1].kind == TokKind::kIdentifier &&
        !is_keyword(prev) && prev != "return" && prev != "else" &&
        prev != "do" && prev != "throw";
    if (prev_ident || prev == "~" || prev == ">") return;  // declaration
    // CondVar wait site: `cv_.wait(mutex_)` and friends.
    if ((prev == "." || prev == "->") && is_wait_name(t.text)) {
      LockRef ref;
      if (lock_expr(i + 2, ref)) {
        fn->events.push_back(
            {Event::kWait, ref, {}, 0, {file_.path, t.line}});
        return;
      }
    }
    CallRef call;
    call.method = t.text;
    call.enclosing_class = fn->klass;
    if (prev == "." || prev == "->") {
      if (!receiver(i - 2, call)) return;
    } else if (prev == "::") {
      if (i < 2 || toks_[i - 2].kind != TokKind::kIdentifier) return;
      call.explicit_class = toks_[i - 2].text;
      if (call.explicit_class == "std") return;
    } else {
      call.bare = true;
    }
    fn->events.push_back(
        {Event::kCall, {}, call, 0, {file_.path, t.line}});
  }

  /// Resolves the receiver primary ending at token `j` (the token
  /// before '.'/'->'). Returns false for unresolvable receivers
  /// (call chains, array elements, ...).
  bool receiver(std::size_t j, CallRef& call) {
    if (j >= toks_.size()) return false;
    const Token& base = toks_[j];
    if (base.kind != TokKind::kIdentifier) return false;
    if (base.text == "this") {
      call.receiver_type = call.enclosing_class;
      return !call.receiver_type.empty();
    }
    // Two-level chain `x.y->m()` / `this->y.m()`.
    if (j >= 2 &&
        (toks_[j - 1].text == "." || toks_[j - 1].text == "->") &&
        toks_[j - 2].kind == TokKind::kIdentifier) {
      const std::string& x = toks_[j - 2].text;
      if (x == "this") {
        call.receiver_member = base.text;
        return true;
      }
      const auto local = locals().find(x);
      if (local != locals().end()) {
        call.chain_base_type = local->second;
        call.chain_member = base.text;
        return true;
      }
      return false;
    }
    if (j >= 1 && (toks_[j - 1].text == ")" || toks_[j - 1].text == "]" ||
                   toks_[j - 1].text == ">")) {
      return false;
    }
    const auto local = locals().find(base.text);
    if (local != locals().end()) {
      call.receiver_type = local->second;
      return true;
    }
    call.receiver_member = base.text;
    return true;
  }

  /// Resolves a lock expression starting at token `at` (just after the
  /// opening paren): `mutex_`, `this->mutex_`, `x.mutex_`, `x->mutex_`
  /// or a file-scope global. The first argument ends at ',' or ')'.
  bool lock_expr(std::size_t at, LockRef& ref) {
    std::vector<const Token*> expr;
    std::size_t depth = 0;
    for (std::size_t i = at; i < toks_.size(); ++i) {
      const std::string& text = toks_[i].text;
      if (text == "(") ++depth;
      if (text == ")") {
        if (depth == 0) break;
        --depth;
      }
      if (text == "," && depth == 0) break;
      expr.push_back(&toks_[i]);
    }
    ref.owner_class = current_class();
    ref.file = file_.path;
    if (expr.size() == 1 && expr[0]->kind == TokKind::kIdentifier) {
      ref.member = expr[0]->text;
      return true;
    }
    if (expr.size() == 3 && expr[0]->kind == TokKind::kIdentifier &&
        (expr[1]->text == "." || expr[1]->text == "->") &&
        expr[2]->kind == TokKind::kIdentifier) {
      ref.member = expr[2]->text;
      if (expr[0]->text == "this") return true;
      const auto local = locals().find(expr[0]->text);
      if (local != locals().end()) {
        ref.base_type = local->second;
        return true;
      }
      // Member-of-member is out of scope; give up.
      return false;
    }
    return false;
  }

  const LexedFile& file_;
  const std::vector<Token>& toks_;
  Repo& repo_;
  std::vector<Scope> scopes_;
  std::vector<std::map<std::string, std::string>> locals_stack_;
  std::vector<std::pair<LockRef, std::size_t>> guards_;
};

// ---- phase 2: resolution, fixpoint, graph ----

struct Edge {
  std::string from;
  std::string to;
  Site site;
  std::string witness;
};

class GraphBuilder {
 public:
  explicit GraphBuilder(Repo& repo) : repo_(repo) {}

  LockAnalysis build() {
    index_locks();
    for (FunctionSummary& fn : repo_.functions) replay(fn);
    fixpoint();
    for (FunctionSummary& fn : repo_.functions) expand_calls(fn);
    LockAnalysis out;
    out.lock_count = lock_ids_.size();
    out.edge_count = edges_.size();
    out.function_count = repo_.functions.size();
    find_rank_inversions(out);
    find_cycles(out);
    out.dot = to_dot();
    return out;
  }

 private:
  std::string resolve_class(std::string name) const {
    for (int i = 0; i < 8; ++i) {
      if (repo_.classes.count(name) != 0) return name;
      const auto it = repo_.typedefs.find(name);
      if (it == repo_.typedefs.end()) return "";
      name = it->second;
    }
    return "";
  }

  const LockDecl* find_lock(const LockRef& ref) const {
    if (!ref.base_type.empty()) {
      const std::string klass = resolve_class(ref.base_type);
      if (klass.empty()) return nullptr;
      const auto& locks = repo_.classes.at(klass).locks;
      const auto it = locks.find(ref.member);
      return it == locks.end() ? nullptr : &it->second;
    }
    if (!ref.owner_class.empty()) {
      const auto cls = repo_.classes.find(ref.owner_class);
      if (cls != repo_.classes.end()) {
        const auto it = cls->second.locks.find(ref.member);
        if (it != cls->second.locks.end()) return &it->second;
      }
    }
    const auto file = repo_.file_globals.find(ref.file);
    if (file != repo_.file_globals.end()) {
      const auto it = file->second.find(ref.member);
      if (it != file->second.end()) return &it->second;
    }
    return nullptr;
  }

  void index_locks() {
    for (const auto& [name, info] : repo_.classes) {
      for (const auto& [member, decl] : info.locks) {
        lock_ids_[decl.id] = &decl;
      }
    }
    for (const auto& [file, globals] : repo_.file_globals) {
      for (const auto& [name, decl] : globals) {
        lock_ids_[decl.id] = &decl;
      }
    }
  }

  int rank_of(const std::string& lock_id) const {
    const auto it = lock_ids_.find(lock_id);
    if (it == lock_ids_.end() || it->second->rank_name.empty()) {
      return kUnranked;
    }
    const auto rank = repo_.ranks.find(it->second->rank_name);
    return rank == repo_.ranks.end() ? kUnranked : rank->second;
  }

  bool suppressed(const Site& site) const {
    const auto it = repo_.suppressions.find(site.file);
    return it != repo_.suppressions.end() &&
           it->second.allows("lock-order", site.line);
  }

  void add_edge(const std::string& from, const std::string& to,
                const Site& site, std::string witness) {
    if (suppressed(site)) return;
    edges_.emplace(std::make_pair(from, to),
                   Edge{from, to, site, std::move(witness)});
  }

  /// Re-runs a function's event stream with a held-lock stack,
  /// producing direct edges, acquire sets and resolved call sites.
  void replay(FunctionSummary& fn) {
    std::vector<std::pair<std::string, std::size_t>> held;
    for (const Event& event : fn.events) {
      switch (event.kind) {
        case Event::kAcquire: {
          const LockDecl* decl = find_lock(event.lock);
          if (decl == nullptr) break;
          // A suppressed acquisition site is vetted: it contributes no
          // incoming edges (direct here, call-expanded via the
          // may-acquire sets), but still counts as held so the
          // ordering of later acquisitions under it stays checked.
          if (!suppressed(event.site)) {
            for (const auto& [h, depth] : held) {
              add_edge(h, decl->id, event.site,
                       fn.key + " at " + event.site.str() +
                           " acquires " + decl->id +
                           " while holding " + h);
            }
            fn.acquires.insert(decl->id);
            fn.acquire_sites.emplace(decl->id, event.site);
          }
          held.emplace_back(decl->id, event.depth);
          break;
        }
        case Event::kScopeEnd:
          while (!held.empty() && held.back().second > event.depth) {
            held.pop_back();
          }
          break;
        case Event::kWait: {
          const LockDecl* decl = find_lock(event.lock);
          if (decl == nullptr) break;
          for (const auto& [h, depth] : held) {
            if (h == decl->id) continue;
            add_edge(h, decl->id, event.site,
                     fn.key + " at " + event.site.str() +
                         " waits on a CondVar bound to " + decl->id +
                         " (re-acquired on wakeup) while holding " + h);
          }
          break;
        }
        case Event::kCall: {
          const std::string callee = resolve_call(event.call);
          if (callee.empty()) break;
          ResolvedCall resolved;
          resolved.callee = callee;
          for (const auto& [h, depth] : held) resolved.held.push_back(h);
          resolved.site = event.site;
          fn.calls.push_back(std::move(resolved));
          break;
        }
      }
    }
  }

  std::string resolve_call(const CallRef& call) const {
    std::string klass;
    if (!call.explicit_class.empty()) {
      klass = resolve_class(call.explicit_class);
    } else if (!call.receiver_type.empty()) {
      klass = resolve_class(call.receiver_type);
    } else if (!call.chain_base_type.empty()) {
      const std::string base = resolve_class(call.chain_base_type);
      if (!base.empty()) {
        const auto& members = repo_.classes.at(base).member_types;
        const auto it = members.find(call.chain_member);
        if (it != members.end()) klass = resolve_class(it->second);
      }
    } else if (!call.receiver_member.empty()) {
      const auto cls = repo_.classes.find(call.enclosing_class);
      if (cls != repo_.classes.end()) {
        const auto it = cls->second.member_types.find(call.receiver_member);
        if (it != cls->second.member_types.end()) {
          klass = resolve_class(it->second);
        }
      }
    } else if (call.bare) {
      if (!call.enclosing_class.empty()) {
        const std::string key = call.enclosing_class + "::" + call.method;
        if (repo_.by_key.count(key) != 0) return key;
      }
      const auto free = repo_.free_by_name.find(call.method);
      if (free != repo_.free_by_name.end() && free->second.size() == 1) {
        return free->second.front()->key;
      }
      return "";
    }
    if (klass.empty()) return "";
    const std::string key = klass + "::" + call.method;
    return repo_.by_key.count(key) != 0 ? key : "";
  }

  const FunctionSummary* fn_by_key(const std::string& key) const {
    const auto it = repo_.by_key.find(key);
    if (it != repo_.by_key.end()) return it->second;
    const auto free = repo_.free_by_name.find(key);
    if (free != repo_.free_by_name.end() && free->second.size() == 1) {
      return free->second.front();
    }
    return nullptr;
  }

  void fixpoint() {
    for (FunctionSummary& fn : repo_.functions) {
      fn.may_acquire = fn.acquires;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (FunctionSummary& fn : repo_.functions) {
        for (const ResolvedCall& call : fn.calls) {
          const FunctionSummary* callee = fn_by_key(call.callee);
          if (callee == nullptr) continue;
          for (const std::string& lock : callee->may_acquire) {
            if (fn.may_acquire.insert(lock).second) changed = true;
          }
        }
      }
    }
  }

  /// Witness chain "A -> B -> C acquires <lock> at <site>" from
  /// `start` to a function that directly acquires `lock`.
  std::string chain_to(const std::string& start,
                       const std::string& lock) const {
    std::map<std::string, std::string> parent;
    std::deque<std::string> queue = {start};
    parent[start] = "";
    while (!queue.empty()) {
      const std::string key = queue.front();
      queue.pop_front();
      const FunctionSummary* fn = fn_by_key(key);
      if (fn == nullptr) continue;
      if (fn->acquires.count(lock) != 0) {
        std::string path = key + " acquires " + lock + " at " +
                           fn->acquire_sites.at(lock).str();
        for (std::string at = parent.at(key); !at.empty();
             at = parent.at(at)) {
          path = at + " -> " + path;
        }
        return path;
      }
      for (const ResolvedCall& call : fn->calls) {
        if (parent.count(call.callee) != 0) continue;
        const FunctionSummary* callee = fn_by_key(call.callee);
        if (callee == nullptr ||
            callee->may_acquire.count(lock) == 0) {
          continue;
        }
        parent[call.callee] = key;
        queue.push_back(call.callee);
      }
    }
    return start + " -> ... -> " + lock;
  }

  void expand_calls(FunctionSummary& fn) {
    for (const ResolvedCall& call : fn.calls) {
      if (call.held.empty()) continue;
      const FunctionSummary* callee = fn_by_key(call.callee);
      if (callee == nullptr) continue;
      for (const std::string& lock : callee->may_acquire) {
        for (const std::string& h : call.held) {
          if (edges_.count({h, lock}) != 0) continue;
          add_edge(h, lock, call.site,
                   fn.key + " at " + call.site.str() + " holds " + h +
                       " and calls " + chain_to(call.callee, lock));
        }
      }
    }
  }

  std::string rank_label(const std::string& lock_id) const {
    const auto it = lock_ids_.find(lock_id);
    if (it == lock_ids_.end() || it->second->rank_name.empty()) {
      return "unranked";
    }
    const int rank = rank_of(lock_id);
    return it->second->rank_name +
           (rank == kUnranked ? "" : "=" + std::to_string(rank));
  }

  void find_rank_inversions(LockAnalysis& out) const {
    for (const auto& [key, edge] : edges_) {
      const int from = rank_of(edge.from);
      const int to = rank_of(edge.to);
      if (from == kUnranked || to == kUnranked) continue;
      if (from < to) continue;
      LockFinding finding;
      finding.rule = "rank-inversion";
      finding.file = edge.site.file;
      finding.line = edge.site.line;
      finding.message = "lock order violates declared ranks: " +
                        edge.from + " (" + rank_label(edge.from) +
                        ") -> " + edge.to + " (" + rank_label(edge.to) +
                        ")\n    witness: " + edge.witness;
      out.findings.push_back(std::move(finding));
    }
  }

  void find_cycles(LockAnalysis& out) {
    // Tarjan SCC over the lock graph.
    std::map<std::string, std::vector<std::string>> adjacency;
    std::set<std::string> nodes;
    for (const auto& [key, edge] : edges_) {
      adjacency[edge.from].push_back(edge.to);
      nodes.insert(edge.from);
      nodes.insert(edge.to);
    }
    std::map<std::string, int> index;
    std::map<std::string, int> low;
    std::set<std::string> on_stack;
    std::vector<std::string> stack;
    int counter = 0;
    std::vector<std::vector<std::string>> components;

    // Iterative Tarjan (explicit frame stack).
    struct Frame {
      std::string node;
      std::size_t next_child = 0;
    };
    for (const std::string& root : nodes) {
      if (index.count(root) != 0) continue;
      std::vector<Frame> frames = {{root, 0}};
      while (!frames.empty()) {
        Frame& frame = frames.back();
        const std::string node = frame.node;
        if (frame.next_child == 0) {
          index[node] = low[node] = counter++;
          stack.push_back(node);
          on_stack.insert(node);
        }
        bool descended = false;
        auto& children = adjacency[node];
        while (frame.next_child < children.size()) {
          const std::string& child = children[frame.next_child++];
          if (index.count(child) == 0) {
            frames.push_back({child, 0});
            descended = true;
            break;
          }
          if (on_stack.count(child) != 0) {
            low[node] = std::min(low[node], index[child]);
          }
        }
        if (descended) continue;
        if (low[node] == index[node]) {
          std::vector<std::string> component;
          while (true) {
            const std::string member = stack.back();
            stack.pop_back();
            on_stack.erase(member);
            component.push_back(member);
            if (member == node) break;
          }
          components.push_back(std::move(component));
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& up = frames.back();
          low[up.node] = std::min(low[up.node], low[node]);
        }
      }
    }

    for (const auto& component : components) {
      const bool self_loop =
          component.size() == 1 &&
          edges_.count({component.front(), component.front()}) != 0;
      if (component.size() < 2 && !self_loop) continue;
      const std::set<std::string> in_scc(component.begin(),
                                         component.end());
      // Walk one concrete cycle within the SCC for the report.
      std::vector<std::string> cycle = {component.front()};
      std::set<std::string> seen = {component.front()};
      while (true) {
        const std::string& at = cycle.back();
        std::string next;
        for (const std::string& candidate : adjacency[at]) {
          if (in_scc.count(candidate) != 0) {
            next = candidate;
            if (seen.count(candidate) == 0) break;
          }
        }
        if (next.empty()) break;
        cycle.push_back(next);
        if (!seen.insert(next).second) break;  // closed the loop
      }
      std::ostringstream message;
      message << "potential deadlock: lock-order cycle";
      for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
        const auto edge = edges_.find({cycle[i], cycle[i + 1]});
        message << "\n    " << cycle[i] << " -> " << cycle[i + 1];
        if (edge != edges_.end()) {
          message << ": " << edge->second.witness;
        }
      }
      LockFinding finding;
      finding.rule = "lock-cycle";
      const auto first_edge =
          cycle.size() >= 2 ? edges_.find({cycle[0], cycle[1]})
                            : edges_.end();
      if (first_edge != edges_.end()) {
        finding.file = first_edge->second.site.file;
        finding.line = first_edge->second.site.line;
      }
      finding.message = message.str();
      out.findings.push_back(std::move(finding));
    }
  }

  std::string to_dot() const {
    std::ostringstream dot;
    dot << "digraph entk_locks {\n"
        << "  rankdir=TB;\n"
        << "  node [shape=box, fontname=\"monospace\"];\n";
    std::set<std::string> emitted;
    auto emit_node = [&](const std::string& id) {
      if (!emitted.insert(id).second) return;
      const bool ranked = rank_of(id) != kUnranked;
      dot << "  \"" << id << "\" [label=\"" << id << "\\n"
          << rank_label(id) << "\""
          << (ranked ? "" : ", style=dashed") << "];\n";
    };
    for (const auto& [id, decl] : lock_ids_) emit_node(id);
    for (const auto& [key, edge] : edges_) {
      emit_node(edge.from);
      emit_node(edge.to);
      dot << "  \"" << edge.from << "\" -> \"" << edge.to
          << "\" [label=\"" << edge.site.str() << "\"];\n";
    }
    dot << "}\n";
    return dot.str();
  }

  Repo& repo_;
  std::map<std::string, const LockDecl*> lock_ids_;
  std::map<std::pair<std::string, std::string>, Edge> edges_;
};

}  // namespace

LockAnalysis analyze_locks(const std::vector<LexedFile>& files) {
  Repo repo;
  for (const LexedFile& file : files) {
    repo.suppressions[file.path] = scan_suppressions(file, "entk-analyze");
  }
  for (const LexedFile& file : files) {
    FileScanner(file, repo).run();
  }
  return GraphBuilder(repo).build();
}

}  // namespace entk::analysis
