// Whole-repo lock-order analysis.
//
// analyze_locks() scans lexed translation units (analysis/
// cpp_lexer.hpp) and recovers, without a compiler:
//
//   * every lock declaration — `Mutex m_{LockRank::kX};` /
//     `SharedMutex` members and namespace-scope globals — keyed as
//     Class::member (one node per declaration, shared by all
//     instances, matching the rank model);
//   * the LockRank table itself, parsed from the `enum class LockRank`
//     body in common/lock_rank.hpp;
//   * per-function acquisition sequences: MutexLock /
//     SharedMutexLock / SharedReaderLock guards (scope-aware, so a
//     guard stops "holding" when its block closes) and
//     CondVar::wait/wait_for/wait_until re-acquisition sites;
//   * call sites with the held-lock set at the call, resolved through
//     class members, locals, parameters and smart-pointer typedefs —
//     unresolvable calls (virtual dispatch, std::function callbacks)
//     are deliberately dropped: the analyzer reports only edges it can
//     witness, and the runtime validator (ENTK_LOCK_RANK_CHECK)
//     covers the dynamic remainder.
//
// A fixpoint over the call graph yields may-acquire sets; the final
// lock graph gets one edge A -> B wherever B may be acquired while A
// is held, each edge carrying a concrete witness path. Findings:
//
//   lock-cycle       an SCC in the lock graph (potential deadlock),
//                    reported with a witness path per edge;
//   rank-inversion   an edge A -> B with rank(A) >= rank(B), i.e. the
//                    static graph disagrees with the declared order.
//
// `// entk-analyze: allow(lock-order)` at a witness acquisition site
// removes that edge (see analysis/suppressions.hpp for marker scope).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/cpp_lexer.hpp"

namespace entk::analysis {

struct LockFinding {
  std::string rule;  ///< "lock-cycle" or "rank-inversion".
  std::string file;  ///< Primary witness file ("" for graph-level).
  int line = 0;
  std::string message;
};

struct LockAnalysis {
  std::vector<LockFinding> findings;
  std::string dot;  ///< Graphviz rendering of the lock graph.
  std::size_t lock_count = 0;
  std::size_t edge_count = 0;
  std::size_t function_count = 0;
};

LockAnalysis analyze_locks(const std::vector<LexedFile>& files);

}  // namespace entk::analysis
