#include "analysis/matrix.hpp"

#include <cmath>

namespace entk::analysis {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  ENTK_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  ENTK_CHECK(cols_ == other.rows_, "matrix shape mismatch in multiply");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  ENTK_CHECK(cols_ == v.size(), "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  ENTK_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shape mismatch in comparison");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::is_symmetric(double tolerance) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace entk::analysis
