// Small dense matrix (row-major) for the analysis kernels. The
// matrices here are O(frames x frames) or O(dims x dims) — hundreds,
// not millions — so a straightforward dense implementation is right.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.hpp"

namespace entk::analysis {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix transposed() const;
  Matrix operator*(const Matrix& other) const;
  std::vector<double> operator*(const std::vector<double>& v) const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  double max_abs_diff(const Matrix& other) const;

  bool is_symmetric(double tolerance = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace entk::analysis
