#include "analysis/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/eigen.hpp"

namespace entk::analysis {

namespace {
/// Flattens a frame to its centred coordinate vector (3N dims).
std::vector<double> features_of(const md::Frame& frame) {
  md::Vec3 centroid{};
  for (const auto& p : frame.positions) centroid += p;
  centroid *= 1.0 / static_cast<double>(frame.positions.size());
  std::vector<double> features;
  features.reserve(frame.positions.size() * 3);
  for (const auto& p : frame.positions) {
    features.push_back(p.x - centroid.x);
    features.push_back(p.y - centroid.y);
    features.push_back(p.z - centroid.z);
  }
  return features;
}
}  // namespace

Result<PcaResult> pca_frames(const std::vector<md::Frame>& frames,
                             std::size_t n_components) {
  if (frames.size() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "PCA needs at least two frames");
  }
  if (n_components == 0) {
    return make_error(Errc::kInvalidArgument,
                      "PCA needs at least one component");
  }
  const std::size_t f_count = frames.size();
  const std::size_t dims = frames.front().positions.size() * 3;
  n_components = std::min({n_components, f_count - 1, dims});

  // Centred data matrix X (frames x dims), kept as rows.
  std::vector<std::vector<double>> x(f_count);
  for (std::size_t f = 0; f < f_count; ++f) {
    if (frames[f].positions.size() * 3 != dims) {
      return make_error(Errc::kInvalidArgument,
                        "frames have inconsistent particle counts");
    }
    x[f] = features_of(frames[f]);
  }
  std::vector<double> mean(dims, 0.0);
  for (const auto& row : x) {
    for (std::size_t d = 0; d < dims; ++d) mean[d] += row[d];
  }
  for (auto& m : mean) m /= static_cast<double>(f_count);
  for (auto& row : x) {
    for (std::size_t d = 0; d < dims; ++d) row[d] -= mean[d];
  }

  // Gram trick: eigen-decompose X X^T (frames x frames).
  Matrix gram(f_count, f_count);
  for (std::size_t a = 0; a < f_count; ++a) {
    for (std::size_t b = a; b < f_count; ++b) {
      const double dot = std::inner_product(x[a].begin(), x[a].end(),
                                            x[b].begin(), 0.0);
      gram(a, b) = dot;
      gram(b, a) = dot;
    }
  }
  auto decomposition = eigen_symmetric(gram);
  if (!decomposition.ok()) return decomposition.status();
  const EigenDecomposition& eig = decomposition.value();

  PcaResult result;
  result.mean = std::move(mean);
  result.eigenvalues.reserve(n_components);
  result.components = Matrix(dims, n_components);
  result.projections = Matrix(f_count, n_components);
  for (std::size_t k = 0; k < n_components; ++k) {
    const double mu = std::max(eig.values[k], 0.0);
    result.eigenvalues.push_back(mu / static_cast<double>(f_count - 1));
    // Feature-space component: v = X^T u / |X^T u|.
    std::vector<double> v(dims, 0.0);
    for (std::size_t f = 0; f < f_count; ++f) {
      const double u = eig.vectors(f, k);
      if (u == 0.0) continue;
      for (std::size_t d = 0; d < dims; ++d) v[d] += u * x[f][d];
    }
    const double norm = std::sqrt(
        std::inner_product(v.begin(), v.end(), v.begin(), 0.0));
    if (norm > 1e-12) {
      for (auto& value : v) value /= norm;
    }
    for (std::size_t d = 0; d < dims; ++d) result.components(d, k) = v[d];
    for (std::size_t f = 0; f < f_count; ++f) {
      result.projections(f, k) = std::inner_product(
          x[f].begin(), x[f].end(), v.begin(), 0.0);
    }
  }
  return result;
}

Result<CocoResult> coco_analysis(
    const std::vector<const md::Trajectory*>& trajectories,
    const CocoOptions& options) {
  if (options.n_components == 0 || options.n_components > 3) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo supports 1-3 PC dimensions");
  }
  if (options.grid_bins < 2) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo needs at least 2 grid bins per axis");
  }
  std::vector<md::Frame> frames;
  for (const auto* trajectory : trajectories) {
    if (trajectory == nullptr) continue;
    frames.insert(frames.end(), trajectory->frames().begin(),
                  trajectory->frames().end());
  }
  if (frames.size() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo needs at least two frames across trajectories");
  }

  CocoResult result;
  auto pca = pca_frames(frames, options.n_components);
  if (!pca.ok()) return pca.status();
  result.pca = pca.take();

  const std::size_t k_dims = result.pca.eigenvalues.size();
  const std::size_t bins = options.grid_bins;

  // Bounding box of the projections, slightly padded so extreme frames
  // land inside the grid.
  std::vector<double> lo(k_dims, 0.0), hi(k_dims, 0.0);
  for (std::size_t k = 0; k < k_dims; ++k) {
    double mn = result.pca.projections(0, k);
    double mx = mn;
    for (std::size_t f = 1; f < frames.size(); ++f) {
      mn = std::min(mn, result.pca.projections(f, k));
      mx = std::max(mx, result.pca.projections(f, k));
    }
    const double pad = std::max(1e-9, 0.05 * (mx - mn));
    lo[k] = mn - pad;
    hi[k] = mx + pad;
  }

  std::size_t n_cells = 1;
  for (std::size_t k = 0; k < k_dims; ++k) n_cells *= bins;
  std::vector<std::size_t> counts(n_cells, 0);
  auto cell_of = [&](std::size_t frame_index) {
    std::size_t cell = 0;
    for (std::size_t k = 0; k < k_dims; ++k) {
      const double span = hi[k] - lo[k];
      const double fraction =
          (result.pca.projections(frame_index, k) - lo[k]) / span;
      auto bin = static_cast<std::size_t>(fraction *
                                          static_cast<double>(bins));
      bin = std::min(bin, bins - 1);
      cell = cell * bins + bin;
    }
    return cell;
  };
  for (std::size_t f = 0; f < frames.size(); ++f) ++counts[cell_of(f)];

  const std::size_t occupied = static_cast<std::size_t>(
      std::count_if(counts.begin(), counts.end(),
                    [](std::size_t c) { return c > 0; }));
  result.occupancy =
      static_cast<double>(occupied) / static_cast<double>(n_cells);

  // Emit new points at the centres of the least-sampled cells
  // (deterministic tie-break on the cell index).
  std::vector<std::size_t> order(n_cells);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return counts[a] < counts[b];
                   });
  const std::size_t n_points = std::min(options.n_new_points, n_cells);
  result.new_points.reserve(n_points);
  for (std::size_t p = 0; p < n_points; ++p) {
    std::size_t cell = order[p];
    std::vector<double> point(k_dims, 0.0);
    for (std::size_t k = k_dims; k-- > 0;) {
      const std::size_t bin = cell % bins;
      cell /= bins;
      const double span = hi[k] - lo[k];
      point[k] = lo[k] + (static_cast<double>(bin) + 0.5) * span /
                             static_cast<double>(bins);
    }
    result.new_points.push_back(std::move(point));
  }
  return result;
}

}  // namespace entk::analysis
