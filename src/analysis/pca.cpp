#include "analysis/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/eigen.hpp"

namespace entk::analysis {

Result<PcaResult> pca_rows(std::vector<std::vector<double>> rows,
                           std::size_t n_components) {
  if (rows.size() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "PCA needs at least two samples");
  }
  if (n_components == 0) {
    return make_error(Errc::kInvalidArgument,
                      "PCA needs at least one component");
  }
  const std::size_t r_count = rows.size();
  const std::size_t dims = rows.front().size();
  if (dims == 0) {
    return make_error(Errc::kInvalidArgument,
                      "PCA needs non-empty feature rows");
  }
  n_components = std::min({n_components, r_count - 1, dims});

  // Centred data matrix X (rows x dims), kept as rows.
  std::vector<std::vector<double>>& x = rows;
  for (const auto& row : x) {
    if (row.size() != dims) {
      return make_error(Errc::kInvalidArgument,
                        "feature rows have inconsistent lengths");
    }
  }
  std::vector<double> mean(dims, 0.0);
  for (const auto& row : x) {
    for (std::size_t d = 0; d < dims; ++d) mean[d] += row[d];
  }
  for (auto& m : mean) m /= static_cast<double>(r_count);
  for (auto& row : x) {
    for (std::size_t d = 0; d < dims; ++d) row[d] -= mean[d];
  }

  // Gram trick: eigen-decompose X X^T (rows x rows).
  Matrix gram(r_count, r_count);
  for (std::size_t a = 0; a < r_count; ++a) {
    for (std::size_t b = a; b < r_count; ++b) {
      const double dot = std::inner_product(x[a].begin(), x[a].end(),
                                            x[b].begin(), 0.0);
      gram(a, b) = dot;
      gram(b, a) = dot;
    }
  }
  auto decomposition = eigen_symmetric(gram);
  if (!decomposition.ok()) return decomposition.status();
  const EigenDecomposition& eig = decomposition.value();

  PcaResult result;
  result.mean = std::move(mean);
  result.eigenvalues.reserve(n_components);
  result.components = Matrix(dims, n_components);
  result.projections = Matrix(r_count, n_components);
  for (std::size_t k = 0; k < n_components; ++k) {
    const double mu = std::max(eig.values[k], 0.0);
    result.eigenvalues.push_back(mu / static_cast<double>(r_count - 1));
    // Feature-space component: v = X^T u / |X^T u|.
    std::vector<double> v(dims, 0.0);
    for (std::size_t r = 0; r < r_count; ++r) {
      const double u = eig.vectors(r, k);
      if (u == 0.0) continue;
      for (std::size_t d = 0; d < dims; ++d) v[d] += u * x[r][d];
    }
    const double norm = std::sqrt(
        std::inner_product(v.begin(), v.end(), v.begin(), 0.0));
    if (norm > 1e-12) {
      for (auto& value : v) value /= norm;
    }
    for (std::size_t d = 0; d < dims; ++d) result.components(d, k) = v[d];
    for (std::size_t r = 0; r < r_count; ++r) {
      result.projections(r, k) = std::inner_product(
          x[r].begin(), x[r].end(), v.begin(), 0.0);
    }
  }
  return result;
}

Result<CocoResult> coco_rows(std::vector<std::vector<double>> rows,
                             const CocoOptions& options) {
  if (options.n_components == 0 || options.n_components > 3) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo supports 1-3 PC dimensions");
  }
  if (options.grid_bins < 2) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo needs at least 2 grid bins per axis");
  }
  if (rows.size() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo needs at least two samples");
  }
  const std::size_t r_count = rows.size();

  CocoResult result;
  auto pca = pca_rows(std::move(rows), options.n_components);
  if (!pca.ok()) return pca.status();
  result.pca = pca.take();

  const std::size_t k_dims = result.pca.eigenvalues.size();
  const std::size_t bins = options.grid_bins;

  // Bounding box of the projections, slightly padded so extreme
  // samples land inside the grid.
  std::vector<double> lo(k_dims, 0.0), hi(k_dims, 0.0);
  for (std::size_t k = 0; k < k_dims; ++k) {
    double mn = result.pca.projections(0, k);
    double mx = mn;
    for (std::size_t r = 1; r < r_count; ++r) {
      mn = std::min(mn, result.pca.projections(r, k));
      mx = std::max(mx, result.pca.projections(r, k));
    }
    const double pad = std::max(1e-9, 0.05 * (mx - mn));
    lo[k] = mn - pad;
    hi[k] = mx + pad;
  }

  std::size_t n_cells = 1;
  for (std::size_t k = 0; k < k_dims; ++k) n_cells *= bins;
  std::vector<std::size_t> counts(n_cells, 0);
  auto cell_of = [&](std::size_t row_index) {
    std::size_t cell = 0;
    for (std::size_t k = 0; k < k_dims; ++k) {
      const double span = hi[k] - lo[k];
      const double fraction =
          (result.pca.projections(row_index, k) - lo[k]) / span;
      auto bin = static_cast<std::size_t>(fraction *
                                          static_cast<double>(bins));
      bin = std::min(bin, bins - 1);
      cell = cell * bins + bin;
    }
    return cell;
  };
  for (std::size_t r = 0; r < r_count; ++r) ++counts[cell_of(r)];

  const std::size_t occupied = static_cast<std::size_t>(
      std::count_if(counts.begin(), counts.end(),
                    [](std::size_t c) { return c > 0; }));
  result.occupancy =
      static_cast<double>(occupied) / static_cast<double>(n_cells);

  // Emit new points at the centres of the least-sampled cells
  // (deterministic tie-break on the cell index).
  std::vector<std::size_t> order(n_cells);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return counts[a] < counts[b];
                   });
  const std::size_t n_points = std::min(options.n_new_points, n_cells);
  result.new_points.reserve(n_points);
  for (std::size_t p = 0; p < n_points; ++p) {
    std::size_t cell = order[p];
    std::vector<double> point(k_dims, 0.0);
    for (std::size_t k = k_dims; k-- > 0;) {
      const std::size_t bin = cell % bins;
      cell /= bins;
      const double span = hi[k] - lo[k];
      point[k] = lo[k] + (static_cast<double>(bin) + 0.5) * span /
                             static_cast<double>(bins);
    }
    result.new_points.push_back(std::move(point));
  }
  return result;
}

}  // namespace entk::analysis
