// PCA over feature rows + CoCo-style resampling.
//
// CoCo ("complementary coordinates", Laughton et al. 2009) enriches an
// MD ensemble by (1) running PCA over all sampled conformations,
// (2) projecting every sample into the leading PC subspace, (3) finding
// *unsampled* regions of that subspace on a grid, and (4) emitting new
// start points there. This module implements exactly that pipeline on
// plain feature rows — one row of doubles per sample — so the analysis
// layer stays a pure-math leaf. The frame/trajectory adapters
// (md::pca_frames, md::coco_analysis) live in md/ensemble_analysis.hpp
// and the md.coco kernel plugin wraps them. The analysis is serial and
// its cost grows with the total number of rows — the property
// Figures 7/8 of the paper rely on.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/matrix.hpp"
#include "common/status.hpp"

namespace entk::analysis {

struct PcaResult {
  std::vector<double> mean;          ///< Mean feature vector.
  std::vector<double> eigenvalues;   ///< Descending variances.
  Matrix components;                 ///< components(d, k): PC k.
  Matrix projections;                ///< projections(r, k): row r on PC k.
};

/// PCA over feature rows (all rows must have equal length).
/// `n_components` caps the retained PCs. The covariance is computed in
/// sample space (Gram trick) so the cost is O(R^2 D + R^3) for R rows,
/// D dimensions. Takes the rows by value: they are centred in place.
Result<PcaResult> pca_rows(std::vector<std::vector<double>> rows,
                           std::size_t n_components);

struct CocoOptions {
  std::size_t n_components = 2;   ///< PC subspace dimension (<= 3).
  std::size_t grid_bins = 10;     ///< Bins per PC axis.
  std::size_t n_new_points = 8;   ///< Start points to generate.
};

struct CocoResult {
  PcaResult pca;
  /// New start points in PC space, one per requested point, placed in
  /// the emptiest grid cells (frontier expansion).
  std::vector<std::vector<double>> new_points;
  /// Fraction of grid cells with at least one sample (coverage).
  double occupancy = 0.0;
};

/// Runs the CoCo pipeline over the given feature rows.
Result<CocoResult> coco_rows(std::vector<std::vector<double>> rows,
                             const CocoOptions& options);

}  // namespace entk::analysis
