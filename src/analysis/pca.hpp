// PCA over trajectory frames + CoCo-style resampling.
//
// CoCo ("complementary coordinates", Laughton et al. 2009) enriches an
// MD ensemble by (1) running PCA over all sampled conformations,
// (2) projecting every frame into the leading PC subspace, (3) finding
// *unsampled* regions of that subspace on a grid, and (4) emitting new
// start points there. This module implements exactly that pipeline on
// our trajectory type; the md.coco kernel plugin wraps it. The
// analysis is serial and its cost grows with the total number of
// frames — the property Figures 7/8 of the paper rely on.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/matrix.hpp"
#include "common/status.hpp"
#include "md/trajectory.hpp"

namespace entk::analysis {

struct PcaResult {
  std::vector<double> mean;          ///< Mean feature vector (3N dims).
  std::vector<double> eigenvalues;   ///< Descending variances.
  Matrix components;                 ///< components(d, k): PC k.
  Matrix projections;                ///< projections(f, k): frame f on PC k.
};

/// PCA over the concatenated (x,y,z) coordinates of all frames, after
/// centroid removal per frame. `n_components` caps the retained PCs.
/// The covariance is computed in frame space (Gram trick) so the cost
/// is O(F^2 D + F^3) for F frames, D dimensions.
Result<PcaResult> pca_frames(const std::vector<md::Frame>& frames,
                             std::size_t n_components);

struct CocoOptions {
  std::size_t n_components = 2;   ///< PC subspace dimension (<= 3).
  std::size_t grid_bins = 10;     ///< Bins per PC axis.
  std::size_t n_new_points = 8;   ///< Start points to generate.
};

struct CocoResult {
  PcaResult pca;
  /// New start points in PC space, one per requested point, placed in
  /// the emptiest grid cells (frontier expansion).
  std::vector<std::vector<double>> new_points;
  /// Fraction of grid cells with at least one sample (coverage).
  double occupancy = 0.0;
};

/// Runs the CoCo pipeline over all frames of all trajectories.
Result<CocoResult> coco_analysis(
    const std::vector<const md::Trajectory*>& trajectories,
    const CocoOptions& options);

}  // namespace entk::analysis
