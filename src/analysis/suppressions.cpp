#include "analysis/suppressions.hpp"

#include <algorithm>
#include <cctype>
#include <vector>

namespace entk::analysis {

namespace {

/// Extracts (rule, is_file_scope) markers matching `tag` ("<tool>:
/// allow") from one comment's text.
std::vector<std::pair<std::string, bool>> parse_markers(
    const std::string& text, const std::string& tag) {
  std::vector<std::pair<std::string, bool>> result;
  std::size_t at = 0;
  while ((at = text.find(tag, at)) != std::string::npos) {
    std::size_t cursor = at + tag.size();
    bool file_scope = false;
    if (text.compare(cursor, 5, "-file") == 0) {
      file_scope = true;
      cursor += 5;
    }
    if (cursor < text.size() && text[cursor] == '(') {
      const std::size_t close = text.find(')', cursor);
      if (close != std::string::npos) {
        result.emplace_back(text.substr(cursor + 1, close - cursor - 1),
                            file_scope);
      }
    }
    at = cursor;
  }
  return result;
}

/// Last line of the statement starting at (or after) `first`: the line
/// carrying the first ';' or '{' at bracket depth zero. Falls back to
/// `first` when no terminator appears within a sane window (the old
/// one-line behaviour).
int statement_end(const std::vector<std::string>& code_lines, int first) {
  constexpr int kMaxStatementLines = 40;
  const int limit = std::min(static_cast<int>(code_lines.size()),
                             first + kMaxStatementLines - 1);
  int depth = 0;
  for (int line = first; line <= limit; ++line) {
    for (const char c : code_lines[static_cast<std::size_t>(line - 1)]) {
      if (c == '(' || c == '[') {
        ++depth;
      } else if (c == ')' || c == ']') {
        depth = std::max(0, depth - 1);
      } else if (depth == 0 && (c == ';' || c == '{')) {
        return line;
      }
    }
  }
  return first;
}

}  // namespace

SuppressionSet scan_suppressions(const LexedFile& file,
                                 const std::string& tool) {
  SuppressionSet out;
  const std::string tag = tool + ": allow";
  for (const Comment& comment : file.comments) {
    for (const auto& [rule, file_scope] :
         parse_markers(comment.text, tag)) {
      if (file_scope) {
        out.file_allows.insert(rule);
        continue;
      }
      for (int line = comment.line; line <= comment.end_line; ++line) {
        out.line_allows.insert({rule, line});
      }
      if (comment.own_line) {
        const int last =
            statement_end(file.code_lines, comment.end_line + 1);
        for (int line = comment.end_line + 1; line <= last; ++line) {
          out.line_allows.insert({rule, line});
        }
      }
    }
  }
  return out;
}

}  // namespace entk::analysis
