// Shared suppression markers for the in-repo analyzers.
//
// Both entk-lint and entk-analyze honour the same comment grammar,
// keyed by the tool name:
//
//   // <tool>: allow(<rule>)        suppress <rule> here
//   // <tool>: allow-file(<rule>)   suppress <rule> for this file
//
// A marker in a trailing comment covers its own line. A marker in a
// standalone comment (nothing but whitespace before it) covers the
// whole FOLLOWING statement — through the line with the terminating
// ';' or opening '{' at bracket depth zero — so multi-line calls and
// declarations need only one marker above them, not one per line.
// Always pair a suppression with a justification.
#pragma once

#include <set>
#include <string>
#include <utility>

#include "analysis/cpp_lexer.hpp"

namespace entk::analysis {

struct SuppressionSet {
  std::set<std::string> file_allows;
  /// (rule, 1-based line) pairs covered by line-scoped markers.
  std::set<std::pair<std::string, int>> line_allows;

  bool allows(const std::string& rule, int line) const {
    return file_allows.count(rule) != 0 ||
           line_allows.count({rule, line}) != 0;
  }
};

/// Collects `<tool>: allow(...)` markers from a lexed file. `tool` is
/// the marker prefix, e.g. "entk-lint" or "entk-analyze".
SuppressionSet scan_suppressions(const LexedFile& file,
                                 const std::string& tool);

}  // namespace entk::analysis
