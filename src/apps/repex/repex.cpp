#include "apps/repex/repex.hpp"

#include <fstream>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "md/remd.hpp"
#include "pilot/agent.hpp"

namespace entk::apps {

namespace fs = std::filesystem;

Status RepexConfig::validate() const {
  if (n_replicas < 2) {
    return make_error(Errc::kInvalidArgument,
                      "repex needs at least 2 replicas");
  }
  if (n_cycles < 1) {
    return make_error(Errc::kInvalidArgument,
                      "repex needs at least 1 cycle");
  }
  if (t_min <= 0.0 || t_max <= t_min) {
    return make_error(Errc::kInvalidArgument,
                      "repex needs 0 < t_min < t_max");
  }
  if (steps_per_cycle < 1 || n_particles < 2) {
    return make_error(Errc::kInvalidArgument,
                      "repex needs steps_per_cycle >= 1 and "
                      "n_particles >= 2");
  }
  if (dimension == Dimension::kHamiltonian) {
    if (!asynchronous) {
      return make_error(Errc::kInvalidArgument,
                        "repex: Hamiltonian exchange is pairwise-only; "
                        "set asynchronous = true");
    }
    if (eps_min <= 0.0 || eps_max <= eps_min) {
      return make_error(Errc::kInvalidArgument,
                        "repex needs 0 < eps_min < eps_max");
    }
  }
  return Status::ok();
}

RepexApplication::RepexApplication(RepexConfig config)
    : config_(std::move(config)) {
  // The ladder holds temperatures (kTemperature) or potential scales
  // (kHamiltonian) — geometric in both cases.
  ladder_ = config_.dimension == RepexConfig::Dimension::kHamiltonian
                ? md::geometric_ladder(
                      static_cast<std::size_t>(config_.n_replicas),
                      config_.eps_min, config_.eps_max)
                : md::geometric_ladder(
                      static_cast<std::size_t>(config_.n_replicas),
                      config_.t_min, config_.t_max);
  rung_of_.resize(static_cast<std::size_t>(config_.n_replicas));
  leg_.assign(rung_of_.size(), -1);
  for (std::size_t r = 0; r < rung_of_.size(); ++r) rung_of_[r] = r;
  if (!leg_.empty()) leg_[0] = 0;  // the rung-0 replica is armed
}

Result<RepexReport> RepexApplication::run(core::ResourceHandle& handle) {
  ENTK_RETURN_IF_ERROR(config_.validate());
  if (!handle.allocated()) {
    return make_error(Errc::kFailedPrecondition,
                      "repex needs an allocated resource handle");
  }
  const fs::path shared =
      handle.pilot()->agent()->shared_directory();
  if (shared.empty()) {
    return make_error(Errc::kFailedPrecondition,
                      "repex needs a backend with a shared directory "
                      "(use the local backend)");
  }

  RepexReport report;
  round_trips_ = 0;
  report.rung_history.push_back(rung_of_);
  for (Count cycle = 1; cycle <= config_.n_cycles; ++cycle) {
    ENTK_RETURN_IF_ERROR(run_cycle(handle, cycle, shared, &report));
    note_round_trips();
    report.rung_history.push_back(rung_of_);
    report.cycles_completed = cycle;
  }
  report.round_trips = round_trips_;
  return report;
}

Status RepexApplication::run_cycle(core::ResourceHandle& handle,
                                   Count cycle, const fs::path& shared,
                                   RepexReport* report) {
  // replica_at[rung] — the pattern's `instance` indexes *rungs* so the
  // pairwise mode's neighbour pairing happens in temperature space.
  std::vector<Count> replica_at(rung_of_.size());
  for (std::size_t r = 0; r < rung_of_.size(); ++r) {
    replica_at[rung_of_[r]] = static_cast<Count>(r);
  }

  core::EnsembleExchange pattern(
      config_.n_replicas, 1,
      config_.asynchronous
          ? core::EnsembleExchange::ExchangeMode::kPairwise
          : core::EnsembleExchange::ExchangeMode::kGlobalSweep);
  pattern.set_cycle_offset(cycle - 1);  // alternate pair parity

  pattern.set_simulation([&, cycle](const core::StageContext& context) {
    const Count replica = replica_at[context.instance];
    core::TaskSpec spec;
    spec.kernel = "md.simulate";
    spec.args.set("system", config_.system);
    spec.args.set("n_particles", config_.n_particles);
    spec.args.set("steps", config_.steps_per_cycle);
    spec.args.set("sample_every", config_.sample_every);
    if (config_.dimension == RepexConfig::Dimension::kHamiltonian) {
      spec.args.set("temperature", config_.t_min);
      spec.args.set("epsilon", ladder_[context.instance]);
    } else {
      spec.args.set("temperature", ladder_[context.instance]);
    }
    spec.args.set("seed", static_cast<std::int64_t>(
                              config_.seed + 1000 * cycle + replica));
    spec.args.set("out", "traj_r" + std::to_string(replica) + "_c" +
                             std::to_string(cycle) + ".dat");
    spec.args.set("energy_out",
                  "replica_" + std::to_string(replica) + ".energy");
    if (cycle > 1) {
      spec.args.set("start_from",
                    "traj_r" + std::to_string(replica) + "_c" +
                        std::to_string(cycle - 1) + ".dat");
    }
    return spec;
  });

  if (config_.asynchronous) {
    pattern.set_pair_exchange([&, cycle](Count, Count slot_a,
                                         Count slot_b) {
      const Count replica_a = replica_at[slot_a];
      const Count replica_b = replica_at[slot_b];
      core::TaskSpec spec;
      spec.kernel = "md.exchange";
      spec.args.set("pair_a", replica_a);
      spec.args.set("pair_b", replica_b);
      if (config_.dimension == RepexConfig::Dimension::kHamiltonian) {
        spec.args.set("eps_a", ladder_[slot_a]);
        spec.args.set("eps_b", ladder_[slot_b]);
        spec.args.set("temperature", config_.t_min);
        spec.args.set("traj_a", "traj_r" + std::to_string(replica_a) +
                                    "_c" + std::to_string(cycle) +
                                    ".dat");
        spec.args.set("traj_b", "traj_r" + std::to_string(replica_b) +
                                    "_c" + std::to_string(cycle) +
                                    ".dat");
        spec.args.set("system", config_.system);
        spec.args.set("n_particles", config_.n_particles);
      } else {
        spec.args.set("t_a", ladder_[slot_a]);
        spec.args.set("t_b", ladder_[slot_b]);
      }
      spec.args.set("seed",
                    static_cast<std::int64_t>(config_.seed + 77 * cycle));
      spec.args.set("out", "exchange_pair_" + std::to_string(slot_a) +
                               "_" + std::to_string(slot_b) + "_c" +
                               std::to_string(cycle) + ".txt");
      return spec;
    });
  } else {
    pattern.set_exchange([&, cycle](const core::StageContext&) {
      std::vector<std::string> rungs;
      rungs.reserve(rung_of_.size());
      for (const std::size_t rung : rung_of_) {
        rungs.push_back(std::to_string(rung));
      }
      core::TaskSpec spec;
      spec.kernel = "md.exchange";
      spec.args.set("n_replicas", config_.n_replicas);
      spec.args.set("t_min", config_.t_min);
      spec.args.set("t_max", config_.t_max);
      spec.args.set("sweep", cycle - 1);
      spec.args.set("rungs", join(rungs, ","));
      spec.args.set("seed",
                    static_cast<std::int64_t>(config_.seed + 77 * cycle));
      spec.args.set("out",
                    "exchange_c" + std::to_string(cycle) + ".txt");
      return spec;
    });
  }

  auto run_report = handle.run(pattern);
  if (!run_report.ok()) return run_report.status();
  ENTK_RETURN_IF_ERROR(run_report.value().outcome);
  report->total_ttc += run_report.value().overheads.ttc;
  report->tasks_executed += run_report.value().units.size();

  return config_.asynchronous
             ? apply_async_exchange(shared, cycle, report)
             : apply_sync_exchange(shared, cycle, report);
}

Status RepexApplication::apply_sync_exchange(const fs::path& shared,
                                             Count cycle,
                                             RepexReport* report) {
  const fs::path path =
      shared / ("exchange_c" + std::to_string(cycle) + ".txt");
  std::ifstream in(path);
  std::string key;
  std::size_t attempted = 0;
  std::size_t accepted = 0;
  if (!(in >> key >> attempted) || key != "attempted" ||
      !(in >> key >> accepted) || key != "accepted") {
    return make_error(Errc::kIoError,
                      "repex: malformed exchange result " + path.string());
  }
  report->swaps_attempted += attempted;
  report->swaps_accepted += accepted;
  std::int64_t replica = 0;
  std::size_t rung = 0;
  double temperature = 0.0;
  while (in >> replica >> rung >> temperature) {
    if (replica < 0 ||
        static_cast<std::size_t>(replica) >= rung_of_.size() ||
        rung >= rung_of_.size()) {
      return make_error(Errc::kIoError,
                        "repex: assignment out of range in " +
                            path.string());
    }
    rung_of_[static_cast<std::size_t>(replica)] = rung;
  }
  return Status::ok();
}

Status RepexApplication::apply_async_exchange(const fs::path& shared,
                                              Count cycle,
                                              RepexReport* report) {
  // The 1-cycle pattern ran with cycle_offset = cycle - 1, so its pair
  // parity was (1 - 1 + cycle - 1) % 2.
  const Count parity = (cycle - 1) % 2;
  std::vector<Count> replica_at(rung_of_.size());
  for (std::size_t r = 0; r < rung_of_.size(); ++r) {
    replica_at[rung_of_[r]] = static_cast<Count>(r);
  }
  for (Count low = parity; low + 1 < config_.n_replicas; low += 2) {
    const fs::path path =
        shared / ("exchange_pair_" + std::to_string(low) + "_" +
                  std::to_string(low + 1) + "_c" + std::to_string(cycle) +
                  ".txt");
    std::ifstream in(path);
    std::string key;
    std::size_t attempted = 0;
    std::size_t accepted = 0;
    if (!(in >> key >> attempted) || key != "attempted" ||
        !(in >> key >> accepted) || key != "accepted") {
      return make_error(Errc::kIoError,
                        "repex: malformed pair result " + path.string());
    }
    report->swaps_attempted += attempted;
    report->swaps_accepted += accepted;
    if (accepted != 0) {
      const auto replica_lo =
          static_cast<std::size_t>(replica_at[low]);
      const auto replica_hi =
          static_cast<std::size_t>(replica_at[low + 1]);
      std::swap(rung_of_[replica_lo], rung_of_[replica_hi]);
    }
  }
  return Status::ok();
}

void RepexApplication::note_round_trips() {
  // Per-replica legs: counts completed bottom -> top -> bottom
  // traversals of the temperature ladder (the standard REMD mixing
  // diagnostic).
  for (std::size_t r = 0; r < rung_of_.size(); ++r) {
    const std::size_t rung = rung_of_[r];
    if (leg_[r] == -1) {
      if (rung == 0) leg_[r] = 0;
      continue;
    }
    if (leg_[r] == 0 && rung == rung_of_.size() - 1) {
      leg_[r] = 1;  // reached the top; heading down
    } else if (leg_[r] == 1 && rung == 0) {
      leg_[r] = 0;  // completed a round trip
      ++round_trips_;
    }
  }
}

}  // namespace entk::apps
