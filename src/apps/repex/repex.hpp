// RepEx: a replica-exchange application framework built ON TOP of the
// Ensemble Toolkit — the C++ analogue of Treikalis et al., "RepEx: A
// Flexible Framework for Scalable Replica Exchange Molecular Dynamics
// Simulations" (ICPP 2016), which the EnTK paper cites as a companion
// application ([32]).
//
// Where the EnTK patterns expose *mechanism* (run these tasks, couple
// them like so), RepEx adds the *science bookkeeping* a production
// REMD study needs: persistent replica->rung assignment across cycles,
// synchronous (global-sweep) or asynchronous (pairwise, no global
// barrier) exchange, acceptance statistics, temperature random-walk
// histories and round-trip counting.
//
// Runs on the local backend (real MD, real exchange decisions read
// back from the pilot's shared space).
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/resource_handle.hpp"

namespace entk::apps {

struct RepexConfig {
  Count n_replicas = 8;
  Count n_cycles = 4;
  /// false: synchronous (one global exchange task per cycle);
  /// true: asynchronous (one exchange task per ready neighbour pair,
  /// exchanges fire as soon as both partners finish).
  bool asynchronous = false;

  /// Exchange dimension: replicas walk a temperature ladder, or a
  /// Hamiltonian (potential-scale lambda) ladder at one temperature.
  /// Hamiltonian exchange needs the full configurations for its cross
  /// energies and is implemented pairwise: it requires
  /// asynchronous = true.
  enum class Dimension { kTemperature, kHamiltonian };
  Dimension dimension = Dimension::kTemperature;

  // Temperature ladder (kTemperature); t_min is also the common
  // temperature of a Hamiltonian study.
  double t_min = 0.8;
  double t_max = 2.0;

  // Potential-scale ladder (kHamiltonian).
  double eps_min = 0.6;
  double eps_max = 1.0;

  // Per-replica MD (the md.simulate kernel's knobs).
  std::string system = "dipeptide";
  Count n_particles = 100;
  Count steps_per_cycle = 120;
  Count sample_every = 12;
  std::uint64_t seed = 20160802;

  Status validate() const;
};

struct RepexReport {
  Count cycles_completed = 0;
  std::size_t swaps_attempted = 0;
  std::size_t swaps_accepted = 0;
  double acceptance_ratio() const {
    return swaps_attempted == 0
               ? 0.0
               : static_cast<double>(swaps_accepted) /
                     static_cast<double>(swaps_attempted);
  }
  /// rung_history[cycle][replica] = rung held *after* that cycle's
  /// exchange (entry 0 is the initial identity assignment).
  std::vector<std::vector<std::size_t>> rung_history;
  /// Completed bottom->top->bottom traversals summed over replicas.
  std::size_t round_trips = 0;
  /// Sum of the per-cycle TTCs.
  Duration total_ttc = 0.0;
  std::size_t tasks_executed = 0;
};

class RepexApplication {
 public:
  explicit RepexApplication(RepexConfig config);

  const RepexConfig& config() const { return config_; }

  /// Current temperature ladder (ascending).
  const std::vector<double>& ladder() const { return ladder_; }

  /// Runs the full study on an allocated resource handle. The handle's
  /// backend must expose a shared directory (local backend).
  Result<RepexReport> run(core::ResourceHandle& handle);

 private:
  /// One cycle: MD for every replica at its current rung, then the
  /// exchange stage; returns the per-cycle report contributions.
  Status run_cycle(core::ResourceHandle& handle, Count cycle,
                   const std::filesystem::path& shared,
                   RepexReport* report);

  Status apply_sync_exchange(const std::filesystem::path& shared,
                             Count cycle, RepexReport* report);
  Status apply_async_exchange(const std::filesystem::path& shared,
                              Count cycle, RepexReport* report);
  void note_round_trips();

  RepexConfig config_;
  std::vector<double> ladder_;
  std::vector<std::size_t> rung_of_;  ///< replica -> rung
  /// Round-trip tracking: -1 = not yet at the bottom, 0 = heading up
  /// (must visit the top), 1 = heading down (must revisit the bottom).
  std::vector<int> leg_;
  std::size_t round_trips_ = 0;
};

}  // namespace entk::apps
