#include "ckpt/checkpointed_run.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "common/uid.hpp"
#include "pilot/sim_backend.hpp"
#include "sim/machine.hpp"

namespace entk::ckpt {

Result<CheckpointedRunResult> run_workload_with_checkpoints(
    const core::WorkloadSpec& original,
    const kernels::KernelRegistry& registry,
    const CheckpointedRunOptions& options) {
  if (options.directory.empty()) {
    return make_error(Errc::kInvalidArgument,
                      "checkpointed runs need a checkpoint directory");
  }
  auto resolved = core::resolve_workload(original, registry);
  if (!resolved.ok()) return resolved.status();
  const core::WorkloadSpec& spec = resolved.value();
  if (spec.backend != "sim") {
    return make_error(Errc::kInvalidArgument,
                      "checkpointing requires the sim backend "
                      "(unit payloads of the local backend cannot be "
                      "serialized)");
  }
  const std::string workload_text = core::serialize_workload(spec);

  std::optional<Snapshot> snapshot;
  if (!options.resume_path.empty()) {
    auto loaded = read_snapshot_file(options.resume_path);
    if (!loaded.ok()) return loaded.status();
    snapshot = loaded.take();
    if (!snapshot->workload_text.empty() &&
        snapshot->workload_text != workload_text) {
      return make_error(Errc::kInvalidArgument,
                        options.resume_path +
                            ": snapshot was taken from a different "
                            "workload than the one passed to --resume");
    }
    // The allocate() below must replay the original pilot uids.
    reset_uid_counters_for_testing();
  }

  auto pattern = core::build_pattern(spec);
  if (!pattern.ok()) return pattern.status();

  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  auto machine = catalog.find(spec.machine);
  if (!machine.ok()) return machine.status();
  pilot::SimBackend backend(machine.take());

  core::ResourceOptions resource_options;
  resource_options.cores = spec.cores;
  resource_options.runtime = spec.runtime;
  resource_options.scheduler_policy = spec.scheduler;
  core::ResourceHandle handle(backend, registry, resource_options);
  ENTK_RETURN_IF_ERROR(handle.allocate());

  Coordinator::Options coordinator_options;
  coordinator_options.directory = options.directory;
  coordinator_options.policy = options.policy;
  coordinator_options.crash_after_snapshots =
      options.crash_after_snapshots;
  coordinator_options.stop_requested = options.stop_requested;
  Coordinator coordinator(backend, handle,
                          std::move(coordinator_options));
  coordinator.set_identity(spec.pattern, workload_text);
  if (snapshot.has_value()) {
    ENTK_RETURN_IF_ERROR(coordinator.restore_runtime(*snapshot));
  }
  pattern.value()->set_graph_run_observer(&coordinator);

  auto report = handle.run(*pattern.value());
  if (!report.ok()) return report.status();

  CheckpointedRunResult result;
  result.report = report.take();
  result.snapshots_written = coordinator.snapshots_written();
  result.last_snapshot_path = coordinator.last_snapshot_path();
  result.checkpoint_stop =
      Coordinator::is_checkpoint_stop(result.report.outcome);
  if (result.report.outcome.ok()) (void)handle.deallocate();
  return result;
}

}  // namespace entk::ckpt
