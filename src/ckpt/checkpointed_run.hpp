// Checkpointed workload runs: core::run_workload with a Coordinator
// attached — the front door `entk-run --checkpoint-dir/--resume` uses.
//
// A fresh run writes snapshots per the policy; a resumed run reads a
// snapshot, verifies it matches the workload, rebuilds the runtime and
// continues from the captured cut. A run stopped by the stop_requested
// hook (or the crash_after_snapshots test hook) reports
// checkpoint_stop = true with RunReport::outcome holding the
// checkpoint-stop status; the written snapshot resumes it.
//
// Sim backend only (see snapshot.hpp for why).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ckpt/coordinator.hpp"
#include "common/status.hpp"
#include "core/resource_handle.hpp"
#include "core/workload_file.hpp"
#include "kernels/registry.hpp"

namespace entk::ckpt {

struct CheckpointedRunOptions {
  /// Snapshot directory (required; created if missing).
  std::string directory;
  CheckpointPolicy policy;
  /// Snapshot file to resume from ("" = fresh start).
  std::string resume_path;
  /// Test hook, see Coordinator::Options.
  std::uint64_t crash_after_snapshots = 0;
  /// Signal hook, see Coordinator::Options.
  std::function<bool()> stop_requested;
};

struct CheckpointedRunResult {
  core::RunReport report;
  std::uint64_t snapshots_written = 0;
  /// Path of the newest snapshot ("" if none was written).
  std::string last_snapshot_path;
  /// The run was deliberately stopped (signal or crash hook) after
  /// writing a final snapshot; resume with last_snapshot_path.
  bool checkpoint_stop = false;
};

/// core::run_workload with checkpoint/restart. The spec must use the
/// sim backend; a resumed run must pass the same workload the snapshot
/// was taken from (verified against the embedded workload text).
Result<CheckpointedRunResult> run_workload_with_checkpoints(
    const core::WorkloadSpec& spec,
    const kernels::KernelRegistry& registry,
    const CheckpointedRunOptions& options);

}  // namespace entk::ckpt
