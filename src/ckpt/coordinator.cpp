#include "ckpt/coordinator.hpp"

#include <algorithm>
#include <filesystem>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "common/uid.hpp"
#include "core/execution_plugin.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pilot/sim_agent.hpp"

namespace entk::ckpt {

namespace {

/// Message prefix of the deliberate checkpoint-stop status.
constexpr const char* kStopPrefix = "checkpoint:";

std::string snapshot_basename(std::uint64_t index) {
  std::ostringstream name;
  name << "ckpt-" << std::setw(6) << std::setfill('0') << index
       << ".entkckpt";
  return name.str();
}

}  // namespace

Coordinator::Coordinator(pilot::SimBackend& backend,
                         core::Session& session, Options options)
    : backend_(backend), session_(session), options_(std::move(options)) {
  ENTK_CHECK(!options_.directory.empty(),
             "checkpoint coordinator needs a directory");
  ENTK_CHECK(session_.unit_manager() != nullptr,
             "checkpoint coordinator needs an allocated session");
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  // A failure here surfaces as a diagnostic write error on capture.
  settled_token_ = session_.unit_manager()->add_settled_observer(
      [this](const pilot::ComputeUnitPtr&, pilot::UnitState) {
        ++settled_count_;
      });
  observer_registered_ = true;
  last_capture_time_ = backend_.engine().now();
  step_hook_token_ = backend_.add_step_hook([this] { return on_step(); });
}

Coordinator::Coordinator(pilot::SimBackend& backend,
                         core::ResourceHandle& handle, Options options)
    : Coordinator(backend, handle.session(), std::move(options)) {}

Coordinator::~Coordinator() {
  backend_.remove_step_hook(step_hook_token_);
  // The session may already have deallocated (which destroys the unit
  // manager and with it the observer list).
  if (observer_registered_ && session_.unit_manager() != nullptr) {
    session_.unit_manager()->remove_settled_observer(settled_token_);
  }
}

void Coordinator::set_identity(std::string pattern_name,
                               std::string workload_text) {
  pattern_name_ = std::move(pattern_name);
  workload_text_ = std::move(workload_text);
}

bool Coordinator::is_checkpoint_stop(const Status& status) {
  return status.code() == Errc::kCancelled &&
         status.message().rfind(kStopPrefix, 0) == 0;
}

// ----------------------------------------------------------- capture

bool Coordinator::capture_preconditions_met() const {
  const auto& pilots = session_.pilots();
  // A replacement pilot (restart_failed_pilots) breaks the allocate
  // replay the restore path depends on, so runs that used one are not
  // checkpointable from that point on.
  if (pilots.size() !=
      static_cast<std::size_t>(session_.options().n_pilots)) {
    return false;
  }
  for (const auto& held : pilots) {
    if (held->state() != pilot::PilotState::kActive) return false;
    auto* agent = dynamic_cast<pilot::SimAgent*>(held->agent());
    if (agent == nullptr || !agent->started()) return false;
  }
  return true;
}

Status Coordinator::on_step() {
  if (runner_ == nullptr) return Status::ok();  // no run in flight
  const bool stop = options_.stop_requested && options_.stop_requested();
  bool due = stop;
  const TimePoint now = backend_.engine().now();
  if (!due && options_.policy.every_settled > 0 &&
      settled_count_ - last_capture_settled_ >=
          options_.policy.every_settled) {
    due = true;
  }
  if (!due && options_.policy.every_interval > 0.0 &&
      now - last_capture_time_ >= options_.policy.every_interval) {
    due = true;
  }
  if (!due) return Status::ok();
  // Defer (do not fail) while a pilot is down: the next step after the
  // recovery completes takes the snapshot.
  if (!capture_preconditions_met()) return Status::ok();
  ENTK_RETURN_IF_ERROR(capture_and_write());
  if (stop) {
    return make_error(Errc::kCancelled,
                      std::string(kStopPrefix) +
                          " stop requested; snapshot written to " +
                          last_path_);
  }
  if (options_.crash_after_snapshots > 0 &&
      snapshots_written_ >= options_.crash_after_snapshots) {
    return make_error(Errc::kCancelled,
                      std::string(kStopPrefix) +
                          " simulated crash after snapshot " +
                          std::to_string(snapshots_written_));
  }
  return Status::ok();
}

Result<Snapshot> Coordinator::capture() {
  Snapshot snap;
  snap.machine = backend_.machine().name;
  const auto& options = session_.options();
  snap.cores = options.cores;
  snap.n_pilots = options.n_pilots;
  snap.runtime = options.runtime;
  snap.scheduler_policy = options.scheduler_policy;
  snap.pattern_name = pattern_name_;
  snap.session = session_.name();
  snap.workload_text = workload_text_;

  sim::Engine& engine = backend_.engine();
  snap.engine_now = engine.now();
  snap.uid_counters = snapshot_uid_counters();
  if (!snap.session.empty()) {
    // A named session's snapshot carries only its own uid families
    // ("<name>.unit", "<name>.pilot", ...): restoring it while other
    // sessions keep running must not capture — let alone later stomp —
    // their counters.
    const std::string dotted = snap.session + ".";
    std::erase_if(snap.uid_counters, [&dotted](const auto& entry) {
      return entry.first.compare(0, dotted.size(), dotted) != 0;
    });
  }

  pilot::UnitManager* manager = session_.unit_manager();
  for (const auto& unit : plugin_->all_units()) {
    UnitRecord record;
    record.uid = unit->uid();
    record.description = unit->description();
    record.state = unit->save_state();
    if (!manager->unit_entry(unit.get(), record.settled,
                             record.notified)) {
      return make_error(Errc::kInternal,
                        "unit " + record.uid +
                            " is not managed; cannot checkpoint");
    }
    snap.units.push_back(std::move(record));
  }
  snap.pattern_overhead = plugin_->pattern_overhead();
  snap.unit_manager = manager->save_state();
  for (const auto& [unit, token] : manager->pending_retries()) {
    // A stale token (timer already fired, unit settled meanwhile) is a
    // behavioral no-op in the uninterrupted run too — drop it.
    if (!engine.pending(token)) continue;
    snap.retries.push_back(
        {unit->uid(), engine.event_time(token), engine.event_seq(token)});
  }
  for (const auto& held : session_.pilots()) {
    auto* agent = dynamic_cast<pilot::SimAgent*>(held->agent());
    ENTK_CHECK(agent != nullptr, "capture preconditions not rechecked");
    snap.pilots.push_back({held->uid(), agent->save_state()});
  }
  if (sim::FaultModel* faults = backend_.faults()) {
    snap.has_faults = true;
    snap.faults = faults->save_state();
  }
  snap.graph = runner_->save_state();
  return snap;
}

Status Coordinator::capture_and_write() {
  ENTK_TRACE_SPAN("ckpt.capture", "ckpt");
  auto snap = capture();
  if (!snap.ok()) return snap.status();
  const std::string path =
      options_.directory + "/" + snapshot_basename(snapshots_written_ + 1);
  ENTK_RETURN_IF_ERROR(write_snapshot_file(path, snap.value()));
  ++snapshots_written_;
  last_path_ = path;
  last_capture_settled_ = settled_count_;
  last_capture_time_ = backend_.engine().now();
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kCheckpointsWritten)
      .add();
  ENTK_DEBUG("ckpt") << "snapshot " << path << " at t="
                     << snap.value().engine_now << " ("
                     << settled_count_ << " units settled)";
  return Status::ok();
}

// ----------------------------------------------------------- restore

Status Coordinator::restore_runtime(const Snapshot& snap) {
  ENTK_TRACE_SPAN("ckpt.restore", "ckpt");
  const auto& options = session_.options();
  if (snap.machine != backend_.machine().name) {
    return make_error(Errc::kInvalidArgument,
                      "snapshot was taken on machine '" + snap.machine +
                          "', not '" + backend_.machine().name + "'");
  }
  if (snap.session != session_.name()) {
    return make_error(Errc::kInvalidArgument,
                      "snapshot holds session '" + snap.session +
                          "', not '" + session_.name() + "'");
  }
  if (snap.cores != options.cores || snap.n_pilots != options.n_pilots ||
      snap.scheduler_policy != options.scheduler_policy) {
    return make_error(Errc::kInvalidArgument,
                      "snapshot resources (cores=" +
                          std::to_string(snap.cores) + ", pilots=" +
                          std::to_string(snap.n_pilots) + ", scheduler=" +
                          snap.scheduler_policy +
                          ") do not match the handle");
  }
  if (!pattern_name_.empty() && !snap.pattern_name.empty() &&
      snap.pattern_name != pattern_name_) {
    return make_error(Errc::kInvalidArgument,
                      "snapshot holds pattern '" + snap.pattern_name +
                          "', not '" + pattern_name_ + "'");
  }
  if (!session_.allocated()) {
    return make_error(Errc::kFailedPrecondition,
                      "restore_runtime needs an allocated session");
  }
  const auto& pilots = session_.pilots();
  if (pilots.size() != snap.pilots.size()) {
    return make_error(Errc::kInvalidArgument,
                      "snapshot holds " +
                          std::to_string(snap.pilots.size()) +
                          " pilots, handle allocated " +
                          std::to_string(pilots.size()));
  }
  std::vector<pilot::SimAgent*> agents;
  agents.reserve(pilots.size());
  for (std::size_t i = 0; i < pilots.size(); ++i) {
    if (pilots[i]->uid() != snap.pilots[i].uid) {
      return make_error(
          Errc::kFailedPrecondition,
          "pilot uid replay diverged (" + pilots[i]->uid() + " vs " +
              snap.pilots[i].uid +
              "): reset the uid counters (reset_uid_counters_with_prefix "
              "for a named session) before allocate() when resuming "
              "in-process");
    }
    auto* agent = dynamic_cast<pilot::SimAgent*>(pilots[i]->agent());
    if (agent == nullptr || !agent->started()) {
      return make_error(Errc::kFailedPrecondition,
                        "pilot " + pilots[i]->uid() +
                            " has no started sim agent");
    }
    agents.push_back(agent);
  }
  sim::FaultModel* faults = backend_.faults();
  if (snap.has_faults != (faults != nullptr)) {
    return make_error(Errc::kInvalidArgument,
                      "snapshot and backend disagree about fault "
                      "injection");
  }
  if (faults != nullptr) {
    if (snap.faults.consumers.size() !=
        static_cast<std::size_t>(snap.n_pilots)) {
      return make_error(Errc::kInvalidArgument,
                        "snapshot fault model holds " +
                            std::to_string(snap.faults.consumers.size()) +
                            " consumers for " +
                            std::to_string(snap.n_pilots) + " pilots");
    }
    // Cancels the node-failure events the allocate replay armed; the
    // captured ones are reposted below. Must precede the clock jump.
    faults->restore_state(snap.faults);
  }
  sim::Engine& engine = backend_.engine();
  if (engine.next_event_time() < snap.engine_now) {
    return make_error(Errc::kFailedPrecondition,
                      "a replayed event predates the snapshot time (was "
                      "the snapshot taken past a pilot walltime?)");
  }
  engine.restore_now(snap.engine_now);
  restore_uid_counters(snap.uid_counters);

  // Recreate every unit and re-register it with the unit manager.
  pilot::UnitManager* manager = session_.unit_manager();
  units_by_uid_.clear();
  std::vector<pilot::ComputeUnitPtr> ordered;
  ordered.reserve(snap.units.size());
  for (const auto& record : snap.units) {
    auto unit = std::make_shared<pilot::ComputeUnit>(
        record.uid, record.description, backend_.clock());
    unit->restore_state(record.state);
    manager->restore_unit(unit, record.settled, record.notified);
    units_by_uid_.emplace(record.uid, unit);
    ordered.push_back(std::move(unit));
  }
  const auto resolve =
      [this](const std::string& uid) -> pilot::ComputeUnitPtr {
    const auto it = units_by_uid_.find(uid);
    return it == units_by_uid_.end() ? nullptr : it->second;
  };
  manager->restore_state(snap.unit_manager, resolve);
  for (std::size_t i = 0; i < pilots.size(); ++i) {
    agents[i]->restore_state(snap.pilots[i].agent, resolve);
  }

  // Repost every captured pending event in the original global
  // dispatch order. The fresh engine assigns ascending seqs, so
  // sorting by the captured (time, seq) preserves the relative order
  // of simultaneous events — the last piece of bit-identical resume.
  struct Repost {
    TimePoint time;
    std::uint64_t seq;
    std::function<void()> fire;
  };
  std::vector<Repost> reposts;
  for (std::size_t i = 0; i < snap.pilots.size(); ++i) {
    for (const auto& event : snap.pilots[i].agent.events) {
      pilot::ComputeUnitPtr unit = resolve(event.uid);
      if (unit == nullptr) {
        return make_error(Errc::kIoError,
                          "snapshot event references unknown unit " +
                              event.uid);
      }
      reposts.push_back(
          {event.time, event.seq,
           [agent = agents[i], unit = std::move(unit),
            kind = event.kind, at = event.time] {
             agent->repost_event(unit, kind, at);
           }});
    }
  }
  for (const auto& retry : snap.retries) {
    pilot::ComputeUnitPtr unit = resolve(retry.uid);
    if (unit == nullptr) {
      return make_error(Errc::kIoError,
                        "snapshot retry references unknown unit " +
                            retry.uid);
    }
    reposts.push_back({retry.time, retry.seq,
                       [manager, unit = std::move(unit),
                        delay = retry.time - snap.engine_now] {
                         manager->repost_retry(unit, delay);
                       }});
  }
  if (faults != nullptr) {
    for (const auto& armed : snap.faults.armed) {
      if (armed.consumer >= snap.faults.consumers.size()) {
        return make_error(Errc::kIoError,
                          "snapshot fault event references consumer " +
                              std::to_string(armed.consumer));
      }
      reposts.push_back({armed.time, armed.seq,
                         [faults, consumer = armed.consumer,
                          at = armed.time] {
                           faults->repost_failure(consumer, at);
                         }});
    }
  }
  std::sort(reposts.begin(), reposts.end(),
            [](const Repost& a, const Repost& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  for (const Repost& repost : reposts) repost.fire();

  pending_resume_ =
      PendingResume{snap.graph, snap.pattern_overhead, std::move(ordered)};
  settled_count_ = 0;
  last_capture_settled_ = 0;
  last_capture_time_ = snap.engine_now;
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kCheckpointRestores)
      .add();
  ENTK_INFO("ckpt") << "restored " << snap.units.size() << " units at t="
                    << snap.engine_now << " (" << reposts.size()
                    << " pending events reposted)";
  return Status::ok();
}

Result<bool> Coordinator::prepare_run(core::TaskGraph& graph,
                                      core::GraphExecutor& runner,
                                      core::PatternExecutor& executor) {
  (void)graph;
  auto* plugin = dynamic_cast<core::ExecutionPlugin*>(&executor);
  if (plugin == nullptr) {
    return make_error(Errc::kInvalidArgument,
                      "checkpointing requires the standard execution "
                      "plugin");
  }
  runner_ = &runner;
  plugin_ = plugin;
  if (!pending_resume_.has_value()) return false;
  PendingResume resume = std::move(*pending_resume_);
  pending_resume_.reset();
  // Regrow the adaptive generations first, then inject the runtime
  // state over the fully replayed graph.
  ENTK_RETURN_IF_ERROR(runner.replay_expander_log(resume.graph.expander_log));
  runner.restore_state(resume.graph,
                       [this](const std::string& uid)
                           -> pilot::ComputeUnitPtr {
                         const auto it = units_by_uid_.find(uid);
                         return it == units_by_uid_.end() ? nullptr
                                                          : it->second;
                       });
  plugin->restore_state(resume.pattern_overhead, std::move(resume.units));
  return true;
}

void Coordinator::on_graph_run_end(core::GraphExecutor& runner,
                                   const Status& outcome) {
  (void)runner;
  (void)outcome;
  runner_ = nullptr;
  plugin_ = nullptr;
}

}  // namespace entk::ckpt
