// Checkpoint/restart coordinator.
//
// One Coordinator instance supervises one Session (or the unnamed
// session behind a ResourceHandle) on a simulated backend. It hooks
// two places:
//  - the unit manager's settled observers (to count progress), and
//  - the SimBackend step hook (to capture at engine-step boundaries —
//    the only points where no event callback is mid-flight, so a
//    snapshot is a consistent cut of the whole runtime).
// When the CheckpointPolicy fires (every N settled units and/or every
// T virtual seconds), the coordinator captures a Snapshot of the
// TaskGraph executor, unit manager, pilot agents, fault model, pending
// engine events and uid counters, and publishes it crash-consistently.
//
// Restore is the mirror image (see restore_runtime): the caller resets
// the uid counters, rebuilds the same backend + handle and calls
// allocate() — which deterministically replays pilot creation, so the
// pilot uids and walltime events match the original run — then the
// coordinator injects the captured state and reposts the captured
// pending events globally sorted by their original (time, seq). The
// resumed run's remaining schedule is then bit-identical to the
// uninterrupted run (tests/checkpoint_restart_test.cpp pins this).
//
// Scope: simulated backend only; capture requires every pilot active
// (captures are deferred, not failed, while a pilot is down) and no
// pilot replacement having occurred; patterns must have deterministic
// expanders (replayed on restore).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/status.hpp"
#include "core/pattern.hpp"
#include "core/resource_handle.hpp"
#include "pilot/sim_backend.hpp"

namespace entk::core {
class ExecutionPlugin;
}  // namespace entk::core

namespace entk::ckpt {

/// When to capture. Both triggers may be active; either firing causes
/// a capture (and resets both).
struct CheckpointPolicy {
  /// Capture after this many additional units settled (0 = off).
  std::uint64_t every_settled = 0;
  /// Capture after this much additional virtual time (0 = off).
  Duration every_interval = 0.0;

  bool enabled() const {
    return every_settled > 0 || every_interval > 0.0;
  }
};

class Coordinator final : public core::GraphRunObserver {
 public:
  struct Options {
    /// Directory snapshots are written into (created if missing).
    std::string directory;
    CheckpointPolicy policy;
    /// Test hook: after writing this many snapshots, abort the run
    /// with the checkpoint-stop status (simulates a crash at an exact,
    /// reproducible point). 0 = disabled.
    std::uint64_t crash_after_snapshots = 0;
    /// Polled at every step boundary; returning true triggers a final
    /// snapshot and stops the run (the SIGTERM/SIGINT path of
    /// entk-run). May be empty.
    std::function<bool()> stop_requested;
  };

  /// `session` must already be allocated. The coordinator registers a
  /// backend step hook and a settled observer; both are released by
  /// the destructor. Several coordinators may coexist on one backend
  /// (one per session) — each owns its own step-hook slot.
  Coordinator(pilot::SimBackend& backend, core::Session& session,
              Options options);
  /// Convenience: supervises the unnamed session behind `handle`.
  Coordinator(pilot::SimBackend& backend, core::ResourceHandle& handle,
              Options options);
  ~Coordinator() override;
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Identity stamped into every snapshot and verified on restore.
  /// `workload_text` may be empty for programmatic patterns.
  void set_identity(std::string pattern_name, std::string workload_text);

  /// Rebuilds the runtime state of `snapshot` into the (freshly
  /// allocated) session: verifies identity, restores the engine clock,
  /// uid counters, units, unit manager, agents and fault model, and
  /// reposts the captured pending events. The next pattern.execute()
  /// with this coordinator attached as graph-run observer then resumes
  /// instead of starting over. The caller must have reset the uid
  /// counters BEFORE allocate() so the pilot uid replay matches the
  /// snapshot: reset_uid_counters_with_prefix(session name) for a
  /// named session (which cannot stomp other live sessions), or
  /// reset_uid_counters_for_testing() for the legacy unnamed one.
  Status restore_runtime(const Snapshot& snapshot);

  // --- GraphRunObserver ---
  Result<bool> prepare_run(core::TaskGraph& graph,
                           core::GraphExecutor& runner,
                           core::PatternExecutor& executor) override;
  void on_graph_run_end(core::GraphExecutor& runner,
                        const Status& outcome) override;

  std::uint64_t snapshots_written() const { return snapshots_written_; }
  /// Path of the most recent snapshot ("" before the first capture).
  const std::string& last_snapshot_path() const { return last_path_; }

  /// True when `status` is the deliberate stop the crash/signal hooks
  /// abort a run with (as opposed to a real failure).
  static bool is_checkpoint_stop(const Status& status);

 private:
  /// The SimBackend step hook: applies the policy, captures when due,
  /// and turns crash/stop requests into an aborting status.
  Status on_step();
  /// All pilots active with started sim agents, and no replacement?
  bool capture_preconditions_met() const;
  Result<Snapshot> capture();
  Status capture_and_write();

  pilot::SimBackend& backend_;
  core::Session& session_;
  Options options_;
  std::string pattern_name_;
  std::string workload_text_;

  std::size_t settled_token_ = 0;
  bool observer_registered_ = false;
  std::uint64_t step_hook_token_ = 0;
  std::uint64_t settled_count_ = 0;
  std::uint64_t last_capture_settled_ = 0;
  TimePoint last_capture_time_ = 0.0;
  std::uint64_t snapshots_written_ = 0;
  std::string last_path_;

  // Active run (between prepare_run and on_graph_run_end).
  core::GraphExecutor* runner_ = nullptr;
  core::ExecutionPlugin* plugin_ = nullptr;

  // Restored-but-not-yet-resumed state (between restore_runtime and
  // prepare_run).
  struct PendingResume {
    core::GraphExecutor::SavedState graph;
    Duration pattern_overhead = 0.0;
    std::vector<pilot::ComputeUnitPtr> units;  ///< submission order
  };
  std::optional<PendingResume> pending_resume_;
  std::unordered_map<std::string, pilot::ComputeUnitPtr> units_by_uid_;
};

}  // namespace entk::ckpt
