#include "ckpt/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"

namespace entk::ckpt {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

// ------------------------------------------------------------ encoding

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      out_.push_back(static_cast<char>((v >> shift) & 0xff));
    }
  }
  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      out_.push_back(static_cast<char>((v >> shift) & 0xff));
    }
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& v) {
    u64(v.size());
    out_.append(v);
  }
  void status(const Status& v) {
    u32(static_cast<std::uint32_t>(v.code()));
    str(v.message());
  }
  void rng(const Xoshiro256::State& v) {
    for (const std::uint64_t word : v.words) u64(word);
    f64(v.cached_normal);
    boolean(v.has_cached_normal);
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

void put_staging(Writer& w, const std::vector<pilot::StagingDirective>& v) {
  w.u64(v.size());
  for (const auto& directive : v) {
    w.str(directive.source);
    w.str(directive.target);
    w.u8(static_cast<std::uint8_t>(directive.action));
    w.f64(directive.size_mb);
  }
}

void put_description(Writer& w, const pilot::UnitDescription& d) {
  w.str(d.name);
  w.str(d.session);
  w.str(d.executable);
  w.u64(d.arguments.size());
  for (const auto& arg : d.arguments) w.str(arg);
  w.u64(d.environment.size());
  for (const auto& [key, value] : d.environment) {
    w.str(key);
    w.str(value);
  }
  w.u64(static_cast<std::uint64_t>(d.cores));
  w.boolean(d.uses_mpi);
  put_staging(w, d.input_staging);
  put_staging(w, d.output_staging);
  w.f64(d.simulated_duration);
  w.boolean(d.simulated_fail);
  w.boolean(d.simulated_hang);
  w.u64(static_cast<std::uint64_t>(d.retry.max_retries));
  w.f64(d.retry.backoff_base);
  w.f64(d.retry.backoff_multiplier);
  w.f64(d.retry.backoff_max);
  w.f64(d.retry.jitter);
  w.f64(d.retry.execution_timeout);
}

void put_unit_state(Writer& w, const pilot::ComputeUnit::SavedState& s) {
  w.u8(static_cast<std::uint8_t>(s.state));
  w.status(s.final_status);
  w.u64(static_cast<std::uint64_t>(s.retries));
  w.u64(static_cast<std::uint64_t>(s.epoch));
  w.f64(s.created_at);
  w.f64(s.submitted_at);
  w.f64(s.exec_started_at);
  w.f64(s.exec_stopped_at);
  w.f64(s.finished_at);
}

void put_agent(Writer& w, const pilot::SimAgent::SavedState& a) {
  w.u64(static_cast<std::uint64_t>(a.capacity));
  w.u64(static_cast<std::uint64_t>(a.free));
  w.u64(a.running);
  w.u64(a.next_launch_seq);
  w.u64(a.scheduler_cycles);
  w.f64(a.spawn_total);
  w.u64(a.spawner_free_at.size());
  for (const TimePoint t : a.spawner_free_at) w.f64(t);
  w.u64(a.waiting.size());
  for (const auto& uid : a.waiting) w.str(uid);
  w.u64(a.active.size());
  for (const auto& [seq, uid] : a.active) {
    w.u64(seq);
    w.str(uid);
  }
  w.u64(a.events.size());
  for (const auto& event : a.events) {
    w.str(event.uid);
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.f64(event.time);
    w.u64(event.seq);
  }
}

void put_faults(Writer& w, const sim::FaultModel::SavedState& f) {
  w.rng(f.fork_rng);
  w.rng(f.launch_rng);
  w.rng(f.hang_rng);
  w.u64(f.consumers.size());
  for (const auto& consumer : f.consumers) {
    w.u64(static_cast<std::uint64_t>(consumer.nodes_left));
    w.rng(consumer.rng);
  }
  w.u64(static_cast<std::uint64_t>(f.node_failures));
  w.u64(static_cast<std::uint64_t>(f.launch_failures));
  w.u64(static_cast<std::uint64_t>(f.hangs));
  w.u64(f.trace.size());
  for (const auto& line : f.trace) w.str(line);
  w.u64(f.armed.size());
  for (const auto& armed : f.armed) {
    w.u64(armed.consumer);
    w.f64(armed.time);
    w.u64(armed.seq);
  }
}

void put_graph(Writer& w, const core::GraphExecutor::SavedState& g) {
  w.u64(g.nodes.size());
  for (const auto& node : g.nodes) {
    w.u8(static_cast<std::uint8_t>(node.status));
    w.str(node.unit_uid);
    w.status(node.error);
  }
  w.u64(g.groups.size());
  for (const auto& group : g.groups) {
    w.u64(group.settled);
    w.u64(group.done);
    w.boolean(group.decided);
    w.boolean(group.passed);
  }
  w.u64(g.chain_sets_decided.size());
  for (const bool decided : g.chain_sets_decided) w.boolean(decided);
  w.u64(g.expander_stack.size());
  for (const std::size_t index : g.expander_stack) w.u64(index);
  w.u64(g.expanders_seen);
  w.u64(g.expander_log.size());
  for (const auto& [index, produced] : g.expander_log) {
    w.u64(index);
    w.boolean(produced);
  }
  w.u64(g.errors.size());
  for (const auto& [node, error] : g.errors) {
    w.u64(node);
    w.status(error);
  }
  w.u64(g.inflight);
  w.u64(g.submitted_count);
  w.boolean(g.aborted);
  w.status(g.abort_status);
}

// ------------------------------------------------------------ decoding

/// Bounds-checked little-endian reader. The first out-of-bounds access
/// latches a diagnostic error; all subsequent reads return zero
/// values, so decoders can run straight through and check status()
/// once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    if (!require(4)) return 0;
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_++]))
           << shift;
    }
    return v;
  }
  std::uint64_t u64() {
    if (!require(8)) return 0;
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_++]))
           << shift;
    }
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint64_t size = u64();
    // The length itself is attacker-controlled on a corrupt file; it
    // must fit in what is actually left before any allocation happens.
    if (size > data_.size() - pos_ || !require(size)) {
      fail("string length " + std::to_string(size) +
           " exceeds the remaining payload");
      return {};
    }
    std::string v(data_.substr(pos_, size));
    pos_ += size;
    return v;
  }
  Status read_status() {
    const std::uint32_t code = u32();
    std::string message = str();
    if (code > static_cast<std::uint32_t>(Errc::kIoError)) {
      fail("status code " + std::to_string(code) + " out of range");
      return Status::ok();
    }
    return Status(static_cast<Errc>(code), std::move(message));
  }
  Xoshiro256::State rng() {
    Xoshiro256::State v;
    for (std::uint64_t& word : v.words) word = u64();
    v.cached_normal = f64();
    v.has_cached_normal = boolean();
    return v;
  }
  /// Validates an enum ordinal read as u8.
  std::uint8_t ordinal(std::uint8_t max, const char* what) {
    const std::uint8_t v = u8();
    if (ok_ && v > max) {
      fail(std::string(what) + " ordinal " + std::to_string(v) +
           " out of range");
      return 0;
    }
    return v;
  }
  /// A count about to drive a loop of >= `element_size`-byte records:
  /// must fit in the remaining payload, or a corrupt length would
  /// spin the decoder on billions of zero reads.
  std::uint64_t count(std::size_t element_size) {
    const std::uint64_t v = u64();
    if (ok_ && v * element_size > data_.size() - pos_) {
      fail("element count " + std::to_string(v) +
           " exceeds the remaining payload");
      return 0;
    }
    return v;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == data_.size(); }
  Status error() const {
    return ok_ ? Status::ok() : make_error(Errc::kIoError, message_);
  }

 private:
  bool require(std::size_t n) {
    if (!ok_) return false;
    if (data_.size() - pos_ < n) {
      fail("payload truncated (need " + std::to_string(n) +
           " bytes at offset " + std::to_string(pos_) + ")");
      return false;
    }
    return true;
  }
  void fail(const std::string& message) {
    if (!ok_) return;
    ok_ = false;
    message_ = "corrupt snapshot: " + message;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string message_;
};

std::vector<pilot::StagingDirective> get_staging(Reader& r) {
  std::vector<pilot::StagingDirective> v;
  const std::uint64_t n = r.count(18);
  v.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pilot::StagingDirective directive;
    directive.source = r.str();
    directive.target = r.str();
    directive.action = static_cast<pilot::StagingDirective::Action>(
        r.ordinal(2, "staging action"));
    directive.size_mb = r.f64();
    v.push_back(std::move(directive));
  }
  return v;
}

pilot::UnitDescription get_description(Reader& r, std::uint32_t version) {
  pilot::UnitDescription d;
  d.name = r.str();
  if (version >= 2) d.session = r.str();
  d.executable = r.str();
  const std::uint64_t n_args = r.count(8);
  for (std::uint64_t i = 0; i < n_args && r.ok(); ++i) {
    d.arguments.push_back(r.str());
  }
  const std::uint64_t n_env = r.count(16);
  for (std::uint64_t i = 0; i < n_env && r.ok(); ++i) {
    std::string key = r.str();
    d.environment[std::move(key)] = r.str();
  }
  d.cores = static_cast<Count>(r.u64());
  d.uses_mpi = r.boolean();
  d.input_staging = get_staging(r);
  d.output_staging = get_staging(r);
  d.simulated_duration = r.f64();
  d.simulated_fail = r.boolean();
  d.simulated_hang = r.boolean();
  d.retry.max_retries = static_cast<Count>(r.u64());
  d.retry.backoff_base = r.f64();
  d.retry.backoff_multiplier = r.f64();
  d.retry.backoff_max = r.f64();
  d.retry.jitter = r.f64();
  d.retry.execution_timeout = r.f64();
  return d;
}

pilot::ComputeUnit::SavedState get_unit_state(Reader& r) {
  pilot::ComputeUnit::SavedState s;
  s.state = static_cast<pilot::UnitState>(r.ordinal(7, "unit state"));
  s.final_status = r.read_status();
  s.retries = static_cast<Count>(r.u64());
  s.epoch = static_cast<Count>(r.u64());
  s.created_at = r.f64();
  s.submitted_at = r.f64();
  s.exec_started_at = r.f64();
  s.exec_stopped_at = r.f64();
  s.finished_at = r.f64();
  return s;
}

pilot::SimAgent::SavedState get_agent(Reader& r) {
  pilot::SimAgent::SavedState a;
  a.capacity = static_cast<Count>(r.u64());
  a.free = static_cast<Count>(r.u64());
  a.running = r.u64();
  a.next_launch_seq = r.u64();
  a.scheduler_cycles = r.u64();
  a.spawn_total = r.f64();
  const std::uint64_t n_spawners = r.count(8);
  for (std::uint64_t i = 0; i < n_spawners && r.ok(); ++i) {
    a.spawner_free_at.push_back(r.f64());
  }
  const std::uint64_t n_waiting = r.count(8);
  for (std::uint64_t i = 0; i < n_waiting && r.ok(); ++i) {
    a.waiting.push_back(r.str());
  }
  const std::uint64_t n_active = r.count(16);
  for (std::uint64_t i = 0; i < n_active && r.ok(); ++i) {
    const std::uint64_t seq = r.u64();
    a.active.emplace_back(seq, r.str());
  }
  const std::uint64_t n_events = r.count(25);
  for (std::uint64_t i = 0; i < n_events && r.ok(); ++i) {
    pilot::SimAgent::SavedState::PendingEvent event;
    event.uid = r.str();
    event.kind =
        static_cast<pilot::UnitEventKind>(r.ordinal(4, "unit event kind"));
    event.time = r.f64();
    event.seq = r.u64();
    a.events.push_back(std::move(event));
  }
  return a;
}

sim::FaultModel::SavedState get_faults(Reader& r) {
  sim::FaultModel::SavedState f;
  f.fork_rng = r.rng();
  f.launch_rng = r.rng();
  f.hang_rng = r.rng();
  const std::uint64_t n_consumers = r.count(49);
  for (std::uint64_t i = 0; i < n_consumers && r.ok(); ++i) {
    sim::FaultModel::SavedState::ConsumerState consumer;
    consumer.nodes_left = static_cast<Count>(r.u64());
    consumer.rng = r.rng();
    f.consumers.push_back(consumer);
  }
  f.node_failures = static_cast<Count>(r.u64());
  f.launch_failures = static_cast<Count>(r.u64());
  f.hangs = static_cast<Count>(r.u64());
  const std::uint64_t n_trace = r.count(8);
  for (std::uint64_t i = 0; i < n_trace && r.ok(); ++i) {
    f.trace.push_back(r.str());
  }
  const std::uint64_t n_armed = r.count(24);
  for (std::uint64_t i = 0; i < n_armed && r.ok(); ++i) {
    sim::FaultModel::SavedState::ArmedEvent armed;
    armed.consumer = r.u64();
    armed.time = r.f64();
    armed.seq = r.u64();
    f.armed.push_back(armed);
  }
  return f;
}

core::GraphExecutor::SavedState get_graph(Reader& r) {
  core::GraphExecutor::SavedState g;
  const std::uint64_t n_nodes = r.count(21);
  for (std::uint64_t i = 0; i < n_nodes && r.ok(); ++i) {
    core::GraphExecutor::SavedState::Node node;
    node.status =
        static_cast<core::NodeStatus>(r.ordinal(5, "node status"));
    node.unit_uid = r.str();
    node.error = r.read_status();
    g.nodes.push_back(std::move(node));
  }
  const std::uint64_t n_groups = r.count(18);
  for (std::uint64_t i = 0; i < n_groups && r.ok(); ++i) {
    core::GraphExecutor::SavedState::Group group;
    group.settled = r.u64();
    group.done = r.u64();
    group.decided = r.boolean();
    group.passed = r.boolean();
    g.groups.push_back(group);
  }
  const std::uint64_t n_chain_sets = r.count(1);
  for (std::uint64_t i = 0; i < n_chain_sets && r.ok(); ++i) {
    g.chain_sets_decided.push_back(r.boolean());
  }
  const std::uint64_t n_stack = r.count(8);
  for (std::uint64_t i = 0; i < n_stack && r.ok(); ++i) {
    g.expander_stack.push_back(r.u64());
  }
  g.expanders_seen = r.u64();
  const std::uint64_t n_log = r.count(9);
  for (std::uint64_t i = 0; i < n_log && r.ok(); ++i) {
    const std::uint64_t index = r.u64();
    g.expander_log.emplace_back(index, r.boolean());
  }
  const std::uint64_t n_errors = r.count(20);
  for (std::uint64_t i = 0; i < n_errors && r.ok(); ++i) {
    const core::NodeId node = r.u64();
    g.errors.emplace_back(node, r.read_status());
  }
  g.inflight = r.u64();
  g.submitted_count = r.u64();
  g.aborted = r.boolean();
  g.abort_status = r.read_status();
  return g;
}

std::string encode_payload(const Snapshot& snapshot) {
  Writer w;
  w.str(snapshot.machine);
  w.u64(static_cast<std::uint64_t>(snapshot.cores));
  w.u64(static_cast<std::uint64_t>(snapshot.n_pilots));
  w.f64(snapshot.runtime);
  w.str(snapshot.scheduler_policy);
  w.str(snapshot.pattern_name);
  w.str(snapshot.session);
  w.str(snapshot.workload_text);
  w.f64(snapshot.engine_now);
  w.u64(snapshot.uid_counters.size());
  for (const auto& [prefix, counter] : snapshot.uid_counters) {
    w.str(prefix);
    w.u64(counter);
  }
  w.u64(snapshot.units.size());
  for (const auto& unit : snapshot.units) {
    w.str(unit.uid);
    put_description(w, unit.description);
    put_unit_state(w, unit.state);
    w.boolean(unit.settled);
    w.boolean(unit.notified);
  }
  w.f64(snapshot.pattern_overhead);
  w.u64(snapshot.unit_manager.next_pilot);
  w.u64(snapshot.unit_manager.unrouted.size());
  for (const auto& uid : snapshot.unit_manager.unrouted) w.str(uid);
  w.u64(snapshot.unit_manager.total_units);
  w.u64(snapshot.unit_manager.total_retries);
  w.u64(snapshot.unit_manager.recovered_units);
  w.rng(snapshot.unit_manager.retry_rng);
  w.u64(snapshot.retries.size());
  for (const auto& retry : snapshot.retries) {
    w.str(retry.uid);
    w.f64(retry.time);
    w.u64(retry.seq);
  }
  w.u64(snapshot.pilots.size());
  for (const auto& pilot : snapshot.pilots) {
    w.str(pilot.uid);
    put_agent(w, pilot.agent);
  }
  w.boolean(snapshot.has_faults);
  if (snapshot.has_faults) put_faults(w, snapshot.faults);
  put_graph(w, snapshot.graph);
  return w.take();
}

Result<Snapshot> decode_payload(std::string_view payload,
                                std::uint32_t version) {
  Reader r(payload);
  Snapshot snapshot;
  snapshot.machine = r.str();
  snapshot.cores = static_cast<Count>(r.u64());
  snapshot.n_pilots = static_cast<Count>(r.u64());
  snapshot.runtime = r.f64();
  snapshot.scheduler_policy = r.str();
  snapshot.pattern_name = r.str();
  if (version >= 2) snapshot.session = r.str();
  snapshot.workload_text = r.str();
  snapshot.engine_now = r.f64();
  const std::uint64_t n_counters = r.count(16);
  for (std::uint64_t i = 0; i < n_counters && r.ok(); ++i) {
    std::string prefix = r.str();
    const std::uint64_t counter = r.u64();
    snapshot.uid_counters.emplace_back(std::move(prefix), counter);
  }
  const std::uint64_t n_units = r.count(100);
  for (std::uint64_t i = 0; i < n_units && r.ok(); ++i) {
    UnitRecord unit;
    unit.uid = r.str();
    unit.description = get_description(r, version);
    unit.state = get_unit_state(r);
    unit.settled = r.boolean();
    unit.notified = r.boolean();
    snapshot.units.push_back(std::move(unit));
  }
  snapshot.pattern_overhead = r.f64();
  snapshot.unit_manager.next_pilot = r.u64();
  const std::uint64_t n_unrouted = r.count(8);
  for (std::uint64_t i = 0; i < n_unrouted && r.ok(); ++i) {
    snapshot.unit_manager.unrouted.push_back(r.str());
  }
  snapshot.unit_manager.total_units = r.u64();
  snapshot.unit_manager.total_retries = r.u64();
  snapshot.unit_manager.recovered_units = r.u64();
  snapshot.unit_manager.retry_rng = r.rng();
  const std::uint64_t n_retries = r.count(24);
  for (std::uint64_t i = 0; i < n_retries && r.ok(); ++i) {
    RetryRecord retry;
    retry.uid = r.str();
    retry.time = r.f64();
    retry.seq = r.u64();
    snapshot.retries.push_back(std::move(retry));
  }
  const std::uint64_t n_pilots = r.count(8);
  for (std::uint64_t i = 0; i < n_pilots && r.ok(); ++i) {
    PilotRecord pilot;
    pilot.uid = r.str();
    pilot.agent = get_agent(r);
    snapshot.pilots.push_back(std::move(pilot));
  }
  snapshot.has_faults = r.boolean();
  if (snapshot.has_faults) snapshot.faults = get_faults(r);
  snapshot.graph = get_graph(r);
  if (!r.ok()) return r.error();
  if (!r.exhausted()) {
    return make_error(Errc::kIoError,
                      "corrupt snapshot: trailing bytes after the "
                      "decoded payload");
  }
  return snapshot;
}

}  // namespace

std::string encode_snapshot(const Snapshot& snapshot) {
  const std::string payload = encode_payload(snapshot);
  Writer header;
  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  header.u32(kFormatVersion);
  header.u64(payload.size());
  header.u64(fnv1a(payload));
  out += header.take();
  out += payload;
  return out;
}

Result<Snapshot> decode_snapshot(std::string_view bytes) {
  constexpr std::size_t kHeaderSize = sizeof(kSnapshotMagic) + 4 + 8 + 8;
  if (bytes.size() < kHeaderSize) {
    return make_error(Errc::kIoError,
                      "corrupt snapshot: file shorter than the header (" +
                          std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return make_error(Errc::kIoError,
                      "not a checkpoint file: bad magic (expected "
                      "ENTKCKPT)");
  }
  Reader header(bytes.substr(sizeof(kSnapshotMagic), 4 + 8 + 8));
  const std::uint32_t version = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return make_error(Errc::kIoError,
                      "unsupported checkpoint format version " +
                          std::to_string(version) + " (this build reads " +
                          std::to_string(kMinFormatVersion) + ".." +
                          std::to_string(kFormatVersion) + ")");
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != payload_size) {
    return make_error(Errc::kIoError,
                      "corrupt snapshot: header promises " +
                          std::to_string(payload_size) +
                          " payload bytes, file carries " +
                          std::to_string(payload.size()));
  }
  if (fnv1a(payload) != checksum) {
    return make_error(Errc::kIoError,
                      "corrupt snapshot: payload checksum mismatch "
                      "(bit rot or torn write)");
  }
  return decode_payload(payload, version);
}

Status write_snapshot_file(const std::string& path,
                           const Snapshot& snapshot) {
  return write_file_atomic(path, encode_snapshot(snapshot));
}

Result<Snapshot> read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(Errc::kIoError,
                      "cannot open checkpoint file " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return make_error(Errc::kIoError,
                      "cannot read checkpoint file " + path);
  }
  auto decoded = decode_snapshot(buffer.str());
  if (!decoded.ok()) {
    return make_error(decoded.status().code(),
                      path + ": " + decoded.status().message());
  }
  return decoded;
}

}  // namespace entk::ckpt
