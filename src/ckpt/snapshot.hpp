// Workflow-level checkpoint snapshots.
//
// A Snapshot is a complete, self-contained image of one running
// ensemble at an engine-step boundary: the compiled TaskGraph's
// runtime state (node statuses, expander progress, group verdicts),
// every compute unit (description + state machine + profiling
// timeline), the unit manager's routing/retry bookkeeping, each pilot
// agent's dispatch state, the fault model's RNG streams, the pending
// engine events, and the process-global uid counters. Restoring it
// onto a fresh backend resumes the run bit-for-bit: the remaining
// schedule is identical to the uninterrupted same-seed run (see
// tests/checkpoint_restart_test.cpp).
//
// On-disk format (little-endian):
//   8 bytes   magic "ENTKCKPT"
//   u32       format version (kFormatVersion)
//   u64       payload size in bytes
//   u64       FNV-1a checksum of the payload
//   payload   the encoded Snapshot
// Files are published crash-consistently (write-temp + fsync + atomic
// rename, src/common/atomic_file.hpp): a reader sees either the old
// snapshot or the new one, never a torn write. Corrupt files —
// truncated, bit-flipped, wrong magic, future version — fail
// read_snapshot_file() with a diagnostic Status, never UB.
//
// Scope: the simulated backend only. UnitDescription::payload (the
// local backend's in-process work function) is not serializable and is
// dropped; local-backend runs cannot be checkpointed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/graph_executor.hpp"
#include "pilot/compute_unit.hpp"
#include "pilot/sim_agent.hpp"
#include "pilot/unit_manager.hpp"
#include "sim/fault_model.hpp"

namespace entk::ckpt {

inline constexpr char kSnapshotMagic[8] = {'E', 'N', 'T', 'K',
                                           'C', 'K', 'P', 'T'};
/// v2 adds the owning session name (snapshot identity + per-unit
/// descriptions). v1 files still decode, with every session field
/// empty — the legacy single-workload layout.
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinFormatVersion = 1;

/// One compute unit: identity, (re)creation inputs, and captured state.
struct UnitRecord {
  std::string uid;
  /// payload is dropped (sim backend only).
  pilot::UnitDescription description;
  pilot::ComputeUnit::SavedState state;
  bool settled = false;   ///< UnitManager entry flag.
  bool notified = false;  ///< Settled observers already fired.
};

/// A pending retry-backoff requeue with its original firing point.
struct RetryRecord {
  std::string uid;
  TimePoint time = 0.0;
  std::uint64_t seq = 0;
};

/// One pilot and its agent's dispatch state, in allocation order.
struct PilotRecord {
  std::string uid;
  pilot::SimAgent::SavedState agent;
};

struct Snapshot {
  // Identity guard: a snapshot restores only into the same resources
  // and pattern (verified by Coordinator::restore_runtime).
  std::string machine;
  Count cores = 0;
  Count n_pilots = 1;
  Duration runtime = 0.0;
  std::string scheduler_policy;
  std::string pattern_name;
  /// Owning session (""= legacy unnamed). A named-session snapshot
  /// restores only into a session of the same name, and its uid
  /// counters cover only that session's families, so restoring while
  /// other sessions run in the process cannot stomp their counters.
  std::string session;
  /// Optional: the serialized workload file (entk-run round-trip).
  std::string workload_text;

  TimePoint engine_now = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> uid_counters;
  /// Submission order (the plugin's all_units order) — the canonical
  /// unit serialization order everything else references by uid.
  std::vector<UnitRecord> units;
  Duration pattern_overhead = 0.0;
  pilot::UnitManager::SavedState unit_manager;
  std::vector<RetryRecord> retries;
  std::vector<PilotRecord> pilots;
  bool has_faults = false;
  sim::FaultModel::SavedState faults;
  core::GraphExecutor::SavedState graph;
};

/// 64-bit FNV-1a over a byte string (payload checksum).
std::uint64_t fnv1a(std::string_view bytes);

/// Encodes a snapshot into the full file image (header + payload).
std::string encode_snapshot(const Snapshot& snapshot);

/// Decodes a full file image, validating magic, version, payload size
/// and checksum. Every structural error returns a diagnostic Status.
Result<Snapshot> decode_snapshot(std::string_view bytes);

/// Writes a snapshot crash-consistently (temp + fsync + rename).
Status write_snapshot_file(const std::string& path,
                           const Snapshot& snapshot);

/// Reads and decodes a snapshot file.
Result<Snapshot> read_snapshot_file(const std::string& path);

}  // namespace entk::ckpt
