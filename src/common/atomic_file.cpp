#include "common/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace entk {

namespace {

Status io_error(const std::string& what, const std::string& path) {
  return Status(Errc::kIoError,
                what + " '" + path + "': " + std::strerror(errno));
}

// Best-effort fsync of the directory holding `path` so the rename
// itself survives a crash. Failure is non-fatal: the data file is
// already durable, only the directory entry may lag.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("cannot create temp file", tmp);

  const char* data = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return io_error("write failed for", tmp);
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return io_error("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return io_error("close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return io_error("rename failed onto", path);
  }
  sync_parent_dir(path);
  return Status::ok();
}

Status AtomicFileWriter::commit() {
  return write_file_atomic(path_, buffer_.str());
}

}  // namespace entk
