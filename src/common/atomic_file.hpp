// Crash-consistent file publication: write-temp + fsync + atomic rename.
//
// Every run artifact the toolkit persists (checkpoints, traces, metrics,
// bench results) goes through this helper so a mid-write crash never
// leaves a torn or partial file behind: readers observe either the old
// complete file or the new complete file, nothing in between.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.hpp"

namespace entk {

/// Writes `contents` to `path` crash-consistently. The bytes land in a
/// sibling temporary file first, are fsync'd to stable storage, and the
/// temp file is renamed over `path` in one atomic step.
Status write_file_atomic(const std::string& path, std::string_view contents);

/// Buffered drop-in for std::ofstream-style export code: stream into
/// out(), then commit() publishes the whole buffer atomically (or, on
/// error, nothing at all — the destination is left untouched).
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path) : path_(std::move(path)) {}

  std::ostream& out() { return buffer_; }
  const std::string& path() const { return path_; }

  /// Publishes the buffered bytes; safe to call at most once.
  Status commit();

 private:
  std::string path_;
  std::ostringstream buffer_;
};

}  // namespace entk
