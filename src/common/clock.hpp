// Clock abstraction: one interface over simulated and wall-clock time.
//
// Profiling code (overhead decomposition, TTC) stamps events through a
// Clock so that the same core/pattern/runtime code runs unchanged on
// the discrete-event backend (virtual seconds) and the local backend
// (real seconds).
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace entk {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds. Monotone non-decreasing.
  virtual TimePoint now() const = 0;
};

/// Wall-clock backed by std::chrono::steady_clock, zeroed at creation.
class WallClock final : public Clock {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  TimePoint now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration<double>(elapsed).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// A steady-clock deadline `timeout` seconds from now, for CondVar
/// wait_until loops. The one blessed spot for raw std::chrono clock
/// reads outside this header (entk-lint rule raw-clock): everything
/// else stamps time through a Clock so simulated runs stay virtual.
inline std::chrono::steady_clock::time_point steady_deadline_after(
    Duration timeout) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(timeout));
}

/// Manually advanced clock; the simulation engine drives one of these.
class ManualClock final : public Clock {
 public:
  TimePoint now() const override { return now_; }
  void advance_to(TimePoint t) {
    if (t > now_) now_ = t;
  }

 private:
  TimePoint now_ = 0.0;
};

}  // namespace entk
