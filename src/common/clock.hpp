// Clock abstraction: one interface over simulated and wall-clock time.
//
// Profiling code (overhead decomposition, TTC) stamps events through a
// Clock so that the same core/pattern/runtime code runs unchanged on
// the discrete-event backend (virtual seconds) and the local backend
// (real seconds).
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace entk {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds. Monotone non-decreasing.
  virtual TimePoint now() const = 0;
};

/// Wall-clock backed by std::chrono::steady_clock, zeroed at creation.
class WallClock final : public Clock {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  TimePoint now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration<double>(elapsed).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Manually advanced clock; the simulation engine drives one of these.
class ManualClock final : public Clock {
 public:
  TimePoint now() const override { return now_; }
  void advance_to(TimePoint t) {
    if (t > now_) now_ = t;
  }

 private:
  TimePoint now_ = 0.0;
};

}  // namespace entk
