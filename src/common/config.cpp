#include "common/config.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace entk {

Result<Config> Config::from_pairs(const std::vector<std::string>& pairs) {
  Config config;
  for (const auto& pair : pairs) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      return make_error(Errc::kInvalidArgument,
                        "expected key=value, got '" + pair + "'");
    }
    config.set(trim(pair.substr(0, eq)), trim(pair.substr(eq + 1)));
  }
  return config;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}
void Config::set(const std::string& key, const char* value) {
  values_[key] = value;
}
void Config::set(const std::string& key, double value) {
  values_[key] = format_double(value, 17);
}
void Config::set(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}
void Config::set(const std::string& key, int value) {
  values_[key] = std::to_string(value);
}
void Config::set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

Result<std::string> Config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return make_error(Errc::kNotFound, "config key '" + key + "' missing");
  }
  return it->second;
}

Result<double> Config::get_double(const std::string& key) const {
  auto raw = get_string(key);
  if (!raw.ok()) return raw.status();
  const std::string& text = raw.value();
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return make_error(Errc::kInvalidArgument,
                      "config key '" + key + "' is not a number: " + text);
  }
  return value;
}

Result<std::int64_t> Config::get_int(const std::string& key) const {
  auto raw = get_string(key);
  if (!raw.ok()) return raw.status();
  const std::string& text = raw.value();
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return make_error(Errc::kInvalidArgument,
                      "config key '" + key + "' is not an integer: " + text);
  }
  return static_cast<std::int64_t>(value);
}

Result<bool> Config::get_bool(const std::string& key) const {
  auto raw = get_string(key);
  if (!raw.ok()) return raw.status();
  const std::string& text = raw.value();
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  return make_error(Errc::kInvalidArgument,
                    "config key '" + key + "' is not a bool: " + text);
}

std::string Config::get_string_or(const std::string& key,
                                  const std::string& fallback) const {
  auto result = get_string(key);
  return result.ok() ? result.take() : fallback;
}

double Config::get_double_or(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  return get_double(key).value();
}

std::int64_t Config::get_int_or(const std::string& key,
                                std::int64_t fallback) const {
  if (!contains(key)) return fallback;
  return get_int(key).value();
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  if (!contains(key)) return fallback;
  return get_bool(key).value();
}

Config Config::merged_with(const Config& other) const {
  Config merged = *this;
  for (const auto& [key, value] : other.values_) merged.values_[key] = value;
  return merged;
}

}  // namespace entk
