// Typed key-value configuration bag.
//
// Kernel plugins, machine profiles and patterns all carry small sets of
// named parameters; Config gives them one uniform, validated carrier
// (the C++ analogue of the keyword-argument dictionaries in the
// original Python toolkit).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace entk {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" pairs; later pairs override earlier ones.
  static Result<Config> from_pairs(const std::vector<std::string>& pairs);

  void set(const std::string& key, std::string value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, double value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, int value);
  void set(const std::string& key, bool value);

  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;
  std::size_t size() const { return values_.size(); }

  /// Typed getters: error if missing or unparsable.
  Result<std::string> get_string(const std::string& key) const;
  Result<double> get_double(const std::string& key) const;
  Result<std::int64_t> get_int(const std::string& key) const;
  Result<bool> get_bool(const std::string& key) const;

  /// Defaulted getters: fall back if the key is missing, still error on
  /// an unparsable value (a typo should not silently become a default).
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::int64_t get_int_or(const std::string& key,
                          std::int64_t fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// Overlays `other` on top of this config (other wins on conflict).
  Config merged_with(const Config& other) const;

  bool operator==(const Config& other) const = default;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace entk
