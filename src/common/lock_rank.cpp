#include "common/lock_rank.hpp"

#include <cstdio>
#include <cstdlib>

namespace entk {

const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kNone:
      return "kNone";
    case LockRank::kServeMailbox:
      return "kServeMailbox";
    case LockRank::kServeRegistry:
      return "kServeRegistry";
    case LockRank::kRuntime:
      return "kRuntime";
    case LockRank::kGraphExecutor:
      return "kGraphExecutor";
    case LockRank::kExecutionPlugin:
      return "kExecutionPlugin";
    case LockRank::kCallbackGate:
      return "kCallbackGate";
    case LockRank::kUnitManager:
      return "kUnitManager";
    case LockRank::kPilot:
      return "kPilot";
    case LockRank::kLocalAdaptor:
      return "kLocalAdaptor";
    case LockRank::kLocalAgent:
      return "kLocalAgent";
    case LockRank::kBackendTimers:
      return "kBackendTimers";
    case LockRank::kSagaJob:
      return "kSagaJob";
    case LockRank::kComputeUnit:
      return "kComputeUnit";
    case LockRank::kWorkStealingPool:
      return "kWorkStealingPool";
    case LockRank::kWorkStealingQueue:
      return "kWorkStealingQueue";
    case LockRank::kThreadPool:
      return "kThreadPool";
    case LockRank::kUidRegistry:
      return "kUidRegistry";
    case LockRank::kMetricsRegistry:
      return "kMetricsRegistry";
    case LockRank::kSessionRegistry:
      return "kSessionRegistry";
    case LockRank::kTraceRecorder:
      return "kTraceRecorder";
    case LockRank::kLogger:
      return "kLogger";
  }
  return "?";
}

#if defined(ENTK_LOCK_RANK_CHECK)

namespace lockrank {

namespace {

/// One lock the thread holds (or is about to block on).
struct Held {
  const void* mutex;
  LockRank rank;
  const char* kind;
};

// Plain POD thread-local: trivially destructible, so late unlocks
// during thread teardown never touch a destroyed container.
constexpr int kMaxHeld = 64;
thread_local Held t_held[kMaxHeld];
thread_local int t_held_count = 0;

void print_stack(const char* label) {
  std::fprintf(stderr, "  %s (%d lock%s, oldest first):\n", label,
               t_held_count, t_held_count == 1 ? "" : "s");
  for (int i = 0; i < t_held_count; ++i) {
    std::fprintf(stderr, "    #%d %-18s rank %3d  %s @%p\n", i,
                 lock_rank_name(t_held[i].rank),
                 static_cast<int>(t_held[i].rank), t_held[i].kind,
                 t_held[i].mutex);
  }
}

[[noreturn]] void die(const char* reason, LockRank rank,
                      const void* mutex, const char* kind) {
  std::fprintf(stderr,
               "entk: LOCK RANK VIOLATION: %s\n"
               "  offending acquisition: %-18s rank %3d  %s @%p\n",
               reason, lock_rank_name(rank), static_cast<int>(rank),
               kind, mutex);
  print_stack("held-lock stack");
  std::fflush(stderr);
  std::abort();
}

void push(LockRank rank, const void* mutex, const char* kind) {
  if (t_held_count >= kMaxHeld) {
    die("held-lock stack overflow (deeper nesting than kMaxHeld)", rank,
        mutex, kind);
  }
  t_held[t_held_count++] = {mutex, rank, kind};
}

}  // namespace

void acquire(LockRank rank, const void* mutex, const char* kind) {
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].mutex == mutex) {
      die("re-acquiring a lock this thread already holds "
          "(self-deadlock)",
          rank, mutex, kind);
    }
  }
  if (rank != LockRank::kNone) {
    for (int i = 0; i < t_held_count; ++i) {
      if (t_held[i].rank != LockRank::kNone && t_held[i].rank >= rank) {
        die("out-of-order acquisition (a held lock has rank >= the "
            "requested lock; see docs/CORRECTNESS.md)",
            rank, mutex, kind);
      }
    }
  }
  push(rank, mutex, kind);
}

void acquire_unchecked(LockRank rank, const void* mutex,
                       const char* kind) {
  push(rank, mutex, kind);
}

void release(const void* mutex) {
  // Scan from the top: wrappers release in LIFO order, so this is one
  // comparison in practice.
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mutex != mutex) continue;
    for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
    --t_held_count;
    return;
  }
  // Releasing something never noted: a wrapper bug, not a user bug.
  std::fprintf(stderr,
               "entk: LOCK RANK VIOLATION: releasing a lock this "
               "thread does not hold @%p\n",
               mutex);
  print_stack("held-lock stack");
  std::fflush(stderr);
  std::abort();
}

int held_count() { return t_held_count; }

}  // namespace lockrank

#endif  // ENTK_LOCK_RANK_CHECK

}  // namespace entk
