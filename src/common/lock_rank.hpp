// Lock ranks: the total acquisition order for every mutex in the
// toolkit.
//
// A thread may only acquire a lock whose rank is STRICTLY GREATER than
// every ranked lock it already holds. Ranks therefore encode the
// global lock-order DAG as one number per lock: outermost
// (orchestration) locks get the lowest ranks, leaf locks that may be
// taken under anything (logging, tracing, metrics interning) get the
// highest. The table below is the single source of truth; it is
// cross-checked from two sides:
//
//   static   tools/entk-analyze --locks parses this enum, extracts the
//            per-function acquisition sequences from the whole repo
//            and rejects any edge that violates the rank order (and
//            any cycle, ranked or not).
//   dynamic  under -DENTK_LOCK_RANK_CHECK=ON, entk::Mutex/SharedMutex
//            verify every acquisition against a thread-local held-lock
//            stack and abort with both the held stack and the
//            offending acquisition printed.
//
// Adding a lock? docs/CORRECTNESS.md has the recipe ("how to add a
// new lock safely"). Keep gaps between values so new locks slot in
// without renumbering.
#pragma once

namespace entk {

// NOTE: entk-analyze parses this enum body literally ("kName = value")
// to learn the rank table — keep one enumerator per line, explicit
// values, no macros.
enum class LockRank : int {
  kNone = -1,             ///< Unranked: exempt from order checking.
  kServeMailbox = 2,      ///< serve::Service::mailbox_mutex_ (admission)
  kServeRegistry = 3,     ///< serve::Service::registry_mutex_ (workloads)
  kRuntime = 5,           ///< core::Runtime::mutex_ (session registry)
  kGraphExecutor = 10,    ///< core::GraphExecutor::mutex_
  kExecutionPlugin = 20,  ///< core::ExecutionPlugin::mutex_
  kCallbackGate = 25,     ///< pilot::CallbackGate::mutex_ (teardown)
  kUnitManager = 30,      ///< pilot::UnitManager::mutex_
  kPilot = 40,            ///< pilot::Pilot::mutex_
  kLocalAdaptor = 45,     ///< saga::LocalAdaptor::mutex_
  kLocalAgent = 50,       ///< pilot::LocalAgent::mutex_
  kBackendTimers = 60,    ///< pilot::LocalBackend::timers_mutex_
  kSagaJob = 65,          ///< saga::Job::mutex_
  kComputeUnit = 70,      ///< pilot::ComputeUnit::mutex_
  kWorkStealingPool = 76,   ///< WorkStealingPool::state_mutex_ (park/join)
  kWorkStealingQueue = 78,  ///< WorkStealingPool per-worker deques + inject
  kThreadPool = 80,       ///< ThreadPool::mutex_
  kUidRegistry = 85,      ///< uid.cpp source registry
  kMetricsRegistry = 90,  ///< obs::Metrics::names_mutex_
  kSessionRegistry = 91,  ///< obs trace session-name interning
  kTraceRecorder = 92,    ///< obs::TraceRecorder::mutex_
  kLogger = 95,           ///< Logger::mutex_ (log under anything)
};

/// Human-readable enumerator name ("kUnitManager"); "kNone" for
/// unranked, "?" for values outside the table.
const char* lock_rank_name(LockRank rank);

namespace lockrank {

#if defined(ENTK_LOCK_RANK_CHECK)

/// Validates `rank` against the calling thread's held-lock stack and
/// pushes the entry. Aborts (printing the held stack and the offending
/// acquisition) when `mutex` is already held by this thread or when a
/// held ranked lock has rank >= `rank`. Call immediately BEFORE the
/// underlying acquisition so a potential deadlock is reported instead
/// of entered. `kind` names the primitive for diagnostics ("mutex",
/// "shared", "reader").
void acquire(LockRank rank, const void* mutex, const char* kind);

/// Pushes without order validation — for try_lock successes, which
/// cannot deadlock. Call AFTER the acquisition succeeded.
void acquire_unchecked(LockRank rank, const void* mutex,
                       const char* kind);

/// Pops `mutex` from the calling thread's held-lock stack.
void release(const void* mutex);

/// Number of locks the calling thread currently holds (test hook).
int held_count();

#else

inline void acquire(LockRank, const void*, const char*) {}
inline void acquire_unchecked(LockRank, const void*, const char*) {}
inline void release(const void*) {}
inline int held_count() { return 0; }

#endif  // ENTK_LOCK_RANK_CHECK

}  // namespace lockrank

}  // namespace entk
