#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace entk {

Logger& Logger::instance() {
  static Logger logger;
  // Opt-in verbosity for debugging: ENTK_LOG=debug|info|warn|error.
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* env = std::getenv("ENTK_LOG")) {
      const std::string level(env);
      if (level == "trace") logger.set_level(LogLevel::kTrace);
      else if (level == "debug") logger.set_level(LogLevel::kDebug);
      else if (level == "info") logger.set_level(LogLevel::kInfo);
      else if (level == "error") logger.set_level(LogLevel::kError);
    }
  });
  return logger;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}
}  // namespace

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (!enabled(level)) return;
  MutexLock lock(mutex_);
  std::fprintf(stderr, "[%s] %s: %s\n", level_tag(level), component.c_str(),
               message.c_str());
}

}  // namespace entk
