// Minimal leveled, thread-safe logger.
//
// The toolkit logs sparingly: state transitions at kDebug, lifecycle
// milestones at kInfo, recoverable anomalies at kWarn, failures at
// kError. Tests and benches run with the logger silenced (the default
// threshold is kWarn).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "common/mutex.hpp"

namespace entk {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  /// Global logger used by every component.
  static Logger& instance();

  // The threshold is read on every log-site check from arbitrary
  // threads while tests mutate it, so it is atomic rather than
  // mutex-guarded (the enabled() fast path must stay lock-free).
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Writes a single line "[level] component: message" to stderr.
  void write(LogLevel level, const std::string& component,
             const std::string& message) ENTK_EXCLUDES(mutex_);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  // Serializes stderr so lines never interleave; the highest rank, so
  // logging is safe under any other lock.
  Mutex mutex_{LockRank::kLogger};
};

namespace detail {
/// Builds the message lazily: the stream is only evaluated when enabled.
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ENTK_LOG(level, component)                      \
  if (!::entk::Logger::instance().enabled(level)) {     \
  } else                                                \
    ::entk::detail::LogLine(level, component)

#define ENTK_DEBUG(component) ENTK_LOG(::entk::LogLevel::kDebug, component)
#define ENTK_INFO(component) ENTK_LOG(::entk::LogLevel::kInfo, component)
#define ENTK_WARN(component) ENTK_LOG(::entk::LogLevel::kWarn, component)
#define ENTK_ERROR(component) ENTK_LOG(::entk::LogLevel::kError, component)

}  // namespace entk
