// Annotated synchronization primitives.
//
// Every mutex in the toolkit goes through these wrappers so Clang's
// thread-safety analysis can verify the locking discipline (see
// thread_annotations.hpp and docs/CORRECTNESS.md). The project lint
// (tools/entk_lint.cpp) rejects naked std::mutex / std::lock_guard /
// std::condition_variable anywhere else under src/.
//
// Idiom:
//   entk::Mutex mutex_;
//   int count_ ENTK_GUARDED_BY(mutex_);
//
//   void bump() {
//     MutexLock lock(mutex_);   // scoped: releases on destruction
//     ++count_;
//     changed_.notify_all();
//   }
//   void wait_for_count(int n) {
//     MutexLock lock(mutex_);
//     while (count_ < n) changed_.wait(mutex_);
//   }
//
// Condition waits take the Mutex itself (not the MutexLock) and are
// written as explicit `while (!predicate) cv.wait(mutex_);` loops:
// the analysis then sees the guarded reads in a scope that provably
// holds the capability, which predicate lambdas would hide.
// Every long-lived mutex also declares a LockRank (common/
// lock_rank.hpp): the position of the lock in the global acquisition
// order. Under -DENTK_LOCK_RANK_CHECK=ON each acquisition is validated
// against a thread-local held-lock stack and an out-of-order
// acquisition aborts with both the held stack and the offending lock
// printed; tools/entk-analyze --locks checks the same ranks
// statically. Unranked locks (the default) are exempt from ordering
// but still checked for self-deadlock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"

namespace entk {

/// Annotated exclusive mutex. Satisfies BasicLockable/Lockable so it
/// composes with std::condition_variable_any (see CondVar below).
class ENTK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Ranked mutex: acquisition order is validated against `rank` under
  /// ENTK_LOCK_RANK_CHECK and by entk-analyze --locks.
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ENTK_ACQUIRE() {
    lockrank::acquire(rank_, this, "mutex");
    mutex_.lock();
  }
  void unlock() ENTK_RELEASE() {
    lockrank::release(this);
    mutex_.unlock();
  }
  bool try_lock() ENTK_TRY_ACQUIRE(true) {
    const bool acquired = mutex_.try_lock();
    if (acquired) lockrank::acquire_unchecked(rank_, this, "mutex");
    return acquired;
  }

 private:
  std::mutex mutex_;
  LockRank rank_ = LockRank::kNone;
};

/// Scoped lock: acquires in the constructor, releases in the
/// destructor. The project's only blessed way to hold a Mutex.
class ENTK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ENTK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() ENTK_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Annotated reader/writer mutex for read-mostly shared state (uid
/// counters, observer lists). Writers use lock()/unlock() (or
/// SharedMutexLock); readers use lock_shared()/unlock_shared() (or
/// SharedReaderLock) and may proceed concurrently.
class ENTK_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  /// Ranked shared mutex; readers and writers share one rank (either
  /// side of a reader/writer pair can complete a deadlock cycle).
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ENTK_ACQUIRE() {
    lockrank::acquire(rank_, this, "shared");
    mutex_.lock();
  }
  void unlock() ENTK_RELEASE() {
    lockrank::release(this);
    mutex_.unlock();
  }
  void lock_shared() ENTK_ACQUIRE_SHARED() {
    lockrank::acquire(rank_, this, "reader");
    mutex_.lock_shared();
  }
  void unlock_shared() ENTK_RELEASE_SHARED() {
    lockrank::release(this);
    mutex_.unlock_shared();
  }

 private:
  std::shared_mutex mutex_;
  LockRank rank_ = LockRank::kNone;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class ENTK_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mutex) ENTK_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~SharedMutexLock() ENTK_RELEASE() { mutex_.unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class ENTK_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mutex) ENTK_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedReaderLock() ENTK_RELEASE() { mutex_.unlock_shared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable bound to entk::Mutex. Wait calls require the
/// capability, so forgetting the lock is a compile error under Clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified; `mutex` is released while blocked and
  /// re-acquired before returning (spurious wakeups possible — always
  /// wait in a `while (!predicate)` loop).
  void wait(Mutex& mutex) ENTK_REQUIRES(mutex) { cv_.wait(mutex); }

  template <typename ClockT, typename DurationT>
  std::cv_status wait_until(
      Mutex& mutex, const std::chrono::time_point<ClockT, DurationT>& deadline)
      ENTK_REQUIRES(mutex) {
    return cv_.wait_until(mutex, deadline);
  }

  template <typename RepT, typename PeriodT>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<RepT, PeriodT>& duration)
      ENTK_REQUIRES(mutex) {
    return cv_.wait_for(mutex, duration);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace entk
