#include "common/rng.hpp"

#include <cmath>

#include "common/status.hpp"

namespace entk {
namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  ENTK_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) {
  ENTK_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t draw = next();
    if (draw >= threshold) return draw % n;
  }
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Xoshiro256::exponential(double mean) {
  ENTK_CHECK(mean > 0.0, "exponential mean must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

Xoshiro256 Xoshiro256::split() {
  Xoshiro256 child(0);
  SplitMix64 mixer(next());
  for (auto& word : child.state_) word = mixer.next();
  return child;
}

}  // namespace entk
