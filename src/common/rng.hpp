// Deterministic pseudo-random number generation.
//
// Every stochastic component (queue-wait jitter, Langevin thermostat,
// Metropolis exchange, workload generators) draws from an explicitly
// seeded generator so that simulations and benchmarks are bit-for-bit
// reproducible. Xoshiro256** is the workhorse; SplitMix64 expands seeds.
#pragma once

#include <array>
#include <cstdint>

namespace entk {

/// SplitMix64: used to derive well-mixed seed material from one word.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal deviate (Box–Muller with caching).
  double normal();
  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential deviate with the given mean (> 0).
  double exponential(double mean);

  /// Forks an independent stream (for per-replica / per-task RNGs).
  Xoshiro256 split();

  /// Full generator state for checkpoint/restart. Restoring a saved
  /// state resumes the exact same deviate sequence (including a cached
  /// Box–Muller half-pair).
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State save_state() const {
    return State{state_, cached_normal_, has_cached_normal_};
  }
  void restore_state(const State& state) {
    state_ = state.words;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace entk
