#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace entk {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  ENTK_CHECK(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  ENTK_CHECK(xs.size() == ys.size() && xs.size() >= 2,
             "linear_fit needs two equally sized samples of >= 2 points");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  } else {
    fit.r_squared = 1.0;  // all ys identical and perfectly fit
  }
  return fit;
}

}  // namespace entk
