// Streaming and batch descriptive statistics.
//
// Used by the profiler (overhead decomposition), the benchmark
// harnesses (per-figure summary tables) and the MD engine (temperature,
// energy averages).
#pragma once

#include <cstddef>
#include <vector>

namespace entk {

/// Welford's online algorithm: numerically stable running mean/variance
/// with min/max tracking. Accepts any number of observations.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample by linear interpolation (q in [0, 100]).
/// The input is copied and sorted; empty input yields 0.
double percentile(std::vector<double> values, double q);

/// Median shorthand.
double median(std::vector<double> values);

/// Ordinary least-squares fit y = a + b*x; returns {intercept, slope,
/// r_squared}. Requires xs.size() == ys.size() >= 2.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

}  // namespace entk
