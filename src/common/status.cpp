#include "common/status.hpp"

#include <sstream>

namespace entk {

const char* errc_name(Errc code) {
  switch (code) {
    case Errc::kOk: return "ok";
    case Errc::kInvalidArgument: return "invalid_argument";
    case Errc::kNotFound: return "not_found";
    case Errc::kAlreadyExists: return "already_exists";
    case Errc::kFailedPrecondition: return "failed_precondition";
    case Errc::kResourceExhausted: return "resource_exhausted";
    case Errc::kCancelled: return "cancelled";
    case Errc::kTimedOut: return "timed_out";
    case Errc::kInternal: return "internal";
    case Errc::kExecutionFailed: return "execution_failed";
    case Errc::kIoError: return "io_error";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = errc_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "ENTK_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace detail
}  // namespace entk
