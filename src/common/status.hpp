// Error handling for the toolkit: a lightweight Status / Result<T> pair.
//
// The toolkit is exception-free on its hot paths (scheduling, event
// dispatch); fallible operations return Status or Result<T> and callers
// decide how to react. Exceptions are reserved for programming errors
// (precondition violations), reported via ENTK_CHECK.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace entk {

/// Canonical error categories, loosely mirroring std::errc granularity.
enum class Errc {
  kOk = 0,
  kInvalidArgument,    ///< Malformed description, bad parameter value.
  kNotFound,           ///< Unknown kernel, machine, uid, ...
  kAlreadyExists,      ///< Duplicate registration.
  kFailedPrecondition, ///< Operation illegal in the current state.
  kResourceExhausted,  ///< Request exceeds machine/pilot capacity.
  kCancelled,          ///< Explicitly cancelled by the application.
  kTimedOut,           ///< Wall-time or wait deadline exceeded.
  kInternal,           ///< Invariant violation inside the toolkit.
  kExecutionFailed,    ///< A task/unit/job reported failure.
  kIoError,            ///< Filesystem/staging failure.
};

/// Human-readable name of an error category ("kOk" -> "ok", ...).
const char* errc_name(Errc code);

/// A success-or-error value with an optional diagnostic message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(Errc code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == Errc::kOk; }
  explicit operator bool() const { return is_ok(); }

  Errc code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<category>: <message>".
  std::string to_string() const;

 private:
  Errc code_ = Errc::kOk;
  std::string message_;
};

inline Status make_error(Errc code, std::string message) {
  return Status(code, std::move(message));
}

/// Either a value of type T or an error Status. Query with ok(), then
/// access with value() / take(); accessing the wrong alternative throws.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).is_ok()) {
      throw std::logic_error("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_value();
    return std::get<T>(data_);
  }
  T& value() & {
    require_value();
    return std::get<T>(data_);
  }
  /// Moves the value out of the result.
  T take() {
    require_value();
    return std::move(std::get<T>(data_));
  }

  /// The error; OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::ok();
    return std::get<Status>(data_);
  }

 private:
  void require_value() const {
    if (!ok()) {
      throw std::runtime_error("Result accessed without value: " +
                               std::get<Status>(data_).to_string());
    }
  }

  std::variant<T, Status> data_;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

/// Precondition/invariant check; throws std::logic_error on failure.
/// Unlike assert(), active in all build types: toolkit invariants guard
/// user-facing state machines and must not silently pass in release.
#define ENTK_CHECK(expr, msg)                                           \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::entk::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                   \
  } while (false)

/// Propagates an error Status from the current function.
#define ENTK_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::entk::Status entk_status_ = (expr);     \
    if (!entk_status_.is_ok()) return entk_status_; \
  } while (false)

}  // namespace entk
