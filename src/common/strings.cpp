#include "common/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace entk {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += separator;
    out += items[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string format_seconds(double seconds) {
  const double magnitude = std::fabs(seconds);
  char buffer[64];
  if (magnitude >= 3600.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f h", seconds / 3600.0);
  } else if (magnitude >= 60.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f min", seconds / 60.0);
  } else if (magnitude >= 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  } else if (magnitude >= 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else if (magnitude > 0.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f us", seconds * 1e6);
  } else {
    std::snprintf(buffer, sizeof(buffer), "0 s");
  }
  return buffer;
}

}  // namespace entk
