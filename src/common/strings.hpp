// Small string utilities used across modules (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace entk {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Joins items with the given separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

/// Strips leading/trailing ASCII whitespace.
std::string trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Formats seconds as a compact human string, e.g. "1.50 s", "12.3 ms".
std::string format_seconds(double seconds);

/// Formats a double with fixed precision.
std::string format_double(double value, int precision);

}  // namespace entk
