#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/status.hpp"
#include "common/strings.hpp"

namespace entk {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ENTK_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ENTK_CHECK(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells,
                            int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double cell : cells) {
    formatted.push_back(format_double(cell, precision));
  }
  add_row(std::move(formatted));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (const std::size_t width : widths) {
    os << std::string(width + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  os << join(headers_, ",") << '\n';
  for (const auto& row : rows_) os << join(row, ",") << '\n';
  return os.str();
}

}  // namespace entk
