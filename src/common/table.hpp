// ASCII table rendering for benchmark harnesses.
//
// Every figure-reproduction bench prints its series as a table (and
// optionally CSV) via this helper so all harness output has one format.
#pragma once

#include <string>
#include <vector>

namespace entk {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision. (A
  /// separate name: a two-element brace list of string literals would
  /// otherwise ambiguously match vector<double>'s iterator-range
  /// constructor.)
  void add_numeric_row(const std::vector<double>& cells,
                       int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with aligned columns, `| a | b |` style.
  std::string to_string() const;

  /// Renders as comma-separated values (header row first).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace entk
