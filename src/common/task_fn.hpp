// Small-buffer-optimized move-only callable for task queues.
//
// std::function<void()> heap-allocates any capture larger than its
// (implementation-defined, typically two-pointer) inline buffer, and
// requires copyability — so every task submitted to a pool paid an
// allocation plus a copyable-wrapper tax. TaskFn is the task-slot
// replacement used by ThreadPool and WorkStealingPool: 48 bytes of
// inline storage (a pool task captures a couple of shared_ptrs and a
// this pointer; see bench/micro_components.cpp for the measured
// allocation-count drop), move-only so tasks can own unique_ptrs, and
// a two-pointer vtable (invoke/move-destroy) instead of RTTI.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/status.hpp"

namespace entk {

class TaskFn {
 public:
  /// Inline capture budget. Callables at most this large (and no more
  /// aligned than max_align_t) are stored in place; larger ones fall
  /// back to one heap allocation, exactly like std::function.
  static constexpr std::size_t kInlineSize = 48;

  /// Whether a callable of type F is stored inline (bench/test hook).
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(F) <= kInlineSize &&
      alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  TaskFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  TaskFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<Fn>) {
      ::new (static_cast<void*>(storage_.buffer)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      storage_.heap = new Fn(std::forward<F>(fn));
      ops_ = &heap_ops<Fn>;
    }
  }

  TaskFn(TaskFn&& other) noexcept { move_from(other); }

  TaskFn& operator=(TaskFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;

  ~TaskFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    ENTK_CHECK(ops_ != nullptr, "invoking an empty TaskFn");
    ops_->invoke(this);
  }

  void reset() {
    if (ops_ == nullptr) return;
    ops_->destroy(this);
    ops_ = nullptr;
  }

 private:
  /// Type-erased operations: a static table per callable type. `move`
  /// transfers other's callable into this (uninitialised) TaskFn and
  /// destroys other's copy.
  struct Ops {
    void (*invoke)(TaskFn*);
    void (*move)(TaskFn* to, TaskFn* from) noexcept;
    void (*destroy)(TaskFn*);
  };

  template <typename Fn>
  Fn* inline_target() {
    return std::launder(reinterpret_cast<Fn*>(storage_.buffer));
  }

  template <typename Fn>
  static void inline_invoke(TaskFn* self) {
    (*self->inline_target<Fn>())();
  }
  template <typename Fn>
  static void inline_move(TaskFn* to, TaskFn* from) noexcept {
    Fn* source = from->inline_target<Fn>();
    ::new (static_cast<void*>(to->storage_.buffer)) Fn(std::move(*source));
    source->~Fn();
  }
  template <typename Fn>
  static void inline_destroy(TaskFn* self) {
    self->inline_target<Fn>()->~Fn();
  }

  template <typename Fn>
  static void heap_invoke(TaskFn* self) {
    (*static_cast<Fn*>(self->storage_.heap))();
  }
  static void heap_move(TaskFn* to, TaskFn* from) noexcept {
    to->storage_.heap = from->storage_.heap;
    from->storage_.heap = nullptr;
  }
  template <typename Fn>
  static void heap_destroy(TaskFn* self) {
    delete static_cast<Fn*>(self->storage_.heap);
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {&inline_invoke<Fn>, &inline_move<Fn>,
                                     &inline_destroy<Fn>};

  template <typename Fn>
  static constexpr Ops heap_ops = {&heap_invoke<Fn>, &heap_move,
                                   &heap_destroy<Fn>};

  void move_from(TaskFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(this, &other);
      other.ops_ = nullptr;
    }
  }

  union Storage {
    alignas(std::max_align_t) unsigned char buffer[kInlineSize];
    void* heap;
  };
  Storage storage_;
  const Ops* ops_ = nullptr;
};

}  // namespace entk
