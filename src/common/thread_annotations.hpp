// Clang thread-safety-analysis attribute macros.
//
// These wrap Clang's `-Wthread-safety` attributes so locking contracts
// are part of a declaration and verified at compile time:
//
//   entk::Mutex mutex_;
//   int value_ ENTK_GUARDED_BY(mutex_);
//   void flush() ENTK_REQUIRES(mutex_);    // caller must hold mutex_
//   void poll() ENTK_EXCLUDES(mutex_);     // caller must NOT hold it
//
// On compilers without the attributes (GCC, MSVC) every macro expands
// to nothing, so annotated code stays portable. CI builds with Clang
// and `-Werror=thread-safety-analysis`, which turns a violated
// contract into a build failure. See docs/CORRECTNESS.md.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ENTK_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef ENTK_THREAD_ANNOTATION_
#define ENTK_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define ENTK_CAPABILITY(x) ENTK_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define ENTK_SCOPED_CAPABILITY ENTK_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member may only be accessed while holding `x`.
#define ENTK_GUARDED_BY(x) ENTK_THREAD_ANNOTATION_(guarded_by(x))

/// Like ENTK_GUARDED_BY, but guards the data a pointer points to.
#define ENTK_PT_GUARDED_BY(x) ENTK_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function may only be called while holding the given
/// capabilities (and does not release them).
#define ENTK_REQUIRES(...) \
  ENTK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that a function may only be called while NOT holding the
/// given capabilities (it acquires them itself; prevents deadlock).
#define ENTK_EXCLUDES(...) \
  ENTK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Like ENTK_REQUIRES, but shared (reader) access suffices.
#define ENTK_REQUIRES_SHARED(...) \
  ENTK_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ENTK_ACQUIRE(...) \
  ENTK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared (reader) mode.
#define ENTK_ACQUIRE_SHARED(...) \
  ENTK_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define ENTK_RELEASE(...) \
  ENTK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a capability held in shared (reader) mode.
#define ENTK_RELEASE_SHARED(...) \
  ENTK_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; returns `result` on
/// success (e.g. ENTK_TRY_ACQUIRE(true)).
#define ENTK_TRY_ACQUIRE(...) \
  ENTK_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define ENTK_RETURN_CAPABILITY(x) ENTK_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis for one function. Use sparingly and
/// leave a comment explaining why the contract cannot be expressed.
#define ENTK_NO_THREAD_SAFETY_ANALYSIS \
  ENTK_THREAD_ANNOTATION_(no_thread_safety_analysis)
