#include "common/thread_pool.hpp"

#include "common/status.hpp"

namespace entk {

ThreadPool::ThreadPool(std::size_t threads) {
  ENTK_CHECK(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ENTK_CHECK(static_cast<bool>(task), "task must be callable");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ENTK_CHECK(!stopping_, "submit after shutdown");
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace entk
