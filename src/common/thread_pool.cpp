#include "common/thread_pool.hpp"

#include "common/status.hpp"

namespace entk {

ThreadPool::ThreadPool(std::size_t threads) : thread_count_(threads) {
  ENTK_CHECK(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  // The stop flag, the notification and the claim on the worker vector
  // all happen under one critical section: a worker that is about to
  // wait must observe stopping_, and exactly one caller may join.
  std::vector<std::thread> workers;
  bool joiner = false;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    task_ready_.notify_all();
    if (!join_started_) {
      join_started_ = true;
      joiner = true;
      workers.swap(workers_);
    }
  }
  if (joiner) {
    for (auto& worker : workers) worker.join();
    MutexLock lock(mutex_);
    joined_ = true;
    joined_cv_.notify_all();
  } else {
    // Late caller: shutdown() must not return while workers may still
    // be touching this object, so wait for the joining thread.
    MutexLock lock(mutex_);
    while (!joined_) joined_cv_.wait(mutex_);
  }
}

void ThreadPool::submit(TaskFn task) {
  ENTK_CHECK(try_submit(std::move(task)), "submit after shutdown");
}

bool ThreadPool::try_submit(TaskFn task) {
  ENTK_CHECK(static_cast<bool>(task), "task must be callable");
  {
    MutexLock lock(mutex_);
    if (stopping_) return false;
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!tasks_.empty() || active_ != 0) idle_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    TaskFn task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) task_ready_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace entk
