// Fixed-size thread pool used by the local (real-execution) backend.
//
// The simulated backend never spawns threads; only the LocalAdaptor and
// the local pilot agent run kernels here, so pool sizes stay small
// (bounded by the local "machine" core count).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace entk {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run FIFO across workers. Must not be called
  /// after shutdown started (destructor).
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace entk
