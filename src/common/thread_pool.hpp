// Fixed-size thread pool used by the local (real-execution) backend.
//
// The simulated backend never spawns threads; only the LocalAdaptor and
// the local pilot agent run kernels here, so pool sizes stay small
// (bounded by the local "machine" core count).
#pragma once

#include <deque>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/task_fn.hpp"

namespace entk {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  /// Equivalent to shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run FIFO across workers. Aborts if shutdown
  /// has already started — callers that can race with shutdown use
  /// try_submit() instead.
  void submit(TaskFn task) ENTK_EXCLUDES(mutex_);

  /// Enqueues a task unless shutdown has started. Returns false (and
  /// drops the task) once stopping; safe to call concurrently with
  /// shutdown() from any thread.
  bool try_submit(TaskFn task) ENTK_EXCLUDES(mutex_);

  /// Stops accepting tasks, drains the queue and joins all workers.
  /// Idempotent and safe to call concurrently from multiple threads:
  /// every call returns only after all workers have been joined.
  void shutdown() ENTK_EXCLUDES(mutex_);

  /// Blocks until all submitted tasks have finished.
  void wait_idle() ENTK_EXCLUDES(mutex_);

  std::size_t size() const { return thread_count_; }

 private:
  void worker_loop() ENTK_EXCLUDES(mutex_);

  const std::size_t thread_count_;

  Mutex mutex_{LockRank::kThreadPool};
  CondVar task_ready_;
  CondVar idle_;
  CondVar joined_cv_;
  std::vector<std::thread> workers_ ENTK_GUARDED_BY(mutex_);
  std::deque<TaskFn> tasks_ ENTK_GUARDED_BY(mutex_);
  std::size_t active_ ENTK_GUARDED_BY(mutex_) = 0;
  bool stopping_ ENTK_GUARDED_BY(mutex_) = false;
  bool join_started_ ENTK_GUARDED_BY(mutex_) = false;
  bool joined_ ENTK_GUARDED_BY(mutex_) = false;
};

}  // namespace entk
