// Fundamental value types shared across the toolkit.
//
// All simulated and wall-clock times in the toolkit are expressed in
// seconds as `double`; durations likewise. This mirrors the profiling
// convention of the original Ensemble Toolkit / RADICAL-Pilot stack,
// where every state transition is stamped with an epoch-seconds float.
#pragma once

#include <cstdint>
#include <limits>

namespace entk {

/// A point in (simulated or wall-clock) time, in seconds.
using TimePoint = double;

/// A span of time, in seconds.
using Duration = double;

/// Sentinel for "not yet stamped" profiling timestamps.
inline constexpr TimePoint kNoTime = -1.0;

/// Number of cores, nodes, tasks, ... Negative values are never valid.
using Count = std::int64_t;

/// Largest representable time; used as an "infinite" horizon.
inline constexpr TimePoint kTimeInfinity =
    std::numeric_limits<TimePoint>::infinity();

}  // namespace entk
