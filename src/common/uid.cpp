#include "common/uid.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/mutex.hpp"

namespace entk {

namespace detail {
struct PrefixCounter {
  std::atomic<std::uint64_t> next{0};
};
}  // namespace detail

namespace {

SharedMutex g_mutex{LockRank::kUidRegistry};

// Counters are heap-allocated and never erased, so a PrefixCounter*
// obtained under the reader lock stays valid for the process lifetime;
// reset_uid_counters_for_testing zeroes them in place instead of
// clearing the map. Leaked deliberately (function-local static with no
// destructor ordering hazards at exit).
using CounterMap =
    std::unordered_map<std::string, std::unique_ptr<detail::PrefixCounter>>;

CounterMap& counters() ENTK_REQUIRES_SHARED(g_mutex) {
  static CounterMap* instance = new CounterMap();
  return *instance;
}

detail::PrefixCounter* find_counter(const std::string& prefix) {
  {
    SharedReaderLock lock(g_mutex);
    const auto it = counters().find(prefix);
    if (it != counters().end()) return it->second.get();
  }
  SharedMutexLock lock(g_mutex);
  auto& slot = counters()[prefix];
  if (slot == nullptr) slot = std::make_unique<detail::PrefixCounter>();
  return slot.get();
}

std::string format_uid(const std::string& prefix, std::uint64_t value) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(value));
  return prefix + suffix;
}

}  // namespace

std::string next_uid(const std::string& prefix) {
  detail::PrefixCounter* counter = find_counter(prefix);
  return format_uid(
      prefix, counter->next.fetch_add(1, std::memory_order_relaxed));
}

UidSource::UidSource(std::string prefix)
    : prefix_(std::move(prefix)), counter_(find_counter(prefix_)) {}

std::string UidSource::next() const {
  return format_uid(
      prefix_, counter_->next.fetch_add(1, std::memory_order_relaxed));
}

void reset_uid_counters_for_testing() {
  SharedMutexLock lock(g_mutex);
  for (auto& [prefix, counter] : counters()) {
    counter->next.store(0, std::memory_order_relaxed);
  }
}

void reset_uid_counters_with_prefix(const std::string& family) {
  const std::string dotted = family + ".";
  SharedMutexLock lock(g_mutex);
  for (auto& [prefix, counter] : counters()) {
    if (prefix != family && prefix.compare(0, dotted.size(), dotted) != 0) {
      continue;
    }
    counter->next.store(0, std::memory_order_relaxed);
  }
}

std::vector<std::pair<std::string, std::uint64_t>> snapshot_uid_counters() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    SharedReaderLock lock(g_mutex);
    out.reserve(counters().size());
    for (const auto& [prefix, counter] : counters()) {
      out.emplace_back(prefix, counter->next.load(std::memory_order_relaxed));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void restore_uid_counters(
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot) {
  SharedMutexLock lock(g_mutex);
  for (const auto& [prefix, value] : snapshot) {
    auto& slot = counters()[prefix];
    if (slot == nullptr) slot = std::make_unique<detail::PrefixCounter>();
    slot->next.store(value, std::memory_order_relaxed);
  }
}

}  // namespace entk
