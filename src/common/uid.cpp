#include "common/uid.hpp"

#include <cstdio>
#include <map>

#include "common/mutex.hpp"

namespace entk {
namespace {
Mutex g_mutex;
std::map<std::string, std::uint64_t>& counters() ENTK_REQUIRES(g_mutex) {
  static std::map<std::string, std::uint64_t> instance;
  return instance;
}
}  // namespace

std::string next_uid(const std::string& prefix) {
  std::uint64_t value = 0;
  {
    MutexLock lock(g_mutex);
    value = counters()[prefix]++;
  }
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(value));
  return prefix + suffix;
}

void reset_uid_counters_for_testing() {
  MutexLock lock(g_mutex);
  counters().clear();
}

}  // namespace entk
