// Unique-id generation for toolkit entities.
//
// Every task, unit, pilot, job and pattern instance gets a uid of the
// form "<prefix>.<counter>" (e.g. "unit.000042"), matching the naming
// scheme of the original toolkit's profiler output. Counters are
// per-prefix and process-global; generation is thread-safe.
#pragma once

#include <cstdint>
#include <string>

namespace entk {

/// Returns the next uid for the given prefix, e.g. uid("task") ->
/// "task.000000", "task.000001", ...
std::string next_uid(const std::string& prefix);

/// Resets all counters; intended for test isolation only.
void reset_uid_counters_for_testing();

}  // namespace entk
