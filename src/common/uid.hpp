// Unique-id generation for toolkit entities.
//
// Every task, unit, pilot, job and pattern instance gets a uid of the
// form "<prefix>.<counter>" (e.g. "unit.000042"), matching the naming
// scheme of the original toolkit's profiler output. Counters are
// per-prefix and process-global; generation is thread-safe.
//
// The hot path is lock-free after the first use of a prefix: each
// prefix owns one atomic counter, found through a reader-locked hash
// lookup (or held directly via a UidSource handle), so concurrent
// unit creation no longer serializes on one global mutex.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace entk {

namespace detail {
struct PrefixCounter;
}  // namespace detail

/// Returns the next uid for the given prefix, e.g. uid("task") ->
/// "task.000000", "task.000001", ...
std::string next_uid(const std::string& prefix);

/// Interned uid prefix: resolves the per-prefix counter once at
/// construction, so each next() is a single relaxed atomic increment —
/// no lock, no map lookup, no per-call prefix copy. Shares the same
/// process-global counter as next_uid(prefix), and stays valid across
/// reset_uid_counters_for_testing() (which zeroes counters in place).
class UidSource {
 public:
  explicit UidSource(std::string prefix);

  /// Thread-safe; uids are globally unique for the prefix.
  std::string next() const;

  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
  detail::PrefixCounter* counter_;
};

/// Resets all counters; intended for test isolation only. Interned
/// UidSource handles remain valid (counters restart at zero).
void reset_uid_counters_for_testing();

/// Resets only the counters belonging to one uid family: prefixes that
/// equal `family` or start with `family` + ".". Used when restoring a
/// named session from a checkpoint so the reset cannot stomp the
/// counters of sessions still running in this process.
void reset_uid_counters_with_prefix(const std::string& family);

/// Snapshot of every (prefix, next-counter) pair, sorted by prefix so
/// the result is deterministic. Used by checkpoint/restart.
std::vector<std::pair<std::string, std::uint64_t>> snapshot_uid_counters();

/// Restores counter values from a snapshot (creating missing prefixes).
/// Prefixes absent from the snapshot are left untouched; callers that
/// need a clean slate should reset_uid_counters_for_testing() first.
void restore_uid_counters(
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot);

}  // namespace entk
