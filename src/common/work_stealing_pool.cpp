#include "common/work_stealing_pool.hpp"

#include <utility>

#include "common/status.hpp"

namespace entk {

namespace {

/// Steal sweeps an idle worker spins through before parking. Each
/// sweep revisits the external queue and every neighbor, so the spin
/// budget bounds wasted cycles without a clock.
constexpr int kSpinSweeps = 64;

/// Fairness tick period: every Nth claim inspects the external queue
/// before the claimer's own deque (power of two — the tick uses a
/// mask). Small enough that an off-pool submission never waits behind
/// more than a few self-spawned continuations.
constexpr std::uint32_t kInjectPeriod = 32;

/// Which pool (if any) owns the calling thread. Lets submit_local
/// route continuations to the caller's own deque and keeps nested
/// parallel_for calls deadlock-free (the caller participates).
thread_local WorkStealingPool* t_pool = nullptr;
thread_local std::size_t t_worker_index = 0;

}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t threads,
                                   PoolMetricFn metrics)
    : thread_count_(threads), metrics_(std::move(metrics)) {
  ENTK_CHECK(threads >= 1, "work-stealing pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only after every Worker exists: thieves index the whole
  // vector from their first sweep.
  for (std::size_t i = 0; i < threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() { shutdown(); }

bool WorkStealingPool::on_worker_thread() const { return t_pool == this; }

bool WorkStealingPool::submit_local(TaskFn task) {
  ENTK_CHECK(static_cast<bool>(task), "task must be callable");
  if (t_pool != this) return try_submit_external(std::move(task));
  Worker& self = *workers_[t_worker_index];
  {
    MutexLock lock(self.mutex);
    // The stopping check lives inside the queue critical section:
    // shutdown() sweeps every queue lock after raising the flag, so an
    // accepted push is either drained by the workers or by the
    // shutdown thread — never stranded.
    if (stopping_.load(std::memory_order_relaxed)) return false;
    self.deque.push_bottom(std::move(task));
    pending_.fetch_add(1, std::memory_order_seq_cst);
  }
  note_submitted();
  return true;
}

bool WorkStealingPool::try_submit_external(TaskFn task) {
  ENTK_CHECK(static_cast<bool>(task), "task must be callable");
  {
    MutexLock lock(inject_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) return false;
    inject_.push_bottom(std::move(task));
    pending_.fetch_add(1, std::memory_order_seq_cst);
  }
  note_submitted();
  return true;
}

void WorkStealingPool::submit_external(TaskFn task) {
  ENTK_CHECK(try_submit_external(std::move(task)), "submit after shutdown");
}

void WorkStealingPool::note_submitted() {
  // Dekker pairing with park(): the submitter orders pending-increment
  // before the sleeper read, the parker orders sleeper-increment
  // before the pending re-check — at least one side observes the
  // other, so no wakeup is lost.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  MutexLock lock(state_mutex_);
  work_cv_.notify_one();
}

TaskFn WorkStealingPool::pop_own(Worker& self) {
  MutexLock lock(self.mutex);
  if (self.deque.empty()) return {};
  TaskFn task = self.deque.pop_bottom();
  active_.fetch_add(1, std::memory_order_seq_cst);
  pending_.fetch_sub(1, std::memory_order_seq_cst);
  return task;
}

TaskFn WorkStealingPool::pop_inject() {
  MutexLock lock(inject_mutex_);
  if (inject_.empty()) return {};
  TaskFn task = inject_.pop_top();
  active_.fetch_add(1, std::memory_order_seq_cst);
  pending_.fetch_sub(1, std::memory_order_seq_cst);
  return task;
}

TaskFn WorkStealingPool::take_task(std::size_t index) {
  Worker& self = *workers_[index];
  // Fairness tick: a worker spawning its own continuations (LIFO,
  // submit_local) would otherwise never look at the external queue —
  // a self-sustaining loop could starve off-pool submitters forever.
  const bool inject_first = (++self.ticks & (kInjectPeriod - 1)) == 0;
  if (inject_first) {
    if (TaskFn claimed = pop_inject()) return claimed;
    if (TaskFn claimed = pop_own(self)) return claimed;
  } else {
    if (TaskFn claimed = pop_own(self)) return claimed;
    if (TaskFn claimed = pop_inject()) return claimed;
  }
  // Neighbor-order sweep; try_lock so a contended victim never
  // convoys thieves behind it.
  for (std::size_t offset = 1; offset < thread_count_; ++offset) {
    Worker& victim = *workers_[(index + offset) % thread_count_];
    if (!victim.mutex.try_lock()) continue;
    TaskFn task;
    if (!victim.deque.empty()) {
      task = victim.deque.pop_top();
      active_.fetch_add(1, std::memory_order_seq_cst);
      pending_.fetch_sub(1, std::memory_order_seq_cst);
    }
    victim.mutex.unlock();
    if (task) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      note_metric(PoolMetric::kStolen, 1);
      return task;
    }
  }
  return {};
}

void WorkStealingPool::run_task(TaskFn task) {
  task();
  task.reset();
  executed_.fetch_add(1, std::memory_order_relaxed);
  note_metric(PoolMetric::kExecuted, 1);
  if (active_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
      pending_.load(std::memory_order_seq_cst) == 0) {
    MutexLock lock(state_mutex_);
    idle_cv_.notify_all();
  }
}

bool WorkStealingPool::park() {
  std::uint64_t parked = 0;
  bool live = true;
  {
    MutexLock lock(state_mutex_);
    for (;;) {
      if (pending_.load(std::memory_order_seq_cst) != 0) break;
      if (stopping_.load(std::memory_order_relaxed)) {
        live = false;
        break;
      }
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (pending_.load(std::memory_order_seq_cst) != 0) {
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      ++parked;
      work_cv_.wait(state_mutex_);
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (parked != 0) {
    parks_.fetch_add(parked, std::memory_order_relaxed);
    note_metric(PoolMetric::kParked, parked);
  }
  return live;
}

void WorkStealingPool::worker_loop(std::size_t index) {
  t_pool = this;
  t_worker_index = index;
  for (;;) {
    TaskFn task = take_task(index);
    if (task) {
      run_task(std::move(task));
      continue;
    }
    // Bounded spin: most idle gaps are one-task-short, and a steal
    // sweep is far cheaper than a park/unpark round trip.
    bool found = false;
    for (int sweep = 0; sweep < kSpinSweeps && !found; ++sweep) {
      if (pending_.load(std::memory_order_seq_cst) != 0) {
        task = take_task(index);
        found = static_cast<bool>(task);
      }
      if (!found) std::this_thread::yield();
    }
    if (found) {
      run_task(std::move(task));
      continue;
    }
    if (!park()) return;  // stopping and drained
  }
}

void WorkStealingPool::shutdown() {
  bool joiner = false;
  {
    MutexLock lock(state_mutex_);
    stopping_.store(true, std::memory_order_seq_cst);
    work_cv_.notify_all();
    if (!join_started_) {
      join_started_ = true;
      joiner = true;
    }
  }
  if (joiner) {
    // Queue-lock barrier: a submission that read stopping_ == false
    // finishes its push before these sweeps return; one that locks
    // afterwards observes the flag and is refused. Either way nothing
    // is accepted past this point.
    { MutexLock lock(inject_mutex_); }
    for (auto& worker : workers_) {
      MutexLock lock(worker->mutex);
    }
    for (auto& worker : workers_) worker->thread.join();
    // Drain guarantee: whatever a racing submission stranded after the
    // workers exited still runs, on this thread.
    drain_inline();
    MutexLock lock(state_mutex_);
    joined_ = true;
    joined_cv_.notify_all();
    idle_cv_.notify_all();
  } else {
    // Late caller: shutdown() must not return while workers may still
    // be touching this object, so wait for the joining thread.
    MutexLock lock(state_mutex_);
    while (!joined_) joined_cv_.wait(state_mutex_);
  }
}

void WorkStealingPool::drain_inline() {
  for (;;) {
    TaskFn task;
    {
      MutexLock lock(inject_mutex_);
      if (!inject_.empty()) {
        task = inject_.pop_top();
        active_.fetch_add(1, std::memory_order_seq_cst);
        pending_.fetch_sub(1, std::memory_order_seq_cst);
      }
    }
    if (!task) {
      for (auto& worker : workers_) {
        MutexLock lock(worker->mutex);
        if (!worker->deque.empty()) {
          task = worker->deque.pop_top();
          active_.fetch_add(1, std::memory_order_seq_cst);
          pending_.fetch_sub(1, std::memory_order_seq_cst);
          break;
        }
      }
    }
    if (!task) return;
    run_task(std::move(task));
  }
}

void WorkStealingPool::wait_idle() {
  MutexLock lock(state_mutex_);
  // Read order matters: pending first, then active (claims bump
  // active_ before dropping pending_).
  while (pending_.load(std::memory_order_seq_cst) != 0 ||
         active_.load(std::memory_order_seq_cst) != 0) {
    idle_cv_.wait(state_mutex_);
  }
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats stats;
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  stats.parks = parks_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace entk
