// Work-stealing thread pool: per-thread ring-buffer deques with
// neighbor-order stealing.
//
// Each worker owns a deque: the owner pushes and pops at the BOTTOM
// (LIFO, so freshly spawned subtasks run hot in cache), thieves take
// from the TOP (FIFO, so the oldest — usually largest — work
// migrates). Off-pool callers submit into a shared external queue
// that workers drain FIFO between local work, which keeps external
// submissions fair against a worker busily feeding itself. An idle
// worker sweeps its neighbors in ring order (index+1, index+2, ...),
// spins through a bounded number of sweeps, then parks on a CondVar
// until new work or shutdown.
//
// This is the lock-per-queue variant of the classic Chase-Lev design:
// every deque is guarded by its own ranked entk::Mutex
// (LockRank::kWorkStealingQueue) so the pool stays fully visible to
// Clang's thread-safety analysis and the lock-rank validator — the
// queues are leaf locks, never nested with each other or with the
// pool's park/state lock (LockRank::kWorkStealingPool). Steals use
// try_lock and move on, so a contended victim never convoys thieves.
//
// Shutdown drains: every task accepted before shutdown() executes
// (ThreadPool parity) — workers drain until empty, and whatever a
// racing submission strands after the workers exit is executed inline
// by the joining thread.
//
// The pool reports steal/park/execute counters two ways: pool-local
// Stats (stats()) and an optional PoolMetricFn sink, which the obs
// layer binds to the well-known "pool.*" metrics registry counters
// (obs::pool_metric_fn) — common/ cannot depend on obs/, so the sink
// is injected by the layer that creates the pool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.hpp"
#include "common/task_fn.hpp"

namespace entk {

/// Counter events a pool reports through its metric sink.
enum class PoolMetric {
  kExecuted,  ///< Tasks run to completion.
  kStolen,    ///< Tasks taken from another worker's deque.
  kParked,    ///< CondVar waits entered after the spin budget.
};

/// Metric sink: called with an event and a count delta, from worker
/// threads. Must not take locks ranked <= kWorkStealingPool.
using PoolMetricFn = std::function<void(PoolMetric, std::uint64_t)>;

class WorkStealingPool {
 public:
  /// Spawns `threads` workers (>= 1). `metrics`, when set, receives
  /// steal/park/execute counter deltas.
  explicit WorkStealingPool(std::size_t threads,
                            PoolMetricFn metrics = nullptr);

  /// Equivalent to shutdown().
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// The general entry point. On a pool worker thread: pushes onto the
  /// caller's own deque bottom (LIFO — continuations run next, idle
  /// neighbors steal the backlog). Anywhere else: falls back to
  /// try_submit_external. Returns false (and drops the task) once
  /// shutdown has started.
  bool submit_local(TaskFn task);

  /// Enqueues onto the shared external queue unless shutdown has
  /// started; safe to call concurrently with shutdown() from any
  /// thread. Returns false (and drops the task) once stopping.
  bool try_submit_external(TaskFn task);

  /// Enqueues onto the shared external queue; aborts if shutdown has
  /// already started — callers that can race teardown use
  /// try_submit_external() instead.
  void submit_external(TaskFn task);

  /// Stops accepting tasks, drains every queue and joins all workers.
  /// Idempotent and safe to call concurrently from multiple threads:
  /// every call returns only after all workers have been joined.
  void shutdown();

  /// Blocks until all accepted tasks have finished.
  void wait_idle();

  std::size_t size() const { return thread_count_; }

  /// Whether the calling thread is one of THIS pool's workers.
  bool on_worker_thread() const;

  /// Monotonic counter snapshot (also streamed to the metric sink).
  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t parks = 0;
  };
  Stats stats() const;

  /// Runs fn(0) ... fn(n-1), spreading the calls over the pool; the
  /// caller participates, so completion never depends on pool
  /// capacity (or on the pool accepting tasks at all — during
  /// shutdown the caller simply runs everything). Blocks until all n
  /// calls returned. `fn` is invoked concurrently from several
  /// threads and must tolerate that; no two calls share an index, and
  /// results keyed by index need no further ordering.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (n == 1) {
      fn(std::size_t{0});
      return;
    }
    struct Shared {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
    };
    // Heap-shared cursor: a helper task that never claims an index may
    // run after this frame returned, so it must not reference the
    // stack. `fn` itself is only dereferenced for a claimed index, and
    // every claimed index completes before the wait below returns.
    auto shared = std::make_shared<Shared>();
    const std::remove_reference_t<Fn>* body = &fn;
    const std::size_t helpers = std::min(thread_count_, n - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
      const bool accepted = submit_local(TaskFn([shared, body, n] {
        for (;;) {
          const std::size_t i =
              shared->next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          (*body)(i);
          shared->done.fetch_add(1, std::memory_order_release);
        }
      }));
      if (!accepted) break;  // shutting down: the caller runs the rest
    }
    for (;;) {
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*body)(i);
      shared->done.fetch_add(1, std::memory_order_release);
    }
    while (shared->done.load(std::memory_order_acquire) != n) {
      std::this_thread::yield();
    }
  }

 private:
  /// Growable power-of-two circular buffer. Owner end is the BOTTOM
  /// (push_bottom/pop_bottom), thief end is the TOP (pop_top).
  class RingDeque {
   public:
    bool empty() const { return size_ == 0; }

    void push_bottom(TaskFn task) {
      if (size_ == buffer_.size()) grow();
      buffer_[(head_ + size_) & mask_] = std::move(task);
      ++size_;
    }

    TaskFn pop_bottom() {
      --size_;
      return std::move(buffer_[(head_ + size_) & mask_]);
    }

    TaskFn pop_top() {
      TaskFn task = std::move(buffer_[head_]);
      head_ = (head_ + 1) & mask_;
      --size_;
      return task;
    }

   private:
    void grow() {
      std::vector<TaskFn> doubled(buffer_.size() * 2);
      for (std::size_t i = 0; i < size_; ++i) {
        doubled[i] = std::move(buffer_[(head_ + i) & mask_]);
      }
      buffer_ = std::move(doubled);
      mask_ = buffer_.size() - 1;
      head_ = 0;
    }

    std::vector<TaskFn> buffer_ = std::vector<TaskFn>(64);
    std::size_t mask_ = 63;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  struct Worker {
    Mutex mutex{LockRank::kWorkStealingQueue};
    RingDeque deque ENTK_GUARDED_BY(mutex);
    std::thread thread;
    /// Claim counter for the fairness tick (take_task); touched only
    /// by the owning worker thread, so it needs no lock.
    std::uint32_t ticks = 0;
  };

  void worker_loop(std::size_t index);
  /// One pass over own-bottom, external-top and neighbors-top; empty
  /// TaskFn when nothing was found. Every kInjectPeriod-th claim looks
  /// at the external queue FIRST, so off-pool submissions stay fair
  /// against a worker busily feeding its own deque.
  TaskFn take_task(std::size_t index);
  /// Claims the caller's own deque bottom; empty TaskFn when empty.
  TaskFn pop_own(Worker& self);
  /// Claims the external queue top; empty TaskFn when empty.
  TaskFn pop_inject() ENTK_EXCLUDES(inject_mutex_);
  /// Runs one claimed task and maintains active/idle accounting.
  void run_task(TaskFn task);
  /// Blocks until work arrives; returns false when the pool is
  /// stopping and drained (the worker exits).
  bool park() ENTK_EXCLUDES(state_mutex_);
  /// Marks a task accepted and wakes a parked worker if any.
  void note_submitted() ENTK_EXCLUDES(state_mutex_);
  /// Executes tasks stranded by racing submissions after the workers
  /// exited (shutdown drain guarantee).
  void drain_inline();
  void note_metric(PoolMetric metric, std::uint64_t n) const {
    if (metrics_) metrics_(metric, n);
  }

  const std::size_t thread_count_;
  const PoolMetricFn metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;

  Mutex inject_mutex_{LockRank::kWorkStealingQueue};
  RingDeque inject_ ENTK_GUARDED_BY(inject_mutex_);

  /// Tasks accepted but not yet started. Claims decrement AFTER the
  /// claimer bumped active_, so (pending_ == 0 && active_ == 0) read
  /// in that order is a sound idle check.
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> sleepers_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> parks_{0};

  Mutex state_mutex_{LockRank::kWorkStealingPool};
  CondVar work_cv_;
  CondVar idle_cv_;
  CondVar joined_cv_;
  bool join_started_ ENTK_GUARDED_BY(state_mutex_) = false;
  bool joined_ ENTK_GUARDED_BY(state_mutex_) = false;
};

}  // namespace entk
