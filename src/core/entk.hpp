// Umbrella header: the public API of the Ensemble Toolkit (C++).
//
// Typical usage:
//
//   #include "core/entk.hpp"
//
//   auto registry = entk::kernels::KernelRegistry::with_builtin_kernels();
//   entk::pilot::SimBackend backend(entk::sim::comet_profile());
//   entk::core::ResourceOptions options;
//   options.cores = 192;
//   entk::core::ResourceHandle handle(backend, registry, options);
//   handle.allocate();
//
//   entk::core::BagOfTasks pattern(192, [](const entk::core::StageContext&) {
//     entk::core::TaskSpec spec;
//     spec.kernel = "misc.mkfile";
//     return spec;
//   });
//   auto report = handle.run(pattern);
//   handle.deallocate();
#pragma once

#include "core/execution_plugin.hpp"
#include "core/graph_executor.hpp"
#include "core/overheads.hpp"
#include "core/pattern.hpp"
#include "core/profile_export.hpp"
#include "core/resource_handle.hpp"
#include "core/strategy.hpp"
#include "core/task.hpp"
#include "core/task_graph.hpp"
#include "core/utilization.hpp"
#include "core/workload_file.hpp"
#include "kernels/registry.hpp"
#include "pilot/local_backend.hpp"
#include "pilot/sim_backend.hpp"
#include "sim/machine.hpp"
