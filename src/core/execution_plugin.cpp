#include "core/execution_plugin.hpp"

#include "common/strings.hpp"
#include "obs/trace.hpp"

namespace entk::core {

ExecutionPlugin::ExecutionPlugin(const kernels::KernelRegistry& registry,
                                 pilot::UnitManager& unit_manager,
                                 pilot::ExecutionBackend& backend,
                                 Options options)
    : registry_(registry),
      unit_manager_(unit_manager),
      backend_(backend),
      options_(options) {
  ENTK_CHECK(options_.per_task_overhead >= 0.0,
             "per-task overhead must be >= 0");
}

ExecutionPlugin::ExecutionPlugin(const kernels::KernelRegistry& registry,
                                 pilot::UnitManager& unit_manager,
                                 pilot::ExecutionBackend& backend)
    : ExecutionPlugin(registry, unit_manager, backend, Options()) {}

Result<pilot::UnitDescription> ExecutionPlugin::translate(
    const TaskSpec& spec) const {
  auto kernel = registry_.find(spec.kernel);
  if (!kernel.ok()) return kernel.status();
  auto bound = kernel.value()->bind(spec.args, backend_.machine());
  if (!bound.ok()) return bound.status();
  kernels::BoundKernel& resolved = bound.value();

  pilot::UnitDescription description;
  description.name = resolved.kernel_name;
  description.executable = resolved.executable;
  description.arguments = resolved.arguments;
  description.environment = resolved.environment;
  if (!resolved.pre_exec.empty()) {
    description.environment["ENTK_PRE_EXEC"] =
        join(resolved.pre_exec, " && ");
  }
  description.cores = resolved.cores;
  description.uses_mpi = resolved.uses_mpi;
  description.simulated_duration = resolved.estimated_duration;
  if (spec.cores > 0 && spec.cores != resolved.cores) {
    // The pattern overrides the core count: rescale the cost model
    // assuming the kernel's (linear) MPI scaling.
    description.simulated_duration = resolved.estimated_duration *
                                     static_cast<double>(resolved.cores) /
                                     static_cast<double>(spec.cores);
    description.cores = spec.cores;
    description.uses_mpi = spec.cores > 1;
  }
  description.payload = std::move(resolved.payload);
  description.input_staging = std::move(resolved.input_staging);
  description.output_staging = std::move(resolved.output_staging);
  description.simulated_fail = spec.inject_failure;
  description.simulated_hang = spec.inject_hang;
  description.retry = spec.retry;
  return description;
}

Result<std::vector<pilot::ComputeUnitPtr>> ExecutionPlugin::submit(
    const std::vector<TaskSpec>& specs) {
  if (specs.empty()) {
    return make_error(Errc::kInvalidArgument, "no tasks to submit");
  }
  std::vector<pilot::UnitDescription> descriptions;
  descriptions.reserve(specs.size());
  for (const auto& spec : specs) {
    auto description = translate(spec);
    if (!description.ok()) return description.status();
    descriptions.push_back(description.take());
  }
  // Charge the toolkit's task creation + submission cost to the clock
  // and account it (the "pattern overhead" of the paper's Fig 3 —
  // strictly per-task, independent of what the task does).
  const Duration charge =
      options_.per_task_overhead * static_cast<double>(specs.size());
  backend_.advance(charge);
  // Counter (not a span): on the sim backend advance() is a no-op
  // while the engine dispatches, so only the charge value is reliable.
  ENTK_TRACE_COUNTER("overhead.pattern", "core", charge);
  auto units = unit_manager_.submit_units(std::move(descriptions));
  if (!units.ok()) return units.status();
  {
    MutexLock lock(mutex_);
    pattern_overhead_ += charge;
    all_units_.insert(all_units_.end(), units.value().begin(),
                      units.value().end());
  }
  return units;
}

Status ExecutionPlugin::drive_until(const std::function<bool()>& done) {
  return backend_.drive_until(done);
}

bool ExecutionPlugin::subscribe_settled(SettledFn fn) {
  const std::size_t token =
      unit_manager_.add_settled_observer(std::move(fn));
  MutexLock lock(mutex_);
  ENTK_CHECK(!settled_token_.has_value(),
             "execution plugin already has a settled subscription");
  settled_token_ = token;
  return true;
}

void ExecutionPlugin::unsubscribe_settled() {
  std::optional<std::size_t> token;
  {
    MutexLock lock(mutex_);
    token.swap(settled_token_);
  }
  if (token.has_value()) unit_manager_.remove_settled_observer(*token);
}

Duration ExecutionPlugin::pattern_overhead() const {
  MutexLock lock(mutex_);
  return pattern_overhead_;
}

std::size_t ExecutionPlugin::tasks_submitted() const {
  MutexLock lock(mutex_);
  return all_units_.size();
}

std::vector<pilot::ComputeUnitPtr> ExecutionPlugin::all_units() const {
  MutexLock lock(mutex_);
  return all_units_;
}

void ExecutionPlugin::restore_state(
    Duration pattern_overhead, std::vector<pilot::ComputeUnitPtr> units) {
  MutexLock lock(mutex_);
  ENTK_CHECK(all_units_.empty(),
             "cannot restore into a plugin that already submitted units");
  pattern_overhead_ = pattern_overhead;
  all_units_ = std::move(units);
}

}  // namespace entk::core
