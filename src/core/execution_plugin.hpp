// Execution plugin: binds execution pattern x kernel plugins.
//
// The internal component that receives TaskSpecs from a pattern,
// resolves each kernel against the target machine (static binding and
// translation, as in the paper), charges the toolkit's per-task
// creation/submission overhead, and forwards the resulting compute
// units to the pilot runtime.
#pragma once

#include <mutex>

#include "core/pattern.hpp"
#include "kernels/registry.hpp"
#include "pilot/backend.hpp"
#include "pilot/unit_manager.hpp"

namespace entk::core {

class ExecutionPlugin final : public PatternExecutor {
 public:
  struct Options {
    /// Modelled cost of creating + submitting one task through the
    /// toolkit (the paper's "pattern overhead"; charged to the clock
    /// on the simulated backend).
    Duration per_task_overhead = 0.004;
  };

  ExecutionPlugin(const kernels::KernelRegistry& registry,
                  pilot::UnitManager& unit_manager,
                  pilot::ExecutionBackend& backend, Options options);
  /// Uses default Options.
  ExecutionPlugin(const kernels::KernelRegistry& registry,
                  pilot::UnitManager& unit_manager,
                  pilot::ExecutionBackend& backend);

  Result<std::vector<pilot::ComputeUnitPtr>> submit(
      const std::vector<TaskSpec>& specs) override;
  Status drive_until(const std::function<bool()>& done) override;

  /// Translates a single spec without submitting (exposed for tests
  /// and for tools that inspect the binding).
  Result<pilot::UnitDescription> translate(const TaskSpec& spec) const;

  /// Accumulated pattern overhead (task creation + submission time).
  Duration pattern_overhead() const;
  std::size_t tasks_submitted() const;
  /// Every unit this plugin has submitted, in submission order.
  std::vector<pilot::ComputeUnitPtr> all_units() const;

 private:
  const kernels::KernelRegistry& registry_;
  pilot::UnitManager& unit_manager_;
  pilot::ExecutionBackend& backend_;
  Options options_;

  mutable std::mutex mutex_;
  Duration pattern_overhead_ = 0.0;
  std::vector<pilot::ComputeUnitPtr> all_units_;
};

}  // namespace entk::core
