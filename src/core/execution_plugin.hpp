// Execution plugin: binds execution pattern x kernel plugins.
//
// The internal component that receives TaskSpecs from a pattern,
// resolves each kernel against the target machine (static binding and
// translation, as in the paper), charges the toolkit's per-task
// creation/submission overhead, and forwards the resulting compute
// units to the pilot runtime.
#pragma once

#include <optional>

#include "common/mutex.hpp"
#include "core/pattern.hpp"
#include "kernels/registry.hpp"
#include "pilot/backend.hpp"
#include "pilot/unit_manager.hpp"

namespace entk::core {

class ExecutionPlugin final : public PatternExecutor {
 public:
  struct Options {
    /// Modelled cost of creating + submitting one task through the
    /// toolkit (the paper's "pattern overhead"; charged to the clock
    /// on the simulated backend).
    Duration per_task_overhead = 0.004;
  };

  ExecutionPlugin(const kernels::KernelRegistry& registry,
                  pilot::UnitManager& unit_manager,
                  pilot::ExecutionBackend& backend, Options options);
  /// Uses default Options.
  ExecutionPlugin(const kernels::KernelRegistry& registry,
                  pilot::UnitManager& unit_manager,
                  pilot::ExecutionBackend& backend);

  Result<std::vector<pilot::ComputeUnitPtr>> submit(
      const std::vector<TaskSpec>& specs) override;
  Status drive_until(const std::function<bool()>& done) override;
  /// Forwards unit-settled events from the unit manager to the graph
  /// executor (at most one subscription at a time).
  bool subscribe_settled(SettledFn fn) override;
  void unsubscribe_settled() override;

  /// Translates a single spec without submitting (exposed for tests
  /// and for tools that inspect the binding).
  Result<pilot::UnitDescription> translate(const TaskSpec& spec) const;

  /// Accumulated pattern overhead (task creation + submission time).
  Duration pattern_overhead() const ENTK_EXCLUDES(mutex_);
  std::size_t tasks_submitted() const ENTK_EXCLUDES(mutex_);
  /// Every unit this plugin has submitted, in submission order.
  std::vector<pilot::ComputeUnitPtr> all_units() const ENTK_EXCLUDES(mutex_);

  /// Checkpoint restore: injects the accumulated overhead and the
  /// submission-ordered unit list captured by a snapshot. The unit
  /// order is the snapshot's canonical serialization order, so it must
  /// be reproduced exactly.
  void restore_state(Duration pattern_overhead,
                     std::vector<pilot::ComputeUnitPtr> units)
      ENTK_EXCLUDES(mutex_);

 private:
  const kernels::KernelRegistry& registry_;
  pilot::UnitManager& unit_manager_;
  pilot::ExecutionBackend& backend_;
  Options options_;

  mutable Mutex mutex_{LockRank::kExecutionPlugin};
  Duration pattern_overhead_ ENTK_GUARDED_BY(mutex_) = 0.0;
  std::vector<pilot::ComputeUnitPtr> all_units_ ENTK_GUARDED_BY(mutex_);
  std::optional<std::size_t> settled_token_ ENTK_GUARDED_BY(mutex_);
};

}  // namespace entk::core
