#include "core/graph_executor.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/log.hpp"
#include "core/parallel_runtime.hpp"
#include "pilot/states.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace entk::core {

namespace {

/// Below this frontier size the spec batch is materialized serially
/// even with a pool configured: dispatching a handful of SpecFn calls
/// costs more than running them inline.
constexpr std::size_t kParallelSpecBatch = 32;

/// A unit is settled when it is final and no retry is pending.
bool unit_settled(const pilot::ComputeUnit& unit) {
  const pilot::UnitState state = unit.state();
  if (!pilot::is_final(state)) return false;
  if (state == pilot::UnitState::kFailed &&
      unit.retries() < unit.description().retry.max_retries) {
    return false;  // the unit manager is about to resubmit it
  }
  return true;
}

bool is_settled_status(NodeStatus status) {
  return status == NodeStatus::kDone || status == NodeStatus::kFailed ||
         status == NodeStatus::kCanceled || status == NodeStatus::kSkipped;
}

}  // namespace

void watch_unit(const pilot::ComputeUnitPtr& unit,
                std::function<void(pilot::ComputeUnit&,
                                   pilot::UnitState)> handler) {
  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto shared_handler = std::make_shared<
      std::function<void(pilot::ComputeUnit&, pilot::UnitState)>>(
      std::move(handler));
  unit->on_state_change(
      [fired, shared_handler](pilot::ComputeUnit& changed,
                              pilot::UnitState) {
        if (!unit_settled(changed)) return;
        if (fired->exchange(true)) return;
        (*shared_handler)(changed, changed.state());
      });
  // The unit may already be final (fast local execution).
  if (unit_settled(*unit) && !fired->exchange(true)) {
    (*shared_handler)(*unit, unit->state());
  }
}

GraphExecutor::GraphExecutor(TaskGraph& graph, PatternExecutor& executor)
    : graph_(graph), executor_(executor) {}

Status GraphExecutor::run() {
  ENTK_RETURN_IF_ERROR(start());
  return drive_run();
}

Status GraphExecutor::resume() {
  ENTK_RETURN_IF_ERROR(start_resumed());
  return drive_run();
}

Status GraphExecutor::start() {
  ENTK_RETURN_IF_ERROR(graph_.validate());
  {
    MutexLock lock(mutex_);
    sync_graph_locked();
  }
  use_events_ = executor_.subscribe_settled(
      [this](const pilot::ComputeUnitPtr& unit, pilot::UnitState) {
        on_unit_settled(unit);
      });
  pump();
  return Status::ok();
}

Status GraphExecutor::start_resumed() {
  ENTK_RETURN_IF_ERROR(graph_.validate());
  use_events_ = executor_.subscribe_settled(
      [this](const pilot::ComputeUnitPtr& unit, pilot::UnitState) {
        on_unit_settled(unit);
      });
  pump();
  return Status::ok();
}

bool GraphExecutor::finished() const {
  MutexLock lock(mutex_);
  return finished_;
}

Status GraphExecutor::outcome() const {
  MutexLock lock(mutex_);
  return outcome_;
}

void GraphExecutor::unsubscribe() {
  if (use_events_) executor_.unsubscribe_settled();
  use_events_ = false;
}

Status GraphExecutor::drive_run() {
  // The one wait of the whole pattern layer: a finished flag flipped
  // by the event pump, not a progress predicate over units.
  const Status driven = executor_.drive_until([this] {
    MutexLock lock(mutex_);
    return finished_;
  });
  unsubscribe();
  ENTK_RETURN_IF_ERROR(driven);
  MutexLock lock(mutex_);
  return outcome_;
}

NodeStatus GraphExecutor::node_status(NodeId id) const {
  MutexLock lock(mutex_);
  return id < runs_.size() ? runs_[id].status : NodeStatus::kPending;
}

std::size_t GraphExecutor::nodes_submitted() const {
  MutexLock lock(mutex_);
  return submitted_count_;
}

void GraphExecutor::on_unit_settled(const pilot::ComputeUnitPtr& unit) {
  {
    MutexLock lock(mutex_);
    const auto it = node_of_.find(unit.get());
    if (it == node_of_.end()) return;  // not one of this graph's units
    events_.push_back({it->second, unit->state()});
    if (deferred_) return;  // advance_local() drains it
  }
  pump();
}

void GraphExecutor::set_deferred(bool deferred) {
  MutexLock lock(mutex_);
  deferred_ = deferred;
}

bool GraphExecutor::advance_local() {
  if (!pending_frontier_.empty()) return true;  // unflushed batch
  {
    MutexLock lock(mutex_);
    if (pumping_ || finished_) return false;
    pumping_ = true;
  }
  for (;;) {
    std::vector<NodeId> frontier;
    {
      MutexLock lock(mutex_);
      if (finished_) {
        pumping_ = false;
        return false;
      }
      sync_graph_locked();
      apply_events_locked();
      decide_stage_groups_locked();
      propagate_skips_locked();
      frontier = frontier_locked();
      if (frontier.empty() && inflight_ > 0) {
        pumping_ = false;
        return false;
      }
    }
    if (!frontier.empty()) {
      pending_specs_ = materialize_specs(frontier);
      pending_frontier_ = std::move(frontier);
      MutexLock lock(mutex_);
      pumping_ = false;
      return true;
    }
    if (!handle_quiesce()) {
      MutexLock lock(mutex_);
      pumping_ = false;
      return false;
    }
  }
}

bool GraphExecutor::flush_submit() {
  if (pending_frontier_.empty()) return false;
  std::vector<NodeId> frontier = std::move(pending_frontier_);
  pending_frontier_.clear();
  std::vector<TaskSpec> specs = std::move(pending_specs_);
  pending_specs_.clear();
  submit_specs(frontier, specs);
  return true;
}

std::size_t GraphExecutor::flush_submit_bounded(std::size_t max_nodes) {
  if (pending_frontier_.empty() || max_nodes == 0) return 0;
  if (max_nodes >= pending_frontier_.size()) {
    const std::size_t count = pending_frontier_.size();
    flush_submit();
    return count;
  }
  const auto split = static_cast<std::ptrdiff_t>(max_nodes);
  std::vector<NodeId> frontier(pending_frontier_.begin(),
                               pending_frontier_.begin() + split);
  std::vector<TaskSpec> specs(
      std::make_move_iterator(pending_specs_.begin()),
      std::make_move_iterator(pending_specs_.begin() + split));
  pending_frontier_.erase(pending_frontier_.begin(),
                          pending_frontier_.begin() + split);
  pending_specs_.erase(pending_specs_.begin(),
                       pending_specs_.begin() + split);
  submit_specs(frontier, specs);
  return max_nodes;
}

std::vector<pilot::ComputeUnitPtr> GraphExecutor::cancel(Status reason) {
  // The unflushed deferred batch would submit units for nodes the
  // abort sweep is about to retire — drop it before marking the abort.
  pending_frontier_.clear();
  pending_specs_.clear();
  std::vector<pilot::ComputeUnitPtr> inflight;
  {
    MutexLock lock(mutex_);
    if (finished_) return inflight;
    if (!aborted_) {
      aborted_ = true;
      abort_status_ = std::move(reason);
    }
    inflight.reserve(inflight_);
    for (const NodeRun& run : runs_) {
      if (run.status == NodeStatus::kSubmitted) {
        inflight.push_back(run.unit);
      }
    }
  }
  // Run the abort sweep now. With nothing in flight this quiesces and
  // finishes the run immediately; otherwise the returned units'
  // settlements finish it through the normal event path.
  pump();
  return inflight;
}

void GraphExecutor::pump() {
  bool deferred;
  {
    MutexLock lock(mutex_);
    deferred = deferred_;
  }
  // In deferred mode every pump source (start, cancel, resume) only
  // materializes the pending batch; the driver decides when — and how
  // much of — it submits (flush_submit / flush_submit_bounded).
  if (deferred) {
    (void)advance_local();
    return;
  }
  {
    MutexLock lock(mutex_);
    if (pumping_ || finished_) return;
    pumping_ = true;
  }
  for (;;) {
    std::vector<NodeId> frontier;
    {
      MutexLock lock(mutex_);
      if (finished_) {
        pumping_ = false;
        return;
      }
      sync_graph_locked();
      apply_events_locked();
      decide_stage_groups_locked();
      propagate_skips_locked();
      frontier = frontier_locked();
      if (frontier.empty() && inflight_ > 0) {
        // Nothing unblocked; settlements will pump again. The queue is
        // empty here (drained above) and enqueuing takes this lock, so
        // no event can slip past the flag.
        pumping_ = false;
        return;
      }
    }
    if (!frontier.empty()) {
      submit_frontier(frontier);
      continue;
    }
    // Quiesced: nothing ready, nothing in flight.
    if (!handle_quiesce()) {
      MutexLock lock(mutex_);
      pumping_ = false;
      return;
    }
  }
}

void GraphExecutor::sync_graph_locked() {
  const std::size_t nodes = graph_.node_count();
  const std::size_t groups = graph_.group_count();
  runs_.resize(nodes);
  group_runs_.resize(groups);
  dependents_.resize(nodes);
  ready_queued_.resize(nodes, 0);
  gated_nodes_.resize(groups);
  group_dirty_.resize(groups, 0);
  if (chain_sets_decided_.size() < graph_.chain_set_count()) {
    chain_sets_decided_.resize(graph_.chain_set_count(), false);
  }
  // Index reverse edges for the nodes added since the last sync and
  // seed them as frontier candidates (their deps and gates may already
  // be satisfied — or already failed, hence the skip check too).
  for (NodeId id = synced_nodes_; id < nodes; ++id) {
    const TaskNode& node = graph_.node(id);
    for (const NodeId dep : node.deps) dependents_[dep].push_back(id);
    for (const GroupId gate : node.gates) {
      gated_nodes_[gate].push_back(id);
    }
    queue_ready_locked(id);
    skip_candidates_.push_back(id);
  }
  synced_nodes_ = nodes;
  // A new group can be born complete (an empty stage): give each one
  // decide pass.
  for (GroupId gid = synced_groups_; gid < groups; ++gid) {
    mark_group_dirty_locked(gid);
  }
  synced_groups_ = groups;
}

void GraphExecutor::queue_ready_locked(NodeId id) {
  if (ready_queued_[id] != 0) return;
  if (runs_[id].status != NodeStatus::kPending) return;
  ready_queued_[id] = 1;
  ready_candidates_.push_back(id);
}

void GraphExecutor::mark_group_dirty_locked(GroupId gid) {
  if (group_dirty_[gid] != 0) return;
  group_dirty_[gid] = 1;
  dirty_groups_.push_back(gid);
}

void GraphExecutor::settle_into_groups_locked(NodeId id, bool done) {
  for (const GroupId gid : graph_.node(id).groups) {
    GroupRun& run = group_runs_[gid];
    ++run.settled;
    if (done) ++run.done;
    mark_group_dirty_locked(gid);
  }
}

void GraphExecutor::queue_dependent_skips_locked(NodeId id) {
  for (const NodeId dependent : dependents_[id]) {
    skip_candidates_.push_back(dependent);
  }
}

void GraphExecutor::apply_events_locked() {
  while (!events_.empty()) {
    const Event event = events_.front();
    events_.pop_front();
    NodeRun& run = runs_[event.node];
    if (run.status != NodeStatus::kSubmitted) continue;  // duplicate
    --inflight_;
    switch (event.state) {
      case pilot::UnitState::kDone:
        run.status = NodeStatus::kDone;
        break;
      case pilot::UnitState::kCanceled:
        run.status = NodeStatus::kCanceled;
        run.error = make_error(Errc::kCancelled,
                               "unit " + run.unit->uid() +
                                   " was cancelled");
        errors_.emplace_back(event.node, run.error);
        break;
      default:
        run.status = NodeStatus::kFailed;
        run.error = run.unit->final_status();
        errors_.emplace_back(event.node, run.error);
        break;
    }
    settle_into_groups_locked(event.node,
                              run.status == NodeStatus::kDone);
    if (run.status == NodeStatus::kDone) {
      for (const NodeId dependent : dependents_[event.node]) {
        queue_ready_locked(dependent);
      }
    } else {
      queue_dependent_skips_locked(event.node);
    }
  }
}

Status GraphExecutor::stage_verdict_locked(GroupId gid) const {
  const TaskGroup& group = graph_.group(gid);
  // First failure among members, in member order (the historical
  // first_failure scan over a stage's units).
  Status failure;
  for (const NodeId member : group.members) {
    const NodeRun& run = runs_[member];
    if (run.status == NodeStatus::kFailed ||
        run.status == NodeStatus::kCanceled ||
        run.status == NodeStatus::kSkipped) {
      failure = run.error;
      break;
    }
  }
  if (failure.is_ok()) return Status::ok();
  switch (group.rules.policy) {
    case FailurePolicy::kFailFast:
      return failure;
    case FailurePolicy::kContinueOnFailure:
      ENTK_WARN("core.graph")
          << group.label << ": continuing past failure: "
          << failure.to_string();
      return Status::ok();
    case FailurePolicy::kQuorum: {
      std::size_t done = 0;
      for (const NodeId member : group.members) {
        if (runs_[member].status == NodeStatus::kDone) ++done;
      }
      const double fraction =
          group.members.empty()
              ? 1.0
              : static_cast<double>(done) /
                    static_cast<double>(group.members.size());
      if (fraction >= group.rules.quorum) {
        ENTK_WARN("core.graph")
            << group.label << ": quorum met (" << done << "/"
            << group.members.size()
            << " done); continuing past failure: " << failure.to_string();
        return Status::ok();
      }
      return make_error(Errc::kExecutionFailed,
                        group.label + ": only " + std::to_string(done) +
                            "/" + std::to_string(group.members.size()) +
                            " units finished, below the quorum; first "
                            "failure: " +
                            failure.message());
    }
  }
  return failure;
}

void GraphExecutor::decide_stage_groups_locked() {
  if (aborted_) return;
  if (dirty_groups_.empty()) return;
  // Ascending ids: when several groups complete in the same pump, the
  // lowest-id failing verdict wins the abort (the historical full-scan
  // order).
  std::vector<GroupId> batch;
  batch.swap(dirty_groups_);
  std::sort(batch.begin(), batch.end());
  for (const GroupId gid : batch) group_dirty_[gid] = 0;
  for (const GroupId gid : batch) {
    const TaskGroup& group = graph_.group(gid);
    if (group.kind != GroupKind::kStage) continue;
    GroupRun& run = group_runs_[gid];
    if (run.decided || run.settled < group.members.size()) continue;
    run.decided = true;
    const Status verdict = stage_verdict_locked(gid);
    ENTK_TRACE_INSTANT(verdict.is_ok() ? "graph.verdict.pass"
                                       : "graph.verdict.fail",
                       "graph");
    if (verdict.is_ok()) {
      run.passed = true;
      for (const NodeId gated : gated_nodes_[gid]) {
        queue_ready_locked(gated);
      }
      continue;
    }
    // A failed barrier verdict aborts the whole graph: unsubmitted
    // nodes are skipped, in-flight units are left to settle.
    aborted_ = true;
    abort_status_ = verdict;
    return;
  }
}

void GraphExecutor::propagate_skips_locked() {
  if (aborted_) {
    // One sweep retires every still-pending node; nothing new can be
    // added after an abort (expanders never run on an aborted graph).
    if (abort_swept_) return;
    abort_swept_ = true;
    skip_candidates_.clear();
    std::size_t swept = 0;
    for (NodeId id = 0; id < runs_.size(); ++id) {
      NodeRun& run = runs_[id];
      if (run.status != NodeStatus::kPending) continue;
      run.status = NodeStatus::kSkipped;
      run.error = make_error(Errc::kCancelled,
                             "node '" + graph_.node(id).label +
                                 "' skipped: pattern aborted");
      settle_into_groups_locked(id, false);
      ++swept;
    }
    // Aggregate metrics by design. entk-lint: allow(global-run-state)
    obs::Metrics::instance()
        .counter(obs::WellKnownCounter::kGraphNodesSkipped)
        .add(swept);
    return;
  }
  // Worklist fixpoint: a node is examined only when an upstream
  // settled badly (or when it was just added to the graph).
  while (!skip_candidates_.empty()) {
    const NodeId id = skip_candidates_.back();
    skip_candidates_.pop_back();
    NodeRun& run = runs_[id];
    if (run.status != NodeStatus::kPending) continue;
    Status reason;
    for (const NodeId dep : graph_.node(id).deps) {
      const NodeStatus upstream = runs_[dep].status;
      if (upstream == NodeStatus::kFailed ||
          upstream == NodeStatus::kCanceled ||
          upstream == NodeStatus::kSkipped) {
        reason = make_error(Errc::kCancelled,
                            "node '" + graph_.node(id).label +
                                "' skipped: upstream '" +
                                graph_.node(dep).label +
                                "' did not finish");
        break;
      }
    }
    if (reason.is_ok()) continue;
    run.status = NodeStatus::kSkipped;
    run.error = std::move(reason);
    // Aggregate metrics by design. entk-lint: allow(global-run-state)
    obs::Metrics::instance()
        .counter(obs::WellKnownCounter::kGraphNodesSkipped)
        .add();
    settle_into_groups_locked(id, false);
    queue_dependent_skips_locked(id);
  }
}

std::vector<NodeId> GraphExecutor::frontier_locked() {
  std::vector<NodeId> ready;
  if (aborted_ || finished_) return ready;
  // Drain the candidate worklist. A candidate that is still blocked is
  // dropped, not kept: whichever event clears its last blocker (a dep
  // reaching done, a gate group passing, its own creation) re-queues
  // it, so readiness is never missed.
  while (!ready_candidates_.empty()) {
    const NodeId id = ready_candidates_.back();
    ready_candidates_.pop_back();
    ready_queued_[id] = 0;
    if (runs_[id].status != NodeStatus::kPending) continue;
    const TaskNode& node = graph_.node(id);
    bool blocked = false;
    for (const NodeId dep : node.deps) {
      if (runs_[dep].status != NodeStatus::kDone) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      for (const GroupId gate : node.gates) {
        const GroupRun& gate_run = group_runs_[gate];
        if (!gate_run.decided || !gate_run.passed) {
          blocked = true;
          break;
        }
      }
    }
    if (blocked) continue;
    ready.push_back(id);
  }
  // Ascending ids: deterministic submission order, matching the old
  // whole-graph scan.
  std::sort(ready.begin(), ready.end());
  return ready;
}

void GraphExecutor::submit_frontier(const std::vector<NodeId>& frontier) {
  std::vector<TaskSpec> specs = materialize_specs(frontier);
  submit_specs(frontier, specs);
}

std::vector<TaskSpec> GraphExecutor::materialize_specs(
    const std::vector<NodeId>& frontier) {
  // Specs are produced here — at submission time, outside any lock —
  // so stateful user callbacks observe current application state.
  std::vector<TaskSpec> specs;
  WorkStealingPool* pool = parallel_pool();
  if (pool != nullptr && frontier.size() >= kParallelSpecBatch) {
    // Index-keyed parallel materialization: each call fills its own
    // pre-sized slot, so the batch comes out in node-id order and the
    // serial submit below is bit-identical to the serial path (the
    // pinned golden digests hold at every thread count). SpecFns must
    // tolerate concurrent invocation ACROSS DIFFERENT NODES — each
    // node's own SpecFn still runs exactly once.
    specs.resize(frontier.size());
    const TaskGraph& graph = graph_;
    pool->parallel_for(frontier.size(),
                       [&specs, &graph, &frontier](std::size_t i) {
                         specs[i] = graph.node(frontier[i]).make_spec();
                       });
    return specs;
  }
  specs.reserve(frontier.size());
  for (const NodeId id : frontier) {
    specs.push_back(graph_.node(id).make_spec());
  }
  return specs;
}

void GraphExecutor::submit_specs(const std::vector<NodeId>& frontier,
                                 std::vector<TaskSpec>& specs) {
  ENTK_TRACE_SPAN("graph.submit_frontier", "graph");
  ENTK_TRACE_COUNTER("graph.frontier_batch", "graph", frontier.size());
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  auto& metrics = obs::Metrics::instance();
  metrics.counter(obs::WellKnownCounter::kGraphFrontierBatches).add();
  metrics.counter(obs::WellKnownCounter::kGraphNodesSubmitted)
      .add(frontier.size());
  metrics.histogram(obs::WellKnownHistogram::kGraphFrontierBatchSize)
      .observe(static_cast<double>(frontier.size()));
  auto submitted = executor_.submit(specs);
  if (submitted.ok()) {
    const auto units = submitted.take();
    ENTK_CHECK(units.size() == frontier.size(),
               "executor returned a mismatched unit batch");
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      adopt_unit(frontier[i], units[i]);
    }
    return;
  }
  if (frontier.size() == 1) {
    fail_submission(frontier.front(), submitted.status());
    return;
  }
  // The batch failed as a whole; fall back to per-node submission so
  // one bad task only poisons its own failure scope (a failing
  // pipeline must not take its siblings down with it).
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    {
      MutexLock lock(mutex_);
      if (aborted_) return;  // the abort sweep skips the rest
    }
    auto one = executor_.submit({specs[i]});
    if (one.ok()) {
      adopt_unit(frontier[i], one.take().front());
    } else {
      fail_submission(frontier[i], one.status());
    }
  }
}

void GraphExecutor::adopt_unit(NodeId id,
                               const pilot::ComputeUnitPtr& unit) {
  {
    MutexLock lock(mutex_);
    NodeRun& run = runs_[id];
    run.status = NodeStatus::kSubmitted;
    run.unit = unit;
    ++inflight_;
    ++submitted_count_;
    node_of_[unit.get()] = id;
  }
  const UnitSink& sink = graph_.node(id).sink;
  if (sink) sink(unit);
  if (!use_events_) {
    watch_unit(unit, [this, unit](pilot::ComputeUnit&,
                                  pilot::UnitState) {
      on_unit_settled(unit);
    });
  } else if (unit_settled(*unit)) {
    // The unit settled synchronously during submission (an oversized
    // unit fails before routing): the settled observer fired before
    // this node was registered, so poll once. Duplicate events are
    // deduplicated against the node status.
    on_unit_settled(unit);
  }
}

void GraphExecutor::fail_submission(NodeId id, const Status& error) {
  MutexLock lock(mutex_);
  NodeRun& run = runs_[id];
  run.status = NodeStatus::kFailed;
  run.error = error;
  errors_.emplace_back(id, error);
  bool stage_scoped = false;
  for (const GroupId gid : graph_.node(id).groups) {
    ++group_runs_[gid].settled;
    if (graph_.group(gid).kind == GroupKind::kStage) stage_scoped = true;
  }
  // A task that cannot even be created inside a barrier stage fails
  // the pattern outright (the historical submit-error semantics);
  // inside a chain it only ends that chain.
  if (stage_scoped && !aborted_) {
    aborted_ = true;
    abort_status_ = error;
  }
}

Status GraphExecutor::decide_chain_sets() {
  MutexLock lock(mutex_);
  for (std::size_t index = 0; index < graph_.chain_set_count(); ++index) {
    if (chain_sets_decided_[index]) continue;
    chain_sets_decided_[index] = true;
    const ChainSet& set = graph_.chain_set(index);
    // Errors recorded against this set's chains, in settlement order.
    std::vector<const Status*> set_errors;
    for (const auto& [node, error] : errors_) {
      const auto& memberships = graph_.node(node).groups;
      const bool in_set =
          std::any_of(set.chains.begin(), set.chains.end(),
                      [&memberships](GroupId chain) {
                        return std::find(memberships.begin(),
                                         memberships.end(),
                                         chain) != memberships.end();
                      });
      if (in_set) set_errors.push_back(&error);
    }
    if (set_errors.empty()) continue;
    const Status& first = *set_errors.front();
    switch (set.rules.policy) {
      case FailurePolicy::kFailFast:
        return first;
      case FailurePolicy::kContinueOnFailure:
        ENTK_WARN("core.graph")
            << set.label << ": " << set_errors.size() << " "
            << set.member_noun
            << " chain failure(s); continuing per policy";
        break;
      case FailurePolicy::kQuorum: {
        // Plain loops, not std::all_of: thread-safety analysis treats
        // a nested lambda as a separate function not holding mutex_.
        std::size_t completed = 0;
        for (const GroupId chain : set.chains) {
          const TaskGroup& group = graph_.group(chain);
          bool all_done = true;
          for (const NodeId member : group.members) {
            if (runs_[member].status != NodeStatus::kDone) {
              all_done = false;
              break;
            }
          }
          if (all_done) ++completed;
        }
        const double fraction =
            set.chains.empty()
                ? 1.0
                : static_cast<double>(completed) /
                      static_cast<double>(set.chains.size());
        if (fraction >= set.rules.quorum) break;
        return make_error(Errc::kExecutionFailed,
                          set.label + ": only " +
                              std::to_string(completed) + "/" +
                              std::to_string(set.chains.size()) + " " +
                              set.member_noun +
                              " completed, below the quorum; first "
                              "failure: " +
                              first.message());
      }
    }
  }
  return Status::ok();
}

bool GraphExecutor::handle_quiesce() {
  {
    MutexLock lock(mutex_);
    if (aborted_) {
      finish_locked(abort_status_);
      return false;
    }
  }
  const Status chains = decide_chain_sets();
  if (!chains.is_ok()) {
    MutexLock lock(mutex_);
    finish_locked(chains);
    return false;
  }
  // Expanders, innermost-first: a nested pattern's expander must drain
  // completely before the enclosing loop decides its next round.
  for (;;) {
    std::size_t top = 0;
    bool have_top = false;
    {
      MutexLock lock(mutex_);
      while (expanders_seen_ < graph_.expander_count()) {
        expander_stack_.push_back(expanders_seen_++);
      }
      if (!expander_stack_.empty()) {
        top = expander_stack_.back();
        have_top = true;
      }
    }
    if (!have_top) break;
    graph_.bump_generation();
    auto produced = graph_.expander(top)(graph_);
    if (!produced.ok()) {
      MutexLock lock(mutex_);
      finish_locked(produced.status());
      return false;
    }
    {
      // Log the invocation (even unproductive ones): a checkpoint
      // restore replays this script to regrow the graph.
      MutexLock lock(mutex_);
      expander_log_.emplace_back(top, produced.value());
    }
    if (produced.value()) return true;  // more work scheduled
    MutexLock lock(mutex_);
    ENTK_CHECK(!expander_stack_.empty() && expander_stack_.back() == top,
               "expander stack corrupted");
    expander_stack_.pop_back();
  }
  // Fully drained. Anything still pending can never run — a cycle of
  // gates a compiler should not have produced.
  MutexLock lock(mutex_);
  for (NodeId id = 0; id < runs_.size(); ++id) {
    if (runs_[id].status == NodeStatus::kPending) {
      finish_locked(make_error(
          Errc::kInternal,
          "task graph stalled: node '" + graph_.node(id).label +
              "' never became ready (undecidable gate or dependency?)"));
      return false;
    }
    ENTK_CHECK(is_settled_status(runs_[id].status),
               "drained graph left a unit in flight");
  }
  finish_locked(Status::ok());
  return false;
}

GraphExecutor::SavedState GraphExecutor::save_state() const {
  MutexLock lock(mutex_);
  ENTK_CHECK(events_.empty(),
             "checkpoint capture with undrained settlement events");
  SavedState saved;
  saved.nodes.reserve(runs_.size());
  for (const NodeRun& run : runs_) {
    SavedState::Node node;
    node.status = run.status;
    if (run.unit) node.unit_uid = run.unit->uid();
    node.error = run.error;
    saved.nodes.push_back(std::move(node));
  }
  saved.groups.reserve(group_runs_.size());
  for (const GroupRun& run : group_runs_) {
    saved.groups.push_back({run.settled, run.done, run.decided, run.passed});
  }
  saved.chain_sets_decided = chain_sets_decided_;
  saved.expander_stack = expander_stack_;
  saved.expanders_seen = expanders_seen_;
  saved.expander_log = expander_log_;
  saved.errors = errors_;
  saved.inflight = inflight_;
  saved.submitted_count = submitted_count_;
  saved.aborted = aborted_;
  saved.abort_status = abort_status_;
  return saved;
}

Status GraphExecutor::replay_expander_log(
    const std::vector<std::pair<std::size_t, bool>>& log) {
  for (const auto& [index, expected_produced] : log) {
    if (index >= graph_.expander_count()) {
      return make_error(Errc::kInternal,
                        "checkpoint replay: expander index " +
                            std::to_string(index) +
                            " out of range (graph has " +
                            std::to_string(graph_.expander_count()) +
                            " expanders)");
    }
    graph_.bump_generation();
    auto produced = graph_.expander(index)(graph_);
    if (!produced.ok()) {
      return make_error(Errc::kInternal,
                        "checkpoint replay: expander " +
                            std::to_string(index) + " failed: " +
                            produced.status().message());
    }
    if (produced.value() != expected_produced) {
      return make_error(
          Errc::kInternal,
          "checkpoint replay: expander " + std::to_string(index) +
              " diverged from the log (non-deterministic pattern?)");
    }
  }
  {
    MutexLock lock(mutex_);
    expander_log_ = log;
  }
  return Status::ok();
}

void GraphExecutor::restore_state(const SavedState& saved,
                                  const UnitResolver& resolve) {
  MutexLock lock(mutex_);
  // Seed the incremental worklists for the whole (replayed) graph
  // first. The spurious candidates this enqueues are harmless: at a
  // valid capture cut every ready node was already submitted and no
  // skip propagation is pending, so the first pump drains them as
  // no-ops.
  sync_graph_locked();
  ENTK_CHECK(saved.nodes.size() == runs_.size(),
             "checkpoint node count does not match the replayed graph");
  ENTK_CHECK(saved.groups.size() == group_runs_.size(),
             "checkpoint group count does not match the replayed graph");
  for (NodeId id = 0; id < runs_.size(); ++id) {
    NodeRun& run = runs_[id];
    const SavedState::Node& node = saved.nodes[id];
    run.status = node.status;
    run.error = node.error;
    if (!node.unit_uid.empty()) {
      run.unit = resolve(node.unit_uid);
      ENTK_CHECK(run.unit != nullptr,
                 "checkpoint references unknown unit " + node.unit_uid);
      node_of_[run.unit.get()] = id;
    }
  }
  for (GroupId gid = 0; gid < group_runs_.size(); ++gid) {
    GroupRun& run = group_runs_[gid];
    const SavedState::Group& group = saved.groups[gid];
    run.settled = group.settled;
    run.done = group.done;
    run.decided = group.decided;
    run.passed = group.passed;
  }
  ENTK_CHECK(saved.chain_sets_decided.size() == chain_sets_decided_.size(),
             "checkpoint chain-set count does not match the graph");
  chain_sets_decided_ = saved.chain_sets_decided;
  expander_stack_ = saved.expander_stack;
  expanders_seen_ = saved.expanders_seen;
  errors_ = saved.errors;
  inflight_ = saved.inflight;
  submitted_count_ = saved.submitted_count;
  aborted_ = saved.aborted;
  abort_status_ = saved.abort_status;
  // An aborted snapshot already ran its one skip sweep.
  abort_swept_ = saved.aborted;
}

void GraphExecutor::finish_locked(Status outcome) {
  if (finished_) return;
  finished_ = true;
  outcome_ = std::move(outcome);
}

}  // namespace entk::core
