// GraphExecutor: event-driven execution of one TaskGraph.
//
// The executor subscribes to the runtime's unit-settled events
// (PatternExecutor::subscribe_settled, backed by the unit manager's
// settled observers) instead of polling predicates. Each settlement
// pumps the graph: settled nodes update their groups, stage verdicts
// are decided, failures propagate as skips, and every newly unblocked
// frontier is submitted in ONE batched PatternExecutor::submit call —
// independent pipelines' stage N+1 tasks launch the instant their own
// stage N settles, with no global barrier.
//
// When the graph quiesces (nothing ready, nothing in flight) the
// executor evaluates chain-set verdicts and runs the graph's expanders
// (innermost-first) to grow the next generation; when the expanders
// are exhausted too, the run finishes and the single outer
// drive_until — waiting on a finished flag, the one wait in the whole
// pattern layer — returns.
//
// Failure semantics (owned here, not by patterns):
//  - A stage group's verdict (fail-fast / continue / quorum over its
//    members) is computed once all members settle; a failing verdict
//    aborts the graph: unsubmitted nodes are skipped, in-flight units
//    settle, then the run finishes with the verdict.
//  - A submission failure inside a stage group aborts likewise (the
//    historical submit-error semantics); inside a chain it only ends
//    that chain.
//  - Chain sets (per-pipeline / per-replica scopes) are judged at
//    drain time under their own rules.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "core/pattern.hpp"
#include "core/task_graph.hpp"

namespace entk::core {

/// Runtime status of one graph node.
enum class NodeStatus {
  kPending,    ///< Waiting on dependencies or gates.
  kSubmitted,  ///< Unit in flight.
  kDone,
  kFailed,     ///< Unit settled failed, or submission failed.
  kCanceled,
  kSkipped,    ///< Abandoned: an upstream failure or a graph abort.
};

/// Registers `handler` to run exactly once when `unit` settles into a
/// *final* state. Handles the already-final and retry-pending cases
/// (a kFailed notification that the unit manager immediately retried
/// is not final). The executor's fallback event source for
/// PatternExecutor implementations without settled subscriptions.
void watch_unit(const pilot::ComputeUnitPtr& unit,
                std::function<void(pilot::ComputeUnit&,
                                   pilot::UnitState)> handler);

class GraphExecutor {
 public:
  GraphExecutor(TaskGraph& graph, PatternExecutor& executor);

  /// Runs the graph to completion and returns the pattern verdict:
  /// OK, the first failure filtered through the graph's failure
  /// scopes, or the backend's wait error (deadlock, timeout).
  Status run();

  /// Continues a run rebuilt from a checkpoint: same event loop as
  /// run(), but the graph and executor state were injected by
  /// restore_state() instead of starting from scratch.
  Status resume();

  // --- non-blocking run control (Runtime::run_concurrent) ---
  // run() is start() + drive_until(finished) + unsubscribe() +
  // outcome();
  // splitting it lets one backend drive N sessions' executors under a
  // single wait instead of serializing whole runs.
  /// Validates and syncs the graph, subscribes to settled events and
  /// pumps the initial frontier. Events now advance the graph whenever
  /// anything drives the backend.
  Status start();
  /// start() for a checkpoint-restored run: no initial sync (the
  /// restore injected runs_), same subscription and initial pump.
  Status start_resumed();
  /// Whether the run has finished (outcome() is then meaningful).
  bool finished() const ENTK_EXCLUDES(mutex_);
  /// The pattern verdict of a finished run.
  Status outcome() const ENTK_EXCLUDES(mutex_);
  /// Unsubscribes from settled events. Call once after the run
  /// finishes — or on teardown of an unfinished run, after which the
  /// executor no longer reacts to settlements.
  void unsubscribe();

  // --- deferred pumping (Runtime::run_concurrent parallel path) ---
  // In deferred mode a settlement only queues its event; the graph
  // advances when the driver calls advance_local() (parallelizable
  // across sessions — it touches only this executor's state and the
  // user SpecFns) followed by flush_submit() (serial — the backend is
  // shared across sessions and not thread-safe). advance_local and
  // flush_submit for ONE executor must not run concurrently with each
  // other; Runtime alternates a parallel advance phase and a serial
  // flush phase.
  /// Enables/disables deferred mode. Toggle only between engine steps
  /// (no settlement callback in flight, no pending batch unflushed).
  void set_deferred(bool deferred) ENTK_EXCLUDES(mutex_);
  /// Parallel-safe half of one pump round: applies queued settlement
  /// events, decides groups, propagates skips, computes the next
  /// frontier and materializes its specs — everything except the
  /// submission itself. Returns true when flush_submit() has a batch.
  bool advance_local() ENTK_EXCLUDES(mutex_);
  /// Serial half: submits the batch advance_local() materialized, in
  /// node-id order. Returns true when anything was submitted (another
  /// advance round may unblock more work).
  bool flush_submit() ENTK_EXCLUDES(mutex_);
  /// Bounded serial half: submits at most `max_nodes` of the pending
  /// batch (lowest node ids first) and keeps the remainder pending for
  /// a later flush — the dispatch hook serve's deficit-round-robin
  /// interleaves contending sessions through. Returns the number of
  /// nodes actually submitted. Driver-thread only, like flush_submit.
  std::size_t flush_submit_bounded(std::size_t max_nodes)
      ENTK_EXCLUDES(mutex_);
  /// Nodes advance_local() materialized that flush_submit has not yet
  /// sent. Driver-thread only (reads the unannotated batch).
  std::size_t pending_submits() const { return pending_frontier_.size(); }

  // --- cancellation (Session::cancel_run) ---
  /// Aborts an unfinished run with `reason`: discards any deferred
  /// batch not yet flushed (its nodes are about to be swept), marks
  /// the graph aborted so the one-shot skip sweep retires every
  /// unsubmitted node, and returns the units still in flight so the
  /// caller can cancel them through its unit manager. Their
  /// settlements drain through the normal event path and the run
  /// finishes with `reason` at quiesce. Returns an empty vector on an
  /// already-finished run. Driver-thread only (must not race an
  /// active advance_local/flush_submit round).
  std::vector<pilot::ComputeUnitPtr> cancel(Status reason)
      ENTK_EXCLUDES(mutex_);

  /// Post-run introspection (tests, tools).
  NodeStatus node_status(NodeId id) const ENTK_EXCLUDES(mutex_);
  std::size_t nodes_submitted() const ENTK_EXCLUDES(mutex_);

  // --- checkpoint/restart (ckpt::Coordinator only) ---
  struct SavedState {
    struct Node {
      NodeStatus status = NodeStatus::kPending;
      std::string unit_uid;  ///< empty when no unit was adopted
      Status error;
    };
    struct Group {
      std::size_t settled = 0;
      std::size_t done = 0;
      bool decided = false;
      bool passed = false;
    };
    std::vector<Node> nodes;
    std::vector<Group> groups;
    std::vector<bool> chain_sets_decided;
    std::vector<std::size_t> expander_stack;
    std::size_t expanders_seen = 0;
    /// Every expander invocation so far as (index, produced) — replayed
    /// on restore to regrow the graph deterministically.
    std::vector<std::pair<std::size_t, bool>> expander_log;
    std::vector<std::pair<NodeId, Status>> errors;
    std::size_t inflight = 0;
    std::size_t submitted_count = 0;
    bool aborted = false;
    Status abort_status;
  };
  using UnitResolver =
      std::function<pilot::ComputeUnitPtr(const std::string&)>;
  /// Captures the executor at an engine-step boundary (events_ drained,
  /// no pump active).
  SavedState save_state() const ENTK_EXCLUDES(mutex_);
  /// Replays the captured expander invocations against the freshly
  /// compiled graph, regrowing the adaptive generations. Must run
  /// before restore_state(); fails if an expander diverges from the
  /// log (non-deterministic pattern).
  Status replay_expander_log(
      const std::vector<std::pair<std::size_t, bool>>& log);
  /// Injects the captured runtime state; `resolve` maps unit uids back
  /// to restored units.
  void restore_state(const SavedState& saved, const UnitResolver& resolve)
      ENTK_EXCLUDES(mutex_);

 private:
  /// Shared blocking tail of run()/resume(): wait, detach, verdict.
  Status drive_run();
  struct Event {
    NodeId node;
    pilot::UnitState state;
  };
  struct NodeRun {
    NodeStatus status = NodeStatus::kPending;
    pilot::ComputeUnitPtr unit;
    Status error;
  };
  struct GroupRun {
    std::size_t settled = 0;
    std::size_t done = 0;
    bool decided = false;
    bool passed = false;
  };

  /// Event entry point: queues the settlement and pumps the graph.
  /// Safe against re-entrancy — a settlement arriving while a pump is
  /// active (submission callbacks, local-backend worker threads) is
  /// queued and drained by the active pump.
  void on_unit_settled(const pilot::ComputeUnitPtr& unit)
      ENTK_EXCLUDES(mutex_);
  void pump() ENTK_EXCLUDES(mutex_);
  /// Quiesced: abort resolution, chain-set verdicts, expanders.
  /// Returns true when an expander scheduled more work.
  bool handle_quiesce() ENTK_EXCLUDES(mutex_);
  void submit_frontier(const std::vector<NodeId>& frontier)
      ENTK_EXCLUDES(mutex_);
  /// Produces the frontier's specs at submission time, outside any
  /// lock — across the parallel pool when one is configured and the
  /// batch is large enough.
  std::vector<TaskSpec> materialize_specs(
      const std::vector<NodeId>& frontier) ENTK_EXCLUDES(mutex_);
  /// Submits an already-materialized batch and adopts the units (the
  /// back half of submit_frontier; also the flush_submit work).
  void submit_specs(const std::vector<NodeId>& frontier,
                    std::vector<TaskSpec>& specs) ENTK_EXCLUDES(mutex_);
  void adopt_unit(NodeId id, const pilot::ComputeUnitPtr& unit)
      ENTK_EXCLUDES(mutex_);
  void fail_submission(NodeId id, const Status& error)
      ENTK_EXCLUDES(mutex_);
  Status decide_chain_sets() ENTK_EXCLUDES(mutex_);

  void sync_graph_locked() ENTK_REQUIRES(mutex_);
  void apply_events_locked() ENTK_REQUIRES(mutex_);
  void decide_stage_groups_locked() ENTK_REQUIRES(mutex_);
  void propagate_skips_locked() ENTK_REQUIRES(mutex_);
  std::vector<NodeId> frontier_locked() ENTK_REQUIRES(mutex_);
  /// Queues `id` for a readiness check at the next frontier drain.
  void queue_ready_locked(NodeId id) ENTK_REQUIRES(mutex_);
  void mark_group_dirty_locked(GroupId gid) ENTK_REQUIRES(mutex_);
  /// Records a settled node in all its groups and marks them dirty.
  void settle_into_groups_locked(NodeId id, bool done)
      ENTK_REQUIRES(mutex_);
  void queue_dependent_skips_locked(NodeId id) ENTK_REQUIRES(mutex_);
  Status stage_verdict_locked(GroupId group) const ENTK_REQUIRES(mutex_);
  void finish_locked(Status outcome) ENTK_REQUIRES(mutex_);

  TaskGraph& graph_;
  PatternExecutor& executor_;
  /// Whether the executor delivers settled events (else watch_unit).
  bool use_events_ = false;

  mutable Mutex mutex_{LockRank::kGraphExecutor};
  std::vector<NodeRun> runs_ ENTK_GUARDED_BY(mutex_);
  std::vector<GroupRun> group_runs_ ENTK_GUARDED_BY(mutex_);
  /// Reverse adjacency and change worklists, maintained incrementally
  /// by sync_graph_locked and the event path. They keep every pump
  /// proportional to what actually changed instead of rescanning the
  /// whole graph — at 100k nodes the old full scans were quadratic.
  std::vector<std::vector<NodeId>> dependents_ ENTK_GUARDED_BY(mutex_);
  std::vector<std::vector<NodeId>> gated_nodes_ ENTK_GUARDED_BY(mutex_);
  std::vector<NodeId> ready_candidates_ ENTK_GUARDED_BY(mutex_);
  std::vector<char> ready_queued_ ENTK_GUARDED_BY(mutex_);
  std::vector<NodeId> skip_candidates_ ENTK_GUARDED_BY(mutex_);
  std::vector<GroupId> dirty_groups_ ENTK_GUARDED_BY(mutex_);
  std::vector<char> group_dirty_ ENTK_GUARDED_BY(mutex_);
  std::size_t synced_nodes_ ENTK_GUARDED_BY(mutex_) = 0;
  std::size_t synced_groups_ ENTK_GUARDED_BY(mutex_) = 0;
  bool abort_swept_ ENTK_GUARDED_BY(mutex_) = false;
  std::vector<bool> chain_sets_decided_ ENTK_GUARDED_BY(mutex_);
  /// LIFO of pending expander indices (innermost on top).
  std::vector<std::size_t> expander_stack_ ENTK_GUARDED_BY(mutex_);
  std::size_t expanders_seen_ ENTK_GUARDED_BY(mutex_) = 0;
  /// Chronological (index, produced) record of expander invocations —
  /// the checkpoint replay script for adaptive graph growth.
  std::vector<std::pair<std::size_t, bool>> expander_log_
      ENTK_GUARDED_BY(mutex_);
  std::unordered_map<const pilot::ComputeUnit*, NodeId> node_of_
      ENTK_GUARDED_BY(mutex_);
  std::deque<Event> events_ ENTK_GUARDED_BY(mutex_);
  /// Chronological (node, error) records for chain-set verdicts.
  std::vector<std::pair<NodeId, Status>> errors_ ENTK_GUARDED_BY(mutex_);
  std::size_t inflight_ ENTK_GUARDED_BY(mutex_) = 0;
  std::size_t submitted_count_ ENTK_GUARDED_BY(mutex_) = 0;
  bool pumping_ ENTK_GUARDED_BY(mutex_) = false;
  bool deferred_ ENTK_GUARDED_BY(mutex_) = false;
  /// The batch advance_local() materialized for flush_submit().
  /// Unannotated by design: the advance/flush alternation (documented
  /// above) is the synchronization, not mutex_.
  std::vector<NodeId> pending_frontier_;
  std::vector<TaskSpec> pending_specs_;
  bool aborted_ ENTK_GUARDED_BY(mutex_) = false;
  Status abort_status_ ENTK_GUARDED_BY(mutex_);
  bool finished_ ENTK_GUARDED_BY(mutex_) = false;
  Status outcome_ ENTK_GUARDED_BY(mutex_);
};

}  // namespace entk::core
