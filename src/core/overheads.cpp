#include "core/overheads.hpp"

#include <algorithm>

namespace entk::core {

OverheadProfile build_overhead_profile(
    const std::vector<pilot::ComputeUnitPtr>& units,
    const pilot::PilotPtr& pilot, Duration run_span, Duration core_overhead,
    Duration pattern_overhead) {
  OverheadProfile profile;
  profile.core_overhead = core_overhead;
  profile.pattern_overhead = pattern_overhead;
  profile.n_units = units.size();

  TimePoint first_start = kTimeInfinity;
  TimePoint last_stop = -kTimeInfinity;
  for (const auto& unit : units) {
    const Duration execution = unit->execution_time();
    profile.total_unit_execution += execution;
    if (unit->exec_started_at() != kNoTime) {
      first_start = std::min(first_start, unit->exec_started_at());
    }
    if (unit->exec_stopped_at() != kNoTime) {
      last_stop = std::max(last_stop, unit->exec_stopped_at());
    }
  }
  if (!units.empty()) {
    profile.mean_unit_execution =
        profile.total_unit_execution / static_cast<double>(units.size());
  }
  if (first_start != kTimeInfinity && last_stop > first_start) {
    profile.execution_time = last_stop - first_start;
  }
  profile.runtime_overhead = std::max(
      0.0, run_span - profile.pattern_overhead - profile.execution_time);
  profile.ttc = core_overhead + run_span;
  if (pilot != nullptr) profile.pilot_startup = pilot->startup_time();
  return profile;
}

}  // namespace entk::core
