// TTC decomposition: the measurement model of the paper's Section IV.
//
// Total time to completion splits into
//   core overhead     — toolkit init + resource request/teardown
//                       (constant: independent of pattern and #tasks)
//   pattern overhead  — task creation + submission (grows with #tasks)
//   execution time    — span from first task start to last task stop
//   runtime overhead  — everything the pilot runtime adds: agent
//                       scheduling, serialized spawns, staging, idle
//                       gaps between stages
//   pilot startup     — queue wait + agent bootstrap, reported
//                       separately (the paper excludes queue wait from
//                       its TTC decomposition)
#pragma once

#include <vector>

#include "common/types.hpp"
#include "pilot/compute_unit.hpp"
#include "pilot/pilot.hpp"

namespace entk::core {

struct OverheadProfile {
  Duration ttc = 0.0;
  Duration core_overhead = 0.0;
  Duration pattern_overhead = 0.0;
  Duration execution_time = 0.0;
  Duration runtime_overhead = 0.0;
  Duration pilot_startup = 0.0;

  std::size_t n_units = 0;
  Duration mean_unit_execution = 0.0;
  Duration total_unit_execution = 0.0;
};

/// Builds the decomposition from a finished run.
/// `run_span` is the wall/virtual time the pattern execution took
/// (pattern overhead + execution + runtime overheads); `core_overhead`
/// is the (modelled, constant) toolkit cost outside the run.
OverheadProfile build_overhead_profile(
    const std::vector<pilot::ComputeUnitPtr>& units,
    const pilot::PilotPtr& pilot, Duration run_span,
    Duration core_overhead, Duration pattern_overhead);

}  // namespace entk::core
