#include "core/parallel_runtime.hpp"

#include <memory>

#include "obs/pool_metrics.hpp"

namespace entk::core {

namespace {

/// Startup-configured, then read-only for the duration of a run (see
/// set_parallel_threads); intentionally leaked so worker threads never
/// outlive it during static destruction.
WorkStealingPool*& pool_slot() {
  static WorkStealingPool* pool = nullptr;
  return pool;
}

}  // namespace

void set_parallel_threads(std::size_t threads) {
  WorkStealingPool*& slot = pool_slot();
  if (slot != nullptr) {
    slot->shutdown();
    delete slot;
    slot = nullptr;
  }
  if (threads > 0) {
    slot = new WorkStealingPool(threads, obs::pool_metric_fn());
  }
}

WorkStealingPool* parallel_pool() { return pool_slot(); }

std::size_t parallel_threads() {
  const WorkStealingPool* pool = pool_slot();
  return pool == nullptr ? 0 : pool->size();
}

}  // namespace entk::core
