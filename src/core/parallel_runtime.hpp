// Process-wide work-stealing pool for the core runtime layer.
//
// One pool, configured once at startup (entk-run --runtime-threads,
// bench flags, test fixtures), shared by every core consumer:
// GraphExecutor materializes frontier specs across it and
// Runtime::run_concurrent advances independent sessions' executor
// pumps as pool tasks. Disabled (nullptr) by default — the serial
// paths are byte-identical to the pre-pool runtime.
//
// The pilot and saga layers do NOT use this pool: LocalAgent and
// LocalAdaptor own their pools (they sit below core in the module
// layering and their pool lifetime is tied to the agent/adaptor).
#pragma once

#include <cstddef>

#include "common/work_stealing_pool.hpp"

namespace entk::core {

/// Replaces the process-wide pool with a fresh `threads`-worker pool
/// (0 destroys it and restores the serial paths). Not thread-safe
/// against concurrent parallel_pool() users: call at startup or
/// between runs, never while a run is in flight.
void set_parallel_threads(std::size_t threads);

/// The configured pool, or nullptr when the runtime is serial.
WorkStealingPool* parallel_pool();

/// Worker count of the configured pool; 0 when serial.
std::size_t parallel_threads();

}  // namespace entk::core
