#include "core/pattern.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/graph_executor.hpp"

namespace entk::core {

ExecutionPattern::GraphRun::GraphRun() = default;
ExecutionPattern::GraphRun::~GraphRun() = default;

bool ExecutionPattern::GraphRun::finished() const {
  if (runner_ == nullptr) return false;
  return start_failed_ || runner_->finished();
}

// The one orchestration path shared by every pattern: validate,
// compile to an explicit TaskGraph, hand the graph to the event-driven
// executor. Patterns never touch the runtime directly any more — all
// waiting, failure policy and retry bookkeeping lives in the executor.
// Split into a non-blocking start and a blocking finish so
// Runtime::run_concurrent can interleave N patterns' graphs under one
// backend wait; execute() is the single-run composition of the two.
Status ExecutionPattern::execute(PatternExecutor& executor) {
  GraphRun run;
  ENTK_RETURN_IF_ERROR(start_execute(run, executor));
  const Status driven =
      executor.drive_until([&run] { return run.finished(); });
  return finish_execute(run, driven);
}

Status ExecutionPattern::start_execute(GraphRun& run,
                                       PatternExecutor& executor,
                                       bool deferred) {
  ENTK_CHECK(!run.active(), "GraphRun is already executing a pattern");
  ENTK_RETURN_IF_ERROR(validate());
  auto graph = std::make_unique<TaskGraph>();
  ENTK_RETURN_IF_ERROR(compile(*graph));
  auto runner = std::make_unique<GraphExecutor>(*graph, executor);
  if (deferred) runner->set_deferred(true);
  bool resuming = false;
  if (graph_run_observer_ != nullptr) {
    auto prepared =
        graph_run_observer_->prepare_run(*graph, *runner, executor);
    if (!prepared.ok()) return prepared.status();
    resuming = prepared.value();
  }
  const Status started =
      resuming ? runner->start_resumed() : runner->start();
  if (!started.is_ok()) {
    // The run is over before it began; finish_execute reports this to
    // the observer, matching the old single-call error flow.
    run.start_failed_ = true;
    run.start_error_ = started;
  }
  run.graph_ = std::move(graph);
  run.runner_ = std::move(runner);
  return Status::ok();
}

Status ExecutionPattern::finish_execute(GraphRun& run, Status driven) {
  ENTK_CHECK(run.active(), "finish_execute without a started GraphRun");
  run.runner_->unsubscribe();
  Status outcome;
  if (run.start_failed_) {
    outcome = run.start_error_;
  } else if (!driven.is_ok()) {
    outcome = driven;
  } else {
    outcome = run.runner_->outcome();
  }
  if (graph_run_observer_ != nullptr) {
    graph_run_observer_->on_graph_run_end(*run.runner_, outcome);
  }
  on_graph_executed();
  run.runner_.reset();
  run.graph_.reset();
  run.start_failed_ = false;
  run.start_error_ = Status::ok();
  return outcome;
}

// --------------------------------------------------------------- BagOfTasks

BagOfTasks::BagOfTasks(Count n_tasks, StageFn task_fn)
    : n_tasks_(n_tasks), task_fn_(std::move(task_fn)) {}

Status BagOfTasks::validate() const {
  if (n_tasks_ < 1) {
    return make_error(Errc::kInvalidArgument,
                      "bag_of_tasks needs at least one task");
  }
  if (!task_fn_) {
    return make_error(Errc::kInvalidArgument,
                      "bag_of_tasks needs a task callback");
  }
  return Status::ok();
}

Status BagOfTasks::compile(TaskGraph& graph) {
  ENTK_RETURN_IF_ERROR(validate());
  units_.clear();
  const GroupId stage = graph.add_stage_group(name(), failure_rules_);
  for (Count t = 0; t < n_tasks_; ++t) {
    const StageContext context{1, 1, t, n_tasks_};
    const NodeId node = graph.add_node(
        "task " + std::to_string(t),
        [this, context] { return task_fn_(context); }, context);
    graph.add_member(stage, node);
    graph.set_sink(node, [this](const pilot::ComputeUnitPtr& unit) {
      units_.push_back(unit);
    });
  }
  return Status::ok();
}

// ------------------------------------------------------ EnsembleOfPipelines

EnsembleOfPipelines::EnsembleOfPipelines(Count n_pipelines, Count n_stages)
    : n_pipelines_(n_pipelines),
      n_stages_(n_stages),
      stage_fns_(static_cast<std::size_t>(std::max<Count>(n_stages, 0))) {}

void EnsembleOfPipelines::set_stage(Count stage, StageFn fn) {
  ENTK_CHECK(stage >= 1 && stage <= n_stages_, "stage index out of range");
  stage_fns_[static_cast<std::size_t>(stage - 1)] = std::move(fn);
}

Status EnsembleOfPipelines::validate() const {
  if (n_pipelines_ < 1 || n_stages_ < 1) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_of_pipelines needs >= 1 pipeline and stage");
  }
  for (Count s = 0; s < n_stages_; ++s) {
    if (!stage_fns_[static_cast<std::size_t>(s)]) {
      return make_error(Errc::kInvalidArgument,
                        "ensemble_of_pipelines stage " +
                            std::to_string(s + 1) + " has no workload");
    }
  }
  return Status::ok();
}

// Each pipeline compiles to a dependency chain; there is no edge at
// all between pipelines, so pipeline p's stage s+1 becomes frontier
// the instant its own stage s settles — cross-pipeline overlap falls
// out of the graph shape instead of a hand-written launcher.
Status EnsembleOfPipelines::compile(TaskGraph& graph) {
  ENTK_RETURN_IF_ERROR(validate());
  units_.clear();
  std::vector<GroupId> chains;
  chains.reserve(static_cast<std::size_t>(n_pipelines_));
  for (Count p = 0; p < n_pipelines_; ++p) {
    chains.push_back(
        graph.add_chain_group("pipeline " + std::to_string(p)));
  }
  for (Count p = 0; p < n_pipelines_; ++p) {
    NodeId prev = 0;
    for (Count s = 1; s <= n_stages_; ++s) {
      const StageContext context{1, s, p, n_pipelines_};
      const NodeId node = graph.add_node(
          "p" + std::to_string(p) + ".s" + std::to_string(s),
          [this, context] {
            return stage_fns_[static_cast<std::size_t>(context.stage - 1)](
                context);
          },
          context);
      if (s > 1) graph.add_dependency(node, prev);
      graph.add_member(chains[static_cast<std::size_t>(p)], node);
      graph.set_sink(node, [this](const pilot::ComputeUnitPtr& unit) {
        units_.push_back(unit);
      });
      prev = node;
    }
  }
  graph.add_chain_set(name(), "pipelines", failure_rules_,
                      std::move(chains));
  return Status::ok();
}

// --------------------------------------------------- SimulationAnalysisLoop

SimulationAnalysisLoop::SimulationAnalysisLoop(Count n_iterations,
                                               Count n_simulations,
                                               Count n_analyses)
    : n_iterations_(n_iterations),
      n_simulations_(n_simulations),
      n_analyses_(n_analyses) {}

Status SimulationAnalysisLoop::validate() const {
  if (n_iterations_ < 1 || n_simulations_ < 1 || n_analyses_ < 1) {
    return make_error(
        Errc::kInvalidArgument,
        "simulation_analysis_loop needs >= 1 iteration, simulation and "
        "analysis");
  }
  if (!simulation_ || !analysis_) {
    return make_error(Errc::kInvalidArgument,
                      "simulation_analysis_loop needs simulation and "
                      "analysis workloads");
  }
  return Status::ok();
}

GroupId SimulationAnalysisLoop::emit_iteration(TaskGraph& graph,
                                               Count iteration, Count n_sims,
                                               Count n_ana,
                                               const GroupId* gate) {
  const GroupId sims_group = graph.add_stage_group(name(), failure_rules_);
  for (Count s = 0; s < n_sims; ++s) {
    const StageContext context{iteration, 1, s, n_sims};
    const NodeId node = graph.add_node(
        "sim i" + std::to_string(iteration) + "." + std::to_string(s),
        [this, context] { return simulation_(context); }, context);
    if (gate != nullptr) graph.gate_on(node, *gate);
    graph.add_member(sims_group, node);
    graph.set_sink(node, [this](const pilot::ComputeUnitPtr& unit) {
      units_.push_back(unit);
      simulation_units_.push_back(unit);
    });
  }
  const GroupId ana_group = graph.add_stage_group(name(), failure_rules_);
  for (Count a = 0; a < n_ana; ++a) {
    const StageContext context{iteration, 2, a, n_ana};
    const NodeId node = graph.add_node(
        "analysis i" + std::to_string(iteration) + "." + std::to_string(a),
        [this, context] { return analysis_(context); }, context);
    graph.gate_on(node, sims_group);
    graph.add_member(ana_group, node);
    graph.set_sink(node, [this](const pilot::ComputeUnitPtr& unit) {
      units_.push_back(unit);
      analysis_units_.push_back(unit);
    });
  }
  return ana_group;
}

GroupId SimulationAnalysisLoop::emit_bracket(TaskGraph& graph,
                                             const StageFn& fn,
                                             StageContext context,
                                             const std::string& label,
                                             const GroupId* gate) {
  const GroupId group = graph.add_stage_group(name(), failure_rules_);
  const NodeId node = graph.add_node(
      label, [fn, context] { return fn(context); }, context);
  if (gate != nullptr) graph.gate_on(node, *gate);
  graph.add_member(group, node);
  graph.set_sink(node, [this](const pilot::ComputeUnitPtr& unit) {
    units_.push_back(unit);
  });
  return group;
}

Status SimulationAnalysisLoop::compile(TaskGraph& graph) {
  ENTK_RETURN_IF_ERROR(validate());
  units_.clear();
  simulation_units_.clear();
  analysis_units_.clear();
  next_iteration_ = 0;
  post_emitted_ = false;

  std::optional<GroupId> gate;
  if (pre_loop_) {
    gate = emit_bracket(graph, pre_loop_, {0, 0, 0, 1}, "pre_loop", nullptr);
  }

  if (!counts_fn_) {
    // Static member counts: the whole loop is known up front, so the
    // full graph is emitted at compile time (and visible to --dot).
    for (Count iteration = 1; iteration <= n_iterations_; ++iteration) {
      gate = emit_iteration(graph, iteration, n_simulations_, n_analyses_,
                            gate ? &*gate : nullptr);
    }
    if (post_loop_) {
      emit_bracket(graph, post_loop_, {n_iterations_ + 1, 0, 0, 1},
                   "post_loop", gate ? &*gate : nullptr);
    }
    return Status::ok();
  }

  // Adaptive member counts: each iteration is appended by an expander
  // once the previous one settled, which is exactly when the counts
  // callback may inspect results to size the next generation.
  auto last_gate = std::make_shared<std::optional<GroupId>>(gate);
  graph.add_expander([this, last_gate](TaskGraph& g) -> Result<bool> {
    if (next_iteration_ < n_iterations_) {
      const Count iteration = ++next_iteration_;
      const auto counts = counts_fn_(iteration);
      if (counts.first < 1 || counts.second < 1) {
        return make_error(Errc::kInvalidArgument,
                          "adaptive counts must stay >= 1");
      }
      const GroupId* gate_ptr =
          last_gate->has_value() ? &last_gate->value() : nullptr;
      *last_gate = emit_iteration(g, iteration, counts.first, counts.second,
                                  gate_ptr);
      return true;
    }
    if (post_loop_ && !post_emitted_) {
      post_emitted_ = true;
      const GroupId* gate_ptr =
          last_gate->has_value() ? &last_gate->value() : nullptr;
      emit_bracket(g, post_loop_, {n_iterations_ + 1, 0, 0, 1}, "post_loop",
                   gate_ptr);
      return true;
    }
    return false;
  });
  return Status::ok();
}

// --------------------------------------------------------- EnsembleExchange

EnsembleExchange::EnsembleExchange(Count n_replicas, Count n_cycles,
                                   ExchangeMode mode)
    : n_replicas_(n_replicas), n_cycles_(n_cycles), mode_(mode) {}

Status EnsembleExchange::validate() const {
  if (n_replicas_ < 2 || n_cycles_ < 1) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_exchange needs >= 2 replicas and >= 1 cycle");
  }
  if (!simulation_) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_exchange needs a simulation workload");
  }
  if (mode_ == ExchangeMode::kGlobalSweep && !exchange_) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_exchange (global) needs an exchange "
                      "workload");
  }
  if (mode_ == ExchangeMode::kPairwise && !pair_exchange_) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_exchange (pairwise) needs a pair-exchange "
                      "workload");
  }
  return Status::ok();
}

Status EnsembleExchange::compile(TaskGraph& graph) {
  ENTK_RETURN_IF_ERROR(validate());
  units_.clear();
  simulation_units_.clear();
  exchange_units_.clear();
  return mode_ == ExchangeMode::kGlobalSweep ? compile_global(graph)
                                             : compile_pairwise(graph);
}

// Global sweeps: each cycle is a sims stage group followed by a
// one-task exchange stage group, chained by gates — the per-cycle
// barrier the paper's scaling experiments use.
Status EnsembleExchange::compile_global(TaskGraph& graph) {
  bool have_gate = false;
  GroupId gate = 0;
  for (Count cycle = 1; cycle <= n_cycles_; ++cycle) {
    const GroupId sims_group = graph.add_stage_group(name(), failure_rules_);
    for (Count r = 0; r < n_replicas_; ++r) {
      const StageContext context{cycle, 1, r, n_replicas_};
      const NodeId node = graph.add_node(
          "sim c" + std::to_string(cycle) + ".r" + std::to_string(r),
          [this, context] { return simulation_(context); }, context);
      if (have_gate) graph.gate_on(node, gate);
      graph.add_member(sims_group, node);
      graph.set_sink(node, [this](const pilot::ComputeUnitPtr& unit) {
        units_.push_back(unit);
        simulation_units_.push_back(unit);
      });
    }
    const GroupId exchange_group =
        graph.add_stage_group(name(), failure_rules_);
    const StageContext context{cycle, 2, 0, n_replicas_};
    const NodeId exchange = graph.add_node(
        "exchange c" + std::to_string(cycle),
        [this, context] { return exchange_(context); }, context);
    graph.gate_on(exchange, sims_group);
    graph.add_member(exchange_group, exchange);
    graph.set_sink(exchange, [this](const pilot::ComputeUnitPtr& unit) {
      units_.push_back(unit);
      exchange_units_.push_back(unit);
    });
    gate = exchange_group;
    have_gate = true;
  }
  return Status::ok();
}

// Fully asynchronous pairwise exchange as a static grid of success
// edges: a replica's cycle-(c+1) simulation depends only on its own
// cycle-c exchange (or sim, when unpaired that cycle), so fast pairs
// race ahead of slow ones — the paper's "no obligatory global
// synchronization". An exchange node belongs to BOTH partners' replica
// chains, so either partner's chain dies if it fails.
Status EnsembleExchange::compile_pairwise(TaskGraph& graph) {
  const auto index = [](Count i) { return static_cast<std::size_t>(i); };
  std::vector<GroupId> chains;
  chains.reserve(index(n_replicas_));
  for (Count r = 0; r < n_replicas_; ++r) {
    chains.push_back(graph.add_chain_group("replica " + std::to_string(r)));
  }
  // prev[r]: the node whose completion releases replica r's next sim.
  std::vector<NodeId> prev(index(n_replicas_), 0);
  std::vector<bool> has_prev(index(n_replicas_), false);
  for (Count cycle = 1; cycle <= n_cycles_; ++cycle) {
    std::vector<NodeId> sims(index(n_replicas_), 0);
    for (Count r = 0; r < n_replicas_; ++r) {
      const StageContext context{cycle, 1, r, n_replicas_};
      const NodeId node = graph.add_node(
          "sim c" + std::to_string(cycle) + ".r" + std::to_string(r),
          [this, context] { return simulation_(context); }, context);
      if (has_prev[index(r)]) graph.add_dependency(node, prev[index(r)]);
      graph.add_member(chains[index(r)], node);
      graph.set_sink(node, [this](const pilot::ComputeUnitPtr& unit) {
        simulation_units_.push_back(unit);
      });
      sims[index(r)] = node;
      prev[index(r)] = node;
      has_prev[index(r)] = true;
    }
    // Neighbour pairs alternate even/odd sweeps; edge replicas below
    // the parity (or past the last pair) stay unpaired this cycle.
    const Count parity = (cycle - 1 + cycle_offset_) % 2;
    for (Count low = parity; low + 1 < n_replicas_; low += 2) {
      const StageContext context{cycle, 2, low, n_replicas_};
      const NodeId exchange = graph.add_node(
          "exchange c" + std::to_string(cycle) + ".r" + std::to_string(low) +
              "-r" + std::to_string(low + 1),
          [this, cycle, low] { return pair_exchange_(cycle, low, low + 1); },
          context);
      graph.add_dependency(exchange, sims[index(low)]);
      graph.add_dependency(exchange, sims[index(low + 1)]);
      graph.add_member(chains[index(low)], exchange);
      graph.add_member(chains[index(low + 1)], exchange);
      graph.set_sink(exchange, [this](const pilot::ComputeUnitPtr& unit) {
        exchange_units_.push_back(unit);
      });
      prev[index(low)] = exchange;
      prev[index(low + 1)] = exchange;
    }
  }
  graph.add_chain_set(name(), "replicas", failure_rules_, std::move(chains));
  return Status::ok();
}

void EnsembleExchange::on_graph_executed() {
  if (mode_ != ExchangeMode::kPairwise) return;
  // Pairwise sinks fill the per-kind buckets; units() keeps the
  // historical sims-then-exchanges order.
  units_.clear();
  units_.reserve(simulation_units_.size() + exchange_units_.size());
  units_.insert(units_.end(), simulation_units_.begin(),
                simulation_units_.end());
  units_.insert(units_.end(), exchange_units_.begin(),
                exchange_units_.end());
}

// ------------------------------------------------------------- AdaptiveLoop

AdaptiveLoop::AdaptiveLoop(std::unique_ptr<ExecutionPattern> body,
                           Count max_rounds, ContinueFn continue_fn)
    : body_(std::move(body)),
      max_rounds_(max_rounds),
      continue_fn_(std::move(continue_fn)) {}

Status AdaptiveLoop::validate() const {
  if (body_ == nullptr) {
    return make_error(Errc::kInvalidArgument,
                      "adaptive_loop needs a body pattern");
  }
  if (max_rounds_ < 1) {
    return make_error(Errc::kInvalidArgument,
                      "adaptive_loop needs max_rounds >= 1");
  }
  if (!continue_fn_) {
    return make_error(Errc::kInvalidArgument,
                      "adaptive_loop needs a continuation predicate");
  }
  return body_->validate();
}

// One expander drives the whole loop: each time the graph quiesces
// with the previous round settled, the predicate decides whether the
// body is compiled in again. A failed round aborts the graph before
// the expander runs, so rounds_completed() never counts it.
Status AdaptiveLoop::compile(TaskGraph& graph) {
  ENTK_RETURN_IF_ERROR(validate());
  body_->set_failure_rules(failure_rules_);
  rounds_completed_ = 0;
  next_round_ = 0;
  graph.add_expander([this](TaskGraph& g) -> Result<bool> {
    if (next_round_ > 0) {
      rounds_completed_ = next_round_;
      if (!continue_fn_(next_round_)) return false;
    }
    if (next_round_ >= max_rounds_) return false;
    ++next_round_;
    ENTK_RETURN_IF_ERROR(body_->compile(g));
    return true;
  });
  return Status::ok();
}

// ---------------------------------------------------------- SequencePattern

SequencePattern::SequencePattern(std::string name)
    : name_(std::move(name)) {}

void SequencePattern::append(std::unique_ptr<ExecutionPattern> pattern) {
  ENTK_CHECK(pattern != nullptr, "cannot append a null pattern");
  children_.push_back(std::move(pattern));
}

Status SequencePattern::validate() const {
  if (children_.empty()) {
    return make_error(Errc::kInvalidArgument,
                      "sequence pattern has no children");
  }
  for (const auto& child : children_) {
    ENTK_RETURN_IF_ERROR(child->validate());
  }
  return Status::ok();
}

// Children are compiled lazily, one per quiescence: a child after a
// failed one is never even compiled (the abort skips the expander),
// preserving the historical stop-at-first-failure semantics.
Status SequencePattern::compile(TaskGraph& graph) {
  ENTK_RETURN_IF_ERROR(validate());
  next_child_ = 0;
  graph.add_expander([this](TaskGraph& g) -> Result<bool> {
    if (next_child_ >= children_.size()) return false;
    auto& child = children_[next_child_++];
    child->set_failure_rules(failure_rules_);
    ENTK_RETURN_IF_ERROR(child->compile(g));
    return true;
  });
  return Status::ok();
}

}  // namespace entk::core
