#include "core/pattern.hpp"

#include <algorithm>
#include <atomic>
#include <map>

#include "common/log.hpp"
#include "common/mutex.hpp"

namespace entk::core {

namespace {

/// A unit is settled when it is final and no retry is pending.
bool unit_settled(const pilot::ComputeUnit& unit) {
  const pilot::UnitState state = unit.state();
  if (!pilot::is_final(state)) return false;
  if (state == pilot::UnitState::kFailed &&
      unit.retries() < unit.description().retry.max_retries) {
    return false;  // the unit manager is about to resubmit it
  }
  return true;
}

bool all_settled(const std::vector<pilot::ComputeUnitPtr>& units) {
  return std::all_of(units.begin(), units.end(),
                     [](const pilot::ComputeUnitPtr& unit) {
                       return unit_settled(*unit);
                     });
}

/// First failure among settled units, or OK.
Status first_failure(const std::vector<pilot::ComputeUnitPtr>& units) {
  for (const auto& unit : units) {
    switch (unit->state()) {
      case pilot::UnitState::kFailed:
        return unit->final_status();
      case pilot::UnitState::kCanceled:
        return make_error(Errc::kCancelled,
                          "unit " + unit->uid() + " was cancelled");
      default:
        break;
    }
  }
  return Status::ok();
}

}  // namespace

Status PatternExecutor::wait_all(
    const std::vector<pilot::ComputeUnitPtr>& units) {
  ENTK_RETURN_IF_ERROR(wait_settled(units));
  return first_failure(units);
}

Status PatternExecutor::wait_settled(
    const std::vector<pilot::ComputeUnitPtr>& units) {
  return drive_until([&] { return all_settled(units); });
}

Status FailureRules::validate() const {
  if (policy == FailurePolicy::kQuorum &&
      (quorum <= 0.0 || quorum > 1.0)) {
    return make_error(Errc::kInvalidArgument,
                      "quorum must be in (0, 1], got " +
                          std::to_string(quorum));
  }
  return Status::ok();
}

Status ExecutionPattern::settle_stage(
    const std::vector<pilot::ComputeUnitPtr>& units) const {
  const Status failure = first_failure(units);
  if (failure.is_ok()) return Status::ok();
  switch (failure_rules_.policy) {
    case FailurePolicy::kFailFast:
      return failure;
    case FailurePolicy::kContinueOnFailure:
      ENTK_WARN("core.pattern")
          << name() << ": continuing past failure: "
          << failure.to_string();
      return Status::ok();
    case FailurePolicy::kQuorum: {
      std::size_t done = 0;
      for (const auto& unit : units) {
        if (unit->state() == pilot::UnitState::kDone) ++done;
      }
      const double fraction =
          units.empty() ? 1.0
                        : static_cast<double>(done) /
                              static_cast<double>(units.size());
      if (fraction >= failure_rules_.quorum) {
        ENTK_WARN("core.pattern")
            << name() << ": quorum met (" << done << "/" << units.size()
            << " done); continuing past failure: " << failure.to_string();
        return Status::ok();
      }
      return make_error(Errc::kExecutionFailed,
                        name() + ": only " + std::to_string(done) + "/" +
                            std::to_string(units.size()) +
                            " units finished, below the quorum; first "
                            "failure: " +
                            failure.message());
    }
  }
  return failure;
}

void watch_unit(const pilot::ComputeUnitPtr& unit,
                std::function<void(pilot::ComputeUnit&,
                                   pilot::UnitState)> handler) {
  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto shared_handler = std::make_shared<
      std::function<void(pilot::ComputeUnit&, pilot::UnitState)>>(
      std::move(handler));
  unit->on_state_change(
      [fired, shared_handler](pilot::ComputeUnit& changed,
                              pilot::UnitState) {
        if (!unit_settled(changed)) return;
        if (fired->exchange(true)) return;
        (*shared_handler)(changed, changed.state());
      });
  // The unit may already be final (fast local execution).
  if (unit_settled(*unit) && !fired->exchange(true)) {
    (*shared_handler)(*unit, unit->state());
  }
}

// --------------------------------------------------------------- BagOfTasks

BagOfTasks::BagOfTasks(Count n_tasks, StageFn task_fn)
    : n_tasks_(n_tasks), task_fn_(std::move(task_fn)) {}

Status BagOfTasks::validate() const {
  if (n_tasks_ < 1) {
    return make_error(Errc::kInvalidArgument,
                      "bag_of_tasks needs at least one task");
  }
  if (!task_fn_) {
    return make_error(Errc::kInvalidArgument,
                      "bag_of_tasks needs a task callback");
  }
  return Status::ok();
}

Status BagOfTasks::execute(PatternExecutor& executor) {
  ENTK_RETURN_IF_ERROR(validate());
  units_.clear();
  std::vector<TaskSpec> specs;
  specs.reserve(static_cast<std::size_t>(n_tasks_));
  for (Count t = 0; t < n_tasks_; ++t) {
    specs.push_back(task_fn_({1, 1, t, n_tasks_}));
  }
  auto submitted = executor.submit(specs);
  if (!submitted.ok()) return submitted.status();
  units_ = submitted.take();
  ENTK_RETURN_IF_ERROR(executor.wait_settled(units_));
  return settle_stage(units_);
}

// ------------------------------------------------------ EnsembleOfPipelines

EnsembleOfPipelines::EnsembleOfPipelines(Count n_pipelines, Count n_stages)
    : n_pipelines_(n_pipelines),
      n_stages_(n_stages),
      stage_fns_(static_cast<std::size_t>(std::max<Count>(n_stages, 0))) {}

void EnsembleOfPipelines::set_stage(Count stage, StageFn fn) {
  ENTK_CHECK(stage >= 1 && stage <= n_stages_, "stage index out of range");
  stage_fns_[static_cast<std::size_t>(stage - 1)] = std::move(fn);
}

Status EnsembleOfPipelines::validate() const {
  if (n_pipelines_ < 1 || n_stages_ < 1) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_of_pipelines needs >= 1 pipeline and stage");
  }
  for (Count s = 0; s < n_stages_; ++s) {
    if (!stage_fns_[static_cast<std::size_t>(s)]) {
      return make_error(Errc::kInvalidArgument,
                        "ensemble_of_pipelines stage " +
                            std::to_string(s + 1) + " has no workload");
    }
  }
  return Status::ok();
}

Status EnsembleOfPipelines::execute(PatternExecutor& executor) {
  ENTK_RETURN_IF_ERROR(validate());
  units_.clear();

  struct State {
    Mutex mutex;
    std::vector<pilot::ComputeUnitPtr> all ENTK_GUARDED_BY(mutex);
    std::vector<Status> errors ENTK_GUARDED_BY(mutex);
    Count pipelines_done ENTK_GUARDED_BY(mutex) = 0;
    /// Pipelines that ran every stage to kDone (for quorum verdicts).
    Count pipelines_completed ENTK_GUARDED_BY(mutex) = 0;
  };
  auto state = std::make_shared<State>();
  // Recursive launcher, held by shared_ptr so watcher closures can
  // chain the next stage; the self-reference cycle is broken below.
  auto launch = std::make_shared<std::function<void(Count, Count)>>();
  *launch = [this, &executor, state, launch](Count pipeline, Count stage) {
    const StageContext context{1, stage, pipeline, n_pipelines_};
    const TaskSpec spec =
        stage_fns_[static_cast<std::size_t>(stage - 1)](context);
    auto submitted = executor.submit({spec});
    if (!submitted.ok()) {
      MutexLock lock(state->mutex);
      state->errors.push_back(submitted.status());
      ++state->pipelines_done;
      return;
    }
    pilot::ComputeUnitPtr unit = submitted.value().front();
    {
      MutexLock lock(state->mutex);
      state->all.push_back(unit);
    }
    watch_unit(unit, [this, state, launch, pipeline, stage](
                         pilot::ComputeUnit& settled,
                         pilot::UnitState final_state) {
      if (final_state == pilot::UnitState::kDone) {
        if (stage < n_stages_) {
          (*launch)(pipeline, stage + 1);
        } else {
          MutexLock lock(state->mutex);
          ++state->pipelines_done;
          ++state->pipelines_completed;
        }
        return;
      }
      // A failed stage ends its pipeline (later stages need its
      // output); whether that fails the *pattern* is decided by the
      // failure rules once every pipeline has stopped.
      MutexLock lock(state->mutex);
      state->errors.push_back(
          final_state == pilot::UnitState::kFailed
              ? settled.final_status()
              : make_error(Errc::kCancelled,
                           "unit " + settled.uid() + " was cancelled"));
      ++state->pipelines_done;
    });
  };

  for (Count p = 0; p < n_pipelines_; ++p) (*launch)(p, 1);
  const Status driven = executor.drive_until([state, this] {
    MutexLock lock(state->mutex);
    return state->pipelines_done == n_pipelines_;
  });
  *launch = nullptr;  // break the launcher's self-reference cycle
  {
    MutexLock lock(state->mutex);
    units_ = state->all;
  }
  ENTK_RETURN_IF_ERROR(driven);
  MutexLock lock(state->mutex);
  if (state->errors.empty()) return Status::ok();
  switch (failure_rules_.policy) {
    case FailurePolicy::kFailFast:
      return state->errors.front();
    case FailurePolicy::kContinueOnFailure:
      ENTK_WARN("core.pattern")
          << name() << ": " << state->errors.size()
          << " pipeline(s) failed; continuing per policy";
      return Status::ok();
    case FailurePolicy::kQuorum: {
      const double fraction =
          static_cast<double>(state->pipelines_completed) /
          static_cast<double>(n_pipelines_);
      if (fraction >= failure_rules_.quorum) return Status::ok();
      return make_error(Errc::kExecutionFailed,
                        name() + ": only " +
                            std::to_string(state->pipelines_completed) +
                            "/" + std::to_string(n_pipelines_) +
                            " pipelines completed, below the quorum; "
                            "first failure: " +
                            state->errors.front().message());
    }
  }
  return state->errors.front();
}

// --------------------------------------------------- SimulationAnalysisLoop

SimulationAnalysisLoop::SimulationAnalysisLoop(Count n_iterations,
                                               Count n_simulations,
                                               Count n_analyses)
    : n_iterations_(n_iterations),
      n_simulations_(n_simulations),
      n_analyses_(n_analyses) {}

Status SimulationAnalysisLoop::validate() const {
  if (n_iterations_ < 1 || n_simulations_ < 1 || n_analyses_ < 1) {
    return make_error(
        Errc::kInvalidArgument,
        "simulation_analysis_loop needs >= 1 iteration, simulation and "
        "analysis");
  }
  if (!simulation_ || !analysis_) {
    return make_error(Errc::kInvalidArgument,
                      "simulation_analysis_loop needs simulation and "
                      "analysis workloads");
  }
  return Status::ok();
}

Status SimulationAnalysisLoop::execute(PatternExecutor& executor) {
  ENTK_RETURN_IF_ERROR(validate());
  units_.clear();
  simulation_units_.clear();
  analysis_units_.clear();

  auto run_stage = [&](const std::vector<TaskSpec>& specs,
                       std::vector<pilot::ComputeUnitPtr>* bucket)
      -> Status {
    auto submitted = executor.submit(specs);
    if (!submitted.ok()) return submitted.status();
    auto stage_units = submitted.take();
    units_.insert(units_.end(), stage_units.begin(), stage_units.end());
    if (bucket != nullptr) {
      bucket->insert(bucket->end(), stage_units.begin(), stage_units.end());
    }
    ENTK_RETURN_IF_ERROR(executor.wait_settled(stage_units));
    return settle_stage(stage_units);
  };

  if (pre_loop_) {
    ENTK_RETURN_IF_ERROR(
        run_stage({pre_loop_({0, 0, 0, 1})}, nullptr));
  }
  for (Count iteration = 1; iteration <= n_iterations_; ++iteration) {
    Count n_sims = n_simulations_;
    Count n_ana = n_analyses_;
    if (counts_fn_) {
      const auto counts = counts_fn_(iteration);
      n_sims = counts.first;
      n_ana = counts.second;
      if (n_sims < 1 || n_ana < 1) {
        return make_error(Errc::kInvalidArgument,
                          "adaptive counts must stay >= 1");
      }
    }
    std::vector<TaskSpec> sims;
    sims.reserve(static_cast<std::size_t>(n_sims));
    for (Count s = 0; s < n_sims; ++s) {
      sims.push_back(simulation_({iteration, 1, s, n_sims}));
    }
    ENTK_RETURN_IF_ERROR(run_stage(sims, &simulation_units_));

    std::vector<TaskSpec> analyses;
    analyses.reserve(static_cast<std::size_t>(n_ana));
    for (Count a = 0; a < n_ana; ++a) {
      analyses.push_back(analysis_({iteration, 2, a, n_ana}));
    }
    ENTK_RETURN_IF_ERROR(run_stage(analyses, &analysis_units_));
  }
  if (post_loop_) {
    ENTK_RETURN_IF_ERROR(
        run_stage({post_loop_({n_iterations_ + 1, 0, 0, 1})}, nullptr));
  }
  return Status::ok();
}

// --------------------------------------------------------- EnsembleExchange

EnsembleExchange::EnsembleExchange(Count n_replicas, Count n_cycles,
                                   ExchangeMode mode)
    : n_replicas_(n_replicas), n_cycles_(n_cycles), mode_(mode) {}

Status EnsembleExchange::validate() const {
  if (n_replicas_ < 2 || n_cycles_ < 1) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_exchange needs >= 2 replicas and >= 1 cycle");
  }
  if (!simulation_) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_exchange needs a simulation workload");
  }
  if (mode_ == ExchangeMode::kGlobalSweep && !exchange_) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_exchange (global) needs an exchange "
                      "workload");
  }
  if (mode_ == ExchangeMode::kPairwise && !pair_exchange_) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble_exchange (pairwise) needs a pair-exchange "
                      "workload");
  }
  return Status::ok();
}

Status EnsembleExchange::execute(PatternExecutor& executor) {
  ENTK_RETURN_IF_ERROR(validate());
  units_.clear();
  simulation_units_.clear();
  exchange_units_.clear();
  return mode_ == ExchangeMode::kGlobalSweep ? execute_global(executor)
                                             : execute_pairwise(executor);
}

Status EnsembleExchange::execute_global(PatternExecutor& executor) {
  for (Count cycle = 1; cycle <= n_cycles_; ++cycle) {
    std::vector<TaskSpec> sims;
    sims.reserve(static_cast<std::size_t>(n_replicas_));
    for (Count r = 0; r < n_replicas_; ++r) {
      sims.push_back(simulation_({cycle, 1, r, n_replicas_}));
    }
    auto submitted = executor.submit(sims);
    if (!submitted.ok()) return submitted.status();
    auto sim_units = submitted.take();
    units_.insert(units_.end(), sim_units.begin(), sim_units.end());
    simulation_units_.insert(simulation_units_.end(), sim_units.begin(),
                             sim_units.end());
    ENTK_RETURN_IF_ERROR(executor.wait_settled(sim_units));
    ENTK_RETURN_IF_ERROR(settle_stage(sim_units));

    auto exchange_submitted =
        executor.submit({exchange_({cycle, 2, 0, n_replicas_})});
    if (!exchange_submitted.ok()) return exchange_submitted.status();
    auto exchange_unit = exchange_submitted.take();
    units_.insert(units_.end(), exchange_unit.begin(), exchange_unit.end());
    exchange_units_.insert(exchange_units_.end(), exchange_unit.begin(),
                           exchange_unit.end());
    ENTK_RETURN_IF_ERROR(executor.wait_settled(exchange_unit));
    ENTK_RETURN_IF_ERROR(settle_stage(exchange_unit));
  }
  return Status::ok();
}

// Fully asynchronous pairwise execution: a replica's cycle-(c+1)
// simulation starts the moment its own cycle-c exchange (or sim, when
// it had no partner that cycle) finishes. There is no barrier of any
// kind across the ensemble — fast pairs race ahead of slow ones, the
// paper's "no obligatory global synchronization".
Status EnsembleExchange::execute_pairwise(PatternExecutor& executor) {
  struct State {
    Mutex mutex;
    std::vector<pilot::ComputeUnitPtr> sims ENTK_GUARDED_BY(mutex);
    std::vector<pilot::ComputeUnitPtr> exchanges ENTK_GUARDED_BY(mutex);
    std::vector<Status> errors ENTK_GUARDED_BY(mutex);
    /// Replicas that completed (or abandoned) all cycles.
    Count replicas_finished ENTK_GUARDED_BY(mutex) = 0;
    /// Replicas that ran every cycle to completion (quorum verdicts).
    Count replicas_completed ENTK_GUARDED_BY(mutex) = 0;
    /// Per (cycle, low-replica) pair: completed members and death flag.
    struct PairProgress {
      int arrived = 0;
      bool dead = false;  // a member failed; survivors stop here
    };
    std::map<std::pair<Count, Count>, PairProgress> pairs
        ENTK_GUARDED_BY(mutex);
  };
  auto state = std::make_shared<State>();

  // Partner of replica r in a given cycle; -1 when unpaired.
  auto partner_of = [this](Count cycle, Count replica) -> Count {
    const Count parity = (cycle - 1 + cycle_offset_) % 2;
    if (replica < parity) return -1;  // unpaired edge replica
    const Count partner = ((replica - parity) % 2 == 0) ? replica + 1
                                                        : replica - 1;
    return partner < n_replicas_ ? partner : -1;
  };

  // Forward declarations for the mutually recursive chain.
  auto launch_sim =
      std::make_shared<std::function<void(Count, Count)>>();
  auto abort_replica = [state](Count, Status error) {
    MutexLock lock(state->mutex);
    state->errors.push_back(std::move(error));
    ++state->replicas_finished;
  };
  auto advance_replica = [this, state, launch_sim](Count cycle,
                                                   Count replica) {
    if (cycle >= n_cycles_) {
      MutexLock lock(state->mutex);
      ++state->replicas_finished;
      ++state->replicas_completed;
      return;
    }
    (*launch_sim)(cycle + 1, replica);
  };

  *launch_sim = [this, state, &executor, partner_of, abort_replica,
                 advance_replica, launch_sim](Count cycle,
                                              Count replica) {
    auto submitted = executor.submit(
        {simulation_({cycle, 1, replica, n_replicas_})});
    if (!submitted.ok()) {
      abort_replica(replica, submitted.status());
      return;
    }
    pilot::ComputeUnitPtr sim = submitted.value().front();
    {
      MutexLock lock(state->mutex);
      state->sims.push_back(sim);
    }
    watch_unit(sim, [this, state, &executor, partner_of, abort_replica,
                     advance_replica, cycle,
                     replica](pilot::ComputeUnit& settled,
                              pilot::UnitState final_state) {
      const Count partner = partner_of(cycle, replica);
      if (final_state != pilot::UnitState::kDone) {
        abort_replica(replica,
                      final_state == pilot::UnitState::kFailed
                          ? settled.final_status()
                          : make_error(Errc::kCancelled,
                                       "unit " + settled.uid() +
                                           " cancelled"));
        if (partner >= 0) {
          // Release a partner that may already be waiting on the pair.
          MutexLock lock(state->mutex);
          auto& progress = state->pairs[{cycle, std::min(replica,
                                                         partner)}];
          progress.dead = true;
          if (progress.arrived > 0) ++state->replicas_finished;
        }
        return;
      }
      if (partner < 0) {  // unpaired this cycle: straight on
        advance_replica(cycle, replica);
        return;
      }
      const auto key = std::make_pair(cycle, std::min(replica, partner));
      bool fire_exchange = false;
      {
        MutexLock lock(state->mutex);
        auto& progress = state->pairs[key];
        if (progress.dead) {
          ++state->replicas_finished;  // partner failed; stop here
          return;
        }
        fire_exchange = ++progress.arrived == 2;
      }
      if (!fire_exchange) return;  // partner will trigger the exchange
      auto exchange_submitted = executor.submit(
          {pair_exchange_(cycle, key.second, key.second + 1)});
      if (!exchange_submitted.ok()) {
        MutexLock lock(state->mutex);
        state->errors.push_back(exchange_submitted.status());
        state->replicas_finished += 2;
        return;
      }
      pilot::ComputeUnitPtr exchange = exchange_submitted.value().front();
      {
        MutexLock lock(state->mutex);
        state->exchanges.push_back(exchange);
      }
      watch_unit(exchange, [state, advance_replica, cycle, key](
                               pilot::ComputeUnit& done_exchange,
                               pilot::UnitState exchange_state) {
        if (exchange_state != pilot::UnitState::kDone) {
          MutexLock lock(state->mutex);
          state->errors.push_back(
              exchange_state == pilot::UnitState::kFailed
                  ? done_exchange.final_status()
                  : make_error(Errc::kCancelled,
                               "exchange " + done_exchange.uid() +
                                   " cancelled"));
          state->replicas_finished += 2;
          return;
        }
        // Both members proceed to their next cycle, independently of
        // the rest of the ensemble.
        advance_replica(cycle, key.second);
        advance_replica(cycle, key.second + 1);
      });
    });
  };

  for (Count replica = 0; replica < n_replicas_; ++replica) {
    (*launch_sim)(1, replica);
  }
  const Status driven = executor.drive_until([state, this] {
    MutexLock lock(state->mutex);
    return state->replicas_finished == n_replicas_;
  });
  *launch_sim = nullptr;  // break the launcher's self-reference cycle
  {
    MutexLock lock(state->mutex);
    units_.insert(units_.end(), state->sims.begin(), state->sims.end());
    units_.insert(units_.end(), state->exchanges.begin(),
                  state->exchanges.end());
    simulation_units_ = state->sims;
    exchange_units_ = state->exchanges;
    ENTK_RETURN_IF_ERROR(driven);
    if (!state->errors.empty()) {
      switch (failure_rules_.policy) {
        case FailurePolicy::kFailFast:
          return state->errors.front();
        case FailurePolicy::kContinueOnFailure:
          ENTK_WARN("core.pattern")
              << name() << ": " << state->errors.size()
              << " replica chain(s) failed; continuing per policy";
          break;
        case FailurePolicy::kQuorum: {
          const double fraction =
              static_cast<double>(state->replicas_completed) /
              static_cast<double>(n_replicas_);
          if (fraction >= failure_rules_.quorum) break;
          return make_error(
              Errc::kExecutionFailed,
              name() + ": only " +
                  std::to_string(state->replicas_completed) + "/" +
                  std::to_string(n_replicas_) +
                  " replicas completed, below the quorum; first "
                  "failure: " +
                  state->errors.front().message());
        }
      }
    }
  }
  return Status::ok();
}

// ------------------------------------------------------------- AdaptiveLoop

AdaptiveLoop::AdaptiveLoop(std::unique_ptr<ExecutionPattern> body,
                           Count max_rounds, ContinueFn continue_fn)
    : body_(std::move(body)),
      max_rounds_(max_rounds),
      continue_fn_(std::move(continue_fn)) {}

Status AdaptiveLoop::validate() const {
  if (body_ == nullptr) {
    return make_error(Errc::kInvalidArgument,
                      "adaptive_loop needs a body pattern");
  }
  if (max_rounds_ < 1) {
    return make_error(Errc::kInvalidArgument,
                      "adaptive_loop needs max_rounds >= 1");
  }
  if (!continue_fn_) {
    return make_error(Errc::kInvalidArgument,
                      "adaptive_loop needs a continuation predicate");
  }
  return body_->validate();
}

Status AdaptiveLoop::execute(PatternExecutor& executor) {
  ENTK_RETURN_IF_ERROR(validate());
  body_->set_failure_rules(failure_rules_);
  rounds_completed_ = 0;
  for (Count round = 1; round <= max_rounds_; ++round) {
    ENTK_RETURN_IF_ERROR(body_->execute(executor));
    rounds_completed_ = round;
    if (!continue_fn_(round)) break;
  }
  return Status::ok();
}

// ---------------------------------------------------------- SequencePattern

SequencePattern::SequencePattern(std::string name)
    : name_(std::move(name)) {}

void SequencePattern::append(std::unique_ptr<ExecutionPattern> pattern) {
  ENTK_CHECK(pattern != nullptr, "cannot append a null pattern");
  children_.push_back(std::move(pattern));
}

Status SequencePattern::validate() const {
  if (children_.empty()) {
    return make_error(Errc::kInvalidArgument,
                      "sequence pattern has no children");
  }
  for (const auto& child : children_) {
    ENTK_RETURN_IF_ERROR(child->validate());
  }
  return Status::ok();
}

Status SequencePattern::execute(PatternExecutor& executor) {
  ENTK_RETURN_IF_ERROR(validate());
  for (const auto& child : children_) {
    child->set_failure_rules(failure_rules_);
    ENTK_RETURN_IF_ERROR(child->execute(executor));
  }
  return Status::ok();
}

}  // namespace entk::core
