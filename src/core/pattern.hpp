// Execution patterns: the core abstraction of the Ensemble Toolkit.
//
// A pattern is a parametrised template capturing how an ensemble's
// tasks synchronise and communicate; the user supplies only the
// workload of each stage (a callback returning a TaskSpec). Patterns
// are *compilers*: they emit an explicit TaskGraph (nodes, success
// edges, failure scopes, expanders for adaptive generations) and the
// event-driven GraphExecutor drives that graph through the
// PatternExecutor interface — the paper's decoupling of expression
// from execution, taken to its dataflow conclusion.
//
// Unit patterns provided (paper Section III-D):
//   BagOfTasks            — independent tasks, no coupling
//   EnsembleOfPipelines   — N independent pipelines of M ordered stages
//   EnsembleExchange      — cycles of simulation + exchange interaction
//   SimulationAnalysisLoop— iterated simulate-all / analyse-all stages
// plus SequencePattern for composing higher-order patterns.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/task.hpp"
#include "core/task_graph.hpp"
#include "pilot/compute_unit.hpp"

namespace entk::core {

class GraphExecutor;

/// The pattern-facing execution interface, implemented by the
/// execution plugin. submit() translates specs into compute units and
/// hands them to the runtime; drive_until() advances execution;
/// subscribe_settled() delivers unit-settled events to the graph
/// executor.
class PatternExecutor {
 public:
  virtual ~PatternExecutor() = default;

  virtual Result<std::vector<pilot::ComputeUnitPtr>> submit(
      const std::vector<TaskSpec>& specs) = 0;

  /// Advances the backend until `done()` holds.
  virtual Status drive_until(const std::function<bool()>& done) = 0;

  /// Fired once per submitted unit when it settles (final state with
  /// no retry pending).
  using SettledFn = std::function<void(const pilot::ComputeUnitPtr&,
                                       pilot::UnitState)>;

  /// Registers the settled-event subscription. Returns false when this
  /// executor cannot deliver events — the graph executor then falls
  /// back to per-unit watch_unit callbacks.
  virtual bool subscribe_settled(SettledFn) { return false; }
  virtual void unsubscribe_settled() {}
};

/// Hook between a pattern's compile and run steps — the attachment
/// point for the checkpoint/restart coordinator (entk::ckpt). The
/// observer sees the compiled graph and the executor before the run
/// starts and may inject a restored state; it keeps the runner pointer
/// until on_graph_run_end, so it can capture snapshots mid-run.
class GraphRunObserver {
 public:
  virtual ~GraphRunObserver() = default;

  /// Called after compile(), before the run starts. Return true to
  /// continue a restored run (the pattern then calls resume() instead
  /// of run()); the observer must have replayed the expander log and
  /// injected the saved state first.
  virtual Result<bool> prepare_run(TaskGraph& graph, GraphExecutor& runner,
                                   PatternExecutor& executor) {
    (void)graph;
    (void)runner;
    (void)executor;
    return false;
  }

  /// Called after the run finishes (pass or fail). The runner is
  /// destroyed right after this returns.
  virtual void on_graph_run_end(GraphExecutor& runner,
                                const Status& outcome) {
    (void)runner;
    (void)outcome;
  }
};

class ExecutionPattern {
 public:
  virtual ~ExecutionPattern() = default;

  virtual std::string name() const = 0;

  /// Structural validation (counts > 0, all stage callbacks set, ...).
  virtual Status validate() const = 0;

  /// Compiles this pattern into `graph`: task nodes with lazy spec
  /// producers, success edges, stage/chain failure scopes, and — for
  /// adaptive or composite patterns — expanders that append the next
  /// generation when the graph quiesces. Clears the pattern's unit
  /// accessors; they repopulate as the graph submits.
  virtual Status compile(TaskGraph& graph) = 0;

  /// Orchestrates the pattern to completion through `executor`:
  /// validate, compile to a TaskGraph, and run it under the
  /// event-driven GraphExecutor. Returns the first error (validation,
  /// submission, task failure — the latter filtered through the
  /// failure rules, which the graph's verdict scopes enforce).
  virtual Status execute(PatternExecutor& executor);

  /// One in-flight graph run, owned by the caller between
  /// start_execute() and finish_execute(). Opaque apart from
  /// finished(); lets N sessions' patterns run concurrently under one
  /// backend wait (Runtime::run_concurrent) — execute() is
  /// start_execute + drive_until(finished) + finish_execute.
  class GraphRun {
   public:
    GraphRun();
    ~GraphRun();
    GraphRun(const GraphRun&) = delete;
    GraphRun& operator=(const GraphRun&) = delete;

    /// Whether the underlying graph run finished (false before
    /// start_execute succeeded).
    bool finished() const;
    /// Whether start_execute succeeded and finish_execute has not run.
    bool active() const { return runner_ != nullptr; }
    /// The underlying executor; nullptr unless active(). Runtime's
    /// parallel session advancement drives it directly.
    GraphExecutor* executor() { return runner_.get(); }

   private:
    friend class ExecutionPattern;
    std::unique_ptr<TaskGraph> graph_;
    std::unique_ptr<GraphExecutor> runner_;
    /// The runner refused to start (graph validation): the run is
    /// finished on arrival and finish_execute reports this status.
    bool start_failed_ = false;
    Status start_error_;
  };

  /// Non-blocking front half of execute(): validate, compile into
  /// `run`, consult the observer, and start the graph (initial
  /// frontier submitted, settled events subscribed). On error the run
  /// stays inactive and finish_execute must not be called. With
  /// `deferred` the executor starts in deferred-pumping mode: even the
  /// initial frontier only lands in the pending batch, so the driver
  /// (entk-serve's fair-share scheduler) decides every submission.
  Status start_execute(GraphRun& run, PatternExecutor& executor,
                       bool deferred = false);

  /// Blocking back half of execute(): `driven` is the caller's
  /// drive_until verdict. Detaches the executor, resolves the outcome,
  /// fires the observer end hook and on_graph_executed(), and
  /// deactivates `run`.
  Status finish_execute(GraphRun& run, Status driven);

  /// Pattern-level failure semantics, compiled into the graph's stage
  /// and chain scopes. Composite patterns (SequencePattern,
  /// AdaptiveLoop) forward their rules to their children.
  void set_failure_rules(FailureRules rules) { failure_rules_ = rules; }
  const FailureRules& failure_rules() const { return failure_rules_; }

  /// Attaches (or detaches, with nullptr) the run observer. Not owned;
  /// must outlive execute(). Only consulted on the pattern execute()
  /// is called on — children of composite patterns run inside the
  /// parent's graph and need no observer of their own.
  void set_graph_run_observer(GraphRunObserver* observer) {
    graph_run_observer_ = observer;
  }

 protected:
  /// Called after graph execution, successful or not (patterns rebuild
  /// derived unit views here).
  virtual void on_graph_executed() {}

  FailureRules failure_rules_;
  GraphRunObserver* graph_run_observer_ = nullptr;
};

// ---------------------------------------------------------------------------

/// Independent tasks with no coupling: the degenerate-but-common case.
/// Compiles to one stage group of unconnected nodes.
class BagOfTasks final : public ExecutionPattern {
 public:
  BagOfTasks(Count n_tasks, StageFn task_fn);

  std::string name() const override { return "bag_of_tasks"; }
  Status validate() const override;
  Status compile(TaskGraph& graph) override;

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }

 private:
  Count n_tasks_;
  StageFn task_fn_;
  std::vector<pilot::ComputeUnitPtr> units_;
};

/// N independent pipelines of M ordered stages. Stage s+1 of pipeline
/// p starts as soon as stage s of pipeline p finishes — there is no
/// barrier across pipelines (paper Fig 2a). Compiles to N dependency
/// chains judged as one chain set at drain time.
class EnsembleOfPipelines final : public ExecutionPattern {
 public:
  EnsembleOfPipelines(Count n_pipelines, Count n_stages);

  /// Sets the workload of 1-based `stage`.
  void set_stage(Count stage, StageFn fn);

  std::string name() const override { return "ensemble_of_pipelines"; }
  Status validate() const override;
  Status compile(TaskGraph& graph) override;

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }

 private:
  Count n_pipelines_;
  Count n_stages_;
  std::vector<StageFn> stage_fns_;
  std::vector<pilot::ComputeUnitPtr> units_;
};

/// Iterated two-stage pattern with global barriers: all simulations of
/// an iteration run (synchronise), then all analyses run (synchronise),
/// then the next iteration starts (paper Fig 2c). Optional pre- and
/// post-loop stages. Compiles to gated stage groups; with adaptive
/// member counts the iterations are emitted by an expander, one
/// generation at a time, so the counts callback runs after the
/// previous iteration settled — exactly when it can inspect results.
class SimulationAnalysisLoop final : public ExecutionPattern {
 public:
  SimulationAnalysisLoop(Count n_iterations, Count n_simulations,
                         Count n_analyses);

  void set_pre_loop(StageFn fn) { pre_loop_ = std::move(fn); }
  void set_simulation(StageFn fn) { simulation_ = std::move(fn); }
  void set_analysis(StageFn fn) { analysis_ = std::move(fn); }
  void set_post_loop(StageFn fn) { post_loop_ = std::move(fn); }

  /// Adaptive member counts: called before each iteration with the
  /// iteration number; returns {n_simulations, n_analyses} for it.
  using CountsFn = std::function<std::pair<Count, Count>(Count iteration)>;
  void set_adaptive_counts(CountsFn fn) { counts_fn_ = std::move(fn); }

  std::string name() const override { return "simulation_analysis_loop"; }
  Status validate() const override;
  Status compile(TaskGraph& graph) override;

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }
  const std::vector<pilot::ComputeUnitPtr>& simulation_units() const {
    return simulation_units_;
  }
  const std::vector<pilot::ComputeUnitPtr>& analysis_units() const {
    return analysis_units_;
  }

 private:
  /// Emits one iteration's sim + analysis stage groups; returns the
  /// analysis group (the gate for whatever follows).
  GroupId emit_iteration(TaskGraph& graph, Count iteration, Count n_sims,
                         Count n_ana, const GroupId* gate);
  /// Emits a pre-/post-loop singleton stage; returns its stage group.
  GroupId emit_bracket(TaskGraph& graph, const StageFn& fn,
                       StageContext context, const std::string& label,
                       const GroupId* gate);

  Count n_iterations_;
  Count n_simulations_;
  Count n_analyses_;
  StageFn pre_loop_;
  StageFn simulation_;
  StageFn analysis_;
  StageFn post_loop_;
  CountsFn counts_fn_;
  Count next_iteration_ = 0;   ///< Adaptive expander cursor.
  bool post_emitted_ = false;  ///< Adaptive expander: post-loop done.
  std::vector<pilot::ComputeUnitPtr> units_;
  std::vector<pilot::ComputeUnitPtr> simulation_units_;
  std::vector<pilot::ComputeUnitPtr> analysis_units_;
};

/// Interacting ensemble members: each cycle every replica simulates,
/// then replicas exchange (paper Fig 2b).
///
/// Two exchange modes:
///  - kGlobalSweep: one exchange task per cycle over all replicas
///    (the configuration of the paper's scaling experiments). Compiles
///    to gated stage groups per cycle.
///  - kPairwise: one exchange task per neighbour pair, submitted the
///    moment both partners finish — no global barrier inside a cycle.
///    Compiles to a static grid of dependency edges; each exchange
///    node belongs to both partners' replica chains.
class EnsembleExchange final : public ExecutionPattern {
 public:
  enum class ExchangeMode { kGlobalSweep, kPairwise };

  EnsembleExchange(Count n_replicas, Count n_cycles,
                   ExchangeMode mode = ExchangeMode::kGlobalSweep);

  void set_simulation(StageFn fn) { simulation_ = std::move(fn); }

  /// kGlobalSweep: workload of the per-cycle exchange task. The
  /// context's `instance` is 0 and `instances` the replica count.
  void set_exchange(StageFn fn) { exchange_ = std::move(fn); }

  /// kPairwise: workload of the exchange between replicas `a` and `b`.
  using PairFn = std::function<TaskSpec(Count cycle, Count a, Count b)>;
  void set_pair_exchange(PairFn fn) { pair_exchange_ = std::move(fn); }

  /// Offsets the pairwise neighbour parity (pairs start at
  /// (cycle - 1 + offset) % 2). Lets applications that drive cycles
  /// one pattern at a time still alternate even/odd sweeps.
  void set_cycle_offset(Count offset) { cycle_offset_ = offset; }

  std::string name() const override { return "ensemble_exchange"; }
  Status validate() const override;
  Status compile(TaskGraph& graph) override;

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }
  const std::vector<pilot::ComputeUnitPtr>& simulation_units() const {
    return simulation_units_;
  }
  const std::vector<pilot::ComputeUnitPtr>& exchange_units() const {
    return exchange_units_;
  }

 protected:
  void on_graph_executed() override;

 private:
  Status compile_global(TaskGraph& graph);
  Status compile_pairwise(TaskGraph& graph);

  Count n_replicas_;
  Count n_cycles_;
  ExchangeMode mode_;
  Count cycle_offset_ = 0;
  StageFn simulation_;
  StageFn exchange_;
  PairFn pair_exchange_;
  std::vector<pilot::ComputeUnitPtr> units_;
  std::vector<pilot::ComputeUnitPtr> simulation_units_;
  std::vector<pilot::ComputeUnitPtr> exchange_units_;
};

/// Higher-order composition: repeats a body pattern until the
/// application decides it has converged (or a round cap is hit) — the
/// paper's adaptive-execution outlook, where the amount of work is
/// only known at runtime. Compiles to a single expander that re-emits
/// the body's graph each round, after consulting the predicate.
class AdaptiveLoop final : public ExecutionPattern {
 public:
  /// Called after each completed round with the 1-based round number;
  /// return true to run another round.
  using ContinueFn = std::function<bool(Count round)>;

  AdaptiveLoop(std::unique_ptr<ExecutionPattern> body, Count max_rounds,
               ContinueFn continue_fn);

  std::string name() const override { return "adaptive_loop"; }
  Status validate() const override;
  Status compile(TaskGraph& graph) override;

  Count rounds_completed() const { return rounds_completed_; }
  ExecutionPattern& body() { return *body_; }

 private:
  std::unique_ptr<ExecutionPattern> body_;
  Count max_rounds_;
  ContinueFn continue_fn_;
  Count next_round_ = 0;  ///< Expander cursor.
  Count rounds_completed_ = 0;
};

/// Higher-order composition: runs child patterns one after another
/// (the paper's "unit patterns combine into complex patterns").
/// Compiles to an expander that emits one child's graph at a time, so
/// a child after a failed one is never even compiled.
class SequencePattern final : public ExecutionPattern {
 public:
  explicit SequencePattern(std::string name = "sequence");

  void append(std::unique_ptr<ExecutionPattern> pattern);
  std::size_t size() const { return children_.size(); }

  std::string name() const override { return name_; }
  Status validate() const override;
  Status compile(TaskGraph& graph) override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<ExecutionPattern>> children_;
  std::size_t next_child_ = 0;  ///< Expander cursor.
};

}  // namespace entk::core
