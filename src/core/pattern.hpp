// Execution patterns: the core abstraction of the Ensemble Toolkit.
//
// A pattern is a parametrised template capturing how an ensemble's
// tasks synchronise and communicate; the user supplies only the
// workload of each stage (a callback returning a TaskSpec). Patterns
// orchestrate through the PatternExecutor interface and never touch
// the runtime system directly — the paper's decoupling of expression
// from execution.
//
// Unit patterns provided (paper Section III-D):
//   BagOfTasks            — independent tasks, no coupling
//   EnsembleOfPipelines   — N independent pipelines of M ordered stages
//   EnsembleExchange      — cycles of simulation + exchange interaction
//   SimulationAnalysisLoop— iterated simulate-all / analyse-all stages
// plus SequencePattern for composing higher-order patterns.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/task.hpp"
#include "pilot/compute_unit.hpp"

namespace entk::core {

/// Where in the pattern a stage callback is being invoked.
struct StageContext {
  Count iteration = 1;  ///< 1-based iteration / cycle.
  Count stage = 1;      ///< 1-based stage within the pattern.
  Count instance = 0;   ///< 0-based pipeline / replica / member index.
  Count instances = 0;  ///< Total members in this stage.
};

/// Produces the task for one (iteration, stage, instance) slot.
using StageFn = std::function<TaskSpec(const StageContext&)>;

/// How a pattern reacts once a task settles as failed or cancelled
/// (i.e. after the runtime exhausted its retry budget — transient
/// failures with retries left never reach the pattern).
enum class FailurePolicy {
  kFailFast,            ///< First settled failure aborts the pattern.
  kContinueOnFailure,   ///< Log the failure, keep every survivor going.
  kQuorum,              ///< A stage succeeds if enough members finish.
};

struct FailureRules {
  FailurePolicy policy = FailurePolicy::kFailFast;
  /// kQuorum only: minimum fraction of a stage's (pipeline's,
  /// replica's) members that must reach kDone, in (0, 1].
  double quorum = 1.0;

  Status validate() const;
};

/// The pattern-facing execution interface, implemented by the
/// execution plugin. submit() translates specs into compute units and
/// hands them to the runtime; drive_until() advances execution.
class PatternExecutor {
 public:
  virtual ~PatternExecutor() = default;

  virtual Result<std::vector<pilot::ComputeUnitPtr>> submit(
      const std::vector<TaskSpec>& specs) = 0;

  /// Advances the backend until `done()` holds.
  virtual Status drive_until(const std::function<bool()>& done) = 0;

  /// Convenience: drives until all given units are settled, then
  /// reports the first failure (if any).
  Status wait_all(const std::vector<pilot::ComputeUnitPtr>& units);

  /// Like wait_all but without the failure check: drives until every
  /// unit settled and leaves the verdict to the caller's FailureRules.
  Status wait_settled(const std::vector<pilot::ComputeUnitPtr>& units);
};

class ExecutionPattern {
 public:
  virtual ~ExecutionPattern() = default;

  virtual std::string name() const = 0;

  /// Structural validation (counts > 0, all stage callbacks set, ...).
  virtual Status validate() const = 0;

  /// Orchestrates the pattern to completion through `executor`.
  /// Returns the first error (validation, submission, task failure —
  /// the latter filtered through the failure rules).
  virtual Status execute(PatternExecutor& executor) = 0;

  /// Pattern-level failure semantics, applied to each synchronisation
  /// point as its units settle. Composite patterns (SequencePattern,
  /// AdaptiveLoop) forward their rules to their children.
  void set_failure_rules(FailureRules rules) { failure_rules_ = rules; }
  const FailureRules& failure_rules() const { return failure_rules_; }

 protected:
  /// Verdict for one settled stage under failure_rules_: the first
  /// failure under kFailFast, OK (with a warning) under
  /// kContinueOnFailure, and under kQuorum OK iff the fraction of
  /// kDone units meets the quorum.
  Status settle_stage(
      const std::vector<pilot::ComputeUnitPtr>& units) const;

  FailureRules failure_rules_;
};

/// Registers `handler` to run exactly once when `unit` settles into a
/// *final* state. Handles the already-final and retry-pending cases
/// (a kFailed notification that the unit manager immediately retried
/// is not final). Used by patterns that chain work off completions.
void watch_unit(const pilot::ComputeUnitPtr& unit,
                std::function<void(pilot::ComputeUnit&,
                                   pilot::UnitState)> handler);

// ---------------------------------------------------------------------------

/// Independent tasks with no coupling: the degenerate-but-common case.
class BagOfTasks final : public ExecutionPattern {
 public:
  BagOfTasks(Count n_tasks, StageFn task_fn);

  std::string name() const override { return "bag_of_tasks"; }
  Status validate() const override;
  Status execute(PatternExecutor& executor) override;

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }

 private:
  Count n_tasks_;
  StageFn task_fn_;
  std::vector<pilot::ComputeUnitPtr> units_;
};

/// N independent pipelines of M ordered stages. Stage s+1 of pipeline
/// p starts as soon as stage s of pipeline p finishes — there is no
/// barrier across pipelines (paper Fig 2a).
class EnsembleOfPipelines final : public ExecutionPattern {
 public:
  EnsembleOfPipelines(Count n_pipelines, Count n_stages);

  /// Sets the workload of 1-based `stage`.
  void set_stage(Count stage, StageFn fn);

  std::string name() const override { return "ensemble_of_pipelines"; }
  Status validate() const override;
  Status execute(PatternExecutor& executor) override;

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }

 private:
  Count n_pipelines_;
  Count n_stages_;
  std::vector<StageFn> stage_fns_;
  std::vector<pilot::ComputeUnitPtr> units_;
};

/// Iterated two-stage pattern with global barriers: all simulations of
/// an iteration run (synchronise), then all analyses run (synchronise),
/// then the next iteration starts (paper Fig 2c). Optional pre- and
/// post-loop stages. The member counts may adapt between iterations
/// via set_adaptive_counts (a paper "future work" feature).
class SimulationAnalysisLoop final : public ExecutionPattern {
 public:
  SimulationAnalysisLoop(Count n_iterations, Count n_simulations,
                         Count n_analyses);

  void set_pre_loop(StageFn fn) { pre_loop_ = std::move(fn); }
  void set_simulation(StageFn fn) { simulation_ = std::move(fn); }
  void set_analysis(StageFn fn) { analysis_ = std::move(fn); }
  void set_post_loop(StageFn fn) { post_loop_ = std::move(fn); }

  /// Adaptive member counts: called before each iteration with the
  /// iteration number; returns {n_simulations, n_analyses} for it.
  using CountsFn = std::function<std::pair<Count, Count>(Count iteration)>;
  void set_adaptive_counts(CountsFn fn) { counts_fn_ = std::move(fn); }

  std::string name() const override { return "simulation_analysis_loop"; }
  Status validate() const override;
  Status execute(PatternExecutor& executor) override;

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }
  const std::vector<pilot::ComputeUnitPtr>& simulation_units() const {
    return simulation_units_;
  }
  const std::vector<pilot::ComputeUnitPtr>& analysis_units() const {
    return analysis_units_;
  }

 private:
  Count n_iterations_;
  Count n_simulations_;
  Count n_analyses_;
  StageFn pre_loop_;
  StageFn simulation_;
  StageFn analysis_;
  StageFn post_loop_;
  CountsFn counts_fn_;
  std::vector<pilot::ComputeUnitPtr> units_;
  std::vector<pilot::ComputeUnitPtr> simulation_units_;
  std::vector<pilot::ComputeUnitPtr> analysis_units_;
};

/// Interacting ensemble members: each cycle every replica simulates,
/// then replicas exchange (paper Fig 2b).
///
/// Two exchange modes:
///  - kGlobalSweep: one exchange task per cycle over all replicas
///    (the configuration of the paper's scaling experiments).
///  - kPairwise: one exchange task per neighbour pair, submitted the
///    moment both partners finish — no global barrier inside a cycle.
class EnsembleExchange final : public ExecutionPattern {
 public:
  enum class ExchangeMode { kGlobalSweep, kPairwise };

  EnsembleExchange(Count n_replicas, Count n_cycles,
                   ExchangeMode mode = ExchangeMode::kGlobalSweep);

  void set_simulation(StageFn fn) { simulation_ = std::move(fn); }

  /// kGlobalSweep: workload of the per-cycle exchange task. The
  /// context's `instance` is 0 and `instances` the replica count.
  void set_exchange(StageFn fn) { exchange_ = std::move(fn); }

  /// kPairwise: workload of the exchange between replicas `a` and `b`.
  using PairFn = std::function<TaskSpec(Count cycle, Count a, Count b)>;
  void set_pair_exchange(PairFn fn) { pair_exchange_ = std::move(fn); }

  /// Offsets the pairwise neighbour parity (pairs start at
  /// (cycle - 1 + offset) % 2). Lets applications that drive cycles
  /// one pattern at a time still alternate even/odd sweeps.
  void set_cycle_offset(Count offset) { cycle_offset_ = offset; }

  std::string name() const override { return "ensemble_exchange"; }
  Status validate() const override;
  Status execute(PatternExecutor& executor) override;

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }
  const std::vector<pilot::ComputeUnitPtr>& simulation_units() const {
    return simulation_units_;
  }
  const std::vector<pilot::ComputeUnitPtr>& exchange_units() const {
    return exchange_units_;
  }

 private:
  Status execute_global(PatternExecutor& executor);
  Status execute_pairwise(PatternExecutor& executor);

  Count n_replicas_;
  Count n_cycles_;
  ExchangeMode mode_;
  Count cycle_offset_ = 0;
  StageFn simulation_;
  StageFn exchange_;
  PairFn pair_exchange_;
  std::vector<pilot::ComputeUnitPtr> units_;
  std::vector<pilot::ComputeUnitPtr> simulation_units_;
  std::vector<pilot::ComputeUnitPtr> exchange_units_;
};

/// Higher-order composition: repeats a body pattern until the
/// application decides it has converged (or a round cap is hit) — the
/// paper's adaptive-execution outlook, where the amount of work is
/// only known at runtime.
class AdaptiveLoop final : public ExecutionPattern {
 public:
  /// Called after each completed round with the 1-based round number;
  /// return true to run another round.
  using ContinueFn = std::function<bool(Count round)>;

  AdaptiveLoop(std::unique_ptr<ExecutionPattern> body, Count max_rounds,
               ContinueFn continue_fn);

  std::string name() const override { return "adaptive_loop"; }
  Status validate() const override;
  Status execute(PatternExecutor& executor) override;

  Count rounds_completed() const { return rounds_completed_; }
  ExecutionPattern& body() { return *body_; }

 private:
  std::unique_ptr<ExecutionPattern> body_;
  Count max_rounds_;
  ContinueFn continue_fn_;
  Count rounds_completed_ = 0;
};

/// Higher-order composition: runs child patterns one after another
/// (the paper's "unit patterns combine into complex patterns").
class SequencePattern final : public ExecutionPattern {
 public:
  explicit SequencePattern(std::string name = "sequence");

  void append(std::unique_ptr<ExecutionPattern> pattern);
  std::size_t size() const { return children_.size(); }

  std::string name() const override { return name_; }
  Status validate() const override;
  Status execute(PatternExecutor& executor) override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<ExecutionPattern>> children_;
};

}  // namespace entk::core
