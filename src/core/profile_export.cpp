#include "core/profile_export.hpp"

#include <sstream>

#include "common/atomic_file.hpp"
#include "common/strings.hpp"

namespace entk::core {

namespace {
std::string time_cell(TimePoint t) {
  return t == kNoTime ? "" : format_double(t, 6);
}
}  // namespace

std::string units_timeline_csv(
    const std::vector<pilot::ComputeUnitPtr>& units) {
  std::ostringstream os;
  os << "uid,name,cores,retries,state,created,submitted,exec_start,"
        "exec_stop,finished,execution_time\n";
  for (const auto& unit : units) {
    os << unit->uid() << ',' << unit->description().name << ','
       << unit->description().cores << ',' << unit->retries() << ','
       << pilot::unit_state_name(unit->state()) << ','
       << time_cell(unit->created_at()) << ','
       << time_cell(unit->submitted_at()) << ','
       << time_cell(unit->exec_started_at()) << ','
       << time_cell(unit->exec_stopped_at()) << ','
       << time_cell(unit->finished_at()) << ','
       << format_double(unit->execution_time(), 6) << '\n';
  }
  return os.str();
}

std::string overheads_csv(const OverheadProfile& overheads) {
  std::ostringstream os;
  os << "metric,seconds\n"
     << "ttc," << format_double(overheads.ttc, 6) << '\n'
     << "core_overhead," << format_double(overheads.core_overhead, 6)
     << '\n'
     << "pattern_overhead,"
     << format_double(overheads.pattern_overhead, 6) << '\n'
     << "execution_time," << format_double(overheads.execution_time, 6)
     << '\n'
     << "runtime_overhead,"
     << format_double(overheads.runtime_overhead, 6) << '\n'
     << "pilot_startup," << format_double(overheads.pilot_startup, 6)
     << '\n'
     << "mean_unit_execution,"
     << format_double(overheads.mean_unit_execution, 6) << '\n'
     << "total_unit_execution,"
     << format_double(overheads.total_unit_execution, 6) << '\n';
  return os.str();
}

Status export_run_profile(const RunReport& report,
                          const std::string& path_prefix) {
  ENTK_RETURN_IF_ERROR(write_file_atomic(
      path_prefix + "_units.csv", units_timeline_csv(report.units)));
  return write_file_atomic(path_prefix + "_overheads.csv",
                           overheads_csv(report.overheads));
}

}  // namespace entk::core
