// Profile export: per-unit state timelines and run summaries as CSV,
// mirroring the profiling output of the original toolkit's stack that
// the paper's figures were produced from.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/resource_handle.hpp"
#include "pilot/compute_unit.hpp"

namespace entk::core {

/// CSV with one row per unit:
/// uid,name,cores,retries,state,created,submitted,exec_start,exec_stop,
/// finished,execution_time
std::string units_timeline_csv(
    const std::vector<pilot::ComputeUnitPtr>& units);

/// CSV with the run's TTC decomposition (one metric per row).
std::string overheads_csv(const OverheadProfile& overheads);

/// Writes both CSVs for a run report: <prefix>_units.csv and
/// <prefix>_overheads.csv.
Status export_run_profile(const RunReport& report,
                          const std::string& path_prefix);

}  // namespace entk::core
