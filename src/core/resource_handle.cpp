#include "core/resource_handle.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace entk::core {

ResourceHandle::ResourceHandle(pilot::ExecutionBackend& backend,
                               const kernels::KernelRegistry& registry,
                               ResourceOptions options)
    : backend_(backend),
      registry_(registry),
      options_(std::move(options)),
      pilot_manager_(backend) {
  ENTK_CHECK(options_.cores >= 1, "resource handle needs >= 1 core");
  ENTK_CHECK(options_.n_pilots >= 1, "resource handle needs >= 1 pilot");
  ENTK_CHECK(options_.cores >= options_.n_pilots,
             "need at least one core per pilot");
}

bool ResourceHandle::allocated() const {
  return !pilots_.empty() &&
         std::all_of(pilots_.begin(), pilots_.end(),
                     [](const pilot::PilotPtr& held) {
                       return held->state() == pilot::PilotState::kActive;
                     });
}

const pilot::PilotPtr& ResourceHandle::pilot() const {
  ENTK_CHECK(!pilots_.empty(), "resource handle holds no pilot");
  return pilots_.front();
}

Status ResourceHandle::allocate() {
  if (!pilots_.empty() &&
      std::any_of(pilots_.begin(), pilots_.end(),
                  [](const pilot::PilotPtr& held) {
                    return !pilot::is_final(held->state());
                  })) {
    return make_error(Errc::kFailedPrecondition,
                      "resource handle already holds pilots");
  }
  pilots_.clear();
  obs::ScopedTraceClock trace_clock(backend_.clock());
  ENTK_TRACE_SPAN("resource.allocate", "core");
  // Toolkit init + request handling (modelled core overhead).
  backend_.advance(options_.init_overhead + options_.allocate_overhead);
  ENTK_TRACE_COUNTER("overhead.core", "core",
                     options_.init_overhead + options_.allocate_overhead);

  unit_manager_ = std::make_unique<pilot::UnitManager>(backend_);
  // Split the total cores over the pilots; the first pilots take the
  // remainder.
  const Count base = options_.cores / options_.n_pilots;
  Count remainder = options_.cores % options_.n_pilots;
  for (Count p = 0; p < options_.n_pilots; ++p) {
    pilot::PilotDescription description;
    description.resource = backend_.machine().name;
    description.cores = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    description.runtime = options_.runtime;
    description.queue = options_.queue;
    description.project = options_.project;
    auto submitted = pilot_manager_.submit_pilot(
        description, options_.scheduler_policy);
    if (!submitted.ok()) return submitted.status();
    unit_manager_->add_pilot(submitted.value());
    if (options_.restart_failed_pilots) {
      watch_for_restart(submitted.value());
    }
    pilots_.push_back(submitted.take());
  }
  restarts_used_ = 0;
  for (const auto& held : pilots_) {
    ENTK_RETURN_IF_ERROR(pilot_manager_.wait_active(held));
  }
  ENTK_INFO("core.resource")
      << pilots_.size() << " pilot(s) active on " << backend_.name();
  return Status::ok();
}

void ResourceHandle::watch_for_restart(const pilot::PilotPtr& held) {
  held->on_state_change([this](pilot::Pilot& failed,
                               pilot::PilotState state) {
    if (state != pilot::PilotState::kFailed) return;
    if (restarts_used_ >= options_.max_pilot_restarts) {
      ENTK_WARN("core.resource")
          << failed.uid() << " failed with the restart budget spent";
      return;
    }
    ++restarts_used_;
    // The unit manager's own kFailed hook ran first (registration
    // order), so the stranded units are already back in its queue and
    // rebind to the replacement the moment it becomes active.
    auto replacement = pilot_manager_.resubmit_like(
        failed, options_.scheduler_policy);
    if (!replacement.ok()) {
      ENTK_WARN("core.resource") << "replacement for " << failed.uid()
                                 << " failed: "
                                 << replacement.status().to_string();
      return;
    }
    unit_manager_->add_pilot(replacement.value());
    watch_for_restart(replacement.value());
    pilots_.push_back(replacement.take());
  });
}

Result<RunReport> ResourceHandle::run(ExecutionPattern& pattern) {
  if (!allocated()) {
    return make_error(Errc::kFailedPrecondition,
                      "resource handle is not allocated");
  }
  ExecutionPlugin::Options plugin_options;
  plugin_options.per_task_overhead = options_.per_task_overhead;
  ExecutionPlugin plugin(registry_, *unit_manager_, backend_,
                         plugin_options);

  obs::ScopedTraceClock trace_clock(backend_.clock());
  const TimePoint started = backend_.clock().now();
  ENTK_TRACE_SPAN_BEGIN("run", "core", 0, 0);
  const Status outcome = pattern.execute(plugin);
  const TimePoint finished = backend_.clock().now();
  ENTK_TRACE_SPAN_END("run", "core", 0, 0);

  RunReport report;
  report.outcome = outcome;
  report.units = plugin.all_units();
  report.run_span = finished - started;
  report.overheads = build_overhead_profile(
      report.units, pilot(), report.run_span, core_overhead(),
      plugin.pattern_overhead());
  // With several pilots the startup that gates the run is the slowest.
  for (const auto& held : pilots_) {
    report.overheads.pilot_startup =
        std::max(report.overheads.pilot_startup, held->startup_time());
    ENTK_TRACE_COUNTER("pilot.startup", "core", held->startup_time());
  }
  for (const auto& unit : report.units) {
    switch (unit->state()) {
      case pilot::UnitState::kDone:
        ++report.units_done;
        break;
      case pilot::UnitState::kFailed:
        ++report.units_failed;
        break;
      case pilot::UnitState::kCanceled:
        ++report.units_cancelled;
        break;
      default:
        break;
    }
  }
  report.total_retries = unit_manager_->total_retries();
  report.recovered_units = unit_manager_->recovered_units();
  return report;
}

Status ResourceHandle::deallocate() {
  if (pilots_.empty()) {
    return make_error(Errc::kFailedPrecondition,
                      "resource handle holds no pilot");
  }
  obs::ScopedTraceClock trace_clock(backend_.clock());
  ENTK_TRACE_SPAN("resource.deallocate", "core");
  backend_.advance(options_.deallocate_overhead);
  ENTK_TRACE_COUNTER("overhead.core", "core",
                     options_.deallocate_overhead);
  Status first_error;
  for (const auto& held : pilots_) {
    if (held->state() != pilot::PilotState::kActive) continue;
    const Status status = pilot_manager_.deallocate(held);
    if (!status.is_ok() && first_error.is_ok()) first_error = status;
  }
  pilots_.clear();
  unit_manager_.reset();
  return first_error;
}

}  // namespace entk::core
