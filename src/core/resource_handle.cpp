#include "core/resource_handle.hpp"

namespace entk::core {

ResourceHandle::ResourceHandle(pilot::ExecutionBackend& backend,
                               const kernels::KernelRegistry& registry,
                               ResourceOptions options)
    : runtime_(backend, registry) {
  SessionOptions session_options;
  session_options.resources = std::move(options);
  auto session = runtime_.create_session(std::move(session_options));
  // An unnamed session in a fresh runtime cannot clash.
  ENTK_CHECK(session.ok(), "resource handle session creation failed");
  session_ = session.take();
}

}  // namespace entk::core
