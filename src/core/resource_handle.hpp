// ResourceHandle: the user-facing entry point of the toolkit.
//
// Mirrors the paper's five-step workflow (Fig 1):
//   1. pick an execution pattern,
//   2. define its kernel plugins (stage callbacks),
//   3. create a resource handle and allocate(),
//   4. run(pattern) — the execution plugin binds and executes,
//   5. inspect the RunReport, then deallocate().
#pragma once

#include <memory>
#include <string>

#include "core/execution_plugin.hpp"
#include "core/overheads.hpp"
#include "core/pattern.hpp"
#include "kernels/registry.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/unit_manager.hpp"

namespace entk::core {

struct ResourceOptions {
  Count cores = 1;                ///< Total cores across all pilots.
  /// Number of pilots to split `cores` over (several smaller
  /// allocations often clear a busy queue far sooner than one wide
  /// request — see bench/abl_queue_model). Units are routed
  /// round-robin over the active pilots.
  Count n_pilots = 1;
  Duration runtime = 36000;       ///< Pilot walltime (seconds).
  std::string queue;              ///< Batch queue (informational).
  std::string project;            ///< Allocation (informational).
  std::string scheduler_policy = "backfill";  ///< In-pilot scheduler.

  // Toolkit overhead model (core overhead is their sum; constant per
  // run, matching the paper's Fig 3).
  Duration init_overhead = 1.2;        ///< Toolkit initialisation.
  Duration allocate_overhead = 0.9;    ///< Resource request handling.
  Duration deallocate_overhead = 0.8;  ///< Resource cancel handling.
  Duration per_task_overhead = 0.004;  ///< Task creation + submission.

  // Fault tolerance.
  /// Submit a replacement pilot when one fails (walltime expiry,
  /// container loss). Units evicted off the dead pilot rebind to the
  /// replacement through the unit manager's late binding.
  bool restart_failed_pilots = false;
  Count max_pilot_restarts = 1;   ///< Replacement budget per handle.
};

/// What one run(pattern) produced.
struct RunReport {
  Status outcome;                 ///< Pattern-level success/failure.
  OverheadProfile overheads;      ///< TTC decomposition.
  std::vector<pilot::ComputeUnitPtr> units;  ///< All submitted units.
  Duration run_span = 0.0;        ///< Clock time inside run().

  // Fault-tolerance tallies for this run's units (retry/recovery
  // counters are handle-lifetime totals from the unit manager).
  std::size_t units_done = 0;
  std::size_t units_failed = 0;      ///< Settled failed (budget spent).
  std::size_t units_cancelled = 0;
  std::size_t total_retries = 0;     ///< Failed attempts resubmitted.
  std::size_t recovered_units = 0;   ///< Requeued off failed pilots.
};

class ResourceHandle {
 public:
  ResourceHandle(pilot::ExecutionBackend& backend,
                 const kernels::KernelRegistry& registry,
                 ResourceOptions options);

  /// Submits the pilot and waits for it to come up.
  Status allocate();

  /// Executes a pattern on the allocated resources. Task failures are
  /// reported in RunReport::outcome; an error Result means the handle
  /// itself could not run (not allocated, pilot lost, ...).
  Result<RunReport> run(ExecutionPattern& pattern);

  /// Cancels/completes the pilot and releases resources.
  Status deallocate();

  bool allocated() const;
  /// The first pilot (the only one unless n_pilots > 1).
  const pilot::PilotPtr& pilot() const;
  const std::vector<pilot::PilotPtr>& pilots() const { return pilots_; }
  pilot::UnitManager* unit_manager() { return unit_manager_.get(); }
  const ResourceOptions& options() const { return options_; }

  /// Constant core overhead charged per run (init + allocate +
  /// deallocate model).
  Duration core_overhead() const {
    return options_.init_overhead + options_.allocate_overhead +
           options_.deallocate_overhead;
  }

 private:
  /// Arms the pilot-restart hook: when `held` fails and the restart
  /// budget allows, submits a replacement with the same description.
  void watch_for_restart(const pilot::PilotPtr& held);

  pilot::ExecutionBackend& backend_;
  const kernels::KernelRegistry& registry_;
  ResourceOptions options_;

  pilot::PilotManager pilot_manager_;
  std::unique_ptr<pilot::UnitManager> unit_manager_;
  std::vector<pilot::PilotPtr> pilots_;
  Count restarts_used_ = 0;
};

}  // namespace entk::core
