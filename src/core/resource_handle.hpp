// ResourceHandle: the user-facing entry point of the toolkit.
//
// Mirrors the paper's five-step workflow (Fig 1):
//   1. pick an execution pattern,
//   2. define its kernel plugins (stage callbacks),
//   3. create a resource handle and allocate(),
//   4. run(pattern) — the execution plugin binds and executes,
//   5. inspect the RunReport, then deallocate().
//
// Since the session refactor this is a thin facade: the handle owns a
// private Runtime and one unnamed Session and forwards everything
// (core/session.hpp, where ResourceOptions and RunReport now live,
// has the ownership story). Unnamed sessions keep the legacy
// process-wide "unit"/"pilot" uid families, so single-workload
// programs behave bit-for-bit as before. Applications that want
// several concurrent workloads share one Runtime and create named
// sessions instead.
#pragma once

#include <memory>
#include <string>

#include "core/session.hpp"

namespace entk::core {

class ResourceHandle {
 public:
  ResourceHandle(pilot::ExecutionBackend& backend,
                 const kernels::KernelRegistry& registry,
                 ResourceOptions options);

  /// Submits the pilot and waits for it to come up.
  Status allocate() { return session_->allocate(); }

  /// Executes a pattern on the allocated resources. Task failures are
  /// reported in RunReport::outcome; an error Result means the handle
  /// itself could not run (not allocated, pilot lost, ...).
  Result<RunReport> run(ExecutionPattern& pattern) {
    return session_->run(pattern);
  }

  /// Cancels/completes the pilot and releases resources.
  Status deallocate() { return session_->deallocate(); }

  bool allocated() const { return session_->allocated(); }
  /// The first pilot (the only one unless n_pilots > 1).
  const pilot::PilotPtr& pilot() const { return session_->pilot(); }
  const std::vector<pilot::PilotPtr>& pilots() const {
    return session_->pilots();
  }
  pilot::UnitManager* unit_manager() { return session_->unit_manager(); }
  const ResourceOptions& options() const { return session_->options(); }

  /// Constant core overhead charged per run (init + allocate +
  /// deallocate model).
  Duration core_overhead() const { return session_->core_overhead(); }

  /// The unnamed session this handle fronts.
  Session& session() { return *session_; }
  /// The handle's private runtime (its PilotManager and registry).
  Runtime& runtime() { return runtime_; }

 private:
  Runtime runtime_;
  std::shared_ptr<Session> session_;
};

}  // namespace entk::core
