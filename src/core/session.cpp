#include "core/session.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "core/graph_executor.hpp"
#include "core/parallel_runtime.hpp"
#include "obs/trace.hpp"

namespace entk::core {

// ---------------------------------------------------------------- Session

Session::Session(Runtime& runtime, SessionOptions options)
    : runtime_(runtime),
      name_(std::move(options.name)),
      trace_ordinal_(obs::session_ordinal(name_)),
      options_(std::move(options.resources)) {
  ENTK_CHECK(options_.cores >= 1, "session needs >= 1 core");
  ENTK_CHECK(options_.n_pilots >= 1, "session needs >= 1 pilot");
  ENTK_CHECK(options_.cores >= options_.n_pilots,
             "need at least one core per pilot");
}

Session::~Session() {
  // Teardown order matters: first stop the graph run (detach its
  // settled subscription), then drain the unit manager (cancel and
  // settle everything still in flight), and only then let the manager
  // die (its gate close detaches the remaining pilot/timer callbacks).
  // Destroying with units in flight used to race agent callbacks
  // against member destruction.
  if (unit_manager_ == nullptr) return;
  obs::ScopedTraceClock trace_clock(backend().clock());
  if (active_run_ != nullptr) {
    (void)finish_run(make_error(Errc::kCancelled,
                                "session destroyed with a run in flight"));
  }
  (void)unit_manager_->drain();
  unit_manager_.reset();
}

pilot::ExecutionBackend& Session::backend() const {
  return runtime_.backend();
}

bool Session::allocated() const {
  return !pilots_.empty() &&
         std::all_of(pilots_.begin(), pilots_.end(),
                     [](const pilot::PilotPtr& held) {
                       return held->state() == pilot::PilotState::kActive;
                     });
}

const pilot::PilotPtr& Session::pilot() const {
  ENTK_CHECK(!pilots_.empty(), "session holds no pilot");
  return pilots_.front();
}

Status Session::allocate() {
  if (!pilots_.empty() &&
      std::any_of(pilots_.begin(), pilots_.end(),
                  [](const pilot::PilotPtr& held) {
                    return !pilot::is_final(held->state());
                  })) {
    return make_error(Errc::kFailedPrecondition,
                      "session already holds pilots");
  }
  pilots_.clear();
  obs::ScopedTraceClock trace_clock(backend().clock());
  ENTK_TRACE_SPAN_S("resource.allocate", "core", 0, 0, trace_ordinal_);
  // Toolkit init + request handling (modelled core overhead).
  backend().advance(options_.init_overhead + options_.allocate_overhead);
  ENTK_TRACE_COUNTER_S(
      "overhead.core", "core",
      options_.init_overhead + options_.allocate_overhead, trace_ordinal_);

  unit_manager_ = std::make_unique<pilot::UnitManager>(backend(), name_);
  // Split the total cores over the pilots; the first pilots take the
  // remainder.
  const Count base = options_.cores / options_.n_pilots;
  Count remainder = options_.cores % options_.n_pilots;
  for (Count p = 0; p < options_.n_pilots; ++p) {
    pilot::PilotDescription description;
    description.resource = backend().machine().name;
    description.cores = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    description.runtime = options_.runtime;
    description.queue = options_.queue;
    description.project = options_.project;
    description.session = name_;
    auto submitted = runtime_.pilot_manager().submit_pilot(
        description, options_.scheduler_policy);
    if (!submitted.ok()) return submitted.status();
    unit_manager_->add_pilot(submitted.value());
    if (options_.restart_failed_pilots) {
      watch_for_restart(submitted.value());
    }
    pilots_.push_back(submitted.take());
  }
  restarts_used_ = 0;
  for (const auto& held : pilots_) {
    ENTK_RETURN_IF_ERROR(runtime_.pilot_manager().wait_active(held));
  }
  ENTK_INFO("core.session")
      << (name_.empty() ? std::string("<unnamed>") : name_) << ": "
      << pilots_.size() << " pilot(s) active on " << backend().name();
  return Status::ok();
}

void Session::watch_for_restart(const pilot::PilotPtr& held) {
  // The pilot outlives this session (it is shared with the Runtime's
  // PilotManager), so the hook must not keep the session alive nor
  // touch it after destruction.
  std::weak_ptr<Session> weak = weak_from_this();
  held->on_state_change([weak](pilot::Pilot& failed,
                               pilot::PilotState state) {
    if (state != pilot::PilotState::kFailed) return;
    const std::shared_ptr<Session> self = weak.lock();
    if (self == nullptr) return;
    if (self->restarts_used_ >= self->options_.max_pilot_restarts) {
      ENTK_WARN("core.session")
          << failed.uid() << " failed with the restart budget spent";
      return;
    }
    ++self->restarts_used_;
    // The unit manager's own kFailed hook ran first (registration
    // order), so the stranded units are already back in its queue and
    // rebind to the replacement the moment it becomes active.
    auto replacement = self->runtime_.pilot_manager().resubmit_like(
        failed, self->options_.scheduler_policy);
    if (!replacement.ok()) {
      ENTK_WARN("core.session") << "replacement for " << failed.uid()
                                << " failed: "
                                << replacement.status().to_string();
      return;
    }
    self->unit_manager_->add_pilot(replacement.value());
    self->watch_for_restart(replacement.value());
    self->pilots_.push_back(replacement.take());
  });
}

Status Session::start_run(ExecutionPattern& pattern, bool deferred) {
  if (!allocated()) {
    return make_error(Errc::kFailedPrecondition,
                      "session is not allocated");
  }
  if (active_run_ != nullptr) {
    return make_error(Errc::kFailedPrecondition,
                      "session already has a run in flight");
  }
  auto run = std::make_unique<ActiveRun>();
  run->pattern = &pattern;
  ExecutionPlugin::Options plugin_options;
  plugin_options.per_task_overhead = options_.per_task_overhead;
  run->plugin = std::make_unique<ExecutionPlugin>(
      runtime_.registry(), *unit_manager_, backend(), plugin_options);

  obs::ScopedTraceClock trace_clock(backend().clock());
  run->started = backend().clock().now();
  ENTK_TRACE_SPAN_BEGIN_S("run", "core", 0, 0, trace_ordinal_);
  const Status started = pattern.start_execute(run->graph_run,
                                               *run->plugin, deferred);
  if (!started.is_ok()) {
    // Same contract as the blocking run(): pattern-level refusals are
    // the run's *outcome*, not a session error.
    run->start_failed = true;
    run->start_error = started;
  }
  active_run_ = std::move(run);
  return Status::ok();
}

bool Session::run_finished() const {
  if (active_run_ == nullptr) return false;
  return active_run_->start_failed || active_run_->graph_run.finished();
}

GraphExecutor* Session::run_executor() {
  if (active_run_ == nullptr || active_run_->start_failed) return nullptr;
  return active_run_->graph_run.executor();
}

Status Session::cancel_run() {
  if (active_run_ == nullptr) {
    return make_error(Errc::kFailedPrecondition,
                      "session has no run in flight");
  }
  if (active_run_->start_failed) return Status::ok();  // born finished
  GraphExecutor* executor = active_run_->graph_run.executor();
  if (executor == nullptr || executor->finished()) return Status::ok();
  obs::ScopedTraceClock trace_clock(backend().clock());
  ENTK_TRACE_INSTANT("run.cancel", "core");
  const auto inflight = executor->cancel(make_error(
      Errc::kCancelled,
      "session \"" + (name_.empty() ? std::string("<unnamed>") : name_) +
          "\": run cancelled"));
  for (const auto& unit : inflight) {
    (void)unit_manager_->cancel_unit(unit);
  }
  return Status::ok();
}

Result<RunReport> Session::finish_run(Status driven) {
  if (active_run_ == nullptr) {
    return make_error(Errc::kFailedPrecondition,
                      "session has no run in flight");
  }
  const std::unique_ptr<ActiveRun> run = std::move(active_run_);
  obs::ScopedTraceClock trace_clock(backend().clock());
  Status outcome;
  if (run->start_failed) {
    outcome = run->start_error;
  } else {
    outcome = run->pattern->finish_execute(run->graph_run,
                                           std::move(driven));
  }
  const TimePoint finished = backend().clock().now();
  ENTK_TRACE_SPAN_END_S("run", "core", 0, 0, trace_ordinal_);

  RunReport report;
  report.outcome = outcome;
  report.session = name_;
  report.units = run->plugin->all_units();
  report.run_span = finished - run->started;
  report.overheads = build_overhead_profile(
      report.units, pilot(), report.run_span, core_overhead(),
      run->plugin->pattern_overhead());
  // With several pilots the startup that gates the run is the slowest.
  for (const auto& held : pilots_) {
    report.overheads.pilot_startup =
        std::max(report.overheads.pilot_startup, held->startup_time());
    ENTK_TRACE_COUNTER_S("pilot.startup", "core", held->startup_time(),
                         trace_ordinal_);
  }
  for (const auto& unit : report.units) {
    switch (unit->state()) {
      case pilot::UnitState::kDone:
        ++report.units_done;
        break;
      case pilot::UnitState::kFailed:
        ++report.units_failed;
        break;
      case pilot::UnitState::kCanceled:
        ++report.units_cancelled;
        break;
      default:
        break;
    }
  }
  report.total_retries = unit_manager_->total_retries();
  report.recovered_units = unit_manager_->recovered_units();
  return report;
}

Result<RunReport> Session::run(ExecutionPattern& pattern) {
  obs::ScopedTraceClock trace_clock(backend().clock());
  ENTK_RETURN_IF_ERROR(start_run(pattern));
  Status driven = Status::ok();
  if (!run_finished()) {
    driven = backend().drive_until([this] { return run_finished(); });
  }
  return finish_run(std::move(driven));
}

Status Session::deallocate() {
  if (pilots_.empty()) {
    return make_error(Errc::kFailedPrecondition,
                      "session holds no pilot");
  }
  obs::ScopedTraceClock trace_clock(backend().clock());
  ENTK_TRACE_SPAN_S("resource.deallocate", "core", 0, 0, trace_ordinal_);
  backend().advance(options_.deallocate_overhead);
  ENTK_TRACE_COUNTER_S("overhead.core", "core",
                       options_.deallocate_overhead, trace_ordinal_);
  Status first_error;
  for (const auto& held : pilots_) {
    if (held->state() != pilot::PilotState::kActive) continue;
    const Status status = runtime_.pilot_manager().deallocate(held);
    if (!status.is_ok() && first_error.is_ok()) first_error = status;
  }
  pilots_.clear();
  // The gate close inside the manager's destructor detaches every
  // callback still registered on (now dead) pilots and timers before
  // the members go away.
  unit_manager_.reset();
  return first_error;
}

// ---------------------------------------------------------------- Runtime

Runtime::Runtime(pilot::ExecutionBackend& backend,
                 const kernels::KernelRegistry& registry)
    : backend_(backend), registry_(registry), pilot_manager_(backend) {}

Result<std::shared_ptr<Session>> Runtime::create_session(
    SessionOptions options) {
  MutexLock lock(mutex_);
  // Prune dead registrations while checking name uniqueness.
  std::vector<std::weak_ptr<Session>> live;
  live.reserve(sessions_.size());
  for (const auto& weak : sessions_) {
    const std::shared_ptr<Session> session = weak.lock();
    if (session == nullptr) continue;
    if (!options.name.empty() && session->name() == options.name) {
      return make_error(Errc::kFailedPrecondition,
                        "session \"" + options.name +
                            "\" already exists in this runtime");
    }
    live.push_back(weak);
  }
  sessions_ = std::move(live);
  const std::shared_ptr<Session> session(
      new Session(*this, std::move(options)));
  sessions_.push_back(session);
  return session;
}

std::shared_ptr<Session> Runtime::find_session(
    const std::string& name) const {
  MutexLock lock(mutex_);
  for (const auto& weak : sessions_) {
    std::shared_ptr<Session> session = weak.lock();
    if (session != nullptr && session->name() == name) return session;
  }
  return nullptr;
}

std::vector<std::shared_ptr<Session>> Runtime::sessions() const {
  MutexLock lock(mutex_);
  std::vector<std::shared_ptr<Session>> live;
  live.reserve(sessions_.size());
  for (const auto& weak : sessions_) {
    std::shared_ptr<Session> session = weak.lock();
    if (session != nullptr) live.push_back(std::move(session));
  }
  return live;
}

Result<std::vector<RunReport>> Runtime::run_concurrent(
    const std::vector<SessionRun>& runs, Duration timeout) {
  // Validate the whole batch before starting anything, so a refused
  // entry never strands the others mid-flight.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SessionRun& entry = runs[i];
    if (entry.session == nullptr || entry.pattern == nullptr) {
      return make_error(Errc::kInvalidArgument,
                        "run_concurrent entry " + std::to_string(i) +
                            " is missing a session or pattern");
    }
    if (!entry.session->allocated()) {
      return make_error(Errc::kFailedPrecondition,
                        "session \"" + entry.session->name() +
                            "\" is not allocated");
    }
    if (entry.session->run_active()) {
      return make_error(Errc::kFailedPrecondition,
                        "session \"" + entry.session->name() +
                            "\" already has a run in flight");
    }
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      if (runs[j].session == entry.session) {
        return make_error(Errc::kInvalidArgument,
                          "session \"" + entry.session->name() +
                              "\" appears twice in run_concurrent");
      }
    }
  }

  obs::ScopedTraceClock trace_clock(backend_.clock());
  std::size_t started = 0;
  Status start_error;
  for (const SessionRun& entry : runs) {
    start_error = entry.session->start_run(*entry.pattern);
    if (!start_error.is_ok()) break;
    ++started;
  }
  if (!start_error.is_ok()) {
    // Defensive unwind (validation above should make this
    // unreachable): settle what already started, then report.
    for (std::size_t i = 0; i < started; ++i) {
      Session& session = *runs[i].session;
      const Status driven = backend_.drive_until(
          [&session] { return session.run_finished(); }, timeout);
      (void)session.finish_run(driven);
    }
    return start_error;
  }

  // Parallel session advancement: with a parallel pool configured and
  // several sessions in flight, each executor defers its pumping —
  // settlements only queue events during the engine step, and the
  // wait predicate below advances every session's graph as pool tasks
  // (the sessions share no graph state), then flushes the resulting
  // submissions serially in session order (the backend is shared and
  // not thread-safe). The predicate runs between engine steps, so no
  // settlement callback is ever in flight while the pool advances.
  WorkStealingPool* pool = parallel_pool();
  std::vector<GraphExecutor*> executors;
  if (pool != nullptr && runs.size() > 1) {
    for (const SessionRun& entry : runs) {
      GraphExecutor* executor = entry.session->run_executor();
      if (executor != nullptr) {
        executor->set_deferred(true);
        executors.push_back(executor);
      }
    }
  }
  const auto advance_sessions = [&executors, pool] {
    for (;;) {
      pool->parallel_for(executors.size(), [&executors](std::size_t i) {
        executors[i]->advance_local();
      });
      bool any_submitted = false;
      for (GraphExecutor* executor : executors) {
        if (executor->flush_submit()) any_submitted = true;
      }
      // A flushed submission can unblock further frontiers (fast
      // synchronous settlement), so advance again until quiescent.
      if (!any_submitted) return;
    }
  };

  // The one wait: a single drive interleaves every session's events
  // on the shared backend.
  const auto all_finished = [&runs, &executors, &advance_sessions] {
    if (!executors.empty()) advance_sessions();
    return std::all_of(runs.begin(), runs.end(),
                       [](const SessionRun& entry) {
                         return entry.session->run_finished();
                       });
  };
  Status driven = Status::ok();
  if (!all_finished()) {
    driven = backend_.drive_until(all_finished, timeout);
  }
  for (GraphExecutor* executor : executors) {
    executor->set_deferred(false);
  }

  std::vector<RunReport> reports;
  reports.reserve(runs.size());
  for (const SessionRun& entry : runs) {
    auto report = entry.session->finish_run(driven);
    if (!report.ok()) return report.status();
    reports.push_back(report.take());
  }
  if (!driven.is_ok()) return driven;
  return reports;
}

}  // namespace entk::core
