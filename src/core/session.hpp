// Session and Runtime: concurrent workloads over one shared backend.
//
// The original toolkit object model allowed exactly one workload per
// process: a ResourceHandle owned the PilotManager, the UnitManager
// and the pilots, so two workloads meant two processes. This header
// splits that ownership the way RADICAL-Pilot splits it between the
// client module and the pilot system:
//
//   Runtime  — per process (per backend). Owns the shared
//              PilotManager, the kernel registry binding and the
//              session registry. The single point of truth for pilot
//              capacity.
//   Session  — per workload. Owns its UnitManager (session-scoped
//              unit uids, settled-observer routing, per-session
//              metrics), its pilots' lifecycle, and at most one
//              in-flight pattern run.
//
// N sessions run concurrently in one process: each session starts its
// pattern without blocking (start_run), and one drive_until on the
// shared backend advances all of them (Runtime::run_concurrent). Two
// sessions' units never cross wires — each session's units carry its
// name, draw uids from its "<name>.unit" family, and settle through
// its own UnitManager's observers.
//
// ResourceHandle remains as a thin facade over an unnamed Session and
// a private Runtime, preserving the paper's five-step workflow (and
// the legacy process-wide "unit"/"pilot" uid families) byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "core/execution_plugin.hpp"
#include "core/overheads.hpp"
#include "core/pattern.hpp"
#include "kernels/registry.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/unit_manager.hpp"

namespace entk::core {

class Runtime;
class Session;

struct ResourceOptions {
  Count cores = 1;                ///< Total cores across all pilots.
  /// Number of pilots to split `cores` over (several smaller
  /// allocations often clear a busy queue far sooner than one wide
  /// request — see bench/abl_queue_model). Units are routed
  /// round-robin over the active pilots.
  Count n_pilots = 1;
  Duration runtime = 36000;       ///< Pilot walltime (seconds).
  std::string queue;              ///< Batch queue (informational).
  std::string project;            ///< Allocation (informational).
  std::string scheduler_policy = "backfill";  ///< In-pilot scheduler.

  // Toolkit overhead model (core overhead is their sum; constant per
  // run, matching the paper's Fig 3).
  Duration init_overhead = 1.2;        ///< Toolkit initialisation.
  Duration allocate_overhead = 0.9;    ///< Resource request handling.
  Duration deallocate_overhead = 0.8;  ///< Resource cancel handling.
  Duration per_task_overhead = 0.004;  ///< Task creation + submission.

  // Fault tolerance.
  /// Submit a replacement pilot when one fails (walltime expiry,
  /// container loss). Units evicted off the dead pilot rebind to the
  /// replacement through the unit manager's late binding.
  bool restart_failed_pilots = false;
  Count max_pilot_restarts = 1;   ///< Replacement budget per session.
};

/// What one run(pattern) produced.
struct RunReport {
  Status outcome;                 ///< Pattern-level success/failure.
  OverheadProfile overheads;      ///< TTC decomposition.
  std::vector<pilot::ComputeUnitPtr> units;  ///< All submitted units.
  Duration run_span = 0.0;        ///< Clock time inside run().
  std::string session;            ///< Owning session; "" = unnamed.

  // Fault-tolerance tallies for this run's units (retry/recovery
  // counters are session-lifetime totals from the unit manager).
  std::size_t units_done = 0;
  std::size_t units_failed = 0;      ///< Settled failed (budget spent).
  std::size_t units_cancelled = 0;
  std::size_t total_retries = 0;     ///< Failed attempts resubmitted.
  std::size_t recovered_units = 0;   ///< Requeued off failed pilots.
};

struct SessionOptions {
  /// Session name: scopes unit/pilot uid families, trace events and
  /// metrics. Must be unique among a Runtime's live sessions. The
  /// empty name keeps the legacy process-wide families (at most
  /// meaningful for one session per process — the ResourceHandle
  /// facade).
  std::string name;
  ResourceOptions resources;
};

/// One workload's execution scope: pilots, unit manager, pattern runs.
///
/// Lifecycle mirrors the paper's workflow — allocate(), run(pattern)
/// any number of times, deallocate() — plus the non-blocking
/// start_run / run_finished / finish_run triple that lets
/// Runtime::run_concurrent drive many sessions under one backend
/// wait. Sessions are created by Runtime::create_session and owned by
/// shared_ptr; all methods are driver-thread only (the concurrency is
/// between sessions' *units* on the backend, not between calls into
/// one Session).
class Session : public std::enable_shared_from_this<Session> {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& name() const { return name_; }
  /// Trace/session ordinal (obs::session_ordinal); 0 for unnamed.
  std::uint32_t trace_ordinal() const { return trace_ordinal_; }

  /// Submits this session's pilots and waits for them to come up.
  Status allocate();

  /// Executes a pattern on the allocated resources, blocking until it
  /// settles. Task failures are reported in RunReport::outcome; an
  /// error Result means the session itself could not run (not
  /// allocated, run already in flight, ...).
  Result<RunReport> run(ExecutionPattern& pattern);

  /// Cancels/completes this session's pilots and releases resources.
  Status deallocate();

  // --- non-blocking run control (Runtime::run_concurrent) ---
  /// Starts a pattern run without blocking: submits the initial
  /// frontier and subscribes to settled events, so anything that
  /// drives the backend advances this run. Pattern-level failures
  /// (validation, compile, submission) do NOT fail start_run — the
  /// run is born finished and finish_run reports them as the outcome,
  /// exactly as the blocking run() does.
  /// With `deferred` the run's executor starts in deferred-pumping
  /// mode: even the initial frontier only lands in the pending batch,
  /// so an external driver (entk-serve's fair-share scheduler) owns
  /// every submission via flush_submit / flush_submit_bounded.
  Status start_run(ExecutionPattern& pattern, bool deferred = false);
  /// Whether a run is in flight (start_run succeeded, finish_run not
  /// yet called).
  bool run_active() const { return active_run_ != nullptr; }
  /// Whether the in-flight run has settled (finish_run may be called).
  /// False when no run is active.
  bool run_finished() const;
  /// Completes an in-flight run: resolves the outcome (`driven` is the
  /// caller's drive_until verdict), fires the pattern's end hooks and
  /// builds the report.
  Result<RunReport> finish_run(Status driven);
  /// The in-flight run's graph executor; nullptr when no run is
  /// active or the run failed to start. Runtime::run_concurrent's
  /// parallel path toggles deferred pumping through it.
  GraphExecutor* run_executor();
  /// Cancels an in-flight run: aborts the graph (unsubmitted nodes
  /// are swept to skipped) and cancels the units still in flight
  /// through this session's unit manager. The run is NOT finished
  /// here — drive the backend until run_finished(), then finish_run()
  /// reports the cancelled outcome. Safe between engine steps while
  /// other sessions' runs are live on the shared backend: cancelling
  /// touches only this session's graph and units, so the others'
  /// virtual schedules are unperturbed (pinned by
  /// tests/multi_session_test.cpp). No-op on an already-settled run.
  Status cancel_run();

  bool allocated() const;
  /// The first pilot (the only one unless n_pilots > 1).
  const pilot::PilotPtr& pilot() const;
  const std::vector<pilot::PilotPtr>& pilots() const { return pilots_; }
  pilot::UnitManager* unit_manager() { return unit_manager_.get(); }
  const ResourceOptions& options() const { return options_; }
  Runtime& runtime() { return runtime_; }

  /// Constant core overhead charged per run (init + allocate +
  /// deallocate model).
  Duration core_overhead() const {
    return options_.init_overhead + options_.allocate_overhead +
           options_.deallocate_overhead;
  }

 private:
  friend class Runtime;
  Session(Runtime& runtime, SessionOptions options);

  /// One in-flight pattern run.
  struct ActiveRun {
    ExecutionPattern* pattern = nullptr;
    std::unique_ptr<ExecutionPlugin> plugin;
    ExecutionPattern::GraphRun graph_run;
    TimePoint started = 0.0;
    /// The pattern refused to start (validation, compile, observer):
    /// the run is finished on arrival and finish_run reports this.
    bool start_failed = false;
    Status start_error;
  };

  pilot::ExecutionBackend& backend() const;

  /// Arms the pilot-restart hook: when `held` fails and the restart
  /// budget allows, submits a replacement with the same description.
  /// The callback outlives this session (pilots live in the shared
  /// PilotManager), so it holds a weak_ptr and no-ops after teardown.
  void watch_for_restart(const pilot::PilotPtr& held);

  Runtime& runtime_;
  const std::string name_;
  const std::uint32_t trace_ordinal_;
  ResourceOptions options_;

  std::unique_ptr<pilot::UnitManager> unit_manager_;
  std::vector<pilot::PilotPtr> pilots_;
  Count restarts_used_ = 0;
  std::unique_ptr<ActiveRun> active_run_;
};

/// The per-process execution scope sessions share: one backend, one
/// kernel registry, one PilotManager (= one pool of pilot capacity),
/// and the registry of live sessions.
class Runtime {
 public:
  Runtime(pilot::ExecutionBackend& backend,
          const kernels::KernelRegistry& registry);

  /// Creates a session. Fails when `options.name` is non-empty and a
  /// live session already uses it.
  Result<std::shared_ptr<Session>> create_session(SessionOptions options);

  /// The live session with this name, or nullptr.
  std::shared_ptr<Session> find_session(const std::string& name) const
      ENTK_EXCLUDES(mutex_);

  /// Sessions still alive, in creation order.
  std::vector<std::shared_ptr<Session>> sessions() const
      ENTK_EXCLUDES(mutex_);

  /// One entry of a concurrent run: an allocated session and the
  /// pattern it executes. The pattern is borrowed for the call.
  struct SessionRun {
    std::shared_ptr<Session> session;
    ExecutionPattern* pattern = nullptr;
  };

  /// Runs every (session, pattern) pair concurrently over the shared
  /// backend: all runs start, ONE drive_until advances them together
  /// (a session whose pipeline stalls donates its cores' time to the
  /// others), and every run is finished and reported. Reports are in
  /// input order; per-pattern failures land in RunReport::outcome. An
  /// error Result means the runs could not be set up (a session not
  /// allocated, duplicate sessions, ...) or the backend could not
  /// drive them (deadlock, timeout).
  Result<std::vector<RunReport>> run_concurrent(
      const std::vector<SessionRun>& runs,
      Duration timeout = kTimeInfinity);

  pilot::ExecutionBackend& backend() { return backend_; }
  const kernels::KernelRegistry& registry() const { return registry_; }
  pilot::PilotManager& pilot_manager() { return pilot_manager_; }

 private:
  pilot::ExecutionBackend& backend_;
  const kernels::KernelRegistry& registry_;
  pilot::PilotManager pilot_manager_;

  /// Guards only the session registry — never held while driving the
  /// backend or calling into sessions.
  mutable Mutex mutex_{LockRank::kRuntime};
  std::vector<std::weak_ptr<Session>> sessions_ ENTK_GUARDED_BY(mutex_);
};

}  // namespace entk::core
