#include "core/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace entk::core {

Status WorkloadProfile::validate() const {
  if (total_tasks < 1 || max_concurrent_tasks < 1) {
    return make_error(Errc::kInvalidArgument,
                      "workload needs at least one task");
  }
  if (max_concurrent_tasks > total_tasks) {
    return make_error(Errc::kInvalidArgument,
                      "peak concurrency cannot exceed total tasks");
  }
  if (cores_per_task < 1) {
    return make_error(Errc::kInvalidArgument,
                      "tasks need at least one core");
  }
  if (reference_task_duration <= 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "reference task duration must be positive");
  }
  if (sequential_stages < 1) {
    return make_error(Errc::kInvalidArgument, "need at least one stage");
  }
  return Status::ok();
}

Result<WorkloadProfile> profile_for_ensemble(
    Count n_tasks, Count stages, const TaskSpec& sample,
    const kernels::KernelRegistry& registry) {
  if (n_tasks < 1 || stages < 1) {
    return make_error(Errc::kInvalidArgument,
                      "ensemble needs >= 1 task and stage");
  }
  auto kernel = registry.find(sample.kernel);
  if (!kernel.ok()) return kernel.status();
  // Bind on a unit-performance reference machine to read the kernel's
  // cost model and core requirement.
  sim::MachineProfile reference = sim::localhost_profile();
  reference.performance_factor = 1.0;
  auto bound = kernel.value()->bind(sample.args, reference);
  if (!bound.ok()) return bound.status();

  WorkloadProfile workload;
  workload.total_tasks = n_tasks * stages;
  workload.max_concurrent_tasks = n_tasks;
  workload.cores_per_task =
      sample.cores > 0 ? sample.cores : bound.value().cores;
  workload.reference_task_duration = bound.value().estimated_duration;
  if (sample.cores > 0 && sample.cores != bound.value().cores) {
    workload.reference_task_duration *=
        static_cast<double>(bound.value().cores) /
        static_cast<double>(sample.cores);
  }
  workload.sequential_stages = stages;
  return workload;
}

ExecutionStrategy::ExecutionStrategy(const sim::MachineCatalog& catalog)
    : catalog_(catalog) {}

ResourcePlan ExecutionStrategy::evaluate(const sim::MachineProfile& machine,
                                         Count cores,
                                         const WorkloadProfile& workload) {
  ENTK_CHECK(workload.validate().is_ok(), "invalid workload profile");
  ENTK_CHECK(cores >= workload.cores_per_task,
             "pilot smaller than one task");
  ResourcePlan plan;
  plan.machine = machine.name;
  plan.pilot_cores = cores;

  const double duration =
      workload.reference_task_duration / machine.performance_factor;
  const Count stage_width = (workload.total_tasks +
                             workload.sequential_stages - 1) /
                            workload.sequential_stages;
  const Count slots =
      std::min<Count>(cores / workload.cores_per_task, stage_width);
  const Count waves = (stage_width + slots - 1) / slots;
  const double spawn_serial =
      std::ceil(static_cast<double>(stage_width) /
                static_cast<double>(machine.spawner_concurrency)) *
      machine.unit_spawn_overhead;
  const double stage_time = static_cast<double>(waves) * duration +
                            machine.unit_launch_latency + spawn_serial;
  plan.predicted_makespan =
      machine.pilot_bootstrap +
      static_cast<double>(workload.sequential_stages) * stage_time;

  const Count nodes = (cores + machine.cores_per_node - 1) /
                      machine.cores_per_node;
  plan.predicted_queue_wait =
      machine.batch_base_wait +
      machine.batch_wait_per_node * static_cast<double>(nodes);
  plan.predicted_ttc = plan.predicted_queue_wait + plan.predicted_makespan;
  plan.pilot_runtime = 1.25 * plan.predicted_makespan + 120.0;
  return plan;
}

Result<ResourcePlan> ExecutionStrategy::plan(
    const WorkloadProfile& workload,
    const StrategyObjective& objective) const {
  ENTK_RETURN_IF_ERROR(workload.validate());
  last_candidates_.clear();

  for (const auto& name : catalog_.names()) {
    const sim::MachineProfile machine = catalog_.find(name).value();
    // Candidate pilot sizes: power-of-two task slots up to the peak
    // concurrency, plus the exact peak.
    std::set<Count> core_candidates;
    for (Count slot_count = 1; slot_count < workload.max_concurrent_tasks;
         slot_count *= 2) {
      core_candidates.insert(slot_count * workload.cores_per_task);
    }
    core_candidates.insert(workload.max_concurrent_tasks *
                           workload.cores_per_task);
    for (const Count cores : core_candidates) {
      if (cores > machine.total_cores()) continue;
      if (objective.max_cores > 0 && cores > objective.max_cores) continue;
      ResourcePlan candidate = evaluate(machine, cores, workload);
      if (objective.max_core_seconds > 0.0 &&
          static_cast<double>(cores) * candidate.predicted_makespan >
              objective.max_core_seconds) {
        continue;
      }
      last_candidates_.push_back(std::move(candidate));
    }
  }
  if (last_candidates_.empty()) {
    return make_error(Errc::kResourceExhausted,
                      "no machine in the catalog can run this workload "
                      "within the objective's bounds");
  }
  const auto score = [&](const ResourcePlan& plan_candidate) {
    return objective.queue_wait_weight *
               plan_candidate.predicted_queue_wait +
           plan_candidate.predicted_makespan;
  };
  std::stable_sort(last_candidates_.begin(), last_candidates_.end(),
                   [&](const ResourcePlan& a, const ResourcePlan& b) {
                     return score(a) < score(b);
                   });
  return last_candidates_.front();
}

}  // namespace entk::core
