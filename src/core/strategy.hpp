// Execution strategies: from static workload-resource mapping to
// dynamic, informed mapping (the paper's Section V outlook, following
// Turilli et al., "Integrating Abstractions to Enhance the Execution
// of Distributed Applications", IPDPS 2016).
//
// An ExecutionStrategy turns a workload description plus a machine
// catalog into a ResourcePlan: which machine to target, how many cores
// the pilot should hold, for how long, and under which in-pilot
// scheduling policy. The analytic TTC model used for ranking mirrors
// the simulated backend's cost accounting (waves of concurrent tasks,
// per-unit spawn overheads, queue wait, bootstrap), so its predictions
// can be validated against discrete-event simulation — which the
// abl_execution_strategy bench does.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/task.hpp"
#include "kernels/registry.hpp"
#include "sim/machine.hpp"

namespace entk::core {

/// Resource-relevant shape of a workload.
struct WorkloadProfile {
  Count total_tasks = 0;          ///< Tasks over the whole run.
  Count max_concurrent_tasks = 0; ///< Widest stage (peak parallelism).
  Count cores_per_task = 1;       ///< Cores each task occupies.
  /// Mean task duration on the *reference* machine (performance
  /// factor 1.0); per-machine durations divide by the factor.
  Duration reference_task_duration = 0.0;
  /// Sequential stages/barriers the tasks flow through (>= 1).
  Count sequential_stages = 1;

  Status validate() const;
};

/// Helper: derives a profile for a width-`n` single-stage ensemble of
/// tasks like `sample`, using the kernel's cost model on the reference
/// machine. `stages` > 1 models iterated/barriered patterns whose
/// stages all look like `sample`.
Result<WorkloadProfile> profile_for_ensemble(
    Count n_tasks, Count stages, const TaskSpec& sample,
    const kernels::KernelRegistry& registry);

/// One candidate execution: machine + pilot sizing + predicted times.
struct ResourcePlan {
  std::string machine;
  Count pilot_cores = 0;
  Duration pilot_runtime = 0.0;     ///< Requested walltime (padded).
  std::string scheduler_policy = "backfill";
  Duration predicted_queue_wait = 0.0;
  Duration predicted_makespan = 0.0;  ///< Bootstrap + task execution.
  Duration predicted_ttc = 0.0;       ///< Queue wait + makespan.
};

/// What the strategy optimises.
struct StrategyObjective {
  /// Relative weight of queue-wait time versus run time; 1.0 treats a
  /// queued second like a running second, 0 ignores the queue.
  double queue_wait_weight = 1.0;
  /// Upper bound on pilot cores (0 = no bound beyond the machines').
  Count max_cores = 0;
  /// Charge budget in core-seconds (0 = unconstrained). Plans whose
  /// cores x makespan exceed this are rejected.
  double max_core_seconds = 0.0;
};

class ExecutionStrategy {
 public:
  explicit ExecutionStrategy(const sim::MachineCatalog& catalog);

  /// Predicts queue wait + makespan for running `workload` with a
  /// `cores`-sized pilot on `machine`.
  static ResourcePlan evaluate(const sim::MachineProfile& machine,
                               Count cores,
                               const WorkloadProfile& workload);

  /// Enumerates candidate (machine, cores) choices and returns the one
  /// minimising weighted TTC. Candidate core counts are the powers of
  /// two (times cores_per_task) up to the peak concurrency.
  Result<ResourcePlan> plan(const WorkloadProfile& workload,
                            const StrategyObjective& objective) const;

  /// All evaluated candidates of the last plan() call, best first
  /// (diagnostics for tooling and tests).
  const std::vector<ResourcePlan>& last_candidates() const {
    return last_candidates_;
  }

 private:
  const sim::MachineCatalog& catalog_;
  mutable std::vector<ResourcePlan> last_candidates_;
};

}  // namespace entk::core
