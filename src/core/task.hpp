// TaskSpec: what a user's stage callback returns — a kernel name plus
// arguments, still unbound to any machine (binding is the execution
// plugin's job, which is how applications stay resource-agnostic).
#pragma once

#include <string>

#include "common/config.hpp"
#include "common/types.hpp"
#include "pilot/retry_policy.hpp"

namespace entk::core {

struct TaskSpec {
  std::string kernel;   ///< Kernel-plugin name, e.g. "md.simulate".
  Config args;          ///< Kernel arguments (see each kernel's docs).
  /// Cores for this task; 0 = let the kernel decide (its "cores" arg
  /// or 1). Values > 1 imply an MPI launch.
  Count cores = 0;
  /// Automatic resubmission policy: retry budget, exponential backoff,
  /// per-attempt execution timeout.
  pilot::RetryPolicy retry;
  /// Test hook: inject one failure on first execution.
  bool inject_failure = false;
  /// Test hook: first execution hangs forever; only
  /// retry.execution_timeout reclaims the cores.
  bool inject_hang = false;
};

}  // namespace entk::core
