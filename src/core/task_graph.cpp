#include "core/task_graph.hpp"

#include <sstream>

namespace entk::core {

Status FailureRules::validate() const {
  if (policy == FailurePolicy::kQuorum &&
      (quorum <= 0.0 || quorum > 1.0)) {
    return make_error(Errc::kInvalidArgument,
                      "quorum must be in (0, 1], got " +
                          std::to_string(quorum));
  }
  return Status::ok();
}

NodeId TaskGraph::add_node(std::string label, SpecFn make_spec,
                           StageContext context) {
  ENTK_CHECK(static_cast<bool>(make_spec),
             "task graph node needs a spec producer");
  TaskNode node;
  node.label = std::move(label);
  node.make_spec = std::move(make_spec);
  node.context = context;
  node.generation = generation_;
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

void TaskGraph::set_sink(NodeId node, UnitSink sink) {
  ENTK_CHECK(node < nodes_.size(), "sink on unknown node");
  nodes_[node].sink = std::move(sink);
}

void TaskGraph::add_dependency(NodeId node, NodeId depends_on) {
  ENTK_CHECK(node < nodes_.size() && depends_on < nodes_.size(),
             "dependency on unknown node");
  ENTK_CHECK(depends_on < node,
             "dependencies must point at earlier nodes (acyclic by "
             "construction)");
  nodes_[node].deps.push_back(depends_on);
}

GroupId TaskGraph::add_stage_group(std::string label, FailureRules rules) {
  TaskGroup group;
  group.label = std::move(label);
  group.kind = GroupKind::kStage;
  group.rules = rules;
  groups_.push_back(std::move(group));
  return groups_.size() - 1;
}

GroupId TaskGraph::add_chain_group(std::string label) {
  TaskGroup group;
  group.label = std::move(label);
  group.kind = GroupKind::kChain;
  groups_.push_back(std::move(group));
  return groups_.size() - 1;
}

void TaskGraph::add_member(GroupId group, NodeId node) {
  ENTK_CHECK(group < groups_.size(), "membership in unknown group");
  ENTK_CHECK(node < nodes_.size(), "membership of unknown node");
  groups_[group].members.push_back(node);
  nodes_[node].groups.push_back(group);
}

void TaskGraph::gate_on(NodeId node, GroupId stage_group) {
  ENTK_CHECK(node < nodes_.size(), "gate on unknown node");
  ENTK_CHECK(stage_group < groups_.size() &&
                 groups_[stage_group].kind == GroupKind::kStage,
             "nodes gate on stage groups only");
  nodes_[node].gates.push_back(stage_group);
}

void TaskGraph::add_chain_set(std::string label, std::string member_noun,
                              FailureRules rules,
                              std::vector<GroupId> chains) {
  for (const GroupId chain : chains) {
    ENTK_CHECK(chain < groups_.size() &&
                   groups_[chain].kind == GroupKind::kChain,
               "chain sets hold chain groups only");
  }
  ChainSet set;
  set.label = std::move(label);
  set.member_noun = std::move(member_noun);
  set.rules = rules;
  set.chains = std::move(chains);
  chain_sets_.push_back(std::move(set));
}

void TaskGraph::add_expander(ExpanderFn expander) {
  ENTK_CHECK(static_cast<bool>(expander), "null graph expander");
  expanders_.push_back(std::move(expander));
}

Status TaskGraph::validate() const {
  for (const TaskNode& node : nodes_) {
    if (!node.make_spec) {
      return make_error(Errc::kInvalidArgument,
                        "task graph node '" + node.label +
                            "' has no spec producer");
    }
  }
  for (const TaskGroup& group : groups_) {
    if (group.kind == GroupKind::kStage) {
      ENTK_RETURN_IF_ERROR(group.rules.validate());
    }
  }
  for (const ChainSet& set : chain_sets_) {
    ENTK_RETURN_IF_ERROR(set.rules.validate());
  }
  return Status::ok();
}

namespace {

/// Graphviz-safe label text.
std::string dot_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    escaped.push_back(c);
  }
  return escaped;
}

}  // namespace

std::string TaskGraph::to_dot() const {
  std::ostringstream out;
  out << "digraph taskgraph {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontsize=10];\n";
  // Stage groups become clusters; each gets a barrier point so the
  // group -> gated-node relation renders as a single dashed edge.
  for (GroupId gid = 0; gid < groups_.size(); ++gid) {
    const TaskGroup& group = groups_[gid];
    if (group.kind != GroupKind::kStage) continue;
    out << "  subgraph cluster_g" << gid << " {\n"
        << "    label=\"" << dot_escape(group.label) << "\";\n"
        << "    style=dashed;\n";
    for (const NodeId member : group.members) {
      out << "    n" << member << ";\n";
    }
    out << "    b" << gid << " [shape=point, label=\"\"];\n"
        << "  }\n";
    for (const NodeId member : group.members) {
      out << "  n" << member << " -> b" << gid
          << " [style=dotted, arrowhead=none];\n";
    }
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const TaskNode& node = nodes_[id];
    out << "  n" << id << " [label=\"" << dot_escape(node.label)
        << "\"];\n";
    for (const NodeId dep : node.deps) {
      out << "  n" << dep << " -> n" << id << ";\n";
    }
    for (const GroupId gate : node.gates) {
      out << "  b" << gate << " -> n" << id << " [style=dashed];\n";
    }
  }
  // Chain groups overlap (a pairwise exchange belongs to two replica
  // chains), so they render as a legend rather than clusters.
  for (GroupId gid = 0; gid < groups_.size(); ++gid) {
    const TaskGroup& group = groups_[gid];
    if (group.kind != GroupKind::kChain) continue;
    out << "  // chain '" << group.label << "':";
    for (const NodeId member : group.members) out << " n" << member;
    out << "\n";
  }
  if (!expanders_.empty()) {
    out << "  // " << expanders_.size()
        << " expander(s) pending: adaptive generations are added at "
           "run time\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace entk::core
