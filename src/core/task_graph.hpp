// TaskGraph: the explicit DAG every execution pattern compiles to.
//
// A pattern no longer runs anything itself — it *compiles* its tasks
// into this graph (nodes with lazy TaskSpec producers, success edges,
// failure scopes) and the event-driven GraphExecutor drives the graph
// against the runtime. The split mirrors the Pipeline–Stage–Task
// dataflow rearchitecture of EnTK's successor ("Harnessing the Power
// of Many"): expression is a data structure, execution is an engine.
//
// Model:
//  - Node: one task slot. Its TaskSpec is produced by a deferred
//    callback at submission time, so stateful user stage functions
//    (e.g. replica-exchange apps mutating temperature ladders between
//    cycles) observe up-to-date application state, exactly as they did
//    under the imperative run loops.
//  - Success edge (dependency): the downstream node runs only if the
//    upstream node reached kDone; otherwise it is skipped (a failed
//    pipeline stage ends its pipeline).
//  - Stage group: a barrier scope with FailureRules. Once every member
//    settles, the executor computes the stage verdict (fail-fast /
//    continue / quorum); a failed verdict aborts the whole graph.
//    Nodes *gated* on a stage group wait for its verdict.
//  - Chain group + chain set: a completion scope evaluated when the
//    graph drains (per-pipeline / per-replica verdicts). Chains may
//    overlap: a pairwise exchange task belongs to both partners'
//    replica chains.
//  - Expander: a callback invoked when the graph quiesces with all
//    verdicts passing; it may append another generation of nodes
//    (adaptive loops, sequences, data-dependent member counts).
//
// TaskGraph is a passive structure: it holds no execution state and no
// locks. It is mutated only single-threaded — by the pattern compiler
// before the run and by expanders at quiescence points during it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/task.hpp"
#include "pilot/compute_unit.hpp"

namespace entk::core {

/// Where in the pattern a stage callback is being invoked.
struct StageContext {
  Count iteration = 1;  ///< 1-based iteration / cycle.
  Count stage = 1;      ///< 1-based stage within the pattern.
  Count instance = 0;   ///< 0-based pipeline / replica / member index.
  Count instances = 0;  ///< Total members in this stage.
};

/// Produces the task for one (iteration, stage, instance) slot.
using StageFn = std::function<TaskSpec(const StageContext&)>;

/// How a pattern reacts once a task settles as failed or cancelled
/// (i.e. after the runtime exhausted its retry budget — transient
/// failures with retries left never reach the pattern).
enum class FailurePolicy {
  kFailFast,            ///< First settled failure aborts the pattern.
  kContinueOnFailure,   ///< Log the failure, keep every survivor going.
  kQuorum,              ///< A stage succeeds if enough members finish.
};

struct FailureRules {
  FailurePolicy policy = FailurePolicy::kFailFast;
  /// kQuorum only: minimum fraction of a stage's (pipeline's,
  /// replica's) members that must reach kDone, in (0, 1].
  double quorum = 1.0;

  Status validate() const;
};

using NodeId = std::size_t;
using GroupId = std::size_t;

/// Produces a node's TaskSpec at submission time (never earlier).
using SpecFn = std::function<TaskSpec()>;

/// Receives the compute unit created for a node the moment it is
/// submitted (patterns use sinks to populate their unit accessors).
using UnitSink = std::function<void(const pilot::ComputeUnitPtr&)>;

/// Scope semantics of a TaskGroup.
enum class GroupKind {
  kStage,  ///< Barrier: verdict once all members settle; failure aborts.
  kChain,  ///< Completion accounting: verdict folded in at drain time.
};

struct TaskNode {
  std::string label;
  SpecFn make_spec;
  UnitSink sink;                ///< Optional.
  StageContext context;         ///< Provenance (iteration/stage/instance).
  Count generation = 0;         ///< Which expansion wave added the node.
  std::vector<NodeId> deps;     ///< Success edges (must be kDone).
  std::vector<GroupId> gates;   ///< Stage groups whose verdict must pass.
  std::vector<GroupId> groups;  ///< Group memberships.
};

struct TaskGroup {
  std::string label;
  GroupKind kind = GroupKind::kStage;
  FailureRules rules;           ///< Stage groups: verdict rules.
  std::vector<NodeId> members;
};

/// A set of chain groups judged together under one FailureRules when
/// the graph drains (the per-pipeline / per-replica pattern verdict).
struct ChainSet {
  std::string label;            ///< Pattern name, used in verdicts.
  std::string member_noun = "chains";  ///< "pipelines", "replicas", ...
  FailureRules rules;
  std::vector<GroupId> chains;
};

class TaskGraph {
 public:
  /// Called when the graph quiesces with every verdict so far passing.
  /// May append nodes / groups / further expanders. Returns true when
  /// it scheduled more work, false when it is exhausted. Expanders run
  /// innermost-first (LIFO), so a nested pattern's expander drains
  /// before the enclosing loop decides its next round.
  using ExpanderFn = std::function<Result<bool>(TaskGraph&)>;

  NodeId add_node(std::string label, SpecFn make_spec,
                  StageContext context = {});
  void set_sink(NodeId node, UnitSink sink);
  /// Success edge: `node` runs only once `depends_on` reached kDone.
  /// The dependency must already exist (ids are append-ordered), which
  /// keeps every TaskGraph acyclic by construction.
  void add_dependency(NodeId node, NodeId depends_on);

  GroupId add_stage_group(std::string label, FailureRules rules);
  GroupId add_chain_group(std::string label);
  void add_member(GroupId group, NodeId node);
  /// `node` waits for `stage_group`'s verdict before becoming ready.
  void gate_on(NodeId node, GroupId stage_group);
  void add_chain_set(std::string label, std::string member_noun,
                     FailureRules rules, std::vector<GroupId> chains);

  void add_expander(ExpanderFn expander);

  std::size_t node_count() const { return nodes_.size(); }
  const TaskNode& node(NodeId id) const { return nodes_.at(id); }
  std::size_t group_count() const { return groups_.size(); }
  const TaskGroup& group(GroupId id) const { return groups_.at(id); }
  std::size_t chain_set_count() const { return chain_sets_.size(); }
  const ChainSet& chain_set(std::size_t index) const {
    return chain_sets_.at(index);
  }
  std::size_t expander_count() const { return expanders_.size(); }
  const ExpanderFn& expander(std::size_t index) const {
    return expanders_.at(index);
  }

  /// Expansion wave stamped onto newly added nodes; the executor bumps
  /// it before invoking an expander.
  Count generation() const { return generation_; }
  void bump_generation() { ++generation_; }

  /// Structural checks (every node has a spec producer, gates refer to
  /// stage groups, quorum rules well-formed).
  Status validate() const;

  /// Graphviz rendering: stage groups as clusters with barrier points,
  /// success edges solid, gate edges dashed. Pending expanders are
  /// noted — adaptive generations only exist once the graph runs.
  std::string to_dot() const;

 private:
  std::vector<TaskNode> nodes_;
  std::vector<TaskGroup> groups_;
  std::vector<ChainSet> chain_sets_;
  std::vector<ExpanderFn> expanders_;
  Count generation_ = 0;
};

}  // namespace entk::core
