#include "core/trace_overheads.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace entk::core {
namespace {

bool is(const char* text, const char* expected) {
  return text != nullptr && std::strcmp(text, expected) == 0;
}

struct UnitRec {
  TimePoint start = kNoTime;
  TimePoint stop = kNoTime;
};

}  // namespace

Result<OverheadProfile> reduce_trace_overheads(
    const std::vector<obs::TraceEvent>& events) {
  OverheadProfile profile;

  TimePoint run_begin = kNoTime;
  TimePoint run_end = kNoTime;
  bool saw_run = false;

  // Per-unit exec spans, keyed by flow id; creation order preserved so
  // the execution-time sum matches build_overhead_profile's, which
  // iterates units in submission order.
  std::unordered_map<std::uint64_t, UnitRec> units;
  std::vector<std::uint64_t> creation_order;

  for (const obs::TraceEvent& event : events) {
    switch (event.kind) {
      case obs::TraceKind::kCounter:
        if (is(event.name, "overhead.core")) {
          profile.core_overhead += event.value;
        } else if (is(event.name, "overhead.pattern")) {
          profile.pattern_overhead += event.value;
        } else if (is(event.name, "pilot.startup")) {
          profile.pilot_startup =
              std::max(profile.pilot_startup, event.value);
        }
        break;
      case obs::TraceKind::kSpanBegin:
        if (is(event.name, "run")) {
          run_begin = event.time;
          run_end = kNoTime;
        } else if (is(event.name, "unit.exec")) {
          UnitRec& rec = units[event.flow_id];
          rec.start = event.time;
          rec.stop = kNoTime;
        }
        break;
      case obs::TraceKind::kSpanEnd:
        if (is(event.name, "run")) {
          run_end = event.time;
          saw_run = true;
        } else if (is(event.name, "unit.exec")) {
          units[event.flow_id].stop = event.time;
        }
        break;
      case obs::TraceKind::kInstant:
        if (is(event.name, "unit.created")) {
          creation_order.push_back(event.flow_id);
          units.try_emplace(event.flow_id);
        } else if (is(event.name, "unit.exec_reset")) {
          // Retry / pilot-loss rewind: the attempt's stamps are void.
          units[event.flow_id] = UnitRec{};
        }
        break;
    }
  }

  if (!saw_run || run_end == kNoTime) {
    return make_error(Errc::kNotFound,
                      "trace holds no completed \"run\" span; was the "
                      "recorder enabled around ResourceHandle::run()?");
  }
  const Duration run_span = run_end - run_begin;

  profile.n_units = creation_order.size();
  TimePoint first_start = kTimeInfinity;
  TimePoint last_stop = -kTimeInfinity;
  for (const std::uint64_t flow : creation_order) {
    const UnitRec& rec = units[flow];
    if (rec.start != kNoTime && rec.stop != kNoTime) {
      profile.total_unit_execution += rec.stop - rec.start;
    }
    if (rec.start != kNoTime) {
      first_start = std::min(first_start, rec.start);
    }
    if (rec.stop != kNoTime) last_stop = std::max(last_stop, rec.stop);
  }
  if (profile.n_units > 0) {
    profile.mean_unit_execution =
        profile.total_unit_execution /
        static_cast<double>(profile.n_units);
  }
  if (first_start != kTimeInfinity && last_stop > first_start) {
    profile.execution_time = last_stop - first_start;
  }
  profile.runtime_overhead =
      std::max(0.0, run_span - profile.pattern_overhead -
                        profile.execution_time);
  profile.ttc = profile.core_overhead + run_span;
  return profile;
}

}  // namespace entk::core
