// Rebuild the paper's TTC decomposition from a trace stream.
//
// The live recorder (src/obs) captures what build_overhead_profile()
// computes post-hoc from finished unit timelines. reduce_trace_overheads
// folds a snapshot back into an OverheadProfile so the two paths can
// be cross-checked (tests assert agreement to 1e-6 on deterministic
// sim runs).
//
// Events consumed (see docs/OBSERVABILITY.md for the emitting sites):
//   counter "overhead.core"     summed         -> core_overhead
//   counter "overhead.pattern"  summed         -> pattern_overhead
//   counter "pilot.startup"     max            -> pilot_startup
//   span    "run"               last pair      -> run span
//   instant "unit.created"      count/order    -> n_units, sum order
//   span    "unit.exec"         per flow id    -> execution window
//   instant "unit.exec_reset"   voids the flow's pending exec span
//
// The trace must cover allocate() through deallocate(): core overhead
// is modelled as a per-run constant (init + allocate + deallocate), so
// a snapshot taken before deallocation under-counts it.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "core/overheads.hpp"
#include "obs/trace.hpp"

namespace entk::core {

/// Reduces a time-ordered trace snapshot (obs::TraceRecorder::snapshot)
/// to an OverheadProfile. Fails when no "run" span is present.
Result<OverheadProfile> reduce_trace_overheads(
    const std::vector<obs::TraceEvent>& events);

}  // namespace entk::core
