#include "core/utilization.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace entk::core {

UtilizationReport compute_utilization(
    const std::vector<pilot::ComputeUnitPtr>& units, Count pilot_cores) {
  ENTK_CHECK(pilot_cores >= 1, "pilot must have at least one core");
  UtilizationReport report;

  std::vector<std::pair<TimePoint, Count>> edges;
  TimePoint first = kTimeInfinity;
  TimePoint last = -kTimeInfinity;
  for (const auto& unit : units) {
    const TimePoint start = unit->exec_started_at();
    const TimePoint stop = unit->exec_stopped_at();
    if (start == kNoTime || stop == kNoTime || stop <= start) continue;
    ++report.executed_units;
    const Count cores = unit->description().cores;
    report.busy_core_seconds += static_cast<double>(cores) * (stop - start);
    edges.emplace_back(start, cores);
    edges.emplace_back(stop, -cores);
    first = std::min(first, start);
    last = std::max(last, stop);
  }
  if (report.executed_units == 0) return report;

  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // process releases first
            });
  Count concurrent = 0;
  for (const auto& [time, delta] : edges) {
    concurrent += delta;
    report.peak_concurrent_cores =
        std::max(report.peak_concurrent_cores, concurrent);
  }
  report.window = last - first;
  if (report.window > 0.0) {
    report.average_utilization =
        report.busy_core_seconds /
        (static_cast<double>(pilot_cores) * report.window);
  }
  return report;
}

}  // namespace entk::core
