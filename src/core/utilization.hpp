// Resource-utilization analysis over a run's unit timelines.
//
// Answers the question behind the paper's "decouple total required
// from instantaneously available resources": how well did the pilot's
// cores actually get used?
#pragma once

#include <vector>

#include "common/types.hpp"
#include "pilot/compute_unit.hpp"

namespace entk::core {

struct UtilizationReport {
  /// busy core-seconds / (pilot_cores * window); 0 without executions.
  double average_utilization = 0.0;
  /// First execution start to last execution stop.
  Duration window = 0.0;
  /// Sum over units of cores * execution time.
  double busy_core_seconds = 0.0;
  /// Largest number of cores simultaneously executing units.
  Count peak_concurrent_cores = 0;
  /// Number of units that actually executed.
  std::size_t executed_units = 0;
};

/// Sweeps the units' execution intervals against a pilot of
/// `pilot_cores` cores.
UtilizationReport compute_utilization(
    const std::vector<pilot::ComputeUnitPtr>& units, Count pilot_cores);

}  // namespace entk::core
