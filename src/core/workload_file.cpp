#include "core/workload_file.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/strings.hpp"
#include "pilot/local_backend.hpp"
#include "pilot/sim_backend.hpp"

namespace entk::core {

Status WorkloadSpec::validate() const {
  if (backend != "sim" && backend != "local") {
    return make_error(Errc::kInvalidArgument,
                      "backend must be 'sim' or 'local', got '" + backend +
                          "'");
  }
  if (!auto_cores && cores < 1) {
    return make_error(Errc::kInvalidArgument, "cores must be >= 1");
  }
  if ((auto_cores || auto_machine) && backend != "sim") {
    return make_error(Errc::kInvalidArgument,
                      "cores/machine = auto requires the sim backend "
                      "(the strategy plans over the machine catalog)");
  }
  ENTK_RETURN_IF_ERROR(failure.validate());
  auto require_section = [this](const std::string& name) {
    if (sections.count(name) == 0) {
      return make_error(Errc::kInvalidArgument,
                        "pattern '" + pattern + "' needs a [" + name +
                            "] section");
    }
    if (!sections.at(name).contains("kernel")) {
      return make_error(Errc::kInvalidArgument,
                        "[" + name + "] needs a 'kernel' key");
    }
    return Status::ok();
  };
  if (pattern == "bag") {
    if (simulations < 1) {
      return make_error(Errc::kInvalidArgument,
                        "bag needs simulations >= 1");
    }
    return require_section("task");
  }
  if (pattern == "eop") {
    if (simulations < 1 || stages < 1) {
      return make_error(Errc::kInvalidArgument,
                        "eop needs simulations >= 1 and stages >= 1");
    }
    for (Count s = 1; s <= stages; ++s) {
      ENTK_RETURN_IF_ERROR(require_section("stage" + std::to_string(s)));
    }
    return Status::ok();
  }
  if (pattern == "sal") {
    if (simulations < 1 || analyses < 1 || iterations < 1) {
      return make_error(Errc::kInvalidArgument,
                        "sal needs simulations, analyses and iterations "
                        ">= 1");
    }
    ENTK_RETURN_IF_ERROR(require_section("simulation"));
    return require_section("analysis");
  }
  if (pattern == "ee") {
    if (simulations < 2 || iterations < 1) {
      return make_error(Errc::kInvalidArgument,
                        "ee needs simulations >= 2 and iterations >= 1");
    }
    ENTK_RETURN_IF_ERROR(require_section("simulation"));
    return require_section("exchange");
  }
  return make_error(Errc::kInvalidArgument,
                    "unknown pattern '" + pattern +
                        "' (expected bag, eop, sal or ee)");
}

Result<WorkloadSpec> parse_workload(const std::string& text) {
  WorkloadSpec spec;
  std::string section;  // empty = resource/pattern block
  std::istringstream stream(text);
  std::string raw_line;
  int line_number = 0;
  while (std::getline(stream, raw_line)) {
    ++line_number;
    std::string line = trim(raw_line);
    const auto comment = line.find('#');
    if (comment != std::string::npos) line = trim(line.substr(0, comment));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return make_error(Errc::kInvalidArgument,
                          "line " + std::to_string(line_number) +
                              ": malformed section header '" + line + "'");
      }
      section = trim(line.substr(1, line.size() - 2));
      spec.sections.emplace(section, Config{});
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      return make_error(Errc::kInvalidArgument,
                        "line " + std::to_string(line_number) +
                            ": expected key = value, got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (!section.empty()) {
      spec.sections[section].set(key, value);
      continue;
    }
    // Resource/pattern block.
    if (key == "backend") {
      spec.backend = value;
    } else if (key == "machine") {
      if (value == "auto") {
        spec.auto_machine = true;
      } else {
        spec.machine = value;
      }
    } else if (key == "cores") {
      if (value == "auto") {
        spec.auto_cores = true;
      } else {
        spec.cores = std::strtoll(value.c_str(), nullptr, 10);
      }
    } else if (key == "runtime") {
      spec.runtime = std::strtod(value.c_str(), nullptr);
    } else if (key == "scheduler") {
      spec.scheduler = value;
    } else if (key == "pattern") {
      spec.pattern = value;
    } else if (key == "simulations" || key == "tasks" ||
               key == "pipelines" || key == "replicas") {
      spec.simulations = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "analyses") {
      spec.analyses = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "iterations" || key == "cycles") {
      spec.iterations = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "stages") {
      spec.stages = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "failure_policy") {
      if (value == "fail_fast") {
        spec.failure.policy = FailurePolicy::kFailFast;
      } else if (value == "continue") {
        spec.failure.policy = FailurePolicy::kContinueOnFailure;
      } else if (value == "quorum") {
        spec.failure.policy = FailurePolicy::kQuorum;
      } else {
        return make_error(Errc::kInvalidArgument,
                          "line " + std::to_string(line_number) +
                              ": unknown failure_policy '" + value +
                              "' (expected fail_fast, continue or "
                              "quorum)");
      }
    } else if (key == "quorum") {
      spec.failure.quorum = std::strtod(value.c_str(), nullptr);
    } else {
      return make_error(Errc::kInvalidArgument,
                        "line " + std::to_string(line_number) +
                            ": unknown key '" + key + "'");
    }
  }
  ENTK_RETURN_IF_ERROR(spec.validate());
  return spec;
}

std::string serialize_workload(const WorkloadSpec& spec) {
  std::ostringstream out;
  // Shortest-exact double formatting so parse(serialize(s)) == s.
  out << std::setprecision(17);
  out << "backend = " << spec.backend << "\n";
  out << "machine = " << (spec.auto_machine ? "auto" : spec.machine)
      << "\n";
  out << "cores = ";
  if (spec.auto_cores) {
    out << "auto\n";
  } else {
    out << spec.cores << "\n";
  }
  out << "runtime = " << spec.runtime << "\n";
  out << "scheduler = " << spec.scheduler << "\n";
  out << "pattern = " << spec.pattern << "\n";
  out << "simulations = " << spec.simulations << "\n";
  out << "analyses = " << spec.analyses << "\n";
  out << "iterations = " << spec.iterations << "\n";
  if (spec.stages > 0) out << "stages = " << spec.stages << "\n";
  switch (spec.failure.policy) {
    case FailurePolicy::kFailFast:
      out << "failure_policy = fail_fast\n";
      break;
    case FailurePolicy::kContinueOnFailure:
      out << "failure_policy = continue\n";
      break;
    case FailurePolicy::kQuorum:
      out << "failure_policy = quorum\n";
      break;
  }
  out << "quorum = " << spec.failure.quorum << "\n";
  for (const auto& [name, section] : spec.sections) {
    out << "\n[" << name << "]\n";
    for (const auto& key : section.keys()) {
      out << key << " = " << section.get_string(key).value() << "\n";
    }
  }
  return out.str();
}

Result<WorkloadSpec> load_workload(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return make_error(Errc::kIoError, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_workload(buffer.str());
}

std::string substitute_placeholders(const std::string& value,
                                    const StageContext& context) {
  std::string out = value;
  const std::pair<const char*, Count> replacements[] = {
      {"{instance}", context.instance},
      {"{iteration}", context.iteration},
      {"{stage}", context.stage},
      {"{instances}", context.instances},
  };
  for (const auto& [token, number] : replacements) {
    const std::string text = std::to_string(number);
    for (std::size_t at = out.find(token); at != std::string::npos;
         at = out.find(token, at + text.size())) {
      out.replace(at, std::string(token).size(), text);
    }
  }
  return out;
}

Result<TaskSpec> task_from_section(const Config& section,
                                   const StageContext& context) {
  auto kernel = section.get_string("kernel");
  if (!kernel.ok()) return kernel.status();
  TaskSpec spec;
  spec.kernel = kernel.value();
  for (const auto& key : section.keys()) {
    if (key == "kernel") continue;
    // Fault-tolerance keys configure the task rather than the kernel.
    if (key == "max_retries") {
      auto retries = section.get_int(key);
      if (!retries.ok()) return retries.status();
      spec.retry.max_retries = retries.value();
      continue;
    }
    if (key == "retry_backoff") {
      auto backoff = section.get_double(key);
      if (!backoff.ok()) return backoff.status();
      spec.retry.backoff_base = backoff.value();
      continue;
    }
    if (key == "retry_backoff_multiplier") {
      auto multiplier = section.get_double(key);
      if (!multiplier.ok()) return multiplier.status();
      spec.retry.backoff_multiplier = multiplier.value();
      continue;
    }
    if (key == "retry_backoff_max") {
      auto cap = section.get_double(key);
      if (!cap.ok()) return cap.status();
      spec.retry.backoff_max = cap.value();
      continue;
    }
    if (key == "retry_jitter") {
      auto jitter = section.get_double(key);
      if (!jitter.ok()) return jitter.status();
      spec.retry.jitter = jitter.value();
      continue;
    }
    if (key == "execution_timeout") {
      auto timeout = section.get_double(key);
      if (!timeout.ok()) return timeout.status();
      spec.retry.execution_timeout = timeout.value();
      continue;
    }
    if (key == "inject_failure") {
      auto inject = section.get_bool(key);
      if (!inject.ok()) return inject.status();
      spec.inject_failure = inject.value();
      continue;
    }
    if (key == "inject_hang") {
      auto inject = section.get_bool(key);
      if (!inject.ok()) return inject.status();
      spec.inject_hang = inject.value();
      continue;
    }
    spec.args.set(key, substitute_placeholders(
                           section.get_string(key).value(), context));
  }
  ENTK_RETURN_IF_ERROR(spec.retry.validate());
  return spec;
}

Result<std::unique_ptr<ExecutionPattern>> build_pattern(
    const WorkloadSpec& spec) {
  ENTK_RETURN_IF_ERROR(spec.validate());
  // Stage callbacks copy their section so the pattern outlives `spec`.
  auto stage_fn = [](Config section) {
    return [section = std::move(section)](const StageContext& context) {
      auto task = task_from_section(section, context);
      // Errors surface when the execution plugin validates the kernel.
      return task.ok() ? task.take() : TaskSpec{};
    };
  };
  std::unique_ptr<ExecutionPattern> built;
  if (spec.pattern == "bag") {
    built = std::make_unique<BagOfTasks>(
        spec.simulations, stage_fn(spec.sections.at("task")));
  } else if (spec.pattern == "eop") {
    auto pattern = std::make_unique<EnsembleOfPipelines>(spec.simulations,
                                                         spec.stages);
    for (Count s = 1; s <= spec.stages; ++s) {
      pattern->set_stage(
          s, stage_fn(spec.sections.at("stage" + std::to_string(s))));
    }
    built = std::move(pattern);
  } else if (spec.pattern == "sal") {
    auto pattern = std::make_unique<SimulationAnalysisLoop>(
        spec.iterations, spec.simulations, spec.analyses);
    pattern->set_simulation(stage_fn(spec.sections.at("simulation")));
    pattern->set_analysis(stage_fn(spec.sections.at("analysis")));
    built = std::move(pattern);
  } else {  // ee
    auto pattern = std::make_unique<EnsembleExchange>(
        spec.simulations, spec.iterations,
        EnsembleExchange::ExchangeMode::kGlobalSweep);
    pattern->set_simulation(stage_fn(spec.sections.at("simulation")));
    pattern->set_exchange(stage_fn(spec.sections.at("exchange")));
    built = std::move(pattern);
  }
  built->set_failure_rules(spec.failure);
  return built;
}

namespace {

/// Strategy-plans the pilot for an `auto` workload: profiles the
/// primary stage's kernel and sizes/places the pilot over the catalog
/// (or the named machine alone).
Result<ResourcePlan> plan_auto_resources(
    const WorkloadSpec& spec, const kernels::KernelRegistry& registry,
    const sim::MachineCatalog& full_catalog) {
  const char* primary =
      spec.pattern == "bag"
          ? "task"
          : (spec.pattern == "eop" ? "stage1" : "simulation");
  auto sample = task_from_section(spec.sections.at(primary),
                                  {1, 1, 0, spec.simulations});
  if (!sample.ok()) return sample.status();
  // Sequential stages the tasks flow through (per-iteration stages x
  // iterations); width = the ensemble size.
  Count stage_count = 1;
  if (spec.pattern == "eop") stage_count = spec.stages;
  if (spec.pattern == "sal" || spec.pattern == "ee") {
    stage_count = 2 * spec.iterations;
  }
  auto workload = profile_for_ensemble(spec.simulations, stage_count,
                                       sample.value(), registry);
  if (!workload.ok()) return workload.status();

  sim::MachineCatalog scoped;
  if (!spec.auto_machine) {
    auto machine = full_catalog.find(spec.machine);
    if (!machine.ok()) return machine.status();
    ENTK_RETURN_IF_ERROR(scoped.register_machine(machine.take()));
  }
  const sim::MachineCatalog& catalog =
      spec.auto_machine ? full_catalog : scoped;
  ExecutionStrategy strategy(catalog);
  StrategyObjective objective;
  if (!spec.auto_cores) objective.max_cores = spec.cores;
  return strategy.plan(workload.value(), objective);
}

}  // namespace

Result<WorkloadSpec> resolve_workload(
    const WorkloadSpec& spec, const kernels::KernelRegistry& registry) {
  if (!spec.auto_cores && !spec.auto_machine) return spec;
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  auto plan = plan_auto_resources(spec, registry, catalog);
  if (!plan.ok()) return plan.status();
  WorkloadSpec resolved = spec;
  resolved.machine = plan.value().machine;
  if (spec.auto_cores) resolved.cores = plan.value().pilot_cores;
  resolved.runtime =
      std::max(resolved.runtime, plan.value().pilot_runtime);
  resolved.auto_cores = false;
  resolved.auto_machine = false;
  return resolved;
}

Result<RunReport> run_workload(const WorkloadSpec& original,
                               const kernels::KernelRegistry& registry) {
  auto resolved = resolve_workload(original, registry);
  if (!resolved.ok()) return resolved.status();
  const WorkloadSpec& spec = resolved.value();
  auto pattern = build_pattern(spec);
  if (!pattern.ok()) return pattern.status();

  std::unique_ptr<pilot::ExecutionBackend> backend;
  if (spec.backend == "sim") {
    const auto catalog = sim::MachineCatalog::with_builtin_profiles();
    auto machine = catalog.find(spec.machine);
    if (!machine.ok()) return machine.status();
    backend = std::make_unique<pilot::SimBackend>(machine.take());
  } else {
    backend = std::make_unique<pilot::LocalBackend>(spec.cores);
  }

  ResourceOptions options;
  options.cores = spec.cores;
  options.runtime = spec.runtime;
  options.scheduler_policy = spec.scheduler;
  ResourceHandle handle(*backend, registry, options);
  ENTK_RETURN_IF_ERROR(handle.allocate());
  auto report = handle.run(*pattern.value());
  if (report.ok()) (void)handle.deallocate();
  return report;
}

Result<std::vector<RunReport>> run_workloads_concurrent(
    const std::vector<ConcurrentWorkload>& workloads,
    const kernels::KernelRegistry& registry) {
  if (workloads.empty()) {
    return make_error(Errc::kInvalidArgument,
                      "concurrent run needs at least one workload");
  }
  std::vector<WorkloadSpec> specs;
  specs.reserve(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const ConcurrentWorkload& workload = workloads[i];
    if (workload.session.empty()) {
      return make_error(Errc::kInvalidArgument,
                        "concurrent workload " + std::to_string(i) +
                            " needs a session name");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (workloads[j].session == workload.session) {
        return make_error(Errc::kInvalidArgument,
                          "duplicate session name \"" + workload.session +
                              "\" in concurrent run");
      }
    }
    auto resolved = resolve_workload(workload.spec, registry);
    if (!resolved.ok()) return resolved.status();
    specs.push_back(resolved.take());
    // The sessions share one backend, so the workloads must agree on
    // what that backend is.
    if (specs[i].backend != specs[0].backend) {
      return make_error(Errc::kInvalidArgument,
                        "concurrent workloads disagree on the backend (" +
                            specs[0].backend + " vs " + specs[i].backend +
                            ")");
    }
    if (specs[0].backend == "sim" && specs[i].machine != specs[0].machine) {
      return make_error(Errc::kInvalidArgument,
                        "concurrent workloads disagree on the machine (" +
                            specs[0].machine + " vs " + specs[i].machine +
                            ")");
    }
  }

  std::vector<std::unique_ptr<ExecutionPattern>> patterns;
  patterns.reserve(specs.size());
  for (const WorkloadSpec& spec : specs) {
    auto pattern = build_pattern(spec);
    if (!pattern.ok()) return pattern.status();
    patterns.push_back(pattern.take());
  }

  std::unique_ptr<pilot::ExecutionBackend> backend;
  if (specs[0].backend == "sim") {
    const auto catalog = sim::MachineCatalog::with_builtin_profiles();
    auto machine = catalog.find(specs[0].machine);
    if (!machine.ok()) return machine.status();
    backend = std::make_unique<pilot::SimBackend>(machine.take());
  } else {
    Count total_cores = 0;
    for (const WorkloadSpec& spec : specs) total_cores += spec.cores;
    backend = std::make_unique<pilot::LocalBackend>(total_cores);
  }

  Runtime runtime(*backend, registry);
  std::vector<Runtime::SessionRun> runs;
  runs.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SessionOptions session_options;
    session_options.name = workloads[i].session;
    session_options.resources.cores = specs[i].cores;
    session_options.resources.runtime = specs[i].runtime;
    session_options.resources.scheduler_policy = specs[i].scheduler;
    auto session = runtime.create_session(std::move(session_options));
    if (!session.ok()) return session.status();
    ENTK_RETURN_IF_ERROR(session.value()->allocate());
    runs.push_back({session.take(), patterns[i].get()});
  }
  auto reports = runtime.run_concurrent(runs);
  if (!reports.ok()) return reports.status();
  for (const Runtime::SessionRun& run : runs) {
    (void)run.session->deallocate();
  }
  return reports;
}

}  // namespace entk::core
