// Declarative workload files: describe an ensemble application in a
// small INI-style text format and run it with one call (or via the
// `entk-run` command-line tool). This is the "no-code" front door a
// production toolkit ships for users whose workload fits a stock
// pattern.
//
// Format:
//
//   # resource section (top, before any [section])
//   backend   = sim            # sim | local
//   machine   = xsede.comet    # sim backend only
//   cores     = 96
//   runtime   = 36000
//   scheduler = backfill       # fifo | backfill | largest_first
//   pattern   = sal            # bag | eop | sal | ee
//   iterations  = 2            # sal: loop count; ee: cycles
//   simulations = 16           # sal width; ee replicas; bag/eop width
//   analyses    = 1            # sal analysis width
//   stages      = 2            # eop stage count
//   failure_policy = fail_fast # fail_fast | continue | quorum
//   quorum    = 0.75           # quorum policy: min fraction done
//
//   # one section per stage; values support {instance}, {iteration},
//   # {stage} and {instances} placeholders
//   [simulation]
//   kernel      = md.simulate
//   steps       = 300
//   out         = traj_{instance}.dat
//   # per-stage fault tolerance (all optional)
//   max_retries = 3            # resubmissions after a failure
//   retry_backoff = 2.0        # base delay before a retry (s)
//   retry_backoff_multiplier = 2.0
//   retry_backoff_max = 60.0   # delay cap (0 = uncapped)
//   retry_jitter = 0.1         # +/- fraction of the delay, [0, 1)
//   execution_timeout = 600.0  # kill an attempt running longer (s)
//   inject_failure = true      # test hook: first attempt fails
//   inject_hang = true         # test hook: first attempt hangs
//
//   [analysis]
//   kernel = md.coco
//   n_sims = 16
//
// Section names by pattern: bag -> [task]; eop -> [stage1]..[stageN];
// sal -> [simulation], [analysis]; ee -> [simulation], [exchange].
#pragma once

#include <map>
#include <string>

#include "common/config.hpp"
#include "core/pattern.hpp"
#include "core/resource_handle.hpp"
#include "core/strategy.hpp"
#include "kernels/registry.hpp"

namespace entk::core {

struct WorkloadSpec {
  // Resource block.
  std::string backend = "sim";
  std::string machine = "localhost";
  Count cores = 4;
  /// `cores = auto` / `machine = auto`: let the execution strategy
  /// size the pilot / pick the machine (sim backend only).
  bool auto_cores = false;
  bool auto_machine = false;
  Duration runtime = 36000.0;
  std::string scheduler = "backfill";

  // Pattern block.
  std::string pattern;           ///< bag | eop | sal | ee
  Count simulations = 0;         ///< Width (bag tasks, eop pipelines,
                                 ///< sal simulations, ee replicas).
  Count analyses = 1;            ///< sal only.
  Count iterations = 1;          ///< sal iterations / ee cycles.
  Count stages = 0;              ///< eop only.

  /// Pattern-level failure semantics (failure_policy / quorum keys).
  FailureRules failure;

  /// Stage sections: name -> kernel args (incl. the "kernel" key).
  std::map<std::string, Config> sections;

  Status validate() const;
};

/// Parses the text of a workload file.
Result<WorkloadSpec> parse_workload(const std::string& text);

/// Renders a spec back into workload-file text such that
/// parse_workload(serialize_workload(spec)) reproduces it.
std::string serialize_workload(const WorkloadSpec& spec);

/// Reads and parses a workload file from disk.
Result<WorkloadSpec> load_workload(const std::string& path);

/// Replaces {instance}, {iteration}, {stage} and {instances} in a
/// value with the context's fields.
std::string substitute_placeholders(const std::string& value,
                                    const StageContext& context);

/// Builds the TaskSpec for a stage section under a context
/// (placeholder substitution applied to every argument).
Result<TaskSpec> task_from_section(const Config& section,
                                   const StageContext& context);

/// Builds the pattern described by `spec`. The returned pattern holds
/// copies of the relevant sections.
Result<std::unique_ptr<ExecutionPattern>> build_pattern(
    const WorkloadSpec& spec);

/// Resolves `auto` cores/machine into concrete values using the
/// execution strategy over the built-in machine catalog; a spec
/// without auto flags is returned unchanged.
Result<WorkloadSpec> resolve_workload(const WorkloadSpec& spec,
                                      const kernels::KernelRegistry&
                                          registry);

/// End-to-end: resolve, construct the backend and resource handle, run
/// the pattern, and return the report. Task failures are reported in
/// RunReport::outcome.
Result<RunReport> run_workload(const WorkloadSpec& spec,
                               const kernels::KernelRegistry& registry);

/// One workload of a concurrent batch: the session name it runs under
/// (unique, non-empty — entk-run uses the file stem) and its spec.
struct ConcurrentWorkload {
  std::string session;
  WorkloadSpec spec;
};

/// End-to-end concurrent execution (entk-run --concurrent): builds ONE
/// backend and Runtime, creates one named session per workload against
/// the shared PilotManager, and drives every pattern together under a
/// single wait (Runtime::run_concurrent). All workloads must agree on
/// the backend — and, for the sim backend, on the machine — because
/// they share it. Reports are in input order; per-workload task
/// failures land in RunReport::outcome.
Result<std::vector<RunReport>> run_workloads_concurrent(
    const std::vector<ConcurrentWorkload>& workloads,
    const kernels::KernelRegistry& registry);

}  // namespace entk::core
