#include "kernels/kernel.hpp"

#include "common/strings.hpp"

namespace entk::kernels {

KernelBase::KernelBase(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description)) {
  ENTK_CHECK(!name_.empty(), "kernel needs a name");
}

void KernelBase::add_machine_entry(const std::string& machine,
                                   KernelMachineEntry entry) {
  machines_[machine] = std::move(entry);
}

Result<KernelMachineEntry> KernelBase::machine_entry(
    const std::string& machine) const {
  auto it = machines_.find(machine);
  if (it == machines_.end()) it = machines_.find("*");
  if (it == machines_.end()) {
    return make_error(Errc::kNotFound,
                      "kernel '" + name_ +
                          "' has no launch entry for machine '" + machine +
                          "' and no fallback");
  }
  return it->second;
}

void KernelBase::apply_staging_args(const Config& args, BoundKernel& bound) {
  const double io_mb = args.get_double_or("io_mb", 1.0);
  auto parse_list = [&](const std::string& key) {
    std::vector<std::string> files;
    if (!args.contains(key)) return files;
    for (auto& file : split(args.get_string_or(key, ""), ',')) {
      const std::string trimmed = trim(file);
      if (!trimmed.empty()) files.push_back(trimmed);
    }
    return files;
  };
  for (const auto& file : parse_list("inputs")) {
    pilot::StagingDirective directive;
    directive.source = file;
    directive.size_mb = io_mb;
    bound.input_staging.push_back(std::move(directive));
  }
  for (const auto& file : parse_list("outputs")) {
    pilot::StagingDirective directive;
    directive.source = file;
    directive.size_mb = io_mb;
    bound.output_staging.push_back(std::move(directive));
  }
}

}  // namespace entk::kernels
