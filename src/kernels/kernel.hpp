// Kernel plugins: the paper's abstraction of one computational task.
//
// A kernel plugin names a science tool ("md.simulate", "misc.ccount"),
// validates its arguments, and *binds* to a machine: it resolves the
// machine-specific executable and environment, estimates the runtime
// on that machine (cost model, used by the simulated backend) and
// produces the in-process payload that really performs the work (used
// by the local backend). Hiding these per-resource peculiarities is
// exactly what the paper's kernel plugins do.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/status.hpp"
#include "pilot/descriptions.hpp"
#include "sim/machine.hpp"

namespace entk::kernels {

/// A kernel resolved against a machine: everything the execution
/// plugin needs to create a compute unit.
struct BoundKernel {
  std::string kernel_name;
  std::string executable;
  std::vector<std::string> arguments;
  std::map<std::string, std::string> environment;
  std::vector<std::string> pre_exec;  ///< e.g. module loads.
  Count cores = 1;
  bool uses_mpi = false;
  Duration estimated_duration = 0.0;  ///< Cost model on this machine.
  pilot::UnitPayload payload;         ///< Real work (local backend).
  std::vector<pilot::StagingDirective> input_staging;
  std::vector<pilot::StagingDirective> output_staging;
};

/// Machine-specific launch details for one kernel.
struct KernelMachineEntry {
  std::string executable;
  std::vector<std::string> pre_exec;
};

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Checks `args` without binding (cheap, user-facing validation).
  virtual Status validate(const Config& args) const = 0;

  /// Resolves the kernel on `machine` with the given arguments.
  virtual Result<BoundKernel> bind(const Config& args,
                                   const sim::MachineProfile& machine)
      const = 0;
};

using KernelPtr = std::shared_ptr<const Kernel>;

/// Shared behaviour: machine table lookup and staging-from-args.
class KernelBase : public Kernel {
 public:
  KernelBase(std::string name, std::string description);

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }

 protected:
  /// Registers launch details for a machine name ("*" = fallback).
  void add_machine_entry(const std::string& machine,
                         KernelMachineEntry entry);

  /// Fallback-aware lookup; errors if neither the machine nor "*" is
  /// configured.
  Result<KernelMachineEntry> machine_entry(const std::string& machine) const;

  /// Builds staging directives from the conventional args:
  ///   inputs  = "a.txt,b.txt"   (shared space -> sandbox)
  ///   outputs = "c.txt"         (sandbox -> shared space)
  ///   io_mb   = per-file transfer size for the simulated backend
  static void apply_staging_args(const Config& args, BoundKernel& bound);

 private:
  std::string name_;
  std::string description_;
  std::map<std::string, KernelMachineEntry> machines_;
};

}  // namespace entk::kernels
