// Molecular-dynamics kernel plugins: the Amber/Gromacs, temperature-
// exchange, CoCo and LSDMap stand-ins used by the paper's experiments.
//
// Each kernel has (a) a machine-calibrated cost model driving the
// simulated backend — tuned so one 6 ps cycle of the 2881-particle
// system on one reference core costs ~O(100 s), matching the paper's
// scale — and (b) a real payload that integrates/analyses the toy MD
// system on the local backend.
//
// Kernel outputs land in the unit's private sandbox and are rewritten
// from scratch on retry, so a torn file is repaired by the fault
// tier, not by crash-consistent writes.
// entk-lint: allow-file(raw-file-write)
#include <fstream>
#include <sstream>

#include "analysis/diffusion_map.hpp"
#include "analysis/pca.hpp"
#include "common/strings.hpp"
#include "md/ensemble_analysis.hpp"
#include "kernels/registry.hpp"
#include "md/builder.hpp"
#include "md/integrator.hpp"
#include "md/remd.hpp"
#include "md/trajectory.hpp"

namespace entk::kernels {
namespace {

namespace fs = std::filesystem;

/// Per-(engine, step, particle) cost on the reference machine, seconds.
constexpr double kAmberStepCost = 1.2e-5;
constexpr double kGromacsStepCost = 0.9e-5;

/// md.simulate — one MD simulation task. Arguments:
///   engine        "amber" | "gromacs"          (default amber)
///   steps         integration steps            (default 3000 ≈ 6 ps)
///   dt            time step, reduced units     (default 0.005)
///   temperature   thermostat kT                (default 1.0)
///   n_particles   system size                  (default 2881)
///   system        "auto" | "dipeptide" | "fluid" (default auto:
///                 dipeptide when n_particles >= 500)
///   sample_every  trajectory sampling stride   (default steps/10)
///   seed          RNG seed                     (default 12345)
///   out           trajectory file              (default traj.dat)
///   stage_as      shared-space name for out    (default = out)
///   energy_out    optional final-energy file, staged to shared space
///   start_from    optional shared trajectory; last frame = start coords
///   epsilon       force-field energy scale (lambda for Hamiltonian
///                 exchange; default 1.0)
///   cores         cores (MPI ranks)            (default 1)
class MdSimulateKernel final : public KernelBase {
 public:
  MdSimulateKernel()
      : KernelBase("md.simulate",
                   "molecular dynamics (Amber/Gromacs-like engine)") {
    // The per-machine entries document the paper's real configuration;
    // binding resolves them so workloads stay machine-agnostic.
    add_machine_entry("xsede.comet",
                      {"/opt/amber/bin/pmemd.MPI",
                       {"module load amber/14", "module load gromacs/5.0"}});
    add_machine_entry("xsede.stampede",
                      {"/opt/apps/amber/14/bin/pmemd.MPI",
                       {"module load amber/14"}});
    add_machine_entry("lsu.supermic",
                      {"/usr/local/packages/amber/14/bin/pmemd.MPI",
                       {"module load amber/14"}});
    add_machine_entry("*", {"pmemd", {}});
  }

  Status validate(const Config& args) const override {
    const std::string engine = args.get_string_or("engine", "amber");
    if (engine != "amber" && engine != "gromacs") {
      return make_error(Errc::kInvalidArgument,
                        "md.simulate: engine must be amber or gromacs");
    }
    if (args.get_int_or("steps", 3000) <= 0) {
      return make_error(Errc::kInvalidArgument,
                        "md.simulate: steps must be > 0");
    }
    if (args.get_int_or("n_particles", 2881) < 2) {
      return make_error(Errc::kInvalidArgument,
                        "md.simulate: n_particles must be >= 2");
    }
    if (args.get_double_or("temperature", 1.0) <= 0.0) {
      return make_error(Errc::kInvalidArgument,
                        "md.simulate: temperature must be > 0");
    }
    if (args.get_int_or("cores", 1) < 1) {
      return make_error(Errc::kInvalidArgument,
                        "md.simulate: cores must be >= 1");
    }
    if (args.get_double_or("epsilon", 1.0) <= 0.0) {
      return make_error(Errc::kInvalidArgument,
                        "md.simulate: epsilon must be > 0");
    }
    const std::string system = args.get_string_or("system", "auto");
    if (system != "auto" && system != "dipeptide" && system != "fluid") {
      return make_error(Errc::kInvalidArgument,
                        "md.simulate: system must be auto, dipeptide or "
                        "fluid");
    }
    if (system == "dipeptide" && args.get_int_or("n_particles", 2881) < 25) {
      return make_error(Errc::kInvalidArgument,
                        "md.simulate: dipeptide needs n_particles >= 25");
    }
    return Status::ok();
  }

  Result<BoundKernel> bind(const Config& args,
                           const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();

    const std::string engine = args.get_string_or("engine", "amber");
    const auto steps = args.get_int_or("steps", 3000);
    const double dt = args.get_double_or("dt", 0.005);
    const double temperature = args.get_double_or("temperature", 1.0);
    const auto n_particles = args.get_int_or("n_particles", 2881);
    const auto sample_every =
        std::max<std::int64_t>(1, args.get_int_or("sample_every",
                                                  std::max<std::int64_t>(
                                                      1, steps / 10)));
    const auto seed =
        static_cast<std::uint64_t>(args.get_int_or("seed", 12345));
    const std::string out = args.get_string_or("out", "traj.dat");
    const std::string stage_as = args.get_string_or("stage_as", out);
    const std::string energy_out = args.get_string_or("energy_out", "");
    const std::string start_from = args.get_string_or("start_from", "");
    const std::string system_kind = args.get_string_or("system", "auto");
    const double epsilon = args.get_double_or("epsilon", 1.0);
    const Count cores = args.get_int_or("cores", 1);

    BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.pre_exec = entry.value().pre_exec;
    bound.arguments = {"-steps", std::to_string(steps), "-T",
                       std::to_string(temperature), "-o", out};
    bound.cores = cores;
    bound.uses_mpi = cores > 1;
    const double step_cost =
        engine == "gromacs" ? kGromacsStepCost : kAmberStepCost;
    // Cost depends on total work / cores (the paper's Fig 9 shows the
    // linear MPI speedup this models).
    bound.estimated_duration =
        static_cast<double>(steps) * static_cast<double>(n_particles) *
        step_cost /
        (machine.performance_factor * static_cast<double>(cores));

    bound.payload = [=](const pilot::UnitRuntimeContext& context) -> Status {
      // Build the physical system: the paper's solvated-dipeptide
      // composition when large, a homogeneous fluid when small.
      md::System system = [&] {
        const bool dipeptide =
            system_kind == "dipeptide" ||
            (system_kind == "auto" && n_particles >= 500);
        if (dipeptide) {
          const std::size_t waters =
              (static_cast<std::size_t>(n_particles) - 22) / 3;
          return md::build_solvated_dipeptide(waters).system;
        }
        return md::build_fluid(static_cast<std::size_t>(n_particles));
      }();

      if (!start_from.empty()) {
        auto previous =
            md::Trajectory::load((context.shared / start_from).string());
        if (!previous.ok()) return previous.status();
        if (!previous.value().empty()) {
          const auto& last = previous.value().frames().back();
          if (last.positions.size() != system.size()) {
            return make_error(Errc::kInvalidArgument,
                              "md.simulate: restart frame has " +
                                  std::to_string(last.positions.size()) +
                                  " particles, system has " +
                                  std::to_string(system.size()));
          }
          system.positions = last.positions;
        }
      }

      Xoshiro256 rng(seed);
      system.thermalize_velocities(temperature, rng);
      md::ForceFieldParams params;
      params.epsilon = epsilon;
      const md::ForceField forcefield(params);
      forcefield.compute(system);
      const md::LangevinIntegrator integrator(dt, 1.0, temperature);

      md::Trajectory trajectory;
      double potential = 0.0;
      for (std::int64_t step = 0; step < steps; ++step) {
        potential = integrator.step(system, forcefield, rng);
        if ((step + 1) % sample_every == 0 || step + 1 == steps) {
          md::Frame frame;
          frame.time = static_cast<double>(step + 1) * dt;
          frame.potential_energy = potential;
          frame.temperature = system.temperature();
          frame.positions = system.positions;
          trajectory.add_frame(std::move(frame));
        }
      }
      ENTK_RETURN_IF_ERROR(
          trajectory.save((context.sandbox / out).string()));
      if (!energy_out.empty()) {
        std::ofstream energy_file(context.sandbox / energy_out);
        if (!energy_file) {
          return make_error(Errc::kIoError,
                            "md.simulate: cannot open " + energy_out);
        }
        energy_file.precision(12);
        energy_file << potential << ' ' << system.temperature() << '\n';
      }
      return Status::ok();
    };

    const double traj_mb = args.get_double_or("io_mb", 2.0);
    if (!start_from.empty()) {
      pilot::StagingDirective stage_in;
      stage_in.source = start_from;
      stage_in.size_mb = traj_mb;
      bound.input_staging.push_back(std::move(stage_in));
    }
    pilot::StagingDirective stage_out;
    stage_out.source = out;
    stage_out.target = stage_as;
    stage_out.size_mb = traj_mb;
    bound.output_staging.push_back(std::move(stage_out));
    if (!energy_out.empty()) {
      pilot::StagingDirective stage_energy;
      stage_energy.source = energy_out;
      stage_energy.size_mb = 0.0001;
      bound.output_staging.push_back(std::move(stage_energy));
    }
    return bound;
  }
};

/// md.exchange — REMD temperature-exchange stage.
///
/// Global-sweep mode (default): reads per-replica energy files from
/// the shared space, performs one Metropolis sweep over neighbour
/// pairs and writes the new rung assignment. Arguments:
///   n_replicas      number of replicas (required)
///   t_min, t_max    temperature ladder bounds (default 0.8, 2.0)
///   energy_prefix   shared energy files "<prefix><i>.energy"
///   sweep           sweep parity (even/odd neighbour pairs)
///   rungs           optional comma list: current rung of replica i
///                   (identity if omitted)
///   seed            RNG seed
///   out             result file (default exchange_result.txt)
/// Output: "attempted N", "accepted M", then "<replica> <rung>
/// <temperature>" per replica.
///
/// Pairwise mode (asynchronous REMD): set pair_a/pair_b (replica ids)
/// and t_a/t_b (their current temperatures); reads just those two
/// energy files and decides one swap. Output: "attempted 1",
/// "accepted 0|1".
///
/// Hamiltonian pairwise mode: set pair_a/pair_b, eps_a/eps_b (the two
/// replicas' potential scales), temperature (common kT), traj_a/traj_b
/// (shared trajectory files whose last frames are the current
/// configurations) and the system/n_particles they belong to. The
/// kernel rebuilds the system, evaluates the four cross energies
/// U_a(x_a), U_a(x_b), U_b(x_a), U_b(x_b) and applies the
/// Hamiltonian-exchange Metropolis criterion. Output as pairwise.
class MdExchangeKernel final : public KernelBase {
 public:
  MdExchangeKernel()
      : KernelBase("md.exchange", "REMD temperature exchange stage") {
    add_machine_entry("*", {"remd-exchange", {}});
  }

  Status validate(const Config& args) const override {
    if (args.contains("eps_a")) {
      for (const char* key : {"pair_a", "pair_b", "eps_b", "temperature",
                              "traj_a", "traj_b"}) {
        if (!args.contains(key)) {
          return make_error(
              Errc::kInvalidArgument,
              std::string("md.exchange: hamiltonian mode needs '") + key +
                  "'");
        }
      }
      if (args.get_double("eps_a").value() <= 0.0 ||
          args.get_double("eps_b").value() <= 0.0 ||
          args.get_double("temperature").value() <= 0.0) {
        return make_error(Errc::kInvalidArgument,
                          "md.exchange: epsilons and temperature must be "
                          "positive");
      }
      return Status::ok();
    }
    if (args.contains("pair_a")) {
      for (const char* key : {"pair_b", "t_a", "t_b"}) {
        if (!args.contains(key)) {
          return make_error(Errc::kInvalidArgument,
                            std::string("md.exchange: pairwise mode needs "
                                        "'") +
                                key + "'");
        }
      }
      if (args.get_double("t_a").value() <= 0.0 ||
          args.get_double("t_b").value() <= 0.0) {
        return make_error(Errc::kInvalidArgument,
                          "md.exchange: temperatures must be positive");
      }
      return Status::ok();
    }
    if (!args.contains("n_replicas")) {
      return make_error(Errc::kInvalidArgument,
                        "md.exchange: 'n_replicas' is required");
    }
    if (args.get_int("n_replicas").value() < 2) {
      return make_error(Errc::kInvalidArgument,
                        "md.exchange: need at least 2 replicas");
    }
    return Status::ok();
  }

  Result<BoundKernel> bind(const Config& args,
                           const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();

    const auto seed =
        static_cast<std::uint64_t>(args.get_int_or("seed", 777));
    const std::string prefix =
        args.get_string_or("energy_prefix", "replica_");
    const std::string out =
        args.get_string_or("out", "exchange_result.txt");

    BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;

    auto read_energy = [prefix](const pilot::UnitRuntimeContext& context,
                                std::int64_t replica,
                                double* energy) -> Status {
      const fs::path path =
          context.shared /
          (prefix + std::to_string(replica) + ".energy");
      std::ifstream in(path);
      if (!(in >> *energy)) {
        return make_error(Errc::kIoError,
                          "md.exchange: cannot read " + path.string());
      }
      return Status::ok();
    };

    if (args.contains("eps_a")) {
      // ---- Hamiltonian pairwise mode ----
      const auto pair_a = args.get_int("pair_a").value();
      const auto pair_b = args.get_int("pair_b").value();
      const double eps_a = args.get_double("eps_a").value();
      const double eps_b = args.get_double("eps_b").value();
      const double temperature = args.get_double("temperature").value();
      const std::string traj_a = args.get_string("traj_a").value();
      const std::string traj_b = args.get_string("traj_b").value();
      const std::string system_kind =
          args.get_string_or("system", "fluid");
      const auto n_particles = args.get_int_or("n_particles", 32);
      bound.arguments = {"--hamiltonian-pair", std::to_string(pair_a),
                         std::to_string(pair_b)};
      // Four potential evaluations of an N-particle system.
      bound.estimated_duration =
          (0.3 + 4.0e-6 * static_cast<double>(n_particles)) /
          machine.performance_factor;
      bound.payload = [=](const pilot::UnitRuntimeContext& context)
          -> Status {
        md::System system = [&] {
          if (system_kind == "dipeptide") {
            const std::size_t waters =
                (static_cast<std::size_t>(n_particles) - 22) / 3;
            return md::build_solvated_dipeptide(waters).system;
          }
          return md::build_fluid(static_cast<std::size_t>(n_particles));
        }();
        auto last_frame =
            [&](const std::string& name,
                std::vector<md::Vec3>* positions) -> Status {
          auto trajectory =
              md::Trajectory::load((context.shared / name).string());
          if (!trajectory.ok()) return trajectory.status();
          if (trajectory.value().empty() ||
              trajectory.value().frames().back().positions.size() !=
                  system.size()) {
            return make_error(Errc::kInvalidArgument,
                              "md.exchange: trajectory " + name +
                                  " does not match the system");
          }
          *positions = trajectory.value().frames().back().positions;
          return Status::ok();
        };
        std::vector<md::Vec3> x_a;
        std::vector<md::Vec3> x_b;
        ENTK_RETURN_IF_ERROR(last_frame(traj_a, &x_a));
        ENTK_RETURN_IF_ERROR(last_frame(traj_b, &x_b));

        md::ForceFieldParams params_a;
        params_a.epsilon = eps_a;
        md::ForceFieldParams params_b;
        params_b.epsilon = eps_b;
        const md::ForceField hamiltonian_a(params_a);
        const md::ForceField hamiltonian_b(params_b);
        auto energy_of = [&](const md::ForceField& hamiltonian,
                             const std::vector<md::Vec3>& x) {
          system.positions = x;
          return hamiltonian.energy(system);
        };
        const double u_aa = energy_of(hamiltonian_a, x_a);
        const double u_ab = energy_of(hamiltonian_a, x_b);
        const double u_ba = energy_of(hamiltonian_b, x_a);
        const double u_bb = energy_of(hamiltonian_b, x_b);
        // Metropolis for swapping configurations between Hamiltonians
        // at a common temperature.
        const double delta =
            ((u_aa + u_bb) - (u_ab + u_ba)) / temperature;
        Xoshiro256 rng(seed + static_cast<std::uint64_t>(pair_a) * 131 +
                       static_cast<std::uint64_t>(pair_b));
        const bool accept =
            delta >= 0.0 || rng.uniform() < std::exp(delta);
        std::ofstream result(context.sandbox / out);
        if (!result) {
          return make_error(Errc::kIoError,
                            "md.exchange: cannot open " + out);
        }
        result << "attempted 1\naccepted " << (accept ? 1 : 0) << "\n";
        result << "u_aa " << u_aa << "\nu_ab " << u_ab << "\nu_ba "
               << u_ba << "\nu_bb " << u_bb << "\n";
        return Status::ok();
      };
    } else if (args.contains("pair_a")) {
      // ---- pairwise (asynchronous) mode ----
      const auto pair_a = args.get_int("pair_a").value();
      const auto pair_b = args.get_int("pair_b").value();
      const double t_a = args.get_double("t_a").value();
      const double t_b = args.get_double("t_b").value();
      bound.arguments = {"--pair", std::to_string(pair_a),
                         std::to_string(pair_b)};
      bound.estimated_duration = 0.5 / machine.performance_factor;
      bound.payload = [=](const pilot::UnitRuntimeContext& context)
          -> Status {
        double energy_a = 0.0;
        double energy_b = 0.0;
        ENTK_RETURN_IF_ERROR(read_energy(context, pair_a, &energy_a));
        ENTK_RETURN_IF_ERROR(read_energy(context, pair_b, &energy_b));
        const double delta =
            (1.0 / t_a - 1.0 / t_b) * (energy_a - energy_b);
        Xoshiro256 rng(seed + static_cast<std::uint64_t>(pair_a) * 131 +
                       static_cast<std::uint64_t>(pair_b));
        const bool accept =
            delta >= 0.0 || rng.uniform() < std::exp(delta);
        std::ofstream result(context.sandbox / out);
        if (!result) {
          return make_error(Errc::kIoError,
                            "md.exchange: cannot open " + out);
        }
        result << "attempted 1\naccepted " << (accept ? 1 : 0) << "\n";
        return Status::ok();
      };
    } else {
      // ---- global-sweep (synchronous) mode ----
      const auto n_replicas = args.get_int("n_replicas").value();
      const double t_min = args.get_double_or("t_min", 0.8);
      const double t_max = args.get_double_or("t_max", 2.0);
      const auto sweep = args.get_int_or("sweep", 0);
      const std::string rungs_csv = args.get_string_or("rungs", "");
      bound.arguments = {"-n", std::to_string(n_replicas)};
      // Serial pairwise exchange: cost grows with the number of
      // replicas (the paper's Fig 6 behaviour).
      bound.estimated_duration =
          (0.5 + 0.01 * static_cast<double>(n_replicas)) /
          machine.performance_factor;

      bound.payload = [=](const pilot::UnitRuntimeContext& context)
          -> Status {
        const auto ladder = md::geometric_ladder(
            static_cast<std::size_t>(n_replicas), t_min, t_max);
        // Current rung of each replica (identity by default).
        std::vector<std::size_t> rung_of(
            static_cast<std::size_t>(n_replicas));
        for (std::size_t r = 0; r < rung_of.size(); ++r) rung_of[r] = r;
        if (!rungs_csv.empty()) {
          const auto fields = split(rungs_csv, ',');
          if (fields.size() != rung_of.size()) {
            return make_error(Errc::kInvalidArgument,
                              "md.exchange: 'rungs' needs one entry per "
                              "replica");
          }
          for (std::size_t r = 0; r < fields.size(); ++r) {
            rung_of[r] = static_cast<std::size_t>(
                std::strtoull(fields[r].c_str(), nullptr, 10));
            if (rung_of[r] >= rung_of.size()) {
              return make_error(Errc::kInvalidArgument,
                                "md.exchange: rung out of range");
            }
          }
        }
        std::vector<double> energies(
            static_cast<std::size_t>(n_replicas), 0.0);
        std::vector<std::int64_t> replica_at(rung_of.size());
        for (std::int64_t r = 0; r < n_replicas; ++r) {
          ENTK_RETURN_IF_ERROR(
              read_energy(context, r, &energies[static_cast<std::size_t>(
                                          r)]));
          replica_at[rung_of[static_cast<std::size_t>(r)]] = r;
        }
        // One Metropolis sweep over neighbour rung pairs with the
        // requested parity.
        Xoshiro256 rng(seed + static_cast<std::uint64_t>(sweep));
        std::size_t attempted = 0;
        std::size_t accepted = 0;
        for (std::size_t low = static_cast<std::size_t>(sweep % 2);
             low + 1 < ladder.size(); low += 2) {
          const std::int64_t replica_lo = replica_at[low];
          const std::int64_t replica_hi = replica_at[low + 1];
          const double delta =
              (1.0 / ladder[low] - 1.0 / ladder[low + 1]) *
              (energies[static_cast<std::size_t>(replica_lo)] -
               energies[static_cast<std::size_t>(replica_hi)]);
          ++attempted;
          if (delta >= 0.0 || rng.uniform() < std::exp(delta)) {
            ++accepted;
            std::swap(replica_at[low], replica_at[low + 1]);
            std::swap(rung_of[static_cast<std::size_t>(replica_lo)],
                      rung_of[static_cast<std::size_t>(replica_hi)]);
          }
        }
        std::ofstream result(context.sandbox / out);
        if (!result) {
          return make_error(Errc::kIoError,
                            "md.exchange: cannot open " + out);
        }
        result << "attempted " << attempted << "\naccepted " << accepted
               << "\n";
        for (std::int64_t r = 0; r < n_replicas; ++r) {
          const std::size_t rung = rung_of[static_cast<std::size_t>(r)];
          result << r << ' ' << rung << ' ' << ladder[rung] << '\n';
        }
        return Status::ok();
      };
    }

    pilot::StagingDirective stage_out;
    stage_out.source = out;
    stage_out.size_mb = 0.001;
    bound.output_staging.push_back(std::move(stage_out));
    return bound;
  }
};

/// md.coco — serial CoCo (PCA resampling) over all simulation
/// trajectories of an iteration. Arguments:
///   n_sims          trajectories to analyse (required)
///   frames_per_sim  frames expected per trajectory (cost model)
///   traj_prefix     shared files "<prefix><i>.dat" (default traj_)
///   n_new_points    resampling points (default n_sims)
///   out             result file (default coco_points.txt)
class MdCocoKernel final : public KernelBase {
 public:
  MdCocoKernel()
      : KernelBase("md.coco", "CoCo PCA-resampling analysis (serial)") {
    add_machine_entry("*", {"pyCoCo", {}});
  }

  Status validate(const Config& args) const override {
    if (!args.contains("n_sims")) {
      return make_error(Errc::kInvalidArgument,
                        "md.coco: 'n_sims' is required");
    }
    if (args.get_int("n_sims").value() < 1) {
      return make_error(Errc::kInvalidArgument,
                        "md.coco: n_sims must be >= 1");
    }
    return Status::ok();
  }

  Result<BoundKernel> bind(const Config& args,
                           const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();

    const auto n_sims = args.get_int("n_sims").value();
    const auto frames_per_sim = args.get_int_or("frames_per_sim", 10);
    const std::string prefix = args.get_string_or("traj_prefix", "traj_");
    const std::string suffix = args.get_string_or("traj_suffix", ".dat");
    const auto n_new_points = args.get_int_or("n_new_points", n_sims);
    const std::string out = args.get_string_or("out", "coco_points.txt");

    BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.arguments = {"--nsims", std::to_string(n_sims)};
    // Serial analysis over every frame of every simulation: the cost
    // grows with the ensemble size (Figs 7/8).
    bound.estimated_duration =
        (1.0 + 0.02 * static_cast<double>(n_sims) *
                   static_cast<double>(frames_per_sim)) /
        machine.performance_factor;

    bound.payload = [=](const pilot::UnitRuntimeContext& context) -> Status {
      std::vector<md::Trajectory> trajectories;
      trajectories.reserve(static_cast<std::size_t>(n_sims));
      for (std::int64_t s = 0; s < n_sims; ++s) {
        auto loaded = md::Trajectory::load(
            (context.shared / (prefix + std::to_string(s) + suffix))
                .string());
        if (!loaded.ok()) return loaded.status();
        trajectories.push_back(loaded.take());
      }
      std::vector<const md::Trajectory*> views;
      views.reserve(trajectories.size());
      for (const auto& trajectory : trajectories) {
        views.push_back(&trajectory);
      }
      analysis::CocoOptions options;
      options.n_new_points = static_cast<std::size_t>(n_new_points);
      auto coco = md::coco_analysis(views, options);
      if (!coco.ok()) return coco.status();
      std::ofstream result(context.sandbox / out);
      if (!result) {
        return make_error(Errc::kIoError, "md.coco: cannot open " + out);
      }
      result.precision(10);
      result << "occupancy " << coco.value().occupancy << '\n';
      for (const auto& point : coco.value().new_points) {
        for (std::size_t d = 0; d < point.size(); ++d) {
          result << (d ? " " : "") << point[d];
        }
        result << '\n';
      }
      return Status::ok();
    };

    pilot::StagingDirective stage_out;
    stage_out.source = out;
    stage_out.size_mb = 0.01;
    bound.output_staging.push_back(std::move(stage_out));
    return bound;
  }
};

/// md.lsdmap — diffusion-map analysis of one trajectory. Arguments:
///   traj       shared trajectory file (default traj.dat)
///   n_frames   expected frame count (cost model; default 100)
///   n_coords   diffusion coordinates (default 2)
///   out        result file (default lsdmap.txt)
class MdLsdmapKernel final : public KernelBase {
 public:
  MdLsdmapKernel()
      : KernelBase("md.lsdmap", "diffusion-map (LSDMap) analysis") {
    add_machine_entry("*", {"lsdmap", {}});
  }

  Status validate(const Config& args) const override {
    if (args.get_int_or("n_frames", 100) < 2) {
      return make_error(Errc::kInvalidArgument,
                        "md.lsdmap: n_frames must be >= 2");
    }
    return Status::ok();
  }

  Result<BoundKernel> bind(const Config& args,
                           const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();

    const std::string traj = args.get_string_or("traj", "traj.dat");
    const auto n_frames = args.get_int_or("n_frames", 100);
    const auto n_coords = args.get_int_or("n_coords", 2);
    const std::string out = args.get_string_or("out", "lsdmap.txt");

    BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.arguments = {"-f", traj};
    // Pairwise distance matrix dominates: O(frames^2).
    bound.estimated_duration =
        (0.5 + 5e-5 * static_cast<double>(n_frames) *
                   static_cast<double>(n_frames)) /
        machine.performance_factor;

    bound.payload = [=](const pilot::UnitRuntimeContext& context) -> Status {
      auto loaded =
          md::Trajectory::load((context.sandbox / traj).string());
      if (!loaded.ok()) return loaded.status();
      analysis::DiffusionMapOptions options;
      options.n_coordinates = static_cast<std::size_t>(n_coords);
      auto map = md::diffusion_map_frames(loaded.value().frames(),
                                          options);
      if (!map.ok()) return map.status();
      std::ofstream result(context.sandbox / out);
      if (!result) {
        return make_error(Errc::kIoError,
                          "md.lsdmap: cannot open " + out);
      }
      result.precision(10);
      result << "epsilon " << map.value().epsilon_used << "\neigenvalues";
      for (const double value : map.value().eigenvalues) {
        result << ' ' << value;
      }
      result << '\n';
      const auto& coords = map.value().coordinates;
      for (std::size_t i = 0; i < coords.rows(); ++i) {
        for (std::size_t k = 0; k < coords.cols(); ++k) {
          result << (k ? " " : "") << coords(i, k);
        }
        result << '\n';
      }
      return Status::ok();
    };

    pilot::StagingDirective stage_in;
    stage_in.source = traj;
    stage_in.size_mb = args.get_double_or("io_mb", 2.0);
    bound.input_staging.push_back(std::move(stage_in));
    pilot::StagingDirective stage_out;
    stage_out.source = out;
    stage_out.size_mb = 0.01;
    bound.output_staging.push_back(std::move(stage_out));
    return bound;
  }
};

}  // namespace

KernelPtr make_md_simulate_kernel() {
  return std::make_shared<MdSimulateKernel>();
}
KernelPtr make_md_exchange_kernel() {
  return std::make_shared<MdExchangeKernel>();
}
KernelPtr make_md_coco_kernel() { return std::make_shared<MdCocoKernel>(); }
KernelPtr make_md_lsdmap_kernel() {
  return std::make_shared<MdLsdmapKernel>();
}

}  // namespace entk::kernels
