// Utility kernels: the paper's mkfile/ccount validation workloads plus
// sleep and checksum helpers used by tests and ablations.
//
// Kernel outputs land in the unit's private sandbox and are rewritten
// from scratch on retry, so a torn file is repaired by the fault
// tier, not by crash-consistent writes.
// entk-lint: allow-file(raw-file-write)
#include <chrono>
#include <cstdint>
#include <fstream>
#include <thread>

#include "kernels/registry.hpp"

namespace entk::kernels {
namespace {

namespace fs = std::filesystem;

/// misc.mkfile — writes `size_kb` kilobytes into `filename` and stages
/// it to the pilot's shared space (stage one of the paper's
/// character-count application).
class MkfileKernel final : public KernelBase {
 public:
  MkfileKernel()
      : KernelBase("misc.mkfile", "create a file of a given size") {
    add_machine_entry("*", {"/bin/dd", {}});
  }

  Status validate(const Config& args) const override {
    const auto size = args.get_double_or("size_kb", 1.0);
    if (size <= 0.0) {
      return make_error(Errc::kInvalidArgument,
                        "misc.mkfile: size_kb must be > 0");
    }
    return Status::ok();
  }

  Result<BoundKernel> bind(const Config& args,
                           const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();

    const std::string filename =
        args.get_string_or("filename", "output.txt");
    const double size_kb = args.get_double_or("size_kb", 1.0);

    BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.pre_exec = entry.value().pre_exec;
    bound.arguments = {"if=/dev/zero", "of=" + filename, "bs=1024",
                       "count=" + std::to_string(
                                      static_cast<long long>(size_kb))};
    bound.estimated_duration =
        (0.3 + 2e-4 * size_kb) / machine.performance_factor;
    bound.payload = [filename, size_kb](
                        const pilot::UnitRuntimeContext& context) -> Status {
      std::ofstream out(context.sandbox / filename);
      if (!out) {
        return make_error(Errc::kIoError,
                          "misc.mkfile: cannot open " + filename);
      }
      const auto bytes = static_cast<std::size_t>(size_kb * 1024.0);
      std::string chunk(64, 'x');
      chunk.back() = '\n';
      for (std::size_t written = 0; written < bytes;
           written += chunk.size()) {
        out.write(chunk.data(),
                  static_cast<std::streamsize>(
                      std::min(chunk.size(), bytes - written)));
      }
      return out ? Status::ok()
                 : make_error(Errc::kIoError,
                              "misc.mkfile: short write to " + filename);
    };
    pilot::StagingDirective stage_out;
    stage_out.source = filename;
    stage_out.target = args.get_string_or("stage_as", filename);
    stage_out.size_mb = size_kb / 1024.0;
    bound.output_staging.push_back(std::move(stage_out));
    apply_staging_args(args, bound);
    return bound;
  }
};

/// misc.ccount — counts the characters of a staged-in file and writes
/// the count to an output file (stage two of the paper's validation
/// application).
class CcountKernel final : public KernelBase {
 public:
  CcountKernel()
      : KernelBase("misc.ccount", "count characters in a file") {
    add_machine_entry("*", {"/usr/bin/wc", {}});
  }

  Status validate(const Config& args) const override {
    if (!args.contains("input")) {
      return make_error(Errc::kInvalidArgument,
                        "misc.ccount: 'input' argument is required");
    }
    return Status::ok();
  }

  Result<BoundKernel> bind(const Config& args,
                           const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();

    const std::string input = args.get_string(("input")).value();
    const std::string output =
        args.get_string_or("output", input + ".count");
    const double size_mb = args.get_double_or("io_mb", 0.001);

    BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.pre_exec = entry.value().pre_exec;
    bound.arguments = {"-c", input};
    bound.estimated_duration =
        (0.3 + 0.02 * size_mb) / machine.performance_factor;
    bound.payload = [input, output](
                        const pilot::UnitRuntimeContext& context) -> Status {
      std::ifstream in(context.sandbox / input, std::ios::binary);
      if (!in) {
        return make_error(Errc::kIoError,
                          "misc.ccount: cannot open " + input);
      }
      std::size_t count = 0;
      char buffer[4096];
      while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
        count += static_cast<std::size_t>(in.gcount());
        if (in.eof()) break;
      }
      std::ofstream out(context.sandbox / output);
      if (!out) {
        return make_error(Errc::kIoError,
                          "misc.ccount: cannot open " + output);
      }
      out << count << '\n';
      return Status::ok();
    };
    pilot::StagingDirective stage_in;
    stage_in.source = input;
    stage_in.size_mb = size_mb;
    bound.input_staging.push_back(std::move(stage_in));
    pilot::StagingDirective stage_out;
    stage_out.source = output;
    stage_out.size_mb = 0.0001;
    bound.output_staging.push_back(std::move(stage_out));
    apply_staging_args(args, bound);
    return bound;
  }
};

/// misc.chksum — FNV-1a 64-bit checksum of a staged-in file.
class ChksumKernel final : public KernelBase {
 public:
  ChksumKernel() : KernelBase("misc.chksum", "FNV-1a checksum of a file") {
    add_machine_entry("*", {"/usr/bin/cksum", {}});
  }

  Status validate(const Config& args) const override {
    if (!args.contains("input")) {
      return make_error(Errc::kInvalidArgument,
                        "misc.chksum: 'input' argument is required");
    }
    return Status::ok();
  }

  Result<BoundKernel> bind(const Config& args,
                           const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();

    const std::string input = args.get_string(("input")).value();
    const std::string output = args.get_string_or("output", input + ".sum");

    BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.arguments = {input};
    bound.estimated_duration = 0.2 / machine.performance_factor;
    bound.payload = [input, output](
                        const pilot::UnitRuntimeContext& context) -> Status {
      std::ifstream in(context.sandbox / input, std::ios::binary);
      if (!in) {
        return make_error(Errc::kIoError,
                          "misc.chksum: cannot open " + input);
      }
      std::uint64_t hash = 1469598103934665603ULL;
      char byte = 0;
      while (in.get(byte)) {
        hash ^= static_cast<unsigned char>(byte);
        hash *= 1099511628211ULL;
      }
      std::ofstream out(context.sandbox / output);
      if (!out) {
        return make_error(Errc::kIoError,
                          "misc.chksum: cannot open " + output);
      }
      out << hash << '\n';
      return Status::ok();
    };
    pilot::StagingDirective stage_in;
    stage_in.source = input;
    stage_in.size_mb = args.get_double_or("io_mb", 0.001);
    bound.input_staging.push_back(std::move(stage_in));
    pilot::StagingDirective stage_out;
    stage_out.source = output;
    stage_out.size_mb = 0.0001;
    bound.output_staging.push_back(std::move(stage_out));
    return bound;
  }
};

/// misc.sleep — occupies a core for `duration` seconds. On the local
/// backend it really sleeps; on the simulated backend the cost model
/// is the duration itself. Useful as a precisely controllable
/// synthetic workload.
class SleepKernel final : public KernelBase {
 public:
  SleepKernel() : KernelBase("misc.sleep", "hold a core for a duration") {
    add_machine_entry("*", {"/bin/sleep", {}});
  }

  Status validate(const Config& args) const override {
    if (args.get_double_or("duration", 1.0) < 0.0) {
      return make_error(Errc::kInvalidArgument,
                        "misc.sleep: duration must be >= 0");
    }
    return Status::ok();
  }

  Result<BoundKernel> bind(const Config& args,
                           const sim::MachineProfile& machine)
      const override {
    ENTK_RETURN_IF_ERROR(validate(args));
    auto entry = machine_entry(machine.name);
    if (!entry.ok()) return entry.status();
    const double duration = args.get_double_or("duration", 1.0);

    BoundKernel bound;
    bound.kernel_name = name();
    bound.executable = entry.value().executable;
    bound.arguments = {std::to_string(duration)};
    bound.cores = args.get_int_or("cores", 1);
    bound.uses_mpi = bound.cores > 1;
    bound.estimated_duration = duration;  // machine-independent
    bound.payload = [duration](const pilot::UnitRuntimeContext&) -> Status {
      std::this_thread::sleep_for(std::chrono::duration<double>(duration));
      return Status::ok();
    };
    apply_staging_args(args, bound);
    return bound;
  }
};

}  // namespace

KernelPtr make_mkfile_kernel() { return std::make_shared<MkfileKernel>(); }
KernelPtr make_ccount_kernel() { return std::make_shared<CcountKernel>(); }
KernelPtr make_chksum_kernel() { return std::make_shared<ChksumKernel>(); }
KernelPtr make_sleep_kernel() { return std::make_shared<SleepKernel>(); }

}  // namespace entk::kernels
