#include "kernels/registry.hpp"

#include <algorithm>

namespace entk::kernels {

KernelRegistry KernelRegistry::with_builtin_kernels() {
  KernelRegistry registry;
  for (auto& kernel :
       {make_mkfile_kernel(), make_ccount_kernel(), make_chksum_kernel(),
        make_sleep_kernel(), make_md_simulate_kernel(),
        make_md_exchange_kernel(), make_md_coco_kernel(),
        make_md_lsdmap_kernel()}) {
    ENTK_CHECK(registry.register_kernel(kernel).is_ok(),
               "duplicate built-in kernel");
  }
  return registry;
}

Status KernelRegistry::register_kernel(KernelPtr kernel) {
  ENTK_CHECK(kernel != nullptr, "cannot register a null kernel");
  if (contains(kernel->name())) {
    return make_error(Errc::kAlreadyExists,
                      "kernel '" + kernel->name() + "' already registered");
  }
  kernels_.push_back(std::move(kernel));
  return Status::ok();
}

Result<KernelPtr> KernelRegistry::find(const std::string& name) const {
  const auto it = std::find_if(
      kernels_.begin(), kernels_.end(),
      [&](const KernelPtr& kernel) { return kernel->name() == name; });
  if (it == kernels_.end()) {
    return make_error(Errc::kNotFound, "unknown kernel '" + name + "'");
  }
  return *it;
}

bool KernelRegistry::contains(const std::string& name) const {
  return std::any_of(
      kernels_.begin(), kernels_.end(),
      [&](const KernelPtr& kernel) { return kernel->name() == name; });
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const auto& kernel : kernels_) out.push_back(kernel->name());
  return out;
}

}  // namespace entk::kernels
