// Kernel registry: name -> plugin, with the built-in set preloaded.
#pragma once

#include <vector>

#include "kernels/kernel.hpp"

namespace entk::kernels {

class KernelRegistry {
 public:
  /// Registry with all built-in kernels (misc.* and md.*) registered.
  static KernelRegistry with_builtin_kernels();

  /// Empty registry (for tests / custom toolchains).
  KernelRegistry() = default;

  Status register_kernel(KernelPtr kernel);
  Result<KernelPtr> find(const std::string& name) const;
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::vector<KernelPtr> kernels_;
};

// Built-in kernel constructors.
KernelPtr make_mkfile_kernel();   ///< misc.mkfile: write a file of N chars.
KernelPtr make_ccount_kernel();   ///< misc.ccount: count characters.
KernelPtr make_chksum_kernel();   ///< misc.chksum: FNV-1a of a file.
KernelPtr make_sleep_kernel();    ///< misc.sleep: hold a core.
KernelPtr make_md_simulate_kernel();  ///< md.simulate: Amber/Gromacs-like MD.
KernelPtr make_md_exchange_kernel();  ///< md.exchange: REMD T-swap stage.
KernelPtr make_md_coco_kernel();      ///< md.coco: PCA resampling analysis.
KernelPtr make_md_lsdmap_kernel();    ///< md.lsdmap: diffusion-map analysis.

}  // namespace entk::kernels
