#include "md/builder.hpp"

#include <algorithm>
#include <cmath>

#include "md/forcefield.hpp"

namespace entk::md {

void relax(System& system, int max_iterations, double max_step,
           double force_tolerance) {
  const ForceField forcefield;
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    forcefield.compute(system);
    double worst = 0.0;
    for (const auto& f : system.forces) worst = std::max(worst, f.norm());
    if (worst < force_tolerance) return;
    // Scale so the most-stressed particle moves exactly max_step.
    const double scale = max_step / worst;
    for (std::size_t i = 0; i < system.size(); ++i) {
      system.positions[i] += system.forces[i] * scale;
    }
    system.wrap_positions();
  }
}

namespace {
/// Places `count` sites on a cubic lattice inside a box of side `box`,
/// starting at lattice slot `first_slot`; returns positions.
std::vector<Vec3> lattice_positions(std::size_t count, std::size_t first_slot,
                                    double box, std::size_t slots_per_side) {
  std::vector<Vec3> out;
  out.reserve(count);
  const double spacing = box / static_cast<double>(slots_per_side);
  for (std::size_t s = first_slot; s < first_slot + count; ++s) {
    const std::size_t x = s % slots_per_side;
    const std::size_t y = (s / slots_per_side) % slots_per_side;
    const std::size_t z = s / (slots_per_side * slots_per_side);
    out.push_back({(static_cast<double>(x) + 0.5) * spacing,
                   (static_cast<double>(y) + 0.5) * spacing,
                   (static_cast<double>(z) + 0.5) * spacing});
  }
  return out;
}
}  // namespace

BuiltSystem build_solvated_dipeptide(std::size_t n_waters, double density) {
  ENTK_CHECK(density > 0.0, "density must be positive");
  constexpr std::size_t kSoluteBeads = 22;
  const std::size_t n = kSoluteBeads + 3 * n_waters;
  const double box = std::cbrt(static_cast<double>(n) / density);

  BuiltSystem built{System(n, box), kSoluteBeads};
  System& sys = built.system;

  // Solute: a backbone chain with short side branches, loosely shaped
  // like the dipeptide's heavy-atom graph. Bonds are stiff harmonics.
  const double bond_k = 200.0;
  const double bond_r0 = 0.9;
  // Backbone of 14 beads; branches hang off beads 2, 5, 8 and 11.
  std::size_t next_bead = 0;
  std::vector<std::size_t> backbone;
  for (std::size_t b = 0; b < 14; ++b) backbone.push_back(next_bead++);
  for (std::size_t b = 0; b + 1 < backbone.size(); ++b) {
    sys.bonds.push_back({backbone[b], backbone[b + 1], bond_k, bond_r0});
  }
  const std::size_t branch_roots[4] = {2, 5, 8, 11};
  for (const std::size_t root : branch_roots) {
    const std::size_t a = next_bead++;
    const std::size_t b = next_bead++;
    sys.bonds.push_back({backbone[root], a, bond_k, bond_r0});
    sys.bonds.push_back({a, b, bond_k, bond_r0});
    // Branch geometry: angle at the attachment point.
    sys.angles.push_back({backbone[root - 1], backbone[root], a, 15.0,
                          1.911});
  }
  ENTK_CHECK(next_bead == kSoluteBeads, "solute bead count mismatch");

  // Backbone angles keep the chain extended; backbone torsions give it
  // a rough multi-minimum conformational landscape (the phi/psi
  // analogue the CoCo and LSDMap analyses operate on).
  for (std::size_t b = 0; b + 2 < backbone.size(); ++b) {
    sys.angles.push_back(
        {backbone[b], backbone[b + 1], backbone[b + 2], 15.0, 1.911});
  }
  for (std::size_t b = 0; b + 3 < backbone.size(); ++b) {
    sys.dihedrals.push_back({backbone[b], backbone[b + 1],
                             backbone[b + 2], backbone[b + 3], 1.5, 3,
                             0.0});
  }

  // Position the solute as a compact coil near the box centre.
  const double centre = box / 2.0;
  for (std::size_t i = 0; i < kSoluteBeads; ++i) {
    const double angle = 0.6 * static_cast<double>(i);
    sys.positions[i] = {centre + 1.2 * std::cos(angle),
                        centre + 1.2 * std::sin(angle),
                        centre + 0.45 * static_cast<double>(i) -
                            0.225 * kSoluteBeads};
  }

  // Waters: 3 beads (O at lattice site, two H offset), bent geometry.
  const std::size_t slots_needed = n_waters + 8;  // skip centre region
  std::size_t slots_per_side = 1;
  while (slots_per_side * slots_per_side * slots_per_side < slots_needed) {
    ++slots_per_side;
  }
  const auto sites =
      lattice_positions(n_waters, 0, box, slots_per_side);
  const double oh = 0.35;
  for (std::size_t w = 0; w < n_waters; ++w) {
    const std::size_t o = kSoluteBeads + 3 * w;
    const std::size_t h1 = o + 1;
    const std::size_t h2 = o + 2;
    sys.positions[o] = sites[w];
    sys.positions[h1] = sites[w] + Vec3{oh, oh * 0.3, 0.0};
    sys.positions[h2] = sites[w] + Vec3{-oh * 0.3, oh, 0.0};
    sys.masses[h1] = 0.3;
    sys.masses[h2] = 0.3;
    sys.bonds.push_back({o, h1, 300.0, oh});
    sys.bonds.push_back({o, h2, 300.0, oh});
    sys.bonds.push_back({h1, h2, 150.0, oh * 1.55});  // bend surrogate
  }
  sys.wrap_positions();
  // The lattice ignores the solute; push overlapping waters off it
  // before anyone integrates this system.
  relax(sys);
  return built;
}

System build_fluid(std::size_t n, double density) {
  ENTK_CHECK(density > 0.0, "density must be positive");
  const double box = std::cbrt(static_cast<double>(n) / density);
  System sys(n, box);
  std::size_t slots_per_side = 1;
  while (slots_per_side * slots_per_side * slots_per_side < n) {
    ++slots_per_side;
  }
  const auto sites = lattice_positions(n, 0, box, slots_per_side);
  for (std::size_t i = 0; i < n; ++i) sys.positions[i] = sites[i];
  return sys;
}

}  // namespace entk::md
