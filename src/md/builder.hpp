// System builders for the workloads used in the paper's experiments.
//
// The paper's physical system is "solvated alanine dipeptide, 2881
// atoms": a 22-atom dipeptide in 953 three-site waters
// (22 + 3*953 = 2881). We build the same composition as a coarse
// model: a 22-bead bonded chain (with side branches approximating the
// methyl groups) solvated by 3-bead bent "water" molecules on a cubic
// lattice.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "md/system.hpp"

namespace entk::md {

struct BuiltSystem {
  System system;
  std::size_t solute_atoms = 0;  ///< First `solute_atoms` particles.
};

/// Builds the paper's 2881-particle composition by default
/// (22-bead solute + `n_waters` 3-bead waters), at number density
/// ~`density` (reduced units).
BuiltSystem build_solvated_dipeptide(std::size_t n_waters = 953,
                                     double density = 0.4);

/// Builds a homogeneous fluid of `n` particles at the given density
/// (small, fast systems for tests).
System build_fluid(std::size_t n, double density = 0.4);

/// Capped steepest-descent relaxation: removes initial overlaps so
/// dynamics can start from any constructed configuration. Iterates
/// until the largest force falls below `force_tolerance` or
/// `max_iterations` is reached; each particle moves at most `max_step`
/// per iteration.
void relax(System& system, int max_iterations = 200,
           double max_step = 0.05, double force_tolerance = 50.0);

}  // namespace entk::md
