#include "md/ensemble_analysis.hpp"

namespace entk::md {

std::vector<double> features_of(const Frame& frame) {
  Vec3 centroid{};
  for (const auto& p : frame.positions) centroid += p;
  centroid *= 1.0 / static_cast<double>(frame.positions.size());
  std::vector<double> features;
  features.reserve(frame.positions.size() * 3);
  for (const auto& p : frame.positions) {
    features.push_back(p.x - centroid.x);
    features.push_back(p.y - centroid.y);
    features.push_back(p.z - centroid.z);
  }
  return features;
}

Result<analysis::PcaResult> pca_frames(const std::vector<Frame>& frames,
                                       std::size_t n_components) {
  if (frames.size() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "PCA needs at least two frames");
  }
  std::vector<std::vector<double>> rows;
  rows.reserve(frames.size());
  for (const Frame& frame : frames) rows.push_back(features_of(frame));
  // Inconsistent particle counts surface as inconsistent row lengths.
  return analysis::pca_rows(std::move(rows), n_components);
}

Result<analysis::CocoResult> coco_analysis(
    const std::vector<const Trajectory*>& trajectories,
    const analysis::CocoOptions& options) {
  if (options.n_components == 0 || options.n_components > 3) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo supports 1-3 PC dimensions");
  }
  if (options.grid_bins < 2) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo needs at least 2 grid bins per axis");
  }
  std::vector<std::vector<double>> rows;
  for (const auto* trajectory : trajectories) {
    if (trajectory == nullptr) continue;
    for (const Frame& frame : trajectory->frames()) {
      rows.push_back(features_of(frame));
    }
  }
  if (rows.size() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "CoCo needs at least two frames across trajectories");
  }
  return analysis::coco_rows(std::move(rows), options);
}

analysis::Matrix rmsd_distance_matrix(const std::vector<Frame>& frames) {
  ENTK_CHECK(frames.size() >= 2, "need at least two frames");
  analysis::Matrix distances(frames.size(), frames.size());
  for (std::size_t a = 0; a < frames.size(); ++a) {
    for (std::size_t b = a + 1; b < frames.size(); ++b) {
      const double d = Trajectory::rmsd(frames[a], frames[b]);
      distances(a, b) = d;
      distances(b, a) = d;
    }
  }
  return distances;
}

Result<analysis::DiffusionMapResult> diffusion_map_frames(
    const std::vector<Frame>& frames,
    const analysis::DiffusionMapOptions& options) {
  if (frames.size() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "diffusion map needs at least two frames");
  }
  return analysis::diffusion_map(rmsd_distance_matrix(frames), options);
}

}  // namespace entk::md
