// Frame/trajectory adapters for the analysis layer.
//
// The analysis module is a pure-math leaf (feature rows, distance
// matrices); everything that knows about md::Frame lives here, so the
// dependency points md -> analysis and the module layering stays a DAG
// (enforced by entk-analyze --layering, see tools/layering.toml).
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/diffusion_map.hpp"
#include "analysis/matrix.hpp"
#include "analysis/pca.hpp"
#include "common/status.hpp"
#include "md/trajectory.hpp"

namespace entk::md {

/// Flattens a frame to its centred coordinate vector (3N dims):
/// centroid removed, then (x, y, z) per particle.
std::vector<double> features_of(const Frame& frame);

/// PCA over the concatenated (x,y,z) coordinates of all frames, after
/// centroid removal per frame.
Result<analysis::PcaResult> pca_frames(const std::vector<Frame>& frames,
                                       std::size_t n_components);

/// Runs the CoCo pipeline over all frames of all trajectories.
Result<analysis::CocoResult> coco_analysis(
    const std::vector<const Trajectory*>& trajectories,
    const analysis::CocoOptions& options);

/// Full pairwise RMSD distance matrix of the given frames.
analysis::Matrix rmsd_distance_matrix(const std::vector<Frame>& frames);

/// Convenience: RMSD distances + diffusion map from frames.
Result<analysis::DiffusionMapResult> diffusion_map_frames(
    const std::vector<Frame>& frames,
    const analysis::DiffusionMapOptions& options);

}  // namespace entk::md
