#include "md/forcefield.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace entk::md {

ForceField::ForceField(ForceFieldParams params) : params_(params) {
  ENTK_CHECK(params_.epsilon > 0.0 && params_.sigma > 0.0,
             "force-field scales must be positive");
  cutoff_ = std::pow(2.0, 1.0 / 6.0) * params_.sigma;
  cutoff2_ = cutoff_ * cutoff_;
}

double ForceField::compute(System& system) const {
  return evaluate(system, &system.forces);
}

double ForceField::energy(const System& system) const {
  return evaluate(system, nullptr);
}

namespace {
/// Packs an (i, j) pair with i < j into one key for exclusion lookup.
inline std::uint64_t pair_key(std::size_t i, std::size_t j, std::size_t n) {
  if (i > j) std::swap(i, j);
  return static_cast<std::uint64_t>(i) * n + j;
}
}  // namespace

double ForceField::evaluate(const System& system,
                            std::vector<Vec3>* forces) const {
  const std::size_t n = system.size();
  if (forces != nullptr) forces->assign(n, Vec3{});
  double potential = 0.0;

  // Bonded terms.
  std::unordered_set<std::uint64_t> excluded;
  excluded.reserve(system.bonds.size() * 2);
  for (const Bond& bond : system.bonds) {
    excluded.insert(pair_key(bond.i, bond.j, n));
    const Vec3 d = system.minimum_image(system.positions[bond.i],
                                        system.positions[bond.j]);
    const double r = d.norm();
    const double dr = r - bond.r0;
    potential += 0.5 * bond.k * dr * dr;
    if (forces != nullptr && r > 1e-12) {
      const Vec3 f = d * (-bond.k * dr / r);
      (*forces)[bond.i] += f;
      (*forces)[bond.j] -= f;
    }
  }

  // Harmonic angles (apex j). Gradients via the standard chain rule
  // through cos(theta).
  for (const Angle& angle : system.angles) {
    const Vec3 u =
        system.minimum_image(system.positions[angle.i],
                             system.positions[angle.j]);
    const Vec3 v =
        system.minimum_image(system.positions[angle.k],
                             system.positions[angle.j]);
    const double nu = u.norm();
    const double nv = v.norm();
    if (nu < 1e-12 || nv < 1e-12) continue;
    double cos_theta = u.dot(v) / (nu * nv);
    cos_theta = std::clamp(cos_theta, -1.0, 1.0);
    const double theta = std::acos(cos_theta);
    const double delta = theta - angle.theta0;
    potential += 0.5 * angle.k_theta * delta * delta;
    if (forces != nullptr) {
      const double sin_theta =
          std::max(std::sqrt(1.0 - cos_theta * cos_theta), 1e-8);
      // dU/dtheta = k * delta; F = -dU/dr = k*delta/sin * d cos/dr.
      const double prefactor = angle.k_theta * delta / sin_theta;
      const Vec3 dcos_di = v * (1.0 / (nu * nv)) -
                           u * (cos_theta / (nu * nu));
      const Vec3 dcos_dk = u * (1.0 / (nu * nv)) -
                           v * (cos_theta / (nv * nv));
      const Vec3 fi = prefactor * dcos_di;
      const Vec3 fk = prefactor * dcos_dk;
      (*forces)[angle.i] += fi;
      (*forces)[angle.k] += fk;
      (*forces)[angle.j] -= fi + fk;
    }
  }

  // Periodic torsions. Force distribution follows the standard
  // formulation over the bond vectors b1, b2, b3 (e.g. the GROMACS
  // manual); total force and torque vanish by construction.
  for (const Dihedral& dihedral : system.dihedrals) {
    const Vec3 b1 = system.minimum_image(system.positions[dihedral.j],
                                         system.positions[dihedral.i]);
    const Vec3 b2 = system.minimum_image(system.positions[dihedral.k],
                                         system.positions[dihedral.j]);
    const Vec3 b3 = system.minimum_image(system.positions[dihedral.l],
                                         system.positions[dihedral.k]);
    const Vec3 n1 = b1.cross(b2);
    const Vec3 n2 = b2.cross(b3);
    const double n1_sq = n1.norm2();
    const double n2_sq = n2.norm2();
    const double b2_norm = b2.norm();
    if (n1_sq < 1e-16 || n2_sq < 1e-16 || b2_norm < 1e-12) continue;
    const double phi =
        std::atan2(n1.cross(n2).dot(b2) / b2_norm, n1.dot(n2));
    potential += dihedral.k_phi *
                 (1.0 + std::cos(dihedral.n * phi - dihedral.phi0));
    if (forces != nullptr) {
      const double du_dphi = -dihedral.k_phi * dihedral.n *
                             std::sin(dihedral.n * phi - dihedral.phi0);
      const Vec3 fi = n1 * (du_dphi * b2_norm / n1_sq);
      const Vec3 fl = n2 * (-du_dphi * b2_norm / n2_sq);
      const double t1 = b1.dot(b2) / (b2_norm * b2_norm);
      const double t2 = b3.dot(b2) / (b2_norm * b2_norm);
      // Gradient distribution onto the inner atoms (verified against
      // finite differences): F_j = -(1 + t1) F_i + t2 F_l and F_k
      // closes the total to zero.
      const Vec3 fj = fl * t2 - fi * (1.0 + t1);
      const Vec3 fk = -(fi + fj + fl);
      (*forces)[dihedral.i] += fi;
      (*forces)[dihedral.j] += fj;
      (*forces)[dihedral.k] += fk;
      (*forces)[dihedral.l] += fl;
    }
  }

  // Non-bonded WCA via cell list. Cell size >= cutoff so only the 27
  // neighbouring cells need scanning; each pair is visited once by
  // ordering on particle index.
  const double box = system.box_length();
  const int cells_per_side =
      std::max(1, static_cast<int>(std::floor(box / cutoff_)));

  const double sigma2 = params_.sigma * params_.sigma;
  auto wca = [&](std::size_t i, std::size_t j) {
    const Vec3 d =
        system.minimum_image(system.positions[i], system.positions[j]);
    const double r2 = d.norm2();
    if (r2 >= cutoff2_ || r2 < 1e-16) return;
    if (excluded.count(pair_key(i, j, n)) != 0) return;
    const double inv_r2 = sigma2 / r2;
    const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
    const double inv_r12 = inv_r6 * inv_r6;
    // WCA: shifted LJ, zero at the cutoff minimum.
    potential += 4.0 * params_.epsilon * (inv_r12 - inv_r6) + params_.epsilon;
    if (forces != nullptr) {
      const double magnitude =
          24.0 * params_.epsilon * (2.0 * inv_r12 - inv_r6) / r2;
      const Vec3 f = d * magnitude;
      (*forces)[i] += f;
      (*forces)[j] -= f;
    }
  };

  if (cells_per_side < 3) {
    // Too few cells for the half-neighbour walk (periodic images of a
    // cell coincide and pairs would double-count): brute force.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) wca(i, j);
    }
    return potential;
  }

  const double cell_size = box / cells_per_side;
  const std::size_t n_cells = static_cast<std::size_t>(cells_per_side) *
                              cells_per_side * cells_per_side;

  auto cell_of = [&](const Vec3& p) {
    auto wrap_index = [&](double coordinate) {
      int index = static_cast<int>(std::floor(coordinate / cell_size));
      index %= cells_per_side;
      if (index < 0) index += cells_per_side;
      return index;
    };
    const int cx = wrap_index(p.x);
    const int cy = wrap_index(p.y);
    const int cz = wrap_index(p.z);
    return static_cast<std::size_t>((cx * cells_per_side + cy) *
                                        cells_per_side +
                                    cz);
  };

  // Linked-list cell structure: head[cell] -> first particle, next[i].
  std::vector<int> head(n_cells, -1);
  std::vector<int> next(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = cell_of(system.positions[i]);
    next[i] = head[c];
    head[c] = static_cast<int>(i);
  }

  for (int cx = 0; cx < cells_per_side; ++cx) {
    for (int cy = 0; cy < cells_per_side; ++cy) {
      for (int cz = 0; cz < cells_per_side; ++cz) {
        const std::size_t c =
            static_cast<std::size_t>((cx * cells_per_side + cy) *
                                         cells_per_side +
                                     cz);
        for (int i = head[c]; i >= 0; i = next[i]) {
          // Same cell: pairs ordered by index.
          for (int j = next[i]; j >= 0; j = next[j]) {
            wca(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
          }
          // Half of the neighbouring cells (13 of 26) to count each
          // pair once; with <3 cells per side cells repeat, so fall
          // back to deduplicating via index order.
          for (int dx = -1; dx <= 1; ++dx) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dz = -1; dz <= 1; ++dz) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                if (dx < 0 || (dx == 0 && dy < 0) ||
                    (dx == 0 && dy == 0 && dz < 0)) {
                  continue;  // visit each neighbour direction once
                }
                const int nx = (cx + dx + cells_per_side) % cells_per_side;
                const int ny = (cy + dy + cells_per_side) % cells_per_side;
                const int nz = (cz + dz + cells_per_side) % cells_per_side;
                const std::size_t nc = static_cast<std::size_t>(
                    (nx * cells_per_side + ny) * cells_per_side + nz);
                for (int j = head[nc]; j >= 0; j = next[j]) {
                  wca(static_cast<std::size_t>(i),
                      static_cast<std::size_t>(j));
                }
              }
            }
          }
        }
      }
    }
  }
  return potential;
}

}  // namespace entk::md
