// Force field: harmonic bonds + WCA (purely repulsive Lennard-Jones)
// non-bonded interactions, evaluated with a cell list (O(N)).
//
// This is deliberately the simplest force field that still produces
// genuine molecular dynamics: solvated systems have excluded volume,
// bonded topology and a rough conformational landscape — enough for
// replica exchange and the PCA/diffusion-map analyses to operate on
// physically meaningful data.
#pragma once

#include <cstddef>
#include <vector>

#include "md/system.hpp"

namespace entk::md {

struct ForceFieldParams {
  double epsilon = 1.0;  ///< WCA energy scale.
  double sigma = 1.0;    ///< WCA length scale; cutoff = 2^(1/6) sigma.
};

class ForceField {
 public:
  explicit ForceField(ForceFieldParams params = {});

  /// Recomputes `system.forces` in place and returns the potential
  /// energy. Bonded pairs are excluded from the non-bonded sum.
  double compute(System& system) const;

  /// Potential energy only (forces untouched).
  double energy(const System& system) const;

  double cutoff() const { return cutoff_; }
  const ForceFieldParams& params() const { return params_; }

 private:
  double evaluate(const System& system, std::vector<Vec3>* forces) const;

  ForceFieldParams params_;
  double cutoff_;
  double cutoff2_;
};

}  // namespace entk::md
