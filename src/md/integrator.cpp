#include "md/integrator.hpp"

#include <cmath>

namespace entk::md {

VelocityVerlet::VelocityVerlet(double dt) : dt_(dt) {
  ENTK_CHECK(dt > 0.0, "time step must be positive");
}

double VelocityVerlet::step(System& system,
                            const ForceField& forcefield) const {
  const std::size_t n = system.size();
  for (std::size_t i = 0; i < n; ++i) {
    system.velocities[i] +=
        system.forces[i] * (0.5 * dt_ / system.masses[i]);
    system.positions[i] += system.velocities[i] * dt_;
  }
  const double potential = forcefield.compute(system);
  for (std::size_t i = 0; i < n; ++i) {
    system.velocities[i] +=
        system.forces[i] * (0.5 * dt_ / system.masses[i]);
  }
  return potential;
}

LangevinIntegrator::LangevinIntegrator(double dt, double gamma, double kT)
    : dt_(dt), gamma_(gamma), kT_(kT) {
  ENTK_CHECK(dt > 0.0, "time step must be positive");
  ENTK_CHECK(gamma > 0.0, "friction must be positive");
  ENTK_CHECK(kT > 0.0, "temperature must be positive");
  ou_decay_ = std::exp(-gamma_ * dt_);
}

void LangevinIntegrator::set_kT(double kT) {
  ENTK_CHECK(kT > 0.0, "temperature must be positive");
  kT_ = kT;
}

double LangevinIntegrator::step(System& system, const ForceField& forcefield,
                                Xoshiro256& rng) const {
  const std::size_t n = system.size();
  const double half_dt = 0.5 * dt_;
  // B: half kick.
  for (std::size_t i = 0; i < n; ++i) {
    system.velocities[i] += system.forces[i] * (half_dt / system.masses[i]);
  }
  // A: half drift.
  for (std::size_t i = 0; i < n; ++i) {
    system.positions[i] += system.velocities[i] * half_dt;
  }
  // O: Ornstein–Uhlenbeck exact solve.
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma =
        std::sqrt(kT_ / system.masses[i] * (1.0 - ou_decay_ * ou_decay_));
    system.velocities[i] = system.velocities[i] * ou_decay_ +
                           Vec3{rng.normal(0.0, sigma),
                                rng.normal(0.0, sigma),
                                rng.normal(0.0, sigma)};
  }
  // A: half drift.
  for (std::size_t i = 0; i < n; ++i) {
    system.positions[i] += system.velocities[i] * half_dt;
  }
  // B: half kick with fresh forces.
  const double potential = forcefield.compute(system);
  for (std::size_t i = 0; i < n; ++i) {
    system.velocities[i] += system.forces[i] * (half_dt / system.masses[i]);
  }
  return potential;
}

}  // namespace entk::md
