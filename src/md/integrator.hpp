// Time integration: velocity Verlet (NVE) and Langevin BAOAB (NVT).
#pragma once

#include "common/rng.hpp"
#include "md/forcefield.hpp"
#include "md/system.hpp"

namespace entk::md {

/// Microcanonical velocity-Verlet integrator. Forces must be current
/// on entry (call forcefield.compute once before the first step);
/// they are current again on exit.
class VelocityVerlet {
 public:
  explicit VelocityVerlet(double dt);

  /// Advances one step; returns the potential energy after the step.
  double step(System& system, const ForceField& forcefield) const;

  double dt() const { return dt_; }

 private:
  double dt_;
};

/// Langevin thermostat in the BAOAB splitting (Leimkuhler–Matthews):
/// excellent configurational sampling at large time steps.
class LangevinIntegrator {
 public:
  /// `gamma` is the friction (1/time), `kT` the target temperature.
  LangevinIntegrator(double dt, double gamma, double kT);

  double step(System& system, const ForceField& forcefield,
              Xoshiro256& rng) const;

  double dt() const { return dt_; }
  double kT() const { return kT_; }
  void set_kT(double kT);

 private:
  double dt_;
  double gamma_;
  double kT_;
  double ou_decay_;  ///< exp(-gamma dt), cached.
};

}  // namespace entk::md
