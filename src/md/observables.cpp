#include "md/observables.hpp"

#include <cmath>

namespace entk::md {

double radius_of_gyration(const std::vector<Vec3>& positions,
                          std::size_t first, std::size_t last) {
  if (last == 0) last = positions.size();
  ENTK_CHECK(first < last && last <= positions.size(),
             "invalid particle range");
  Vec3 centre{};
  for (std::size_t i = first; i < last; ++i) centre += positions[i];
  centre *= 1.0 / static_cast<double>(last - first);
  double sum = 0.0;
  for (std::size_t i = first; i < last; ++i) {
    sum += (positions[i] - centre).norm2();
  }
  return std::sqrt(sum / static_cast<double>(last - first));
}

double end_to_end_distance(const std::vector<Vec3>& positions,
                           std::size_t i, std::size_t j) {
  ENTK_CHECK(i < positions.size() && j < positions.size(),
             "particle index out of range");
  return (positions[i] - positions[j]).norm();
}

double dihedral_angle(const Vec3& a, const Vec3& b, const Vec3& c,
                      const Vec3& d) {
  const Vec3 b1 = b - a;
  const Vec3 b2 = c - b;
  const Vec3 b3 = d - c;
  const Vec3 n1 = b1.cross(b2);
  const Vec3 n2 = b2.cross(b3);
  const double b2_norm = b2.norm();
  ENTK_CHECK(b2_norm > 1e-12, "degenerate dihedral (coincident atoms)");
  return std::atan2(n1.cross(n2).dot(b2) / b2_norm, n1.dot(n2));
}

Result<std::vector<double>> mean_squared_displacement(
    const Trajectory& trajectory, std::size_t max_lag) {
  if (trajectory.size() < 2) {
    return make_error(Errc::kInvalidArgument,
                      "MSD needs at least two frames");
  }
  const std::size_t n_frames = trajectory.size();
  if (max_lag == 0 || max_lag > n_frames - 1) max_lag = n_frames - 1;
  const std::size_t n_particles = trajectory.frame(0).positions.size();
  std::vector<double> msd(max_lag, 0.0);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    double sum = 0.0;
    std::size_t samples = 0;
    for (std::size_t f = 0; f + lag < n_frames; ++f) {
      const auto& early = trajectory.frame(f).positions;
      const auto& late = trajectory.frame(f + lag).positions;
      for (std::size_t i = 0; i < n_particles; ++i) {
        sum += (late[i] - early[i]).norm2();
      }
      ++samples;
    }
    msd[lag - 1] =
        sum / (static_cast<double>(samples) *
               static_cast<double>(n_particles));
  }
  return msd;
}

}  // namespace entk::md
