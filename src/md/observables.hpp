// Structural and dynamical observables over configurations and
// trajectories — the quantities ensemble applications actually compute
// from their MD output (radius of gyration, end-to-end distances,
// torsion angles for free-energy surfaces, mean-squared displacement).
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.hpp"
#include "md/trajectory.hpp"
#include "md/vec3.hpp"

namespace entk::md {

/// Radius of gyration of a subset [first, last) of the positions
/// (whole set by default).
double radius_of_gyration(const std::vector<Vec3>& positions,
                          std::size_t first = 0, std::size_t last = 0);

/// Distance between two particles (no periodic wrapping: callers pass
/// unwrapped or solute-local coordinates).
double end_to_end_distance(const std::vector<Vec3>& positions,
                           std::size_t i, std::size_t j);

/// Signed torsion angle (radians, in (-pi, pi]) of the chain
/// a-b-c-d.
double dihedral_angle(const Vec3& a, const Vec3& b, const Vec3& c,
                      const Vec3& d);

/// Mean-squared displacement per lag (in frames): msd[k] is the MSD
/// over all pairs of frames k apart, averaged over particles.
/// Requires >= 2 frames; lag 0 is omitted (msd[0] is lag 1).
Result<std::vector<double>> mean_squared_displacement(
    const Trajectory& trajectory, std::size_t max_lag = 0);

/// Time series of one observable over a trajectory's frames.
template <typename Fn>
std::vector<double> observable_series(const Trajectory& trajectory,
                                      Fn&& observable) {
  std::vector<double> series;
  series.reserve(trajectory.size());
  for (const auto& frame : trajectory.frames()) {
    series.push_back(observable(frame));
  }
  return series;
}

}  // namespace entk::md
