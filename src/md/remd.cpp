#include "md/remd.hpp"

#include <cmath>

namespace entk::md {

std::vector<double> geometric_ladder(std::size_t n_replicas, double t_min,
                                     double t_max) {
  ENTK_CHECK(n_replicas >= 1, "ladder needs at least one rung");
  ENTK_CHECK(t_min > 0.0 && t_max >= t_min, "invalid temperature range");
  std::vector<double> ladder(n_replicas);
  if (n_replicas == 1) {
    ladder[0] = t_min;
    return ladder;
  }
  const double ratio = std::pow(
      t_max / t_min, 1.0 / static_cast<double>(n_replicas - 1));
  double t = t_min;
  for (auto& rung : ladder) {
    rung = t;
    t *= ratio;
  }
  return ladder;
}

ReplicaExchange::ReplicaExchange(std::vector<double> temperatures)
    : ladder_(std::move(temperatures)) {
  ENTK_CHECK(!ladder_.empty(), "ladder must not be empty");
  for (std::size_t r = 1; r < ladder_.size(); ++r) {
    ENTK_CHECK(ladder_[r] > ladder_[r - 1],
               "temperature ladder must be strictly ascending");
  }
  const std::size_t n = ladder_.size();
  replica_at_.resize(n);
  temperature_of_.resize(n);
  visits_.assign(n, std::vector<std::size_t>(n, 0));
  for (std::size_t r = 0; r < n; ++r) {
    replica_at_[r] = r;
    temperature_of_[r] = r;
    visits_[r][r] = 1;
  }
}

double ReplicaExchange::temperature_of(std::size_t r) const {
  ENTK_CHECK(r < temperature_of_.size(), "replica index out of range");
  return ladder_[temperature_of_[r]];
}

std::size_t ReplicaExchange::rung_of(std::size_t r) const {
  ENTK_CHECK(r < temperature_of_.size(), "replica index out of range");
  return temperature_of_[r];
}

ExchangeStats ReplicaExchange::attempt_sweep(
    const std::vector<double>& potential_energies, Xoshiro256& rng) {
  ENTK_CHECK(potential_energies.size() == replica_count(),
             "need one energy per replica");
  ExchangeStats sweep;
  const std::size_t first = sweeps_ % 2;  // alternate even/odd pairs
  for (std::size_t low = first; low + 1 < ladder_.size(); low += 2) {
    const std::size_t high = low + 1;
    const std::size_t replica_lo = replica_at_[low];
    const std::size_t replica_hi = replica_at_[high];
    const double beta_lo = 1.0 / ladder_[low];
    const double beta_hi = 1.0 / ladder_[high];
    const double delta = (beta_lo - beta_hi) *
                         (potential_energies[replica_lo] -
                          potential_energies[replica_hi]);
    ++sweep.attempted;
    // Metropolis: accept with min(1, exp(delta)).
    const bool accept = delta >= 0.0 || rng.uniform() < std::exp(delta);
    if (accept) {
      ++sweep.accepted;
      replica_at_[low] = replica_hi;
      replica_at_[high] = replica_lo;
      temperature_of_[replica_lo] = high;
      temperature_of_[replica_hi] = low;
    }
  }
  for (std::size_t r = 0; r < replica_count(); ++r) {
    ++visits_[r][temperature_of_[r]];
  }
  stats_.attempted += sweep.attempted;
  stats_.accepted += sweep.accepted;
  ++sweeps_;
  return sweep;
}

}  // namespace entk::md
