// Temperature replica exchange (the paper's EE workload).
//
// Replicas run at a ladder of temperatures; after each cycle,
// neighbouring pairs attempt a Metropolis swap with acceptance
//   p = min(1, exp[(1/kT_i - 1/kT_j)(U_i - U_j)]).
// Exchanges alternate between even and odd neighbour pairs per cycle,
// matching standard REMD practice (and the paper's "pairwise, not
// globally synchronised" description).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace entk::md {

/// Builds a geometric temperature ladder over [t_min, t_max].
std::vector<double> geometric_ladder(std::size_t n_replicas, double t_min,
                                     double t_max);

struct ExchangeStats {
  std::size_t attempted = 0;
  std::size_t accepted = 0;
  double acceptance_ratio() const {
    return attempted == 0
               ? 0.0
               : static_cast<double>(accepted) / static_cast<double>(attempted);
  }
};

class ReplicaExchange {
 public:
  /// `temperatures` is the ladder (ascending). Replica r initially runs
  /// at temperatures[r].
  explicit ReplicaExchange(std::vector<double> temperatures);

  std::size_t replica_count() const { return temperature_of_.size(); }

  /// Current temperature assigned to replica `r`.
  double temperature_of(std::size_t r) const;

  /// Ladder-rung index currently held by replica `r`.
  std::size_t rung_of(std::size_t r) const;

  /// Attempts one sweep of neighbour swaps. `potential_energies[r]` is
  /// replica r's current potential energy. Even cycles try rung pairs
  /// (0,1)(2,3)...; odd cycles (1,2)(3,4)... Accepted swaps exchange the
  /// two replicas' temperatures. Returns the per-sweep statistics.
  ExchangeStats attempt_sweep(const std::vector<double>& potential_energies,
                              Xoshiro256& rng);

  const ExchangeStats& cumulative_stats() const { return stats_; }
  std::size_t sweeps_completed() const { return sweeps_; }

  /// How often each replica visited each rung (mixing diagnostics):
  /// visits()[replica][rung].
  const std::vector<std::vector<std::size_t>>& visits() const {
    return visits_;
  }

 private:
  std::vector<double> ladder_;              // rung -> temperature
  std::vector<std::size_t> replica_at_;     // rung -> replica
  std::vector<std::size_t> temperature_of_; // replica -> rung
  std::vector<std::vector<std::size_t>> visits_;
  ExchangeStats stats_;
  std::size_t sweeps_ = 0;
};

}  // namespace entk::md
