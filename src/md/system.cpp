#include "md/system.hpp"

namespace entk::md {

System::System(std::size_t n, double box_length) : box_(box_length) {
  ENTK_CHECK(n > 0, "system needs at least one particle");
  ENTK_CHECK(box_length > 0.0, "box length must be positive");
  positions.assign(n, Vec3{});
  velocities.assign(n, Vec3{});
  forces.assign(n, Vec3{});
  masses.assign(n, 1.0);
}

Vec3 System::minimum_image(const Vec3& a, const Vec3& b) const {
  Vec3 d = a - b;
  d.x -= box_ * std::round(d.x / box_);
  d.y -= box_ * std::round(d.y / box_);
  d.z -= box_ * std::round(d.z / box_);
  return d;
}

void System::wrap_positions() {
  for (auto& p : positions) {
    p.x -= box_ * std::floor(p.x / box_);
    p.y -= box_ * std::floor(p.y / box_);
    p.z -= box_ * std::floor(p.z / box_);
  }
}

void System::thermalize_velocities(double kT, Xoshiro256& rng) {
  ENTK_CHECK(kT > 0.0, "temperature must be positive");
  for (std::size_t i = 0; i < size(); ++i) {
    const double sigma = std::sqrt(kT / masses[i]);
    velocities[i] = {rng.normal(0.0, sigma), rng.normal(0.0, sigma),
                     rng.normal(0.0, sigma)};
  }
  remove_drift();
}

void System::remove_drift() {
  Vec3 momentum{};
  double total_mass = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    momentum += masses[i] * velocities[i];
    total_mass += masses[i];
  }
  const Vec3 drift = momentum * (1.0 / total_mass);
  for (auto& v : velocities) v -= drift;
}

double System::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    ke += 0.5 * masses[i] * velocities[i].norm2();
  }
  return ke;
}

double System::temperature() const {
  if (size() <= 1) return 0.0;
  const double dof = 3.0 * static_cast<double>(size()) - 3.0;
  return 2.0 * kinetic_energy() / dof;
}

}  // namespace entk::md
