// Particle system state for the toy MD engine.
//
// Reduced (Lennard-Jones-like) units: k_B = 1, unit mass, unit length.
// The box is cubic and periodic; minimum-image convention applies to
// all pair interactions.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "md/vec3.hpp"

namespace entk::md {

/// Harmonic bond between two particles: U = 1/2 k (r - r0)^2.
struct Bond {
  std::size_t i = 0;
  std::size_t j = 0;
  double k = 100.0;
  double r0 = 1.0;
};

/// Harmonic angle i-j-k (j is the apex): U = 1/2 k (theta - theta0)^2.
struct Angle {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  double k_theta = 20.0;
  double theta0 = 1.911;  ///< ~109.5 degrees.
};

/// Periodic (cosine) torsion i-j-k-l: U = k (1 + cos(n phi - phi0)).
struct Dihedral {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  std::size_t l = 0;
  double k_phi = 2.0;
  int n = 3;
  double phi0 = 0.0;
};

class System {
 public:
  /// Creates `n` particles at the origin with unit mass in a cubic
  /// periodic box of side `box_length`.
  System(std::size_t n, double box_length);

  std::size_t size() const { return positions.size(); }
  double box_length() const { return box_; }

  /// Minimum-image displacement from particle j to particle i.
  Vec3 minimum_image(const Vec3& a, const Vec3& b) const;

  /// Wraps all positions back into the primary box.
  void wrap_positions();

  /// Draws velocities from Maxwell–Boltzmann at temperature `kT` and
  /// removes centre-of-mass drift.
  void thermalize_velocities(double kT, Xoshiro256& rng);

  /// Removes net momentum.
  void remove_drift();

  double kinetic_energy() const;
  /// Instantaneous temperature: 2 KE / (3 N - 3).
  double temperature() const;

  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  std::vector<Vec3> forces;
  std::vector<double> masses;
  std::vector<Bond> bonds;
  std::vector<Angle> angles;
  std::vector<Dihedral> dihedrals;

 private:
  double box_;
};

}  // namespace entk::md
