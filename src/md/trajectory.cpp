#include "md/trajectory.hpp"

#include <cmath>
#include <fstream>

namespace entk::md {

void Trajectory::add_frame(Frame frame) {
  if (!frames_.empty()) {
    ENTK_CHECK(frame.positions.size() == frames_.front().positions.size(),
               "all frames must have the same particle count");
  }
  frames_.push_back(std::move(frame));
}

const Frame& Trajectory::frame(std::size_t i) const {
  ENTK_CHECK(i < frames_.size(), "frame index out of range");
  return frames_[i];
}

double Trajectory::rmsd(const Frame& a, const Frame& b) {
  ENTK_CHECK(a.positions.size() == b.positions.size(),
             "rmsd requires equally sized frames");
  ENTK_CHECK(!a.positions.empty(), "rmsd of empty frames");
  Vec3 ca{}, cb{};
  for (const auto& p : a.positions) ca += p;
  for (const auto& p : b.positions) cb += p;
  const double inv_n = 1.0 / static_cast<double>(a.positions.size());
  ca *= inv_n;
  cb *= inv_n;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    sum += ((a.positions[i] - ca) - (b.positions[i] - cb)).norm2();
  }
  return std::sqrt(sum * inv_n);
}

Status Trajectory::save(const std::string& path) const {
  // Streams frames incrementally into a kernel-sandbox file the retry
  // tier rewrites from scratch — not a run artifact.
  // entk-lint: allow(raw-file-write)
  std::ofstream out(path);
  if (!out) {
    return make_error(Errc::kIoError, "cannot open " + path + " for write");
  }
  out.precision(12);
  out << frames_.size() << '\n';
  for (const auto& frame : frames_) {
    out << frame.time << ' ' << frame.potential_energy << ' '
        << frame.temperature << ' ' << frame.positions.size() << '\n';
    for (const auto& p : frame.positions) {
      out << p.x << ' ' << p.y << ' ' << p.z << '\n';
    }
  }
  if (!out) {
    return make_error(Errc::kIoError, "short write to " + path);
  }
  return Status::ok();
}

Result<Trajectory> Trajectory::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(Errc::kIoError, "cannot open " + path);
  }
  std::size_t n_frames = 0;
  if (!(in >> n_frames)) {
    return make_error(Errc::kIoError, "corrupt trajectory header in " + path);
  }
  Trajectory trajectory;
  for (std::size_t f = 0; f < n_frames; ++f) {
    Frame frame;
    std::size_t n_particles = 0;
    if (!(in >> frame.time >> frame.potential_energy >> frame.temperature >>
          n_particles)) {
      return make_error(Errc::kIoError,
                        "corrupt frame header in " + path);
    }
    frame.positions.resize(n_particles);
    for (auto& p : frame.positions) {
      if (!(in >> p.x >> p.y >> p.z)) {
        return make_error(Errc::kIoError,
                          "corrupt frame payload in " + path);
      }
    }
    trajectory.add_frame(std::move(frame));
  }
  return trajectory;
}

}  // namespace entk::md
