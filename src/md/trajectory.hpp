// Trajectory storage and structural comparison.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "md/vec3.hpp"

namespace entk::md {

/// One stored snapshot: positions plus scalar observables.
struct Frame {
  double time = 0.0;
  double potential_energy = 0.0;
  double temperature = 0.0;
  std::vector<Vec3> positions;
};

class Trajectory {
 public:
  void add_frame(Frame frame);

  std::size_t size() const { return frames_.size(); }
  bool empty() const { return frames_.empty(); }
  const Frame& frame(std::size_t i) const;
  const std::vector<Frame>& frames() const { return frames_; }

  /// Root-mean-square deviation between two frames after removing the
  /// centroid (no rotational alignment; adequate for coarse
  /// conformational distances).
  static double rmsd(const Frame& a, const Frame& b);

  /// Serialises to a simple whitespace text format (one frame header
  /// line + one line per particle) and reads it back — the toolkit's
  /// on-disk trajectory exchange between simulation and analysis
  /// kernels.
  Status save(const std::string& path) const;
  static Result<Trajectory> load(const std::string& path);

 private:
  std::vector<Frame> frames_;
};

}  // namespace entk::md
