// Minimal 3-vector for the MD engine (reduced units throughout).
#pragma once

#include <cmath>

namespace entk::md {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
};

}  // namespace entk::md
