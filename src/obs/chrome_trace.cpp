#include "obs/chrome_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "common/atomic_file.hpp"

namespace entk::obs {
namespace {

std::string json_escape(const char* text) {
  std::string escaped;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string format_ts(TimePoint seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", seconds * 1e6);
  return buffer;
}

std::string format_id(std::uint64_t flow_id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "\"0x%" PRIx64 "\"", flow_id);
  return buffer;
}

void append_common(std::ostringstream& out, const TraceEvent& event) {
  out << "\"cat\":\"" << json_escape(event.category) << "\",\"name\":\""
      << json_escape(event.name) << "\",\"pid\":" << event.pilot
      << ",\"tid\":" << event.thread
      << ",\"ts\":" << format_ts(event.time);
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const char* separator = "\n";

  // Metadata: name the processes and threads that appear.
  std::set<std::uint32_t> pilots;
  std::set<std::pair<std::uint32_t, std::uint32_t>> threads;
  for (const TraceEvent& event : events) {
    pilots.insert(event.pilot);
    threads.insert({event.pilot, event.thread});
  }
  for (const std::uint32_t pilot : pilots) {
    out << separator
        << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pilot
        << ",\"tid\":0,\"args\":{\"name\":\""
        << (pilot == 0 ? std::string("entk client")
                       : "pilot-" + std::to_string(pilot))
        << "\"}}";
    separator = ",\n";
  }
  for (const auto& [pilot, thread] : threads) {
    out << separator
        << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pilot
        << ",\"tid\":" << thread << ",\"args\":{\"name\":\"thread-"
        << thread << "\"}}";
    separator = ",\n";
  }

  std::set<std::uint64_t> seen_flows;
  for (const TraceEvent& event : events) {
    out << separator;
    separator = ",\n";
    switch (event.kind) {
      case TraceKind::kSpanBegin:
      case TraceKind::kSpanEnd: {
        const bool begin = event.kind == TraceKind::kSpanBegin;
        if (event.flow_id != 0) {
          // Async nestable pair: units overlap in virtual time, so
          // they live on per-flow async tracks, not the thread stack.
          out << "{\"ph\":\"" << (begin ? 'b' : 'e') << "\",";
          append_common(out, event);
          out << ",\"id\":" << format_id(event.flow_id) << "}";
        } else {
          out << "{\"ph\":\"" << (begin ? 'B' : 'E') << "\",";
          append_common(out, event);
          out << "}";
        }
        break;
      }
      case TraceKind::kInstant:
        out << "{\"ph\":\"i\",\"s\":\"t\",";
        append_common(out, event);
        out << "}";
        break;
      case TraceKind::kCounter:
        out << "{\"ph\":\"C\",";
        append_common(out, event);
        out << ",\"args\":{\"value\":" << event.value << "}}";
        break;
    }
    if (event.flow_id != 0 && event.kind != TraceKind::kCounter) {
      // Stitch this unit's events into one flow arrow chain.
      const bool first = seen_flows.insert(event.flow_id).second;
      out << separator << "{\"ph\":\"" << (first ? 's' : 't') << "\",";
      append_common(out, event);
      out << ",\"id\":" << format_id(event.flow_id) << "}";
    }
  }
  out << "\n]}\n";
  return out.str();
}

Status write_chrome_trace(const std::string& path,
                          const std::vector<TraceEvent>& events) {
  return write_file_atomic(path, to_chrome_trace(events));
}

}  // namespace entk::obs
