// Chrome trace-event JSON export (loads in Perfetto / chrome://tracing).
//
// Mapping:
//   * pilots     -> processes (pid = pilot ordinal; 0 is the client)
//   * threads    -> tids in recorder registration order
//   * unit spans -> async nestable "b"/"e" events keyed by flow id,
//                   because overlapping virtual-time units on one
//                   thread cannot be expressed as a B/E stack
//   * units      -> flow events ("s" on first sighting of a flow id,
//                   "t" steps after) stitching a unit across pilots
//   * instants   -> "i", counters -> "C"
// Timestamps are seconds from the recorder clock, exported as the
// format's microseconds.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/trace.hpp"

namespace entk::obs {

/// Renders the events as a JSON object with a `traceEvents` array.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Writes to_chrome_trace(events) to `path`.
Status write_chrome_trace(const std::string& path,
                          const std::vector<TraceEvent>& events);

}  // namespace entk::obs
