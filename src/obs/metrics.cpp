#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/trace.hpp"

namespace entk::obs {
namespace {

// clang-format off
#define ENTK_OBS_NAME(id, name) name,
constexpr const char* kCounterNames[] = {
    ENTK_WELL_KNOWN_COUNTERS(ENTK_OBS_NAME)};
constexpr const char* kGaugeNames[] = {
    ENTK_WELL_KNOWN_GAUGES(ENTK_OBS_NAME)};
constexpr const char* kHistogramNames[] = {
    ENTK_WELL_KNOWN_HISTOGRAMS(ENTK_OBS_NAME)};
#undef ENTK_OBS_NAME
// clang-format on

std::size_t bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negatives, NaN
  const int exponent = std::ilogb(value);
  return static_cast<std::size_t>(
      std::clamp(exponent + 32, 0,
                 static_cast<int>(Histogram::kBuckets) - 1));
}

}  // namespace

void Histogram::observe(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::bucket_upper_bound(std::size_t i) {
  // Bucket i holds values with ilogb == i - 32, i.e. the half-open
  // range [2^(i-32), 2^(i-31)).
  return std::ldexp(1.0, static_cast<int>(i) - 31);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank && seen > 0) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Metrics& Metrics::instance() {
  static Metrics* const metrics = new Metrics();
  return *metrics;
}

Counter& Metrics::counter(std::string_view name) {
  {
    SharedReaderLock lock(names_mutex_);
    auto it = dynamic_counters_.find(name);
    if (it != dynamic_counters_.end()) return it->second;
  }
  SharedMutexLock lock(names_mutex_);
  return dynamic_counters_[std::string(name)];
}

Gauge& Metrics::gauge(std::string_view name) {
  {
    SharedReaderLock lock(names_mutex_);
    auto it = dynamic_gauges_.find(name);
    if (it != dynamic_gauges_.end()) return it->second;
  }
  SharedMutexLock lock(names_mutex_);
  return dynamic_gauges_[std::string(name)];
}

Histogram& Metrics::histogram(std::string_view name) {
  {
    SharedReaderLock lock(names_mutex_);
    auto it = dynamic_histograms_.find(name);
    if (it != dynamic_histograms_.end()) return it->second;
  }
  SharedMutexLock lock(names_mutex_);
  return dynamic_histograms_[std::string(name)];
}

const char* Metrics::counter_name(WellKnownCounter id) {
  return kCounterNames[static_cast<std::size_t>(id)];
}
const char* Metrics::gauge_name(WellKnownGauge id) {
  return kGaugeNames[static_cast<std::size_t>(id)];
}
const char* Metrics::histogram_name(WellKnownHistogram id) {
  return kHistogramNames[static_cast<std::size_t>(id)];
}

std::vector<std::string> Metrics::names() const {
  std::vector<std::string> names;
  for (const char* name : kCounterNames) names.emplace_back(name);
  for (const char* name : kGaugeNames) names.emplace_back(name);
  for (const char* name : kHistogramNames) names.emplace_back(name);
  {
    SharedReaderLock lock(names_mutex_);
    for (const auto& entry : dynamic_counters_) {
      names.push_back(entry.first);
    }
    for (const auto& entry : dynamic_gauges_) {
      names.push_back(entry.first);
    }
    for (const auto& entry : dynamic_histograms_) {
      names.push_back(entry.first);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::string Metrics::to_text() const {
  std::ostringstream out;
  std::size_t i = 0;
  for (const auto& counter : counters_) {
    out << kCounterNames[i++] << " " << counter.get() << "\n";
  }
  i = 0;
  for (const auto& gauge : gauges_) {
    out << kGaugeNames[i++] << " " << gauge.get() << "\n";
  }
  i = 0;
  for (const auto& histogram : histograms_) {
    const char* name = kHistogramNames[i++];
    out << name << ".count " << histogram.count() << "\n"
        << name << ".sum " << histogram.sum() << "\n"
        << name << ".mean " << histogram.mean() << "\n"
        << name << ".p50 " << histogram.quantile(0.5) << "\n"
        << name << ".p99 " << histogram.quantile(0.99) << "\n";
  }
  SharedReaderLock lock(names_mutex_);
  for (const auto& [name, counter] : dynamic_counters_) {
    out << name << " " << counter.get() << "\n";
  }
  for (const auto& [name, gauge] : dynamic_gauges_) {
    out << name << " " << gauge.get() << "\n";
  }
  for (const auto& [name, histogram] : dynamic_histograms_) {
    out << name << ".count " << histogram.count() << "\n"
        << name << ".sum " << histogram.sum() << "\n"
        << name << ".mean " << histogram.mean() << "\n"
        << name << ".p50 " << histogram.quantile(0.5) << "\n"
        << name << ".p99 " << histogram.quantile(0.99) << "\n";
  }
  return out.str();
}

std::string Metrics::to_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  std::size_t i = 0;
  const char* separator = "";
  for (const auto& counter : counters_) {
    out << separator << "\n    \"" << kCounterNames[i++] << "\": "
        << counter.get();
    separator = ",";
  }
  {
    SharedReaderLock lock(names_mutex_);
    for (const auto& [name, counter] : dynamic_counters_) {
      out << separator << "\n    \"" << name << "\": " << counter.get();
      separator = ",";
    }
  }
  out << "\n  },\n  \"gauges\": {";
  i = 0;
  separator = "";
  for (const auto& gauge : gauges_) {
    out << separator << "\n    \"" << kGaugeNames[i++] << "\": "
        << gauge.get();
    separator = ",";
  }
  {
    SharedReaderLock lock(names_mutex_);
    for (const auto& [name, gauge] : dynamic_gauges_) {
      out << separator << "\n    \"" << name << "\": " << gauge.get();
      separator = ",";
    }
  }
  out << "\n  },\n  \"histograms\": {";
  i = 0;
  separator = "";
  for (const auto& histogram : histograms_) {
    out << separator << "\n    \"" << kHistogramNames[i++] << "\": {"
        << "\"count\": " << histogram.count()
        << ", \"sum\": " << histogram.sum()
        << ", \"mean\": " << histogram.mean()
        << ", \"p50\": " << histogram.quantile(0.5)
        << ", \"p99\": " << histogram.quantile(0.99) << "}";
    separator = ",";
  }
  {
    SharedReaderLock lock(names_mutex_);
    for (const auto& [name, histogram] : dynamic_histograms_) {
      out << separator << "\n    \"" << name << "\": {"
          << "\"count\": " << histogram.count()
          << ", \"sum\": " << histogram.sum()
          << ", \"mean\": " << histogram.mean()
          << ", \"p50\": " << histogram.quantile(0.5)
          << ", \"p99\": " << histogram.quantile(0.99) << "}";
      separator = ",";
    }
  }
  out << "\n  }\n}\n";
  return out.str();
}

void Metrics::reset() {
  for (auto& counter : counters_) counter.reset();
  for (auto& gauge : gauges_) gauge.reset();
  for (auto& histogram : histograms_) histogram.reset();
  SharedMutexLock lock(names_mutex_);
  for (auto& entry : dynamic_counters_) entry.second.reset();
  for (auto& entry : dynamic_gauges_) entry.second.reset();
  for (auto& entry : dynamic_histograms_) entry.second.reset();
}

bool tracing_compiled_in() { return ENTK_ENABLE_TRACING != 0; }

}  // namespace entk::obs
