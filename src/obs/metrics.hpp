// Process-wide metrics: named counters, gauges, log2 histograms.
//
// Hot-path updates are single relaxed atomic operations. Well-known
// metrics (the X-macro tables below) resolve to an array index at
// compile time, so instrumented code pays no name lookup; dynamic
// metrics intern their name once under a SharedMutex and hand back a
// stable reference. Snapshots (to_text/to_json) are approximate under
// concurrent updates, exact when quiescent. See docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

// clang-format off
/// Monotone event counts, one per instrumented runtime site.
#define ENTK_WELL_KNOWN_COUNTERS(X)                                    \
  X(kEngineEventsDispatched, "engine.events_dispatched")               \
  X(kEngineEventsCancelled, "engine.events_cancelled")                 \
  X(kSchedulerCycles, "scheduler.cycles")                              \
  X(kSchedulerPicks, "scheduler.picks")                                \
  X(kSchedulerWaitingPushes, "scheduler.waiting_pushes")               \
  X(kUnitsSubmitted, "units.submitted")                                \
  X(kUnitsDone, "units.done")                                          \
  X(kUnitsFailed, "units.failed")                                      \
  X(kUnitsCanceled, "units.canceled")                                  \
  X(kUnitsRetried, "units.retried")                                    \
  X(kUnitsRecovered, "units.recovered")                                \
  X(kGraphFrontierBatches, "graph.frontier_batches")                   \
  X(kGraphNodesSubmitted, "graph.nodes_submitted")                     \
  X(kGraphNodesSkipped, "graph.nodes_skipped")                         \
  X(kSagaJobsSubmitted, "saga.jobs_submitted")                         \
  X(kStagingDirectives, "staging.directives")                          \
  X(kCheckpointsWritten, "ckpt.snapshots_written")                     \
  X(kCheckpointRestores, "ckpt.restores")                              \
  X(kPoolTasksExecuted, "pool.tasks_executed")                         \
  X(kPoolTasksStolen, "pool.tasks_stolen")                             \
  X(kPoolParks, "pool.parks")                                          \
  X(kServeSubmitted, "serve.submitted")                                \
  X(kServeAccepted, "serve.accepted")                                  \
  X(kServeRejected, "serve.rejected")                                  \
  X(kServeCancelled, "serve.cancelled")                                \
  X(kServeCompleted, "serve.completed")                                \
  X(kServeDispatchedUnits, "serve.dispatched_units")

/// Last-write-wins instantaneous values.
#define ENTK_WELL_KNOWN_GAUGES(X)                                      \
  X(kEnginePendingEvents, "engine.pending_events")                     \
  X(kSchedulerWaitingUnits, "scheduler.waiting_units")                 \
  X(kServeQueueDepth, "serve.queue_depth")                             \
  X(kServeActiveSessions, "serve.active_sessions")

/// Log2-bucketed distributions (seconds unless noted).
#define ENTK_WELL_KNOWN_HISTOGRAMS(X)                                  \
  X(kUnitExecutionSeconds, "unit.execution_seconds")                   \
  X(kUnitQueueWaitSeconds, "unit.queue_wait_seconds")                  \
  X(kGraphFrontierBatchSize, "graph.frontier_batch_size")              \
  X(kServeSubmitLatencySeconds, "serve.submit_latency_seconds")        \
  X(kServeQueueWaitSeconds, "serve.queue_wait_seconds")
// clang-format on

namespace entk::obs {

#define ENTK_OBS_ENUM(id, name) id,
enum class WellKnownCounter : std::size_t {
  ENTK_WELL_KNOWN_COUNTERS(ENTK_OBS_ENUM) kCount
};
enum class WellKnownGauge : std::size_t {
  ENTK_WELL_KNOWN_GAUGES(ENTK_OBS_ENUM) kCount
};
enum class WellKnownHistogram : std::size_t {
  ENTK_WELL_KNOWN_HISTOGRAMS(ENTK_OBS_ENUM) kCount
};
#undef ENTK_OBS_ENUM

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed histogram covering [2^-32, 2^31] with
/// underflow/overflow clamped to the edge buckets. Tracks count and
/// sum so means are exact even though quantiles are bucket-resolution.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double value);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Upper bound of the bucket holding quantile `q` in [0,1]; 0 when
  /// the histogram is empty.
  double quantile(double q) const;
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound (exclusive) of bucket `i`: 2^(i-32).
  static double bucket_upper_bound(std::size_t i);
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The process-wide registry (leaky singleton, like TraceRecorder).
class Metrics {
 public:
  static Metrics& instance();

  Counter& counter(WellKnownCounter id) {
    return counters_[static_cast<std::size_t>(id)];
  }
  Gauge& gauge(WellKnownGauge id) {
    return gauges_[static_cast<std::size_t>(id)];
  }
  Histogram& histogram(WellKnownHistogram id) {
    return histograms_[static_cast<std::size_t>(id)];
  }

  /// Dynamic metrics: interned by name on first use (one exclusive
  /// lock), then a shared-lock lookup per call. Cache the reference
  /// in hot code.
  Counter& counter(std::string_view name) ENTK_EXCLUDES(names_mutex_);
  Gauge& gauge(std::string_view name) ENTK_EXCLUDES(names_mutex_);
  Histogram& histogram(std::string_view name)
      ENTK_EXCLUDES(names_mutex_);

  static const char* counter_name(WellKnownCounter id);
  static const char* gauge_name(WellKnownGauge id);
  static const char* histogram_name(WellKnownHistogram id);

  /// Every registered metric name (well-known + dynamic), sorted.
  std::vector<std::string> names() const ENTK_EXCLUDES(names_mutex_);

  /// `name value` lines (histograms add count/sum/mean/p50/p99).
  std::string to_text() const ENTK_EXCLUDES(names_mutex_);
  std::string to_json() const ENTK_EXCLUDES(names_mutex_);

  /// Zeroes every metric (dynamic ones stay registered). Test/bench
  /// hook; not synchronized against concurrent updates.
  void reset() ENTK_EXCLUDES(names_mutex_);

 private:
  Metrics() = default;
  ~Metrics() = delete;  // leaky by design

  std::array<Counter, static_cast<std::size_t>(WellKnownCounter::kCount)>
      counters_;
  std::array<Gauge, static_cast<std::size_t>(WellKnownGauge::kCount)>
      gauges_;
  std::array<Histogram,
             static_cast<std::size_t>(WellKnownHistogram::kCount)>
      histograms_;

  mutable SharedMutex names_mutex_{LockRank::kMetricsRegistry};
  // std::map nodes are pointer-stable, so returned references survive
  // later insertions.
  std::map<std::string, Counter, std::less<>> dynamic_counters_
      ENTK_GUARDED_BY(names_mutex_);
  std::map<std::string, Gauge, std::less<>> dynamic_gauges_
      ENTK_GUARDED_BY(names_mutex_);
  std::map<std::string, Histogram, std::less<>> dynamic_histograms_
      ENTK_GUARDED_BY(names_mutex_);
};

/// True when the translation units of the runtime were compiled with
/// ENTK_TRACE_* macros enabled (ENTK_ENABLE_TRACING=1).
bool tracing_compiled_in();

}  // namespace entk::obs
