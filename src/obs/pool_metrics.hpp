// Binds a WorkStealingPool's metric sink to the well-known "pool.*"
// registry counters. The pool lives in common/ and cannot depend on
// obs/, so layers that construct a pool (pilot, saga, core) inject
// this adapter at construction. Counter::add is one relaxed atomic on
// a compile-time array slot — safe from worker threads with any locks
// held.
#pragma once

#include "common/work_stealing_pool.hpp"
#include "obs/metrics.hpp"

namespace entk::obs {

/// Sink that forwards steal/park/execute deltas to Metrics::instance().
inline PoolMetricFn pool_metric_fn() {
  return [](PoolMetric metric, std::uint64_t n) {
    Metrics& metrics = Metrics::instance();
    switch (metric) {
      case PoolMetric::kExecuted:
        metrics.counter(WellKnownCounter::kPoolTasksExecuted).add(n);
        break;
      case PoolMetric::kStolen:
        metrics.counter(WellKnownCounter::kPoolTasksStolen).add(n);
        break;
      case PoolMetric::kParked:
        metrics.counter(WellKnownCounter::kPoolParks).add(n);
        break;
    }
  };
}

}  // namespace entk::obs
