#include "obs/trace.hpp"

#include <algorithm>

namespace entk::obs {
namespace {

// Events per slab; slabs are allocated lazily by the owning thread so
// an idle thread costs only a pointer array.
constexpr std::size_t kSlabEvents = 4096;
constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

// Capacities are powers of two so the hot path masks instead of
// dividing (a 64-bit div is ~25 cycles, ~half the record budget).
std::size_t round_up_to_pow2_slabs(std::size_t events) {
  std::size_t capacity = kSlabEvents;
  while (capacity < events) capacity <<= 1;
  return capacity;
}

}  // namespace

std::uint64_t trace_flow_id(std::string_view uid) {
  // FNV-1a, 64 bit.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : uid) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  // Reserve 0 as "no flow".
  return hash == 0 ? 1 : hash;
}

std::uint32_t next_pilot_ordinal() {
  static std::atomic<std::uint32_t> ordinal{0};
  return ordinal.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace {

// Session-name interning. Leaky for the same reason as the recorder:
// labels may be resolved during static teardown by exporters.
Mutex& session_registry_mutex() {
  static Mutex* const mutex = new Mutex(LockRank::kSessionRegistry);
  return *mutex;
}

std::vector<std::string>& session_names() {
  static std::vector<std::string>* const names =
      new std::vector<std::string>();
  return *names;
}

}  // namespace

std::uint32_t session_ordinal(std::string_view name) {
  if (name.empty()) return 0;
  MutexLock lock(session_registry_mutex());
  std::vector<std::string>& names = session_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i + 1);
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size());
}

std::string session_label(std::uint32_t ordinal) {
  if (ordinal == 0) return std::string();
  MutexLock lock(session_registry_mutex());
  const std::vector<std::string>& names = session_names();
  if (ordinal > names.size()) return std::string();
  return names[ordinal - 1];
}

/// One thread's ring of event slabs. Only the owning thread writes;
/// snapshot() reads under the recorder mutex with acquire loads on
/// `head` and the slab pointers (quiescent-snapshot semantics).
struct TraceRecorder::ThreadBuffer {
  ThreadBuffer(std::uint32_t thread_id, std::size_t capacity_events)
      : thread(thread_id),
        capacity(capacity_events),
        n_slabs(capacity_events / kSlabEvents),
        slabs(new std::atomic<TraceEvent*>[capacity_events / kSlabEvents]) {
    for (std::size_t i = 0; i < n_slabs; ++i) {
      slabs[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  ~ThreadBuffer() {
    for (std::size_t i = 0; i < n_slabs; ++i) {
      delete[] slabs[i].load(std::memory_order_relaxed);
    }
  }

  /// Owner-thread only: the slab holding `index`, allocated on first
  /// touch and published with a release store so snapshot() can read.
  TraceEvent* slab_for(std::size_t index) {
    std::atomic<TraceEvent*>& slot = slabs[index / kSlabEvents];
    TraceEvent* slab = slot.load(std::memory_order_relaxed);
    if (slab == nullptr) {
      slab = new TraceEvent[kSlabEvents];
      slot.store(slab, std::memory_order_release);
    }
    return slab;
  }

  const std::uint32_t thread;
  const std::size_t capacity;  ///< Events; a power of two of slabs.
  const std::size_t n_slabs;
  /// Total events ever written; the ring index is head % capacity.
  std::atomic<std::uint64_t> head{0};
  std::unique_ptr<std::atomic<TraceEvent*>[]> slabs;
};

TraceRecorder::TraceRecorder() : capacity_(kDefaultCapacity) {}

TraceRecorder& TraceRecorder::instance() {
  // Leaky: never destructed, so recording during static teardown (or
  // from detached-adjacent worker threads) stays safe.
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::set_capacity_per_thread(std::size_t events) {
  MutexLock lock(mutex_);
  capacity_ = round_up_to_pow2_slabs(events);
  for (auto& buffer : buffers_) retired_.push_back(std::move(buffer));
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

std::size_t TraceRecorder::capacity_per_thread() const {
  MutexLock lock(mutex_);
  return capacity_;
}

void TraceRecorder::record_always(const char* name, const char* category,
                                  TraceKind kind, double value,
                                  std::uint64_t flow_id,
                                  std::uint32_t pilot,
                                  std::uint32_t session) {
  ThreadBuffer& buffer = local_buffer();
  const std::uint64_t head =
      buffer.head.load(std::memory_order_relaxed);
  const std::size_t index =
      static_cast<std::size_t>(head & (buffer.capacity - 1));
  TraceEvent& event = buffer.slab_for(index)[index % kSlabEvents];
  const Clock* clock = clock_.load(std::memory_order_acquire);
  if (clock == nullptr) clock = &fallback_clock_;
  event.name = name;
  event.category = category;
  event.time = clock->now();
  event.value = value;
  event.flow_id = flow_id;
  event.thread = buffer.thread;
  event.pilot = pilot;
  event.session = session;
  event.kind = kind;
  buffer.head.store(head + 1, std::memory_order_release);
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  thread_local std::uint64_t cached_generation = 0;
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (buffer == nullptr || cached_generation != generation) {
    buffer = &register_thread();
    cached_generation = generation;
  }
  return *buffer;
}

TraceRecorder::ThreadBuffer& TraceRecorder::register_thread() {
  MutexLock lock(mutex_);
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(next_thread_id_++, capacity_));
  return *buffers_.back();
}

TraceRecorder::Stats TraceRecorder::stats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.threads = buffers_.size();
  for (const auto& buffer : buffers_) {
    const std::uint64_t head =
        buffer->head.load(std::memory_order_acquire);
    stats.recorded += std::min<std::uint64_t>(head, buffer->capacity);
    if (head > buffer->capacity) stats.dropped += head - buffer->capacity;
  }
  return stats;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::uint64_t head =
          buffer->head.load(std::memory_order_acquire);
      const std::uint64_t count =
          std::min<std::uint64_t>(head, buffer->capacity);
      events.reserve(events.size() + count);
      for (std::uint64_t i = head - count; i < head; ++i) {
        const std::size_t index =
            static_cast<std::size_t>(i % buffer->capacity);
        const TraceEvent* slab =
            buffer->slabs[index / kSlabEvents].load(
                std::memory_order_acquire);
        if (slab == nullptr) continue;  // never touched (racing clear)
        events.push_back(slab[index % kSlabEvents]);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  for (auto& buffer : buffers_) retired_.push_back(std::move(buffer));
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace entk::obs
