// Low-overhead trace recorder: spans, instants, counters.
//
// The hot path (record()) touches only a per-thread slab ring buffer
// and relaxed atomics -- no lock is ever taken while recording. The
// entk::Mutex guards thread registration and flush/snapshot only.
// Timestamps flow through an entk::Clock, so the same instrumentation
// yields virtual seconds on the simulated backend and wall seconds on
// the local backend (install the backend clock with ScopedTraceClock).
//
// Use the ENTK_TRACE_* macros, never record() directly: they compile
// to `((void)0)` when the build sets ENTK_ENABLE_TRACING=0, keeping
// the runtime hot paths bit-identical to an uninstrumented build.
// See docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

#ifndef ENTK_ENABLE_TRACING
#define ENTK_ENABLE_TRACING 1
#endif

namespace entk::obs {

enum class TraceKind : std::uint8_t {
  kSpanBegin,
  kSpanEnd,
  kInstant,
  kCounter,
};

/// One recorded event. `name` and `category` must be string literals
/// (or otherwise outlive the recorder): the hot path stores the
/// pointer, never copies.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  TimePoint time = 0.0;
  double value = 0.0;        ///< Counter value; 0 for spans/instants.
  std::uint64_t flow_id = 0; ///< Unit identity (trace_flow_id); 0=none.
  std::uint32_t thread = 0;  ///< Logical thread (registration order).
  std::uint32_t pilot = 0;   ///< Pilot ordinal; 0 = client/none.
  std::uint32_t session = 0; ///< Session ordinal; 0 = unnamed/none.
  TraceKind kind = TraceKind::kInstant;
};

/// Stable 64-bit identity for a unit uid (FNV-1a). Used to stitch the
/// events of one unit into a flow across threads and pilots.
std::uint64_t trace_flow_id(std::string_view uid);

/// Process-wide 1-based ordinal for pilot agents; ordinal 0 is the
/// client. The Chrome exporter maps ordinals to trace pids.
std::uint32_t next_pilot_ordinal();

/// Interns a session name and returns its process-wide 1-based trace
/// ordinal; the same name always maps to the same ordinal. The empty
/// name (legacy single-session runs) maps to ordinal 0.
std::uint32_t session_ordinal(std::string_view name);

/// Name interned for `ordinal`; "" for ordinal 0 or unknown ordinals.
std::string session_label(std::uint32_t ordinal);

/// Process-wide trace recorder. Leaky singleton: never destructed, so
/// worker threads may record during static teardown without risk.
class TraceRecorder {
 public:
  struct Stats {
    std::uint64_t recorded = 0;  ///< Events currently held (post-drop).
    std::uint64_t dropped = 0;   ///< Ring-overwritten events.
    std::size_t threads = 0;     ///< Threads that recorded anything.
  };

  static TraceRecorder& instance();

  /// Master switch; off by default. Checked with a relaxed load on
  /// every record, so toggling costs nothing on the hot path.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Timestamp source; nullptr restores the built-in wall clock. The
  /// pointee must outlive the installation (see ScopedTraceClock).
  void set_clock(const Clock* clock) {
    clock_.store(clock, std::memory_order_release);
  }

  /// Installs `clock` and returns the previous source, so nested
  /// installations (e.g. ResourceHandle::run inside a traced driver)
  /// can restore rather than clobber.
  const Clock* exchange_clock(const Clock* clock) {
    return clock_.exchange(clock, std::memory_order_acq_rel);
  }

  /// Ring capacity (events) for threads registered from now on;
  /// existing buffers are retired so every thread re-registers at the
  /// new size. Rounded up to a whole number of slabs.
  void set_capacity_per_thread(std::size_t events)
      ENTK_EXCLUDES(mutex_);
  std::size_t capacity_per_thread() const ENTK_EXCLUDES(mutex_);

  /// Hot path: append one event to this thread's ring. Lock-free once
  /// the thread is registered; oldest events are overwritten (and
  /// counted as dropped) when the ring wraps.
  void record(const char* name, const char* category, TraceKind kind,
              double value = 0.0, std::uint64_t flow_id = 0,
              std::uint32_t pilot = 0, std::uint32_t session = 0) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    record_always(name, category, kind, value, flow_id, pilot, session);
  }

  Stats stats() const ENTK_EXCLUDES(mutex_);

  /// All retained events, merged across threads and sorted by time
  /// (stable: intra-thread order is preserved between equal stamps).
  /// Quiescent-snapshot semantics: call only when no thread is
  /// actively recording (after a run), or freshly-written events may
  /// be missed or torn.
  std::vector<TraceEvent> snapshot() const ENTK_EXCLUDES(mutex_);

  /// Drops all retained events and resets per-thread rings. Buffers
  /// are retired, never freed: a thread racing a clear keeps writing
  /// into valid (discarded) memory and re-registers on its next event.
  void clear() ENTK_EXCLUDES(mutex_);

 private:
  struct ThreadBuffer;

  TraceRecorder();
  ~TraceRecorder() = delete;  // leaky by design

  void record_always(const char* name, const char* category,
                     TraceKind kind, double value, std::uint64_t flow_id,
                     std::uint32_t pilot, std::uint32_t session);
  ThreadBuffer& local_buffer();
  ThreadBuffer& register_thread() ENTK_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<const Clock*> clock_{nullptr};
  WallClock fallback_clock_;
  /// Bumped by clear()/set_capacity_per_thread(); threads re-register
  /// when their cached buffer generation is stale.
  std::atomic<std::uint64_t> generation_{1};

  mutable Mutex mutex_{LockRank::kTraceRecorder};
  std::size_t capacity_ ENTK_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      ENTK_GUARDED_BY(mutex_);
  /// Buffers from previous generations; kept allocated forever so
  /// stale thread-local pointers never dangle.
  std::vector<std::unique_ptr<ThreadBuffer>> retired_
      ENTK_GUARDED_BY(mutex_);
  std::uint32_t next_thread_id_ ENTK_GUARDED_BY(mutex_) = 0;
};

/// Installs `clock` as the trace timestamp source for a scope and
/// restores the previous source on exit (nesting-safe). Confine the
/// scope to the clock's lifetime (e.g. around a backend-driven run).
class ScopedTraceClock {
 public:
  explicit ScopedTraceClock(const Clock& clock)
      : previous_(TraceRecorder::instance().exchange_clock(&clock)) {}
  ~ScopedTraceClock() {
    TraceRecorder::instance().exchange_clock(previous_);
  }

  ScopedTraceClock(const ScopedTraceClock&) = delete;
  ScopedTraceClock& operator=(const ScopedTraceClock&) = delete;

 private:
  const Clock* previous_;
};

/// RAII span: records kSpanBegin on construction and kSpanEnd on
/// destruction. Arms once, so a mid-span enable/disable cannot emit
/// an unmatched begin or end.
class SpanGuard {
 public:
  SpanGuard(const char* name, const char* category,
            std::uint64_t flow_id = 0, std::uint32_t pilot = 0,
            std::uint32_t session = 0)
      : name_(name),
        category_(category),
        flow_id_(flow_id),
        pilot_(pilot),
        session_(session),
        armed_(TraceRecorder::instance().enabled()) {
    if (armed_) {
      TraceRecorder::instance().record(name_, category_,
                                       TraceKind::kSpanBegin, 0.0,
                                       flow_id_, pilot_, session_);
    }
  }
  ~SpanGuard() {
    if (armed_) {
      TraceRecorder::instance().record(name_, category_,
                                       TraceKind::kSpanEnd, 0.0, flow_id_,
                                       pilot_, session_);
    }
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t flow_id_;
  std::uint32_t pilot_;
  std::uint32_t session_;
  bool armed_;
};

}  // namespace entk::obs

// clang-format off
#define ENTK_OBS_CONCAT_INNER(a, b) a##b
#define ENTK_OBS_CONCAT(a, b) ENTK_OBS_CONCAT_INNER(a, b)

#if ENTK_ENABLE_TRACING
#define ENTK_TRACE_SPAN(name, category)                                \
  ::entk::obs::SpanGuard ENTK_OBS_CONCAT(entk_trace_span_, __LINE__)(  \
      (name), (category))
#define ENTK_TRACE_SPAN_FLOW(name, category, flow_id, pilot)           \
  ::entk::obs::SpanGuard ENTK_OBS_CONCAT(entk_trace_span_, __LINE__)(  \
      (name), (category), (flow_id), (pilot))
#define ENTK_TRACE_SPAN_BEGIN(name, category, flow_id, pilot)          \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kSpanBegin, 0.0,     \
      (flow_id), (pilot))
#define ENTK_TRACE_SPAN_END(name, category, flow_id, pilot)            \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kSpanEnd, 0.0,       \
      (flow_id), (pilot))
#define ENTK_TRACE_INSTANT(name, category)                             \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kInstant)
#define ENTK_TRACE_INSTANT_FLOW(name, category, flow_id, pilot)        \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kInstant, 0.0,       \
      (flow_id), (pilot))
#define ENTK_TRACE_COUNTER(name, category, value)                      \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kCounter,            \
      static_cast<double>(value))
#define ENTK_TRACE_SPAN_S(name, category, flow_id, pilot, session)     \
  ::entk::obs::SpanGuard ENTK_OBS_CONCAT(entk_trace_span_, __LINE__)(  \
      (name), (category), (flow_id), (pilot), (session))
#define ENTK_TRACE_SPAN_BEGIN_S(name, category, flow_id, pilot,        \
                                session)                               \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kSpanBegin, 0.0,     \
      (flow_id), (pilot), (session))
#define ENTK_TRACE_SPAN_END_S(name, category, flow_id, pilot, session) \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kSpanEnd, 0.0,       \
      (flow_id), (pilot), (session))
#define ENTK_TRACE_INSTANT_FLOW_S(name, category, flow_id, pilot,      \
                                  session)                             \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kInstant, 0.0,       \
      (flow_id), (pilot), (session))
#define ENTK_TRACE_COUNTER_S(name, category, value, session)           \
  ::entk::obs::TraceRecorder::instance().record(                       \
      (name), (category), ::entk::obs::TraceKind::kCounter,            \
      static_cast<double>(value), 0, 0, (session))
#else
#define ENTK_TRACE_SPAN(name, category) ((void)0)
#define ENTK_TRACE_SPAN_FLOW(name, category, flow_id, pilot) ((void)0)
#define ENTK_TRACE_SPAN_BEGIN(name, category, flow_id, pilot) ((void)0)
#define ENTK_TRACE_SPAN_END(name, category, flow_id, pilot) ((void)0)
#define ENTK_TRACE_INSTANT(name, category) ((void)0)
#define ENTK_TRACE_INSTANT_FLOW(name, category, flow_id, pilot) ((void)0)
#define ENTK_TRACE_COUNTER(name, category, value) ((void)0)
#define ENTK_TRACE_SPAN_S(name, category, flow_id, pilot, session) \
  ((void)0)
#define ENTK_TRACE_SPAN_BEGIN_S(name, category, flow_id, pilot,    \
                                session)                           \
  ((void)0)
#define ENTK_TRACE_SPAN_END_S(name, category, flow_id, pilot,      \
                              session)                             \
  ((void)0)
#define ENTK_TRACE_INSTANT_FLOW_S(name, category, flow_id, pilot,  \
                                  session)                         \
  ((void)0)
#define ENTK_TRACE_COUNTER_S(name, category, value, session) ((void)0)
#endif
// clang-format on
