// Agent: the in-pilot executor.
//
// Once a pilot's container job starts, its agent bootstraps and then
// continuously maps waiting units onto the pilot's cores using a
// pluggable Scheduler. The agent charges each launched unit a
// *serialized* spawn overhead (one spawner process, as in
// RADICAL-Pilot) — this is the machine-profile parameter behind the
// paper's "overheads depend on the number of tasks, not their size".
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "pilot/compute_unit.hpp"
#include "pilot/scheduler.hpp"

namespace entk::pilot {

class Agent {
 public:
  virtual ~Agent() = default;

  /// Called once when the container job starts. The agent bootstraps
  /// (a machine-profile delay on the simulated backend) and then calls
  /// `on_ready` and begins scheduling.
  virtual void start(std::function<void()> on_ready) = 0;

  /// Enqueues units for execution. Units must be kPendingExecution.
  virtual Status submit(std::vector<ComputeUnitPtr> units) = 0;

  /// Cancels all waiting units (running ones finish).
  virtual void cancel_waiting() = 0;

  /// Pilot-loss recovery: drains every unit this agent still holds and
  /// returns them rewound to kPendingExecution so a unit manager can
  /// requeue them onto surviving pilots (without burning retry
  /// budget). The simulated backend evicts waiting *and* in-flight
  /// units (their remaining events are voided); the local backend can
  /// only evict waiting units — payload threads are uninterruptible.
  virtual std::vector<ComputeUnitPtr> evict_inflight() = 0;

  /// Cancels one unit (the paper's kill/replace adaptivity). Waiting
  /// units cancel on every backend; an *executing* unit can be killed
  /// on the simulated backend (its remaining events are voided and its
  /// cores reclaimed) but not on the local backend, where payloads run
  /// on uninterruptible threads — there the call fails with
  /// kFailedPrecondition. Unknown units fail with kNotFound.
  virtual Status cancel_unit(const ComputeUnitPtr& unit) = 0;

  virtual Count total_cores() const = 0;
  virtual Count free_cores() const = 0;
  virtual std::size_t waiting_units() const = 0;
  virtual std::size_t running_units() const = 0;

  /// Cumulative serialized spawn overhead charged so far (profiling).
  virtual Duration total_spawn_overhead() const = 0;

  /// The pilot-wide shared directory, if this agent has one (local
  /// backend); empty on backends without a real filesystem.
  virtual std::filesystem::path shared_directory() const { return {}; }
};

}  // namespace entk::pilot
