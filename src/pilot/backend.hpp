// Execution backend: everything that differs between "run inside the
// discrete-event simulator" and "really run on this host".
//
// The pilot managers, unit managers and the whole EnTK layer above are
// written against this interface only, which is the C++ form of the
// paper's claim that expression of the application is decoupled from
// execution and resource management.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "pilot/agent.hpp"
#include "saga/job_service.hpp"
#include "sim/machine.hpp"

namespace entk::pilot {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// The SAGA service pilots are submitted through.
  virtual saga::JobService& job_service() = 0;

  /// The clock profiling timestamps come from.
  virtual const Clock& clock() const = 0;

  /// The machine this backend executes on.
  virtual const sim::MachineProfile& machine() const = 0;

  /// Creates the in-pilot agent for `cores` cores using the named
  /// scheduler policy (see make_scheduler()).
  virtual Result<std::unique_ptr<Agent>> make_agent(
      Count cores, const std::string& scheduler_policy) = 0;

  /// Advances execution until `done()` returns true: steps the event
  /// engine (simulated) or waits on worker threads (local). Fails with
  /// kInternal if execution can no longer progress, or kTimedOut after
  /// `timeout` seconds on this backend's clock.
  virtual Status drive_until(const std::function<bool()>& done,
                             Duration timeout = kTimeInfinity) = 0;

  /// Runs `fn` once after `delay` seconds on this backend's clock (an
  /// engine event on the simulated backend; a timer drained by
  /// drive_until on the local one). Used by the unit manager for
  /// retry-backoff delays. The callback may re-enter the runtime.
  /// Returns an opaque timer token (the sim::EventId on the simulated
  /// backend; 0 on backends that cannot introspect timers) so
  /// checkpointing can capture pending retries.
  virtual std::uint64_t schedule_after(Duration delay,
                                       std::function<void()> fn) = 0;

  /// Charges `cost` seconds of client-side work to this backend's
  /// clock: the simulated backend advances virtual time (running any
  /// events that fall due); the local backend is a no-op because real
  /// work takes real time by itself. Used to model toolkit overheads
  /// (task creation, init) on the simulated backend.
  virtual void advance(Duration cost) = 0;

  virtual std::string name() const = 0;
};

}  // namespace entk::pilot
