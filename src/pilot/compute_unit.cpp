#include "pilot/compute_unit.hpp"

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace entk::pilot {

ComputeUnit::ComputeUnit(std::string uid, UnitDescription description,
                         const Clock& clock)
    : uid_(std::move(uid)),
      description_(std::move(description)),
      clock_(clock),
      trace_flow_(obs::trace_flow_id(uid_)),
      session_ordinal_(obs::session_ordinal(description_.session)) {}

UnitState ComputeUnit::state() const {
  MutexLock lock(mutex_);
  return state_;
}

Status ComputeUnit::final_status() const {
  MutexLock lock(mutex_);
  return final_status_;
}

Count ComputeUnit::retries() const {
  MutexLock lock(mutex_);
  return retries_;
}

Count ComputeUnit::epoch() const {
  MutexLock lock(mutex_);
  return epoch_;
}

TimePoint ComputeUnit::created_at() const {
  MutexLock lock(mutex_);
  return created_at_;
}
TimePoint ComputeUnit::submitted_at() const {
  MutexLock lock(mutex_);
  return submitted_at_;
}
TimePoint ComputeUnit::exec_started_at() const {
  MutexLock lock(mutex_);
  return exec_started_at_;
}
TimePoint ComputeUnit::exec_stopped_at() const {
  MutexLock lock(mutex_);
  return exec_stopped_at_;
}
TimePoint ComputeUnit::finished_at() const {
  MutexLock lock(mutex_);
  return finished_at_;
}

Duration ComputeUnit::execution_time() const {
  MutexLock lock(mutex_);
  if (exec_started_at_ == kNoTime || exec_stopped_at_ == kNoTime) return 0.0;
  return exec_stopped_at_ - exec_started_at_;
}

void ComputeUnit::on_state_change(Callback callback) {
  MutexLock lock(mutex_);
  // A settled unit can never transition again, so the callback could
  // never fire; retaining it would only keep its captures (often other
  // units) alive in a reference cycle.
  if (settled_locked()) return;
  callbacks_.push_back(std::move(callback));
}

bool ComputeUnit::settled_locked() const {
  switch (state_) {
    case UnitState::kDone:
    case UnitState::kCanceled:
      return true;
    case UnitState::kFailed:
      return retries_ >= description_.retry.max_retries;
    default:
      return false;
  }
}

Status ComputeUnit::advance_state(UnitState to, Status failure) {
  std::vector<Callback> callbacks;
  {
    MutexLock lock(mutex_);
    if (!is_valid_transition(state_, to)) {
      return make_error(Errc::kFailedPrecondition,
                        "unit " + uid_ + ": illegal transition " +
                            unit_state_name(state_) + " -> " +
                            unit_state_name(to));
    }
    const UnitState from = state_;
    state_ = to;
    const TimePoint now = clock_.now();
    switch (to) {
      case UnitState::kPendingExecution:
        if (from != UnitState::kNew) {
          // Pilot-loss rewind: the old attempt's timestamps and any
          // events an agent scheduled for it are void.
          exec_started_at_ = kNoTime;
          exec_stopped_at_ = kNoTime;
          finished_at_ = kNoTime;
          ++epoch_;
          ENTK_TRACE_INSTANT_FLOW_S("unit.exec_reset", "unit",
                                    trace_flow_, 0, session_ordinal_);
        }
        break;
      case UnitState::kExecuting:
        exec_started_at_ = now;
        ENTK_TRACE_SPAN_BEGIN_S("unit.exec", "unit", trace_flow_, 0,
                                session_ordinal_);
        break;
      case UnitState::kStagingOutput:
        exec_stopped_at_ = now;
        ENTK_TRACE_SPAN_END_S("unit.exec", "unit", trace_flow_, 0,
                              session_ordinal_);
        break;
      case UnitState::kDone:
      case UnitState::kFailed:
      case UnitState::kCanceled:
        if (exec_started_at_ != kNoTime && exec_stopped_at_ == kNoTime) {
          exec_stopped_at_ = now;
          ENTK_TRACE_SPAN_END_S("unit.exec", "unit", trace_flow_, 0,
                              session_ordinal_);
        }
        finished_at_ = now;
        break;
      default:
        break;
    }
    ENTK_TRACE_INSTANT_FLOW_S(unit_state_name(to), "unit.state",
                              trace_flow_, 0, session_ordinal_);
    if (to == UnitState::kFailed) {
      final_status_ = failure.is_ok()
                          ? make_error(Errc::kExecutionFailed,
                                       "unit " + uid_ + " failed")
                          : failure;
    }
    callbacks = callbacks_;
    // Settling is the last transition this unit will ever make: drop
    // the observer list so callback captures (frequently shared_ptrs
    // to sibling units, as in watch_unit exchange chains) cannot form
    // unreclaimable reference cycles between units.
    if (settled_locked()) callbacks_.clear();
  }
  ENTK_DEBUG("pilot.unit") << uid_ << " -> " << unit_state_name(to);
  for (const auto& callback : callbacks) callback(*this, to);
  return Status::ok();
}

void ComputeUnit::stamp_created() {
  MutexLock lock(mutex_);
  if (created_at_ == kNoTime) created_at_ = clock_.now();
}

void ComputeUnit::stamp_submitted() {
  MutexLock lock(mutex_);
  submitted_at_ = clock_.now();
}

void ComputeUnit::note_retry() {
  MutexLock lock(mutex_);
  ++retries_;
}

ComputeUnit::SavedState ComputeUnit::save_state() const {
  MutexLock lock(mutex_);
  SavedState saved;
  saved.state = state_;
  saved.final_status = final_status_;
  saved.retries = retries_;
  saved.epoch = epoch_;
  saved.created_at = created_at_;
  saved.submitted_at = submitted_at_;
  saved.exec_started_at = exec_started_at_;
  saved.exec_stopped_at = exec_stopped_at_;
  saved.finished_at = finished_at_;
  return saved;
}

void ComputeUnit::restore_state(const SavedState& saved) {
  MutexLock lock(mutex_);
  state_ = saved.state;
  final_status_ = saved.final_status;
  retries_ = saved.retries;
  epoch_ = saved.epoch;
  created_at_ = saved.created_at;
  submitted_at_ = saved.submitted_at;
  exec_started_at_ = saved.exec_started_at;
  exec_stopped_at_ = saved.exec_stopped_at;
  finished_at_ = saved.finished_at;
}

Status ComputeUnit::reset_for_retry() {
  MutexLock lock(mutex_);
  if (state_ != UnitState::kFailed) {
    return make_error(Errc::kFailedPrecondition,
                      "unit " + uid_ + " is not failed; cannot retry");
  }
  state_ = UnitState::kPendingExecution;
  final_status_ = Status::ok();
  exec_started_at_ = kNoTime;
  exec_stopped_at_ = kNoTime;
  finished_at_ = kNoTime;
  ++epoch_;
  ENTK_TRACE_INSTANT_FLOW_S("unit.exec_reset", "unit", trace_flow_, 0,
                            session_ordinal_);
  return Status::ok();
}

}  // namespace entk::pilot
