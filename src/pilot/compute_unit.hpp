// ComputeUnit: one task in flight, with its profiling timeline.
//
// The timeline drives the paper's overhead decomposition:
//   created -> submitted  : EnTK pattern overhead (creation+submission)
//   submitted -> started  : runtime (agent) overhead: queueing + spawn
//   started -> stopped    : execution time
//   stopped -> finalised  : output staging + bookkeeping
// Thread-safe for the local backend (worker threads mutate state).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "pilot/descriptions.hpp"
#include "pilot/states.hpp"

namespace entk::pilot {

class ComputeUnit {
 public:
  using Callback = std::function<void(ComputeUnit&, UnitState)>;

  ComputeUnit(std::string uid, UnitDescription description,
              const Clock& clock);

  const std::string& uid() const { return uid_; }
  const UnitDescription& description() const { return description_; }

  /// Stable trace identity (obs::trace_flow_id of the uid), computed
  /// once so hot-path instrumentation never re-hashes the uid.
  std::uint64_t trace_flow() const { return trace_flow_; }

  /// Trace ordinal of the owning session (obs::session_ordinal of
  /// description().session), cached so instrumentation in agents never
  /// re-interns the name. 0 for legacy unnamed sessions.
  std::uint32_t session_ordinal() const { return session_ordinal_; }

  UnitState state() const ENTK_EXCLUDES(mutex_);
  Status final_status() const ENTK_EXCLUDES(mutex_);

  /// Number of times this unit has been (re)started after failure.
  Count retries() const ENTK_EXCLUDES(mutex_);

  /// Execution-attempt epoch: bumped every time the unit is rewound to
  /// kPendingExecution (retry or pilot-loss requeue). Agents capture
  /// it when scheduling lifecycle events so stale events from a dead
  /// attempt cannot act on a relaunched unit.
  Count epoch() const ENTK_EXCLUDES(mutex_);

  // Profiling timeline (kNoTime until stamped).
  /// Accepted by the unit manager.
  TimePoint created_at() const ENTK_EXCLUDES(mutex_);
  /// Handed to the agent.
  TimePoint submitted_at() const ENTK_EXCLUDES(mutex_);
  TimePoint exec_started_at() const ENTK_EXCLUDES(mutex_);
  TimePoint exec_stopped_at() const ENTK_EXCLUDES(mutex_);
  TimePoint finished_at() const ENTK_EXCLUDES(mutex_);

  /// Time spent occupying cores (exec_stopped - exec_started); 0 if the
  /// unit never executed.
  Duration execution_time() const ENTK_EXCLUDES(mutex_);

  void on_state_change(Callback callback) ENTK_EXCLUDES(mutex_);

  // --- runtime interface (agents and unit managers only) ---
  Status advance_state(UnitState to, Status failure = Status::ok())
      ENTK_EXCLUDES(mutex_);
  void stamp_created() ENTK_EXCLUDES(mutex_);
  void stamp_submitted() ENTK_EXCLUDES(mutex_);
  void note_retry() ENTK_EXCLUDES(mutex_);
  /// Rewinds a failed unit to kPendingExecution for resubmission.
  Status reset_for_retry() ENTK_EXCLUDES(mutex_);

  // --- checkpoint/restart (ckpt::Coordinator only) ---
  /// All mutable state apart from callbacks (re-wired on restore).
  struct SavedState {
    UnitState state = UnitState::kNew;
    Status final_status;
    Count retries = 0;
    Count epoch = 0;
    TimePoint created_at = kNoTime;
    TimePoint submitted_at = kNoTime;
    TimePoint exec_started_at = kNoTime;
    TimePoint exec_stopped_at = kNoTime;
    TimePoint finished_at = kNoTime;
  };
  SavedState save_state() const ENTK_EXCLUDES(mutex_);
  /// Injects a saved state directly; fires no callbacks and performs no
  /// transition validation (the snapshot was valid when taken).
  void restore_state(const SavedState& saved) ENTK_EXCLUDES(mutex_);

 private:
  /// Terminal with no retry budget left: no further transition (and
  /// therefore no callback) is possible.
  bool settled_locked() const ENTK_REQUIRES(mutex_);

  const std::string uid_;
  const UnitDescription description_;
  const Clock& clock_;
  const std::uint64_t trace_flow_;
  const std::uint32_t session_ordinal_;

  mutable Mutex mutex_{LockRank::kComputeUnit};
  UnitState state_ ENTK_GUARDED_BY(mutex_) = UnitState::kNew;
  Status final_status_ ENTK_GUARDED_BY(mutex_);
  Count retries_ ENTK_GUARDED_BY(mutex_) = 0;
  Count epoch_ ENTK_GUARDED_BY(mutex_) = 0;
  TimePoint created_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  TimePoint submitted_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  TimePoint exec_started_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  TimePoint exec_stopped_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  TimePoint finished_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  std::vector<Callback> callbacks_ ENTK_GUARDED_BY(mutex_);
};

using ComputeUnitPtr = std::shared_ptr<ComputeUnit>;

}  // namespace entk::pilot
