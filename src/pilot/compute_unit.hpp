// ComputeUnit: one task in flight, with its profiling timeline.
//
// The timeline drives the paper's overhead decomposition:
//   created -> submitted  : EnTK pattern overhead (creation+submission)
//   submitted -> started  : runtime (agent) overhead: queueing + spawn
//   started -> stopped    : execution time
//   stopped -> finalised  : output staging + bookkeeping
// Thread-safe for the local backend (worker threads mutate state).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "pilot/descriptions.hpp"
#include "pilot/states.hpp"

namespace entk::pilot {

class ComputeUnit {
 public:
  using Callback = std::function<void(ComputeUnit&, UnitState)>;

  ComputeUnit(std::string uid, UnitDescription description,
              const Clock& clock);

  const std::string& uid() const { return uid_; }
  const UnitDescription& description() const { return description_; }

  UnitState state() const;
  Status final_status() const;

  /// Number of times this unit has been (re)started after failure.
  Count retries() const;

  // Profiling timeline (kNoTime until stamped).
  TimePoint created_at() const;    ///< Accepted by the unit manager.
  TimePoint submitted_at() const;  ///< Handed to the agent.
  TimePoint exec_started_at() const;
  TimePoint exec_stopped_at() const;
  TimePoint finished_at() const;

  /// Time spent occupying cores (exec_stopped - exec_started); 0 if the
  /// unit never executed.
  Duration execution_time() const;

  void on_state_change(Callback callback);

  // --- runtime interface (agents and unit managers only) ---
  Status advance_state(UnitState to, Status failure = Status::ok());
  void stamp_created();
  void stamp_submitted();
  void note_retry();
  /// Rewinds a failed unit to kPendingExecution for resubmission.
  Status reset_for_retry();

 private:
  const std::string uid_;
  const UnitDescription description_;
  const Clock& clock_;

  mutable std::mutex mutex_;
  UnitState state_ = UnitState::kNew;
  Status final_status_;
  Count retries_ = 0;
  TimePoint created_at_ = kNoTime;
  TimePoint submitted_at_ = kNoTime;
  TimePoint exec_started_at_ = kNoTime;
  TimePoint exec_stopped_at_ = kNoTime;
  TimePoint finished_at_ = kNoTime;
  std::vector<Callback> callbacks_;
};

using ComputeUnitPtr = std::shared_ptr<ComputeUnit>;

}  // namespace entk::pilot
