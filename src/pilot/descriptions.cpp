#include "pilot/descriptions.hpp"

namespace entk::pilot {

Status PilotDescription::validate() const {
  if (resource.empty()) {
    return make_error(Errc::kInvalidArgument,
                      "pilot description needs a resource name");
  }
  if (cores < 1) {
    return make_error(Errc::kInvalidArgument,
                      "pilot must request at least one core");
  }
  if (runtime <= 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "pilot runtime must be positive");
  }
  return Status::ok();
}

Status UnitDescription::validate() const {
  if (cores < 1) {
    return make_error(Errc::kInvalidArgument,
                      "unit '" + name + "' must request at least one core");
  }
  if (!uses_mpi && cores > 1) {
    return make_error(Errc::kInvalidArgument,
                      "unit '" + name +
                          "' requests multiple cores but is not MPI");
  }
  if (simulated_duration < 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "unit '" + name + "' has negative duration");
  }
  {
    const Status retry_status = retry.validate();
    if (!retry_status.is_ok()) {
      return make_error(Errc::kInvalidArgument,
                        "unit '" + name + "': " + retry_status.message());
    }
  }
  for (const auto& directive : input_staging) {
    if (directive.source.empty()) {
      return make_error(Errc::kInvalidArgument,
                        "unit '" + name + "' has staging without a source");
    }
  }
  for (const auto& directive : output_staging) {
    if (directive.source.empty()) {
      return make_error(Errc::kInvalidArgument,
                        "unit '" + name + "' has staging without a source");
    }
  }
  return Status::ok();
}

}  // namespace entk::pilot
