// Descriptions of pilots and compute units (the RP API analogues of
// ComputePilotDescription / ComputeUnitDescription).
#pragma once

#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "pilot/retry_policy.hpp"

namespace entk::pilot {

/// Requests one pilot: a container job holding `cores` cores on
/// `resource` for `runtime` seconds, inside which any number of units
/// can be scheduled (application-level scheduling).
struct PilotDescription {
  std::string resource;      ///< Machine name, e.g. "xsede.comet".
  Count cores = 0;           ///< Cores to hold.
  Duration runtime = 3600;   ///< Walltime of the container job.
  std::string queue;         ///< Batch queue (informational).
  std::string project;       ///< Allocation to charge (informational).
  std::string session;       ///< Owning session; "" = legacy unnamed.

  Status validate() const;
};

/// One file-staging action. On the simulated backend the transfer costs
/// latency + size/bandwidth; on the local backend the file is really
/// copied (or linked) between the unit sandbox and the shared space.
struct StagingDirective {
  enum class Action { kCopy, kLink, kMove };
  std::string source;      ///< Path relative to shared space (input) or
                           ///< sandbox (output).
  std::string target;      ///< Destination path, same conventions.
  Action action = Action::kCopy;
  double size_mb = 0.0;    ///< Transfer size for the simulated backend.
};

/// Runtime context a unit payload executes in (local backend).
struct UnitRuntimeContext {
  std::filesystem::path sandbox;  ///< Private working directory.
  std::filesystem::path shared;   ///< Pilot-wide shared directory.
  Count cores = 1;                ///< Cores assigned to this unit.
  const std::map<std::string, std::string>* environment = nullptr;
};

/// In-process stand-in for the unit's executable.
using UnitPayload = std::function<Status(const UnitRuntimeContext&)>;

/// Requests one compute unit (task).
struct UnitDescription {
  std::string name;                 ///< Kernel/task label for profiling.
  std::string executable;           ///< Command line (informational).
  std::vector<std::string> arguments;
  std::map<std::string, std::string> environment;
  Count cores = 1;                  ///< Cores (MPI ranks) required.
  bool uses_mpi = false;            ///< Multi-core MPI launch.
  /// Owning session; "" = legacy unnamed. Stamped by the UnitManager
  /// on submission — callers never set it by hand.
  std::string session;
  std::vector<StagingDirective> input_staging;
  std::vector<StagingDirective> output_staging;

  /// Real work for the local backend.
  UnitPayload payload;
  /// Core occupancy time for the simulated backend.
  Duration simulated_duration = 0.0;
  /// Failure injection (simulated backend): unit fails after running
  /// — once, on its first execution attempt.
  bool simulated_fail = false;
  /// Hang injection (simulated backend): the first execution attempt
  /// never finishes; only retry.execution_timeout can reclaim it.
  bool simulated_hang = false;
  /// Retry/backoff/timeout policy (both backends).
  RetryPolicy retry;

  Status validate() const;
};

}  // namespace entk::pilot
