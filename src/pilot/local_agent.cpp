#include "pilot/local_agent.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pool_metrics.hpp"
#include "obs/trace.hpp"
#include "pilot/stager.hpp"

namespace entk::pilot {

namespace fs = std::filesystem;

LocalAgent::LocalAgent(sim::MachineProfile machine, Count cores,
                       std::unique_ptr<Scheduler> scheduler,
                       const Clock& clock, fs::path session_dir)
    : machine_(std::move(machine)),
      cores_(cores),
      scheduler_(std::move(scheduler)),
      clock_(clock),
      session_dir_(std::move(session_dir)),
      free_(cores),
      trace_ordinal_(obs::next_pilot_ordinal()) {
  ENTK_CHECK(cores_ >= 1, "agent needs at least one core");
  ENTK_CHECK(scheduler_ != nullptr, "agent needs a scheduler");
  shared_dir_ = session_dir_ / "shared";
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(cores_), 16);
  pool_ = std::make_unique<WorkStealingPool>(workers, obs::pool_metric_fn());
}

LocalAgent::~LocalAgent() {
  // Workers reference this object — and pool_ itself, when a settling
  // unit re-enters schedule_locked. Shut down BEFORE reset():
  // unique_ptr::reset nulls the pointer before running the
  // destructor, so a worker mid-settlement would dereference null.
  pool_->shutdown();
  pool_.reset();
}

void LocalAgent::start(std::function<void()> on_ready) {
  {
    MutexLock lock(mutex_);
    ENTK_CHECK(!started_, "agent started twice");
    fs::create_directories(shared_dir_);
    fs::create_directories(session_dir_ / "units");
    started_ = true;
  }
  if (on_ready) on_ready();
  MutexLock lock(mutex_);
  schedule_locked();
}

Status LocalAgent::submit(std::vector<ComputeUnitPtr> units) {
  std::vector<ComputeUnitPtr> rejected;
  Status precondition = Status::ok();
  {
    MutexLock lock(mutex_);
    for (auto& unit : units) {
      if (unit->state() != UnitState::kPendingExecution) {
        precondition = make_error(Errc::kFailedPrecondition,
                                  "unit " + unit->uid() + " is " +
                                      unit_state_name(unit->state()) +
                                      "; expected pending_execution");
        break;
      }
      if (unit->description().cores > cores_) {
        rejected.push_back(std::move(unit));
        continue;
      }
      unit->stamp_submitted();
      // Aggregate metrics by design. entk-lint: allow(global-run-state)
      obs::Metrics::instance()
          .counter(obs::WellKnownCounter::kSchedulerWaitingPushes)
          .add();
      waiting_.push(std::move(unit));
    }
    if (started_) schedule_locked();
  }
  // Fail over-sized units only after releasing mutex_: the kFailed
  // transition fires UnitManager/GraphExecutor callbacks whose locks
  // order BEFORE the agent's (and resubmission could re-enter this
  // agent).
  for (auto& unit : rejected) {
    ENTK_RETURN_IF_ERROR(unit->advance_state(
        UnitState::kFailed,
        make_error(Errc::kResourceExhausted,
                   "unit " + unit->uid() + " needs " +
                       std::to_string(unit->description().cores) +
                       " cores; pilot has " + std::to_string(cores_))));
  }
  return precondition;
}

Status LocalAgent::cancel_unit(const ComputeUnitPtr& unit) {
  {
    MutexLock lock(mutex_);
    if (waiting_.erase(unit.get())) {
      // removed from the backlog; finalized below
    } else if (!pilot::is_final(unit->state()) &&
               unit->state() != UnitState::kNew) {
      // Executing on a worker thread: payloads are uninterruptible.
      return make_error(Errc::kFailedPrecondition,
                        "unit " + unit->uid() +
                            " is executing locally and cannot be killed");
    } else {
      return make_error(Errc::kNotFound,
                        "unit " + unit->uid() +
                            " is not active on this agent");
    }
  }
  return unit->advance_state(UnitState::kCanceled);
}

void LocalAgent::cancel_waiting() {
  std::vector<ComputeUnitPtr> cancelled;
  {
    MutexLock lock(mutex_);
    cancelled = waiting_.drain();
  }
  for (const auto& unit : cancelled) {
    (void)unit->advance_state(UnitState::kCanceled);
  }
}

std::vector<ComputeUnitPtr> LocalAgent::evict_inflight() {
  // Waiting units are already kPendingExecution; running payloads are
  // on uninterruptible threads and settle on their own.
  MutexLock lock(mutex_);
  return waiting_.drain();
}

Count LocalAgent::free_cores() const {
  MutexLock lock(mutex_);
  return free_;
}

std::size_t LocalAgent::waiting_units() const {
  MutexLock lock(mutex_);
  return waiting_.size();
}

std::size_t LocalAgent::running_units() const {
  MutexLock lock(mutex_);
  return running_;
}

Duration LocalAgent::total_spawn_overhead() const {
  MutexLock lock(mutex_);
  return spawn_total_;
}

void LocalAgent::wait_idle() {
  MutexLock lock(mutex_);
  while (!waiting_.empty() || running_ != 0) idle_cv_.wait(mutex_);
}

void LocalAgent::schedule_locked() {
  if (waiting_.empty() || free_ <= 0) return;
  if (waiting_.min_cores() > free_) return;  // nothing can fit
  ENTK_TRACE_SPAN("agent.schedule", "agent");
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  auto& metrics = obs::Metrics::instance();
  metrics.counter(obs::WellKnownCounter::kSchedulerCycles).add();
  auto selected = scheduler_->select_from(waiting_, free_);
  metrics.gauge(obs::WellKnownGauge::kSchedulerWaitingUnits)
      .set(static_cast<double>(waiting_.size()));
  if (selected.empty()) return;
  metrics.counter(obs::WellKnownCounter::kSchedulerPicks)
      .add(selected.size());
  Count requested = 0;
  for (const auto& unit : selected) {
    requested += unit->description().cores;
  }
  ENTK_CHECK(requested <= free_, "scheduler over-committed cores");
  for (auto& unit : selected) {
    free_ -= unit->description().cores;
    ++running_;
    spawn_total_ += machine_.unit_spawn_overhead;
    ENTK_TRACE_INSTANT_FLOW_S("unit.launched", "agent",
                              unit->trace_flow(), trace_ordinal_,
                              unit->session_ordinal());
    ComputeUnitPtr launched = std::move(unit);
    // submit_local: a worker finishing a unit re-schedules from its
    // own thread, so the follow-on unit lands on that worker's deque
    // and runs hot; driver-thread submissions fall back to the
    // external queue. The pool refuses once shutdown starts (teardown
    // racing a late settlement) — undo the reservation and requeue so
    // the unit stays cancellable instead of vanishing.
    const bool accepted = pool_->submit_local(
        TaskFn([this, launched] { execute(launched); }));
    if (!accepted) {
      free_ += launched->description().cores;
      --running_;
      spawn_total_ -= machine_.unit_spawn_overhead;
      waiting_.push(std::move(launched));
    }
  }
}

void LocalAgent::execute(ComputeUnitPtr unit) {
  const auto& desc = unit->description();
  ENTK_TRACE_SPAN_S("unit.run_payload", "agent", unit->trace_flow(),
                    trace_ordinal_, unit->session_ordinal());
  const fs::path sandbox = session_dir_ / "units" / unit->uid();
  Status status;
  std::error_code ec;
  fs::create_directories(sandbox, ec);
  if (ec) {
    status = make_error(Errc::kIoError,
                        "cannot create sandbox: " + ec.message());
  }

  if (status.is_ok()) {
    (void)unit->advance_state(UnitState::kStagingInput);
    status = execute_staging(desc.input_staging, shared_dir_, sandbox);
  }
  if (status.is_ok()) {
    (void)unit->advance_state(UnitState::kExecuting);
    if (desc.simulated_fail && unit->retries() == 0) {
      status = make_error(Errc::kExecutionFailed,
                          "unit " + unit->uid() + " failed (injected)");
    } else if (desc.payload) {
      UnitRuntimeContext context;
      context.sandbox = sandbox;
      context.shared = shared_dir_;
      context.cores = desc.cores;
      context.environment = &desc.environment;
      // A payload that throws must fail its unit, not kill the worker
      // thread (and with it the whole process).
      try {
        status = desc.payload(context);
      } catch (const std::exception& error) {
        status = make_error(Errc::kExecutionFailed,
                            "unit " + unit->uid() +
                                " payload threw: " + error.what());
      } catch (...) {
        status = make_error(Errc::kExecutionFailed,
                            "unit " + unit->uid() +
                                " payload threw a non-exception");
      }
    }
  }
  if (status.is_ok()) {
    (void)unit->advance_state(UnitState::kStagingOutput);
    status = execute_staging(desc.output_staging, sandbox, shared_dir_);
  }

  // Finalize the unit before releasing cores: by the time wait_idle()
  // observes the agent idle, every unit must be in a final state.
  if (status.is_ok()) {
    (void)unit->advance_state(UnitState::kDone);
  } else {
    (void)unit->advance_state(UnitState::kFailed, status);
  }
  {
    MutexLock lock(mutex_);
    free_ += desc.cores;
    ENTK_CHECK(free_ <= cores_, "core accounting out of sync");
    --running_;
    schedule_locked();
    if (waiting_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace entk::pilot
