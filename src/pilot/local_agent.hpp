// Agent implementation for the local backend: really executes unit
// payloads on a thread pool, with real file staging between each
// unit's private sandbox and the pilot's shared space.
#pragma once

#include <condition_variable>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>

#include "common/clock.hpp"
#include "common/thread_pool.hpp"
#include "pilot/agent.hpp"
#include "sim/machine.hpp"

namespace entk::pilot {

class LocalAgent final : public Agent {
 public:
  /// `session_dir` is created if missing; it gains `shared/` (visible
  /// to all units) and `units/<uid>/` sandboxes.
  LocalAgent(sim::MachineProfile machine, Count cores,
             std::unique_ptr<Scheduler> scheduler, const Clock& clock,
             std::filesystem::path session_dir);
  ~LocalAgent() override;

  void start(std::function<void()> on_ready) override;
  Status submit(std::vector<ComputeUnitPtr> units) override;
  void cancel_waiting() override;
  Status cancel_unit(const ComputeUnitPtr& unit) override;

  Count total_cores() const override { return cores_; }
  Count free_cores() const override;
  std::size_t waiting_units() const override;
  std::size_t running_units() const override;
  Duration total_spawn_overhead() const override;

  const std::filesystem::path& shared_dir() const { return shared_dir_; }
  std::filesystem::path shared_directory() const override {
    return shared_dir_;
  }

  /// Blocks until no units are waiting or running.
  void wait_idle();

 private:
  void schedule_locked();  // requires mutex_ held
  void execute(ComputeUnitPtr unit);

  const sim::MachineProfile machine_;
  const Count cores_;
  std::unique_ptr<Scheduler> scheduler_;
  const Clock& clock_;
  std::filesystem::path session_dir_;
  std::filesystem::path shared_dir_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  bool started_ = false;
  Count free_;
  std::deque<ComputeUnitPtr> waiting_;
  std::size_t running_ = 0;
  Duration spawn_total_ = 0.0;
};

}  // namespace entk::pilot
