// Agent implementation for the local backend: really executes unit
// payloads on a thread pool, with real file staging between each
// unit's private sandbox and the pilot's shared space.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/work_stealing_pool.hpp"
#include "pilot/agent.hpp"
#include "pilot/waiting_index.hpp"
#include "sim/machine.hpp"

namespace entk::pilot {

class LocalAgent final : public Agent {
 public:
  /// `session_dir` is created if missing; it gains `shared/` (visible
  /// to all units) and `units/<uid>/` sandboxes.
  LocalAgent(sim::MachineProfile machine, Count cores,
             std::unique_ptr<Scheduler> scheduler, const Clock& clock,
             std::filesystem::path session_dir);
  ~LocalAgent() override;

  void start(std::function<void()> on_ready) override ENTK_EXCLUDES(mutex_);
  Status submit(std::vector<ComputeUnitPtr> units) override
      ENTK_EXCLUDES(mutex_);
  void cancel_waiting() override ENTK_EXCLUDES(mutex_);
  Status cancel_unit(const ComputeUnitPtr& unit) override
      ENTK_EXCLUDES(mutex_);
  /// Local payloads run on uninterruptible threads, so only waiting
  /// units can be evicted; running ones finish where they are.
  std::vector<ComputeUnitPtr> evict_inflight() override
      ENTK_EXCLUDES(mutex_);

  Count total_cores() const override { return cores_; }
  Count free_cores() const override ENTK_EXCLUDES(mutex_);
  std::size_t waiting_units() const override ENTK_EXCLUDES(mutex_);
  std::size_t running_units() const override ENTK_EXCLUDES(mutex_);
  Duration total_spawn_overhead() const override ENTK_EXCLUDES(mutex_);

  const std::filesystem::path& shared_dir() const { return shared_dir_; }
  std::filesystem::path shared_directory() const override {
    return shared_dir_;
  }

  /// Blocks until no units are waiting or running.
  void wait_idle() ENTK_EXCLUDES(mutex_);

 private:
  void schedule_locked() ENTK_REQUIRES(mutex_);
  void execute(ComputeUnitPtr unit) ENTK_EXCLUDES(mutex_);

  const sim::MachineProfile machine_;
  const Count cores_;
  std::unique_ptr<Scheduler> scheduler_;
  const Clock& clock_;
  std::filesystem::path session_dir_;
  std::filesystem::path shared_dir_;
  std::unique_ptr<WorkStealingPool> pool_;

  mutable Mutex mutex_{LockRank::kLocalAgent};
  CondVar idle_cv_;
  bool started_ ENTK_GUARDED_BY(mutex_) = false;
  Count free_ ENTK_GUARDED_BY(mutex_);
  WaitingIndex waiting_ ENTK_GUARDED_BY(mutex_);
  std::size_t running_ ENTK_GUARDED_BY(mutex_) = 0;
  Duration spawn_total_ ENTK_GUARDED_BY(mutex_) = 0.0;
  /// Trace identity: maps to a Chrome-trace pid (see src/obs).
  const std::uint32_t trace_ordinal_;
};

}  // namespace entk::pilot
