#include "pilot/local_backend.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/uid.hpp"
#include "pilot/local_agent.hpp"

namespace entk::pilot {

namespace fs = std::filesystem;

LocalBackend::LocalBackend(Count cores, fs::path session_dir) {
  ENTK_CHECK(cores >= 1, "local backend needs at least one core");
  machine_ = sim::localhost_profile();
  machine_.nodes = 1;
  machine_.cores_per_node = cores;
  adaptor_ = std::make_unique<saga::LocalAdaptor>(cores);
  if (session_dir.empty()) {
    // The uid counter is only process-unique; include the pid so
    // concurrent processes (parallel ctest) never share a session dir.
    session_dir_ =
        fs::temp_directory_path() /
        next_uid("entk-session." + std::to_string(::getpid()));
    owns_session_dir_ = true;
  } else {
    session_dir_ = std::move(session_dir);
  }
  fs::create_directories(session_dir_);
}

LocalBackend::~LocalBackend() {
  // Join all workers before tearing down the session directory.
  adaptor_.reset();
  if (owns_session_dir_) {
    std::error_code ec;
    fs::remove_all(session_dir_, ec);
  }
}

Result<std::unique_ptr<Agent>> LocalBackend::make_agent(
    Count cores, const std::string& scheduler_policy) {
  auto scheduler = make_scheduler(scheduler_policy);
  if (!scheduler.ok()) return scheduler.status();
  return std::unique_ptr<Agent>(std::make_unique<LocalAgent>(
      machine_, cores, scheduler.take(), adaptor_->clock(),
      session_dir_ / next_uid("pilot-session")));
}

Status LocalBackend::drive_until(const std::function<bool()>& done,
                                 Duration timeout) {
  // Real work happens on agent worker threads; this thread just polls.
  const TimePoint deadline =
      timeout == kTimeInfinity ? kTimeInfinity : clock().now() + timeout;
  while (!done()) {
    if (clock().now() > deadline) {
      return make_error(Errc::kTimedOut, "local wait deadline passed");
    }
    // Cross-agent completion has no shared condition variable; a short
    // poll is the wait primitive. entk-lint: allow(sleep-in-runtime)
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return Status::ok();
}

}  // namespace entk::pilot
