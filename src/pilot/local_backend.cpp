#include "pilot/local_backend.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/uid.hpp"
#include "pilot/local_agent.hpp"

namespace entk::pilot {

namespace fs = std::filesystem;

LocalBackend::LocalBackend(Count cores, fs::path session_dir) {
  ENTK_CHECK(cores >= 1, "local backend needs at least one core");
  machine_ = sim::localhost_profile();
  machine_.nodes = 1;
  machine_.cores_per_node = cores;
  adaptor_ = std::make_unique<saga::LocalAdaptor>(cores);
  if (session_dir.empty()) {
    // The uid counter is only process-unique; include the pid so
    // concurrent processes (parallel ctest) never share a session dir.
    // Names a per-process sandbox dir, not workload state.
    // entk-lint: allow(global-run-state)
    session_dir_ =
        fs::temp_directory_path() /
        next_uid("entk-session." + std::to_string(::getpid()));
    owns_session_dir_ = true;
  } else {
    session_dir_ = std::move(session_dir);
  }
  fs::create_directories(session_dir_);
}

LocalBackend::~LocalBackend() {
  // Join all workers before tearing down the session directory.
  adaptor_.reset();
  if (owns_session_dir_) {
    std::error_code ec;
    fs::remove_all(session_dir_, ec);
  }
}

Result<std::unique_ptr<Agent>> LocalBackend::make_agent(
    Count cores, const std::string& scheduler_policy) {
  auto scheduler = make_scheduler(scheduler_policy);
  if (!scheduler.ok()) return scheduler.status();
  // Names a per-process sandbox dir, not workload state.
  // entk-lint: allow(global-run-state)
  return std::unique_ptr<Agent>(std::make_unique<LocalAgent>(
      machine_, cores, scheduler.take(), adaptor_->clock(),
      session_dir_ / next_uid("pilot-session")));
}

std::uint64_t LocalBackend::schedule_after(Duration delay,
                                           std::function<void()> fn) {
  MutexLock lock(timers_mutex_);
  timers_.push_back({clock().now() + std::max<Duration>(delay, 0.0),
                     std::move(fn)});
  return 0;
}

void LocalBackend::fire_due_timers() {
  std::vector<std::function<void()>> due;
  {
    MutexLock lock(timers_mutex_);
    const TimePoint now = clock().now();
    for (std::size_t i = 0; i < timers_.size();) {
      if (timers_[i].due <= now) {
        due.push_back(std::move(timers_[i].fn));
        timers_[i] = std::move(timers_.back());
        timers_.pop_back();
      } else {
        ++i;
      }
    }
  }
  // Outside the lock: a timer callback (retry resubmission) re-enters
  // the runtime and may schedule further timers.
  for (auto& fn : due) fn();
}

Status LocalBackend::drive_until(const std::function<bool()>& done,
                                 Duration timeout) {
  // Real work happens on agent worker threads; this thread just polls.
  const TimePoint deadline =
      timeout == kTimeInfinity ? kTimeInfinity : clock().now() + timeout;
  while (!done()) {
    if (clock().now() > deadline) {
      return make_error(Errc::kTimedOut, "local wait deadline passed");
    }
    fire_due_timers();
    // Cross-agent completion has no shared condition variable; a short
    // poll is the wait primitive. entk-lint: allow(sleep-in-runtime)
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  fire_due_timers();
  return Status::ok();
}

}  // namespace entk::pilot
