// Local execution backend: pilots become slot reservations on this
// host; units really execute their payloads (files are written, MD is
// integrated, analyses run) in real time.
#pragma once

#include <filesystem>
#include <memory>

#include "pilot/backend.hpp"
#include "saga/local_adaptor.hpp"

namespace entk::pilot {

class LocalBackend final : public ExecutionBackend {
 public:
  /// `cores` is the local machine size exposed to pilots. If
  /// `session_dir` is empty a fresh directory under the system temp
  /// path is used; it is removed on destruction only if we created it.
  explicit LocalBackend(Count cores,
                        std::filesystem::path session_dir = {});
  ~LocalBackend() override;

  saga::JobService& job_service() override { return *adaptor_; }
  const Clock& clock() const override { return adaptor_->clock(); }
  const sim::MachineProfile& machine() const override { return machine_; }
  Result<std::unique_ptr<Agent>> make_agent(
      Count cores, const std::string& scheduler_policy) override;
  Status drive_until(const std::function<bool()>& done,
                     Duration timeout = kTimeInfinity) override;
  void advance(Duration) override {}  // real work takes real time
  std::string name() const override { return "local"; }

  const std::filesystem::path& session_dir() const { return session_dir_; }

 private:
  sim::MachineProfile machine_;
  std::unique_ptr<saga::LocalAdaptor> adaptor_;
  std::filesystem::path session_dir_;
  bool owns_session_dir_ = false;
};

}  // namespace entk::pilot
