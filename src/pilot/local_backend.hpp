// Local execution backend: pilots become slot reservations on this
// host; units really execute their payloads (files are written, MD is
// integrated, analyses run) in real time.
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "pilot/backend.hpp"
#include "saga/local_adaptor.hpp"

namespace entk::pilot {

class LocalBackend final : public ExecutionBackend {
 public:
  /// `cores` is the local machine size exposed to pilots. If
  /// `session_dir` is empty a fresh directory under the system temp
  /// path is used; it is removed on destruction only if we created it.
  explicit LocalBackend(Count cores,
                        std::filesystem::path session_dir = {});
  ~LocalBackend() override;

  saga::JobService& job_service() override { return *adaptor_; }
  const Clock& clock() const override { return adaptor_->clock(); }
  const sim::MachineProfile& machine() const override { return machine_; }
  Result<std::unique_ptr<Agent>> make_agent(
      Count cores, const std::string& scheduler_policy) override;
  Status drive_until(const std::function<bool()>& done,
                     Duration timeout = kTimeInfinity) override;
  /// Timers are drained by whichever thread is inside drive_until.
  /// Always returns 0: local timers are not checkpointable.
  std::uint64_t schedule_after(Duration delay,
                               std::function<void()> fn) override
      ENTK_EXCLUDES(timers_mutex_);
  void advance(Duration) override {}  // real work takes real time
  std::string name() const override { return "local"; }

  const std::filesystem::path& session_dir() const { return session_dir_; }

 private:
  struct Timer {
    TimePoint due;
    std::function<void()> fn;
  };
  /// Pops every due timer and runs it outside the lock.
  void fire_due_timers() ENTK_EXCLUDES(timers_mutex_);

  sim::MachineProfile machine_;
  std::unique_ptr<saga::LocalAdaptor> adaptor_;
  std::filesystem::path session_dir_;
  bool owns_session_dir_ = false;

  mutable Mutex timers_mutex_{LockRank::kBackendTimers};
  std::vector<Timer> timers_ ENTK_GUARDED_BY(timers_mutex_);
};

}  // namespace entk::pilot
