#include "pilot/pilot.hpp"

#include "common/log.hpp"
#include "pilot/agent.hpp"

namespace entk::pilot {

Pilot::Pilot(std::string uid, PilotDescription description,
             const Clock& clock)
    : uid_(std::move(uid)),
      description_(std::move(description)),
      clock_(clock) {}

Pilot::~Pilot() = default;

PilotState Pilot::state() const {
  MutexLock lock(mutex_);
  return state_;
}

Status Pilot::final_status() const {
  MutexLock lock(mutex_);
  return final_status_;
}

TimePoint Pilot::submitted_at() const {
  MutexLock lock(mutex_);
  return submitted_at_;
}
TimePoint Pilot::active_at() const {
  MutexLock lock(mutex_);
  return active_at_;
}
TimePoint Pilot::finished_at() const {
  MutexLock lock(mutex_);
  return finished_at_;
}

Duration Pilot::startup_time() const {
  MutexLock lock(mutex_);
  if (submitted_at_ == kNoTime || active_at_ == kNoTime) return 0.0;
  return active_at_ - submitted_at_;
}

Agent* Pilot::agent() const {
  MutexLock lock(mutex_);
  return agent_.get();
}

void Pilot::on_state_change(Callback callback) {
  MutexLock lock(mutex_);
  callbacks_.push_back(std::move(callback));
}

Status Pilot::advance_state(PilotState to, Status failure) {
  std::vector<Callback> callbacks;
  {
    MutexLock lock(mutex_);
    if (!is_valid_transition(state_, to)) {
      return make_error(Errc::kFailedPrecondition,
                        "pilot " + uid_ + ": illegal transition " +
                            pilot_state_name(state_) + " -> " +
                            pilot_state_name(to));
    }
    state_ = to;
    const TimePoint now = clock_.now();
    switch (to) {
      case PilotState::kPendingQueue:
        submitted_at_ = now;
        break;
      case PilotState::kActive:
        active_at_ = now;
        break;
      default:
        finished_at_ = now;
        break;
    }
    if (to == PilotState::kFailed) {
      final_status_ = failure.is_ok()
                          ? make_error(Errc::kExecutionFailed,
                                       "pilot " + uid_ + " failed")
                          : failure;
    }
    callbacks = callbacks_;
  }
  ENTK_DEBUG("pilot") << uid_ << " -> " << pilot_state_name(to);
  for (const auto& callback : callbacks) callback(*this, to);
  return Status::ok();
}

void Pilot::attach_job(saga::JobPtr job) {
  MutexLock lock(mutex_);
  job_ = std::move(job);
}

saga::JobPtr Pilot::job() const {
  MutexLock lock(mutex_);
  return job_;
}

void Pilot::attach_agent(std::unique_ptr<Agent> agent) {
  MutexLock lock(mutex_);
  agent_ = std::move(agent);
}

}  // namespace entk::pilot
