// Pilot: a placeholder/container job plus the agent living inside it.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "pilot/descriptions.hpp"
#include "pilot/states.hpp"
#include "saga/job.hpp"

namespace entk::pilot {

class Agent;

class Pilot {
 public:
  using Callback = std::function<void(Pilot&, PilotState)>;

  Pilot(std::string uid, PilotDescription description, const Clock& clock);
  ~Pilot();

  const std::string& uid() const { return uid_; }
  const PilotDescription& description() const { return description_; }

  PilotState state() const;
  Status final_status() const;

  // Profiling timeline.
  TimePoint submitted_at() const;  ///< Container job entered the queue.
  TimePoint active_at() const;     ///< Agent finished bootstrapping.
  TimePoint finished_at() const;

  /// Queue wait + bootstrap: active_at - submitted_at (0 until active).
  Duration startup_time() const;

  /// The agent executing units inside this pilot; null until active.
  Agent* agent() const { return agent_.get(); }

  void on_state_change(Callback callback);

  // --- runtime interface (pilot manager only) ---
  Status advance_state(PilotState to, Status failure = Status::ok());
  void attach_job(saga::JobPtr job);
  saga::JobPtr job() const;
  void attach_agent(std::unique_ptr<Agent> agent);

 private:
  const std::string uid_;
  const PilotDescription description_;
  const Clock& clock_;

  mutable std::mutex mutex_;
  PilotState state_ = PilotState::kNew;
  Status final_status_;
  TimePoint submitted_at_ = kNoTime;
  TimePoint active_at_ = kNoTime;
  TimePoint finished_at_ = kNoTime;
  saga::JobPtr job_;
  std::unique_ptr<Agent> agent_;
  std::vector<Callback> callbacks_;
};

using PilotPtr = std::shared_ptr<Pilot>;

}  // namespace entk::pilot
