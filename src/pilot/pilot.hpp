// Pilot: a placeholder/container job plus the agent living inside it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "pilot/descriptions.hpp"
#include "pilot/states.hpp"
#include "saga/job.hpp"

namespace entk::pilot {

class Agent;

class Pilot {
 public:
  using Callback = std::function<void(Pilot&, PilotState)>;

  Pilot(std::string uid, PilotDescription description, const Clock& clock);
  ~Pilot();

  const std::string& uid() const { return uid_; }
  const PilotDescription& description() const { return description_; }

  PilotState state() const ENTK_EXCLUDES(mutex_);
  Status final_status() const ENTK_EXCLUDES(mutex_);

  // Profiling timeline.
  /// Container job entered the queue.
  TimePoint submitted_at() const ENTK_EXCLUDES(mutex_);
  /// Agent finished bootstrapping.
  TimePoint active_at() const ENTK_EXCLUDES(mutex_);
  TimePoint finished_at() const ENTK_EXCLUDES(mutex_);

  /// Queue wait + bootstrap: active_at - submitted_at (0 until active).
  Duration startup_time() const ENTK_EXCLUDES(mutex_);

  /// The agent executing units inside this pilot; null until active.
  /// The pointer stays valid for the pilot's lifetime once attached.
  Agent* agent() const ENTK_EXCLUDES(mutex_);

  void on_state_change(Callback callback) ENTK_EXCLUDES(mutex_);

  // --- runtime interface (pilot manager only) ---
  Status advance_state(PilotState to, Status failure = Status::ok())
      ENTK_EXCLUDES(mutex_);
  void attach_job(saga::JobPtr job) ENTK_EXCLUDES(mutex_);
  saga::JobPtr job() const ENTK_EXCLUDES(mutex_);
  void attach_agent(std::unique_ptr<Agent> agent) ENTK_EXCLUDES(mutex_);

 private:
  const std::string uid_;
  const PilotDescription description_;
  const Clock& clock_;

  mutable Mutex mutex_{LockRank::kPilot};
  PilotState state_ ENTK_GUARDED_BY(mutex_) = PilotState::kNew;
  Status final_status_ ENTK_GUARDED_BY(mutex_);
  TimePoint submitted_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  TimePoint active_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  TimePoint finished_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  saga::JobPtr job_ ENTK_GUARDED_BY(mutex_);
  std::unique_ptr<Agent> agent_ ENTK_GUARDED_BY(mutex_);
  std::vector<Callback> callbacks_ ENTK_GUARDED_BY(mutex_);
};

using PilotPtr = std::shared_ptr<Pilot>;

}  // namespace entk::pilot
