#include "pilot/pilot_manager.hpp"

#include "common/log.hpp"
#include "common/uid.hpp"
#include "pilot/agent.hpp"

namespace entk::pilot {

PilotManager::PilotManager(ExecutionBackend& backend) : backend_(backend) {}

Result<PilotPtr> PilotManager::submit_pilot(
    PilotDescription description, const std::string& scheduler_policy) {
  ENTK_RETURN_IF_ERROR(description.validate());
  const auto& machine = backend_.machine();
  if (description.resource != machine.name) {
    return make_error(Errc::kInvalidArgument,
                      "pilot targets '" + description.resource +
                          "' but the backend executes on '" + machine.name +
                          "'");
  }
  if (description.cores > machine.total_cores()) {
    return make_error(Errc::kResourceExhausted,
                      "pilot requests " + std::to_string(description.cores) +
                          " cores; " + machine.name + " has " +
                          std::to_string(machine.total_cores()));
  }

  auto agent = backend_.make_agent(description.cores, scheduler_policy);
  if (!agent.ok()) return agent.status();

  // Session-scoped uid family ("alpha.pilot.000000"): two sessions
  // allocating through one shared manager draw from independent
  // counters, so each session's pilot uids match its solo run.
  // resubmit_like() reuses the finished pilot's description, session
  // included, so replacements stay in the owner's family.
  const std::string prefix = description.session.empty()
                                 ? "pilot"
                                 : description.session + ".pilot";
  // prefix is already the owning session's pilot uid family.
  // entk-lint: allow(global-run-state)
  auto pilot = std::make_shared<Pilot>(next_uid(prefix), description,
                                       backend_.clock());
  pilot->attach_agent(agent.take());

  saga::JobDescription job_description;
  job_description.name = pilot->uid();
  job_description.executable = "entk-agent";  // the bootstrap script
  job_description.total_cpu_count = description.cores;
  job_description.wall_time_limit = description.runtime;
  job_description.queue = description.queue;
  job_description.project = description.project;
  job_description.simulated_duration = 0.0;  // owner-driven container

  auto job = backend_.job_service().submit(std::move(job_description));
  if (!job.ok()) return job.status();
  pilot->attach_job(job.value());

  std::weak_ptr<Pilot> weak = pilot;
  auto handle_job_state =
      [weak](saga::Job& container, saga::JobState state) {
        auto held = weak.lock();
        if (!held) return;
        switch (state) {
          case saga::JobState::kRunning:
            // The pilot is Active only once its agent bootstrapped.
            held->agent()->start([weak] {
              auto ready = weak.lock();
              if (!ready) return;
              ENTK_CHECK(
                  ready->advance_state(PilotState::kActive).is_ok(),
                  "pilot became active twice");
            });
            break;
          case saga::JobState::kFailed:
            if (!is_final(held->state())) {
              (void)held->advance_state(PilotState::kFailed,
                                        container.final_status());
              held->agent()->cancel_waiting();
            }
            break;
          case saga::JobState::kCanceled:
            if (!is_final(held->state())) {
              (void)held->advance_state(PilotState::kCanceled);
              held->agent()->cancel_waiting();
            }
            break;
          default:
            break;
        }
      };

  ENTK_CHECK(pilot->advance_state(PilotState::kPendingQueue).is_ok(),
             "fresh pilot");
  job.value()->on_state_change(handle_job_state);
  // The local adaptor starts container jobs synchronously inside
  // submit(), i.e. before the callback above existed — replay the
  // current state so such pilots still come up.
  const saga::JobState current = job.value()->state();
  if (current != saga::JobState::kNew &&
      current != saga::JobState::kPending &&
      pilot->state() == PilotState::kPendingQueue) {
    handle_job_state(*job.value(), current);
  }
  pilots_.push_back(pilot);
  ENTK_INFO("pilot.manager") << pilot->uid() << " submitted to "
                             << backend_.name() << " ("
                             << description.cores << " cores)";
  return pilot;
}

Status PilotManager::wait_active(const PilotPtr& pilot, Duration timeout) {
  ENTK_RETURN_IF_ERROR(backend_.drive_until(
      [&] {
        const PilotState state = pilot->state();
        return state == PilotState::kActive || is_final(state);
      },
      timeout));
  if (pilot->state() == PilotState::kActive) return Status::ok();
  return make_error(Errc::kExecutionFailed,
                    "pilot " + pilot->uid() + " ended up " +
                        pilot_state_name(pilot->state()));
}

Status PilotManager::deallocate(const PilotPtr& pilot) {
  if (pilot->state() != PilotState::kActive) {
    return make_error(Errc::kFailedPrecondition,
                      "pilot " + pilot->uid() + " is " +
                          pilot_state_name(pilot->state()) + ", not active");
  }
  pilot->agent()->cancel_waiting();
  ENTK_RETURN_IF_ERROR(pilot->advance_state(PilotState::kDone));
  return backend_.job_service().complete(*pilot->job());
}

Result<PilotPtr> PilotManager::resubmit_like(
    const Pilot& finished, const std::string& scheduler_policy) {
  if (!is_final(finished.state())) {
    return make_error(Errc::kFailedPrecondition,
                      "pilot " + finished.uid() + " is " +
                          pilot_state_name(finished.state()) +
                          "; replace only finished pilots");
  }
  ENTK_INFO("pilot.manager") << "resubmitting a replacement for "
                             << finished.uid();
  return submit_pilot(finished.description(), scheduler_policy);
}

std::vector<PilotPtr> PilotManager::pilots_for_session(
    const std::string& session) const {
  std::vector<PilotPtr> owned;
  for (const PilotPtr& pilot : pilots_) {
    if (pilot->description().session == session) owned.push_back(pilot);
  }
  return owned;
}

std::size_t PilotManager::pilot_count_for_session(
    const std::string& session) const {
  std::size_t count = 0;
  for (const PilotPtr& pilot : pilots_) {
    if (pilot->description().session == session) ++count;
  }
  return count;
}

Status PilotManager::cancel(const PilotPtr& pilot) {
  const PilotState state = pilot->state();
  if (is_final(state)) {
    return make_error(Errc::kFailedPrecondition,
                      "pilot " + pilot->uid() + " already final");
  }
  pilot->agent()->cancel_waiting();
  // The job callback transitions the pilot itself.
  return backend_.job_service().cancel(*pilot->job());
}

}  // namespace entk::pilot
