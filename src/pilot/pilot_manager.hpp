// PilotManager: submits container jobs and brings agents to life
// (the RP PilotManager analogue).
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "pilot/backend.hpp"
#include "pilot/pilot.hpp"

namespace entk::pilot {

class PilotManager {
 public:
  explicit PilotManager(ExecutionBackend& backend);

  /// Submits a pilot: validates against the backend's machine, submits
  /// the container job and wires the agent to start when the job runs.
  /// The returned pilot is kPendingQueue.
  Result<PilotPtr> submit_pilot(PilotDescription description,
                                const std::string& scheduler_policy =
                                    "backfill");

  /// Drives the backend until the pilot is active (or failed).
  Status wait_active(const PilotPtr& pilot,
                     Duration timeout = kTimeInfinity);

  /// Completes the container job and marks the pilot done. Waiting
  /// units are cancelled; running ones are lost with the allocation
  /// (as on a real machine).
  Status deallocate(const PilotPtr& pilot);

  /// Cancels a pending or active pilot.
  Status cancel(const PilotPtr& pilot);

  /// Submits a fresh pilot with the same description as a finished
  /// (typically failed) one — the replacement-pilot half of pilot
  /// recovery. Units evicted from the dead pilot rebind to the
  /// replacement via the UnitManager's late binding.
  Result<PilotPtr> resubmit_like(const Pilot& finished,
                                 const std::string& scheduler_policy =
                                     "backfill");

  const std::vector<PilotPtr>& pilots() const { return pilots_; }

  /// Pilots owned by one session (PilotDescription::session; "" =
  /// legacy unnamed), in submission order.
  std::vector<PilotPtr> pilots_for_session(
      const std::string& session) const;

  /// Number of pilots owned by one session.
  std::size_t pilot_count_for_session(const std::string& session) const;

  ExecutionBackend& backend() { return backend_; }

 private:
  // Like the agents' WaitingIndex, the manager is serialized by its
  // owner: sessions submit and deallocate pilots from the driver
  // thread (Runtime::run_concurrent drives all sessions on one
  // thread); agent worker threads never touch the manager.
  ExecutionBackend& backend_;
  std::vector<PilotPtr> pilots_;
};

}  // namespace entk::pilot
