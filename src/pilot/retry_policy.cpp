#include "pilot/retry_policy.hpp"

#include <algorithm>
#include <cmath>

namespace entk::pilot {

Status RetryPolicy::validate() const {
  if (max_retries < 0) {
    return make_error(Errc::kInvalidArgument, "max_retries must be >= 0");
  }
  if (backoff_base < 0.0 || backoff_max < 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "backoff delays must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    return make_error(Errc::kInvalidArgument,
                      "backoff_multiplier must be >= 1");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    return make_error(Errc::kInvalidArgument,
                      "jitter must be in [0, 1)");
  }
  if (execution_timeout < 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "execution_timeout must be >= 0");
  }
  return Status::ok();
}

Duration RetryPolicy::delay_for(Count attempt, double jitter_draw) const {
  if (backoff_base <= 0.0 || attempt < 1) return 0.0;
  Duration delay =
      backoff_base * std::pow(backoff_multiplier,
                              static_cast<double>(attempt - 1));
  if (backoff_max > 0.0) delay = std::min(delay, backoff_max);
  if (jitter > 0.0) {
    delay *= 1.0 + jitter * (2.0 * jitter_draw - 1.0);
  }
  return std::max<Duration>(delay, 0.0);
}

}  // namespace entk::pilot
