// RetryPolicy: how a unit's failures are retried.
//
// The paper's pilot abstraction exists so an ensemble survives machine
// faults; this is the knob set that controls *how*. A unit failing with
// retry budget left is resubmitted after an exponential-backoff delay
// (with optional jitter to de-synchronise retry storms), and a unit
// that executes past `execution_timeout` is killed and treated as
// failed — the only defence against hung tasks.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

namespace entk::pilot {

struct RetryPolicy {
  /// Automatic resubmissions on failure (0 = fail permanently).
  Count max_retries = 0;
  /// Delay before the first retry; 0 = resubmit immediately.
  Duration backoff_base = 0.0;
  /// Growth factor applied per additional retry (exponential backoff).
  double backoff_multiplier = 2.0;
  /// Cap on the backoff delay; 0 = uncapped.
  Duration backoff_max = 0.0;
  /// Jitter fraction in [0, 1): the delay is scaled by a uniform factor
  /// in [1 - jitter, 1 + jitter]. 0 = deterministic delays.
  double jitter = 0.0;
  /// Kills a unit still executing after this long (hung-task defence);
  /// 0 = unlimited. Enforced on the simulated backend only — local
  /// payloads run on uninterruptible threads.
  Duration execution_timeout = 0.0;

  Status validate() const;

  /// Backoff delay before retry number `attempt` (1-based).
  /// `jitter_draw` is a uniform [0, 1) sample; the default 0.5 yields
  /// the un-jittered delay.
  Duration delay_for(Count attempt, double jitter_draw = 0.5) const;
};

}  // namespace entk::pilot
