#include "pilot/scheduler.hpp"

#include <algorithm>
#include <numeric>

namespace entk::pilot {

std::vector<std::size_t> FifoScheduler::select(
    const std::deque<ComputeUnitPtr>& waiting, Count free_cores) {
  std::vector<std::size_t> picks;
  Count budget = free_cores;
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    const Count need = waiting[i]->description().cores;
    if (need > budget) break;  // head-of-line blocking, by design
    picks.push_back(i);
    budget -= need;
  }
  return picks;
}

std::vector<std::size_t> BackfillScheduler::select(
    const std::deque<ComputeUnitPtr>& waiting, Count free_cores) {
  std::vector<std::size_t> picks;
  Count budget = free_cores;
  for (std::size_t i = 0; i < waiting.size() && budget > 0; ++i) {
    const Count need = waiting[i]->description().cores;
    if (need <= budget) {
      picks.push_back(i);
      budget -= need;
    }
  }
  return picks;
}

std::vector<std::size_t> LargestFirstScheduler::select(
    const std::deque<ComputeUnitPtr>& waiting, Count free_cores) {
  std::vector<std::size_t> order(waiting.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return waiting[a]->description().cores >
                            waiting[b]->description().cores;
                   });
  std::vector<std::size_t> picks;
  Count budget = free_cores;
  for (const std::size_t i : order) {
    const Count need = waiting[i]->description().cores;
    if (need <= budget) {
      picks.push_back(i);
      budget -= need;
    }
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

Result<std::unique_ptr<Scheduler>> make_scheduler(const std::string& policy) {
  if (policy == "fifo") {
    return std::unique_ptr<Scheduler>(std::make_unique<FifoScheduler>());
  }
  if (policy == "backfill") {
    return std::unique_ptr<Scheduler>(std::make_unique<BackfillScheduler>());
  }
  if (policy == "largest_first") {
    return std::unique_ptr<Scheduler>(
        std::make_unique<LargestFirstScheduler>());
  }
  return make_error(Errc::kNotFound,
                    "unknown scheduler policy '" + policy + "'");
}

}  // namespace entk::pilot
