#include "pilot/scheduler.hpp"

#include <algorithm>
#include <unordered_map>

namespace entk::pilot {

std::vector<std::size_t> Scheduler::select(
    const std::deque<ComputeUnitPtr>& waiting, Count free_cores) {
  // Arrival order in the throwaway index mirrors deque positions, so
  // a selected unit's position maps straight back to its index.
  WaitingIndex index;
  std::unordered_map<const ComputeUnit*, std::size_t> position;
  position.reserve(waiting.size());
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    position.emplace(waiting[i].get(), i);
    index.push(waiting[i]);
  }
  const auto selected = select_from(index, free_cores);
  std::vector<std::size_t> picks;
  picks.reserve(selected.size());
  for (const auto& unit : selected) {
    picks.push_back(position.at(unit.get()));
  }
  // select_from returns arrival order, which is ascending indices.
  return picks;
}

std::vector<ComputeUnitPtr> FifoScheduler::select_from(
    WaitingIndex& waiting, Count free_cores) {
  std::vector<ComputeUnitPtr> picks;
  Count budget = free_cores;
  while (const ComputeUnitPtr* head = waiting.fifo_head()) {
    const Count need = (*head)->description().cores;
    if (need > budget) break;  // head-of-line blocking, by design
    picks.push_back(waiting.pop_fifo_head().unit);
    budget -= need;
  }
  return picks;
}

std::vector<ComputeUnitPtr> BackfillScheduler::select_from(
    WaitingIndex& waiting, Count free_cores) {
  std::vector<ComputeUnitPtr> picks;
  Count budget = free_cores;
  WaitingIndex::Picked picked;
  while (budget > 0 && waiting.pop_earliest_fitting(budget, picked)) {
    budget -= picked.unit->description().cores;
    picks.push_back(std::move(picked.unit));
  }
  return picks;
}

std::vector<ComputeUnitPtr> LargestFirstScheduler::select_from(
    WaitingIndex& waiting, Count free_cores) {
  std::vector<WaitingIndex::Picked> chosen;
  Count budget = free_cores;
  WaitingIndex::Picked picked;
  while (budget > 0 && waiting.pop_largest_fitting(budget, picked)) {
    budget -= picked.unit->description().cores;
    chosen.push_back(std::move(picked));
  }
  // Selection visited big units first; launch in arrival order.
  std::sort(chosen.begin(), chosen.end(),
            [](const WaitingIndex::Picked& a, const WaitingIndex::Picked& b) {
              return a.seq < b.seq;
            });
  std::vector<ComputeUnitPtr> picks;
  picks.reserve(chosen.size());
  for (auto& entry : chosen) picks.push_back(std::move(entry.unit));
  return picks;
}

Result<std::unique_ptr<Scheduler>> make_scheduler(const std::string& policy) {
  if (policy == "fifo") {
    return std::unique_ptr<Scheduler>(std::make_unique<FifoScheduler>());
  }
  if (policy == "backfill") {
    return std::unique_ptr<Scheduler>(std::make_unique<BackfillScheduler>());
  }
  if (policy == "largest_first") {
    return std::unique_ptr<Scheduler>(
        std::make_unique<LargestFirstScheduler>());
  }
  return make_error(Errc::kNotFound,
                    "unknown scheduler policy '" + policy + "'");
}

}  // namespace entk::pilot
