// Application-level (agent) schedulers.
//
// Once a pilot holds an allocation, *the application* decides which
// waiting units occupy which cores — the defining capability of
// pilot systems. The policy is pluggable; the paper delegates it to
// RADICAL-Pilot's default (FIFO with backfill), and our ablation bench
// compares the policies below.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "pilot/compute_unit.hpp"

namespace entk::pilot {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Picks units from `waiting` (FIFO order preserved in the deque)
  /// that should start now given `free_cores`. Returns indices into
  /// `waiting`, each selected unit's cores counted against the budget.
  /// Implementations must never over-commit: the summed cores of the
  /// returned units must be <= free_cores.
  virtual std::vector<std::size_t> select(
      const std::deque<ComputeUnitPtr>& waiting, Count free_cores) = 0;

  virtual std::string name() const = 0;
};

/// Strict FIFO: launch from the front while units fit; the first unit
/// that does not fit blocks everything behind it (no backfill).
class FifoScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> select(const std::deque<ComputeUnitPtr>& waiting,
                                  Count free_cores) override;
  std::string name() const override { return "fifo"; }
};

/// FIFO with backfill (first-fit): scan the whole queue and launch any
/// unit that fits. This is RADICAL-Pilot's default behaviour and the
/// toolkit's default policy.
class BackfillScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> select(const std::deque<ComputeUnitPtr>& waiting,
                                  Count free_cores) override;
  std::string name() const override { return "backfill"; }
};

/// Largest-first: sort candidates by core count descending (FIFO as a
/// tie-break) and first-fit. Reduces fragmentation for mixed-size
/// workloads at the price of delaying small units.
class LargestFirstScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> select(const std::deque<ComputeUnitPtr>& waiting,
                                  Count free_cores) override;
  std::string name() const override { return "largest_first"; }
};

/// Creates a scheduler by policy name ("fifo", "backfill",
/// "largest_first").
Result<std::unique_ptr<Scheduler>> make_scheduler(const std::string& policy);

}  // namespace entk::pilot
