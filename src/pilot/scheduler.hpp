// Application-level (agent) schedulers.
//
// Once a pilot holds an allocation, *the application* decides which
// waiting units occupy which cores — the defining capability of
// pilot systems. The policy is pluggable; the paper delegates it to
// RADICAL-Pilot's default (FIFO with backfill), and our ablation bench
// compares the policies below.
//
// Policies are incremental: agents keep their backlog in a
// core-count-bucketed WaitingIndex and a scheduler cycle selects in
// O(picks · distinct core counts) instead of rescanning or re-sorting
// the whole queue. The historical whole-queue select() remains as a
// convenience wrapper (tests, microbenches) and is defined in terms of
// the incremental path, so both always agree.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "pilot/compute_unit.hpp"
#include "pilot/waiting_index.hpp"

namespace entk::pilot {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Picks units that should start now given `free_cores`, REMOVING
  /// them from `waiting`. Returns them in arrival (launch) order.
  /// Implementations must never over-commit: the summed cores of the
  /// returned units must be <= free_cores.
  virtual std::vector<ComputeUnitPtr> select_from(WaitingIndex& waiting,
                                                  Count free_cores) = 0;

  /// Whole-queue form: picks from `waiting` (FIFO order preserved in
  /// the deque) without mutating it and returns ascending indices into
  /// it. Defined via select_from over a throwaway index.
  std::vector<std::size_t> select(const std::deque<ComputeUnitPtr>& waiting,
                                  Count free_cores);

  virtual std::string name() const = 0;
};

/// Strict FIFO: launch from the front while units fit; the first unit
/// that does not fit blocks everything behind it (no backfill).
class FifoScheduler final : public Scheduler {
 public:
  std::vector<ComputeUnitPtr> select_from(WaitingIndex& waiting,
                                          Count free_cores) override;
  std::string name() const override { return "fifo"; }
};

/// FIFO with backfill (first-fit): launch any unit that fits the
/// remaining budget, earliest arrival first. This is RADICAL-Pilot's
/// default behaviour and the toolkit's default policy.
class BackfillScheduler final : public Scheduler {
 public:
  std::vector<ComputeUnitPtr> select_from(WaitingIndex& waiting,
                                          Count free_cores) override;
  std::string name() const override { return "backfill"; }
};

/// Largest-first: take the biggest unit that fits the remaining budget
/// (FIFO as a tie-break) until nothing fits. Reduces fragmentation for
/// mixed-size workloads at the price of delaying small units.
class LargestFirstScheduler final : public Scheduler {
 public:
  std::vector<ComputeUnitPtr> select_from(WaitingIndex& waiting,
                                          Count free_cores) override;
  std::string name() const override { return "largest_first"; }
};

/// Creates a scheduler by policy name ("fifo", "backfill",
/// "largest_first").
Result<std::unique_ptr<Scheduler>> make_scheduler(const std::string& policy);

}  // namespace entk::pilot
