#include "pilot/sim_agent.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pilot/stager.hpp"

namespace entk::pilot {

SimAgent::SimAgent(sim::Engine& engine, sim::MachineProfile machine,
                   Count cores, std::unique_ptr<Scheduler> scheduler,
                   sim::FaultModel* faults)
    : engine_(engine),
      machine_(std::move(machine)),
      initial_cores_(cores),
      scheduler_(std::move(scheduler)),
      faults_(faults),
      capacity_(cores),
      free_(cores),
      trace_ordinal_(obs::next_pilot_ordinal()) {
  ENTK_CHECK(capacity_ >= 1, "agent needs at least one core");
  ENTK_CHECK(scheduler_ != nullptr, "agent needs a scheduler");
}

void SimAgent::start(std::function<void()> on_ready) {
  ENTK_CHECK(!start_requested_, "agent started twice");
  start_requested_ = true;
  // Agent bootstrap: units submitted in the meantime queue up.
  engine_.schedule(machine_.pilot_bootstrap,
                   [this, on_ready = std::move(on_ready)] {
                     started_ = true;
                     spawner_free_at_.assign(
                         static_cast<std::size_t>(
                             std::max<Count>(machine_.spawner_concurrency,
                                             1)),
                         engine_.now());
                     if (faults_ != nullptr) {
                       const Count nodes =
                           (initial_cores_ + machine_.cores_per_node - 1) /
                           machine_.cores_per_node;
                       faults_->watch_nodes(
                           nodes, [this] { handle_node_failure(); });
                     }
                     if (on_ready) on_ready();
                     schedule_loop();
                   });
}

Status SimAgent::submit(std::vector<ComputeUnitPtr> units) {
  for (auto& unit : units) {
    if (unit->state() != UnitState::kPendingExecution) {
      return make_error(Errc::kFailedPrecondition,
                        "unit " + unit->uid() + " is " +
                            unit_state_name(unit->state()) +
                            "; expected pending_execution");
    }
    if (unit->description().cores > capacity_) {
      ENTK_RETURN_IF_ERROR(unit->advance_state(
          UnitState::kFailed,
          make_error(Errc::kResourceExhausted,
                     "unit " + unit->uid() + " needs " +
                         std::to_string(unit->description().cores) +
                         " cores; pilot has " +
                         std::to_string(capacity_))));
      continue;
    }
    unit->stamp_submitted();
    // Aggregate metrics by design. entk-lint: allow(global-run-state)
    obs::Metrics::instance()
        .counter(obs::WellKnownCounter::kSchedulerWaitingPushes)
        .add();
    waiting_.push(std::move(unit));
  }
  if (started_) schedule_loop();
  return Status::ok();
}

void SimAgent::cancel_waiting() {
  const std::vector<ComputeUnitPtr> cancelled = waiting_.drain();
  for (const auto& unit : cancelled) {
    (void)unit->advance_state(UnitState::kCanceled);
  }
}

std::vector<ComputeUnitPtr> SimAgent::evict_inflight() {
  // Waiting units are already kPendingExecution.
  std::vector<ComputeUnitPtr> evicted = waiting_.drain();
  evicted.reserve(evicted.size() + active_.size());
  // In-flight units rewind; the epoch bump voids their pending events.
  std::map<std::uint64_t, ComputeUnitPtr> inflight;
  inflight.swap(active_);
  active_seq_.clear();
  unit_events_.clear();
  for (auto& [seq, unit] : inflight) {
    free_ += unit->description().cores;
    --running_;
    if (unit->advance_state(UnitState::kPendingExecution).is_ok()) {
      evicted.push_back(std::move(unit));
    }
  }
  ENTK_CHECK(free_ <= capacity_, "core accounting out of sync");
  return evicted;
}

void SimAgent::schedule_loop() {
  if (!started_ || waiting_.empty() || free_ <= 0) return;
  // Cheap pre-check: when even the smallest waiting unit cannot fit,
  // no policy can select anything.
  if (waiting_.min_cores() > free_) return;
  ++scheduler_cycles_;
  ENTK_TRACE_SPAN("agent.schedule", "agent");
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  auto& metrics = obs::Metrics::instance();
  metrics.counter(obs::WellKnownCounter::kSchedulerCycles).add();
  auto selected = scheduler_->select_from(waiting_, free_);
  metrics.gauge(obs::WellKnownGauge::kSchedulerWaitingUnits)
      .set(static_cast<double>(waiting_.size()));
  if (selected.empty()) return;
  metrics.counter(obs::WellKnownCounter::kSchedulerPicks)
      .add(selected.size());
  // Validate the scheduler's core budget before committing.
  Count requested = 0;
  for (const auto& unit : selected) {
    requested += unit->description().cores;
  }
  ENTK_CHECK(requested <= free_, "scheduler over-committed cores");
  // Launch in the order the scheduler returned (arrival order).
  for (auto& unit : selected) {
    free_ -= unit->description().cores;
    ++running_;
    const std::uint64_t seq = next_launch_seq_++;
    active_seq_.emplace(unit.get(), seq);
    active_.emplace(seq, unit);
    launch(std::move(unit));
  }
}

Status SimAgent::cancel_unit(const ComputeUnitPtr& unit) {
  // Waiting: remove from the index.
  if (waiting_.erase(unit.get())) {
    return unit->advance_state(UnitState::kCanceled);
  }
  // Occupying cores: void its future events (their callbacks check the
  // unit state and epoch) and reclaim the cores now.
  if (deactivate(unit.get())) {
    ENTK_RETURN_IF_ERROR(unit->advance_state(UnitState::kCanceled));
    free_ += unit->description().cores;
    ENTK_CHECK(free_ <= capacity_, "core accounting out of sync");
    --running_;
    schedule_loop();
    return Status::ok();
  }
  return make_error(Errc::kNotFound,
                    "unit " + unit->uid() + " is not active on this agent");
}

bool SimAgent::deactivate(const ComputeUnit* unit) {
  const auto it = active_seq_.find(unit);
  if (it == active_seq_.end()) return false;
  active_.erase(it->second);
  active_seq_.erase(it);
  unit_events_.erase(unit);
  return true;
}

void SimAgent::release(const ComputeUnitPtr& unit) {
  if (!deactivate(unit.get())) return;  // cancelled or evicted earlier
  free_ += unit->description().cores;
  ENTK_CHECK(free_ <= capacity_, "core accounting out of sync");
  --running_;
  schedule_loop();
}

void SimAgent::handle_node_failure() {
  // One node is gone: its cores leave the pool, taken first from the
  // free ones, then by killing executing units (newest launch first —
  // the lost node was the last to be filled).
  const Count lost = std::min(capacity_, machine_.cores_per_node);
  if (lost < 1) return;
  capacity_ -= lost;
  Count deficit = lost;
  const Count from_free = std::min(free_, deficit);
  free_ -= from_free;
  deficit -= from_free;
  // Settle all accounting before firing any state change: a victim's
  // failure callback can re-enter this agent (immediate retry), and it
  // must see a consistent pool — and never find a relaunched unit on
  // the kill list.
  std::vector<ComputeUnitPtr> victims;
  while (deficit > 0 && !active_.empty()) {
    const auto newest = std::prev(active_.end());
    ComputeUnitPtr victim = std::move(newest->second);
    active_seq_.erase(victim.get());
    active_.erase(newest);
    unit_events_.erase(victim.get());
    --running_;
    const Count cores = victim->description().cores;
    if (cores >= deficit) {
      free_ += cores - deficit;
      deficit = 0;
    } else {
      deficit -= cores;
    }
    victims.push_back(std::move(victim));
  }
  ENTK_CHECK(free_ <= capacity_, "core accounting out of sync");
  std::vector<ComputeUnitPtr> stranded;
  if (capacity_ < 1) {
    // The pilot lost its last node: nothing can ever run here again.
    stranded = waiting_.drain();
  }
  for (const auto& victim : victims) {
    (void)victim->advance_state(
        UnitState::kFailed,
        make_error(Errc::kExecutionFailed,
                   "unit " + victim->uid() + " killed by node failure"));
  }
  for (const auto& unit : stranded) {
    (void)unit->advance_state(
        UnitState::kFailed,
        make_error(Errc::kExecutionFailed,
                   "unit " + unit->uid() +
                       " lost: pilot has no nodes left"));
  }
  if (capacity_ >= 1) schedule_loop();
}

void SimAgent::launch(ComputeUnitPtr unit) {
  const auto& desc = unit->description();
  ENTK_TRACE_INSTANT_FLOW_S("unit.launched", "agent", unit->trace_flow(),
                            trace_ordinal_, unit->session_ordinal());
  ENTK_CHECK(unit->advance_state(UnitState::kStagingInput).is_ok(),
             "launch on non-pending unit");
  const Count epoch = unit->epoch();

  const TimePoint now = engine_.now();
  const Duration stage_in = staging_delay(machine_, desc.input_staging);
  // Spawn on the earliest-free spawner worker; per-worker FIFO.
  auto earliest = std::min_element(spawner_free_at_.begin(),
                                   spawner_free_at_.end());
  ENTK_CHECK(earliest != spawner_free_at_.end(), "agent not bootstrapped");
  const TimePoint spawn_start = std::max(now + stage_in, *earliest);
  *earliest = spawn_start + machine_.unit_spawn_overhead;
  spawn_total_ += machine_.unit_spawn_overhead;
  const TimePoint exec_start =
      spawn_start + machine_.unit_spawn_overhead +
      machine_.unit_launch_latency;

  // Transient launch failure: the spawn itself fails — no execution,
  // no output staging; a retry usually succeeds.
  if (faults_ != nullptr && faults_->draw_launch_failure()) {
    schedule_launch_fail(unit, epoch, exec_start);
    return;
  }

  const TimePoint exec_stop = exec_start + desc.simulated_duration;
  // A hung unit enters execution but its completion event never comes;
  // only the execution timeout below can reclaim it.
  const bool hangs =
      (desc.simulated_hang && unit->retries() == 0) ||
      (faults_ != nullptr && faults_->draw_hang());

  schedule_exec_start(unit, epoch, exec_start);
  if (!hangs) schedule_complete(unit, epoch, exec_stop);
  if (desc.retry.execution_timeout > 0.0) {
    schedule_timeout(unit, epoch,
                     exec_start + desc.retry.execution_timeout);
  }
}

void SimAgent::schedule_launch_fail(const ComputeUnitPtr& unit,
                                    Count epoch, TimePoint at) {
  const sim::EventId id = engine_.schedule_at(at, [this, unit, epoch] {
    if (unit->epoch() != epoch ||
        unit->state() != UnitState::kStagingInput) {
      return;
    }
    (void)unit->advance_state(
        UnitState::kFailed,
        make_error(Errc::kExecutionFailed,
                   "unit " + unit->uid() + " launch failed (transient)"));
    release(unit);
  });
  record_event(unit.get(), UnitEventKind::kLaunchFail, epoch, id);
}

void SimAgent::schedule_exec_start(const ComputeUnitPtr& unit,
                                   Count epoch, TimePoint at) {
  const sim::EventId id = engine_.schedule_at(at, [unit, epoch] {
    if (unit->epoch() != epoch ||
        unit->state() != UnitState::kStagingInput) {
      return;
    }
    ENTK_CHECK(unit->advance_state(UnitState::kExecuting).is_ok(),
               "unit lost before execution");
  });
  record_event(unit.get(), UnitEventKind::kExecStart, epoch, id);
}

void SimAgent::schedule_complete(const ComputeUnitPtr& unit, Count epoch,
                                 TimePoint at) {
  const sim::EventId id = engine_.schedule_at(at, [this, unit, epoch] {
    if (unit->epoch() != epoch ||
        unit->state() != UnitState::kExecuting) {
      return;
    }
    finalize(unit);
  });
  record_event(unit.get(), UnitEventKind::kComplete, epoch, id);
}

void SimAgent::schedule_timeout(const ComputeUnitPtr& unit, Count epoch,
                                TimePoint at) {
  const sim::EventId id = engine_.schedule_at(at, [this, unit, epoch] {
    if (unit->epoch() != epoch ||
        unit->state() != UnitState::kExecuting) {
      return;
    }
    (void)unit->advance_state(
        UnitState::kFailed,
        make_error(Errc::kTimedOut,
                   "unit " + unit->uid() +
                       " exceeded its execution timeout"));
    release(unit);
  });
  record_event(unit.get(), UnitEventKind::kTimeout, epoch, id);
}

void SimAgent::schedule_stage_out(const ComputeUnitPtr& unit, Count epoch,
                                  TimePoint at) {
  const sim::EventId id = engine_.schedule_at(at, [this, unit, epoch] {
    if (unit->epoch() != epoch ||
        unit->state() != UnitState::kStagingOutput) {
      return;
    }
    ENTK_CHECK(unit->advance_state(UnitState::kDone).is_ok(),
               "unit lost before done");
    release(unit);
  });
  record_event(unit.get(), UnitEventKind::kStageOutDone, epoch, id);
}

void SimAgent::record_event(const ComputeUnit* unit, UnitEventKind kind,
                            Count epoch, sim::EventId id) {
  TrackedEvents& tracked = unit_events_[unit];
  if (tracked.count == tracked.entries.size()) {
    // Compact: drop records whose event already fired or was voided.
    std::uint8_t kept = 0;
    for (std::uint8_t i = 0; i < tracked.count; ++i) {
      if (engine_.pending(tracked.entries[i].id)) {
        tracked.entries[kept++] = tracked.entries[i];
      }
    }
    tracked.count = kept;
    ENTK_CHECK(tracked.count < tracked.entries.size(),
               "unit lifecycle event record overflow");
  }
  tracked.entries[tracked.count++] = {id, kind, epoch};
}

void SimAgent::repost_event(const ComputeUnitPtr& unit, UnitEventKind kind,
                            TimePoint at) {
  const Count epoch = unit->epoch();
  switch (kind) {
    case UnitEventKind::kLaunchFail:
      schedule_launch_fail(unit, epoch, at);
      break;
    case UnitEventKind::kExecStart:
      schedule_exec_start(unit, epoch, at);
      break;
    case UnitEventKind::kComplete:
      schedule_complete(unit, epoch, at);
      break;
    case UnitEventKind::kTimeout:
      schedule_timeout(unit, epoch, at);
      break;
    case UnitEventKind::kStageOutDone:
      schedule_stage_out(unit, epoch, at);
      break;
  }
}

SimAgent::SavedState SimAgent::save_state() const {
  ENTK_CHECK(started_, "cannot checkpoint an agent before bootstrap");
  SavedState saved;
  saved.capacity = capacity_;
  saved.free = free_;
  saved.running = running_;
  saved.next_launch_seq = next_launch_seq_;
  saved.scheduler_cycles = scheduler_cycles_;
  saved.spawn_total = spawn_total_;
  saved.spawner_free_at = spawner_free_at_;
  for (const auto& unit : waiting_.snapshot()) {
    saved.waiting.push_back(unit->uid());
  }
  // active_ iterates in launch order, so the serialized unit order —
  // and with it the event order below — is deterministic.
  for (const auto& [seq, unit] : active_) {
    saved.active.emplace_back(seq, unit->uid());
    const auto it = unit_events_.find(unit.get());
    if (it == unit_events_.end()) continue;
    const Count epoch = unit->epoch();
    for (std::uint8_t i = 0; i < it->second.count; ++i) {
      const auto& entry = it->second.entries[i];
      // Stale (already fired) or void (dead attempt) events would be
      // behavioral no-ops in the uninterrupted run too: drop them.
      if (entry.epoch != epoch || !engine_.pending(entry.id)) continue;
      saved.events.push_back({unit->uid(), entry.kind,
                              engine_.event_time(entry.id),
                              engine_.event_seq(entry.id)});
    }
  }
  return saved;
}

void SimAgent::restore_state(const SavedState& saved,
                             const UnitResolver& resolve) {
  ENTK_CHECK(started_, "cannot restore into an unstarted agent");
  ENTK_CHECK(active_.empty() && waiting_.empty() && running_ == 0,
             "cannot restore into an agent with units in flight");
  capacity_ = saved.capacity;
  free_ = saved.free;
  running_ = saved.running;
  next_launch_seq_ = saved.next_launch_seq;
  scheduler_cycles_ = saved.scheduler_cycles;
  spawn_total_ = saved.spawn_total;
  spawner_free_at_ = saved.spawner_free_at;
  for (const auto& uid : saved.waiting) {
    ComputeUnitPtr unit = resolve(uid);
    ENTK_CHECK(unit != nullptr, "checkpoint names unknown unit " + uid);
    waiting_.push(std::move(unit));
  }
  for (const auto& [seq, uid] : saved.active) {
    ComputeUnitPtr unit = resolve(uid);
    ENTK_CHECK(unit != nullptr, "checkpoint names unknown unit " + uid);
    active_seq_.emplace(unit.get(), seq);
    active_.emplace(seq, std::move(unit));
  }
}

void SimAgent::finalize(const ComputeUnitPtr& unit) {
  const auto& desc = unit->description();
  // `simulated_fail` injects one failure on the first execution so that
  // retry logic can be exercised deterministically.
  const bool fail_now = desc.simulated_fail && unit->retries() == 0;
  const Duration stage_out =
      fail_now ? 0.0 : staging_delay(machine_, desc.output_staging);

  if (fail_now) {
    ENTK_CHECK(unit->advance_state(
                       UnitState::kFailed,
                       make_error(Errc::kExecutionFailed,
                                  "unit " + unit->uid() +
                                      " failed (injected)"))
                   .is_ok(),
               "failing unit");
    release(unit);
    return;
  }
  const Count epoch = unit->epoch();
  ENTK_CHECK(unit->advance_state(UnitState::kStagingOutput).is_ok(),
             "unit lost before output staging");
  schedule_stage_out(unit, epoch, engine_.now() + stage_out);
}

}  // namespace entk::pilot
