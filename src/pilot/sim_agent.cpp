#include "pilot/sim_agent.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "pilot/stager.hpp"

namespace entk::pilot {

SimAgent::SimAgent(sim::Engine& engine, sim::MachineProfile machine,
                   Count cores, std::unique_ptr<Scheduler> scheduler)
    : engine_(engine),
      machine_(std::move(machine)),
      cores_(cores),
      scheduler_(std::move(scheduler)),
      free_(cores) {
  ENTK_CHECK(cores_ >= 1, "agent needs at least one core");
  ENTK_CHECK(scheduler_ != nullptr, "agent needs a scheduler");
}

void SimAgent::start(std::function<void()> on_ready) {
  ENTK_CHECK(!start_requested_, "agent started twice");
  start_requested_ = true;
  // Agent bootstrap: units submitted in the meantime queue up.
  engine_.schedule(machine_.pilot_bootstrap,
                   [this, on_ready = std::move(on_ready)] {
                     started_ = true;
                     spawner_free_at_.assign(
                         static_cast<std::size_t>(
                             std::max<Count>(machine_.spawner_concurrency,
                                             1)),
                         engine_.now());
                     if (on_ready) on_ready();
                     schedule_loop();
                   });
}

Status SimAgent::submit(std::vector<ComputeUnitPtr> units) {
  for (auto& unit : units) {
    if (unit->state() != UnitState::kPendingExecution) {
      return make_error(Errc::kFailedPrecondition,
                        "unit " + unit->uid() + " is " +
                            unit_state_name(unit->state()) +
                            "; expected pending_execution");
    }
    if (unit->description().cores > cores_) {
      ENTK_RETURN_IF_ERROR(unit->advance_state(
          UnitState::kFailed,
          make_error(Errc::kResourceExhausted,
                     "unit " + unit->uid() + " needs " +
                         std::to_string(unit->description().cores) +
                         " cores; pilot has " + std::to_string(cores_))));
      continue;
    }
    unit->stamp_submitted();
    waiting_.push_back(std::move(unit));
  }
  if (started_) schedule_loop();
  return Status::ok();
}

void SimAgent::cancel_waiting() {
  std::deque<ComputeUnitPtr> cancelled;
  cancelled.swap(waiting_);
  for (const auto& unit : cancelled) {
    (void)unit->advance_state(UnitState::kCanceled);
  }
}

void SimAgent::schedule_loop() {
  if (!started_ || waiting_.empty() || free_ <= 0) return;
  const auto picks = scheduler_->select(waiting_, free_);
  if (picks.empty()) return;
  // Validate the scheduler's core budget before committing.
  Count requested = 0;
  for (const std::size_t i : picks) {
    ENTK_CHECK(i < waiting_.size(), "scheduler returned bad index");
    requested += waiting_[i]->description().cores;
  }
  ENTK_CHECK(requested <= free_, "scheduler over-committed cores");
  // Remove back-to-front so indices stay valid.
  std::vector<ComputeUnitPtr> selected;
  selected.reserve(picks.size());
  for (auto it = picks.rbegin(); it != picks.rend(); ++it) {
    selected.push_back(waiting_[*it]);
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  // Launch in FIFO order (picks were ascending).
  std::reverse(selected.begin(), selected.end());
  for (auto& unit : selected) {
    free_ -= unit->description().cores;
    ++running_;
    occupying_.insert(unit.get());
    launch(std::move(unit));
  }
}

Status SimAgent::cancel_unit(const ComputeUnitPtr& unit) {
  // Waiting: remove from the queue.
  const auto it = std::find(waiting_.begin(), waiting_.end(), unit);
  if (it != waiting_.end()) {
    waiting_.erase(it);
    return unit->advance_state(UnitState::kCanceled);
  }
  // Occupying cores: void its future events (their callbacks check the
  // unit state) and reclaim the cores now.
  if (occupying_.count(unit.get()) != 0) {
    occupying_.erase(unit.get());
    ENTK_RETURN_IF_ERROR(unit->advance_state(UnitState::kCanceled));
    free_ += unit->description().cores;
    ENTK_CHECK(free_ <= cores_, "core accounting out of sync");
    --running_;
    schedule_loop();
    return Status::ok();
  }
  return make_error(Errc::kNotFound,
                    "unit " + unit->uid() + " is not active on this agent");
}

void SimAgent::launch(ComputeUnitPtr unit) {
  const auto& desc = unit->description();
  ENTK_CHECK(unit->advance_state(UnitState::kStagingInput).is_ok(),
             "launch on non-pending unit");

  const TimePoint now = engine_.now();
  const Duration stage_in = staging_delay(machine_, desc.input_staging);
  // Spawn on the earliest-free spawner worker; per-worker FIFO.
  auto earliest = std::min_element(spawner_free_at_.begin(),
                                   spawner_free_at_.end());
  ENTK_CHECK(earliest != spawner_free_at_.end(), "agent not bootstrapped");
  const TimePoint spawn_start = std::max(now + stage_in, *earliest);
  *earliest = spawn_start + machine_.unit_spawn_overhead;
  spawn_total_ += machine_.unit_spawn_overhead;
  const TimePoint exec_start =
      spawn_start + machine_.unit_spawn_overhead +
      machine_.unit_launch_latency;
  const TimePoint exec_stop = exec_start + desc.simulated_duration;

  engine_.schedule_at(exec_start, [unit] {
    if (unit->state() != UnitState::kStagingInput) return;
    ENTK_CHECK(unit->advance_state(UnitState::kExecuting).is_ok(),
               "unit lost before execution");
  });
  engine_.schedule_at(exec_stop, [this, unit] {
    if (unit->state() != UnitState::kExecuting) return;
    finalize(unit);
  });
}

void SimAgent::finalize(const ComputeUnitPtr& unit) {
  const auto& desc = unit->description();
  // `simulated_fail` injects one failure on the first execution so that
  // retry logic can be exercised deterministically.
  const bool fail_now = desc.simulated_fail && unit->retries() == 0;
  const Duration stage_out =
      fail_now ? 0.0 : staging_delay(machine_, desc.output_staging);

  auto release = [this, unit] {
    if (occupying_.erase(unit.get()) == 0) return;  // cancelled earlier
    free_ += unit->description().cores;
    ENTK_CHECK(free_ <= cores_, "core accounting out of sync");
    --running_;
    schedule_loop();
  };

  if (fail_now) {
    ENTK_CHECK(unit->advance_state(
                       UnitState::kFailed,
                       make_error(Errc::kExecutionFailed,
                                  "unit " + unit->uid() +
                                      " failed (injected)"))
                   .is_ok(),
               "failing unit");
    release();
    return;
  }
  ENTK_CHECK(unit->advance_state(UnitState::kStagingOutput).is_ok(),
             "unit lost before output staging");
  engine_.schedule(stage_out, [unit, release] {
    if (unit->state() != UnitState::kStagingOutput) return;
    ENTK_CHECK(unit->advance_state(UnitState::kDone).is_ok(),
               "unit lost before done");
    release();
  });
}

}  // namespace entk::pilot
