// Agent implementation for the simulated backend.
//
// Drives the full unit lifecycle on the event engine:
//   select (scheduler) -> input staging -> serialized spawn ->
//   launch latency -> execution -> output staging -> done
// Core accounting is exact: cores are reserved at selection and
// released when the unit leaves the machine, so the scheduler can never
// over-subscribe the pilot.
//
// The backlog lives in a core-count-bucketed WaitingIndex fed
// incrementally on submit/settle, and units holding cores are tracked
// in a launch-ordered map — both keep every per-unit bookkeeping step
// sublinear in the backlog, which is what lets a single agent absorb
// 100k-unit ensembles (see docs/PERFORMANCE.md).
//
// When the machine profile carries an enabled FaultSpec the agent also
// models faults: node failures shrink its capacity and kill the units
// executing on the lost node, launches can fail transiently, and units
// can hang (reclaimed only by their RetryPolicy execution timeout).
// Every scheduled lifecycle event carries the unit's epoch so events
// belonging to a dead attempt never act on a relaunched unit.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pilot/agent.hpp"
#include "pilot/waiting_index.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/machine.hpp"

namespace entk::pilot {

/// Lifecycle events an agent schedules for an in-flight unit. Each is
/// guarded by (epoch, expected state) so a checkpoint can capture the
/// pending ones and a restore can repost behaviorally identical copies.
enum class UnitEventKind : std::uint8_t {
  kLaunchFail = 0,   ///< transient spawn failure fires at exec_start
  kExecStart = 1,    ///< kStagingInput -> kExecuting
  kComplete = 2,     ///< kExecuting -> finalize()
  kTimeout = 3,      ///< execution-timeout kill
  kStageOutDone = 4  ///< kStagingOutput -> kDone + release
};

class SimAgent final : public Agent {
 public:
  SimAgent(sim::Engine& engine, sim::MachineProfile machine, Count cores,
           std::unique_ptr<Scheduler> scheduler,
           sim::FaultModel* faults = nullptr);

  void start(std::function<void()> on_ready) override;
  Status submit(std::vector<ComputeUnitPtr> units) override;
  void cancel_waiting() override;
  Status cancel_unit(const ComputeUnitPtr& unit) override;
  std::vector<ComputeUnitPtr> evict_inflight() override;

  Count total_cores() const override { return capacity_; }
  Count free_cores() const override { return free_; }
  std::size_t waiting_units() const override { return waiting_.size(); }
  std::size_t running_units() const override { return running_; }
  Duration total_spawn_overhead() const override { return spawn_total_; }

  /// Cores lost to node failures so far.
  Count lost_cores() const { return initial_cores_ - capacity_; }

  /// Scheduler cycles run so far (profiling hook for the scale bench).
  std::uint64_t scheduler_cycles() const { return scheduler_cycles_; }

  /// Trace identity: maps to a Chrome-trace pid (see src/obs).
  std::uint32_t trace_ordinal() const { return trace_ordinal_; }

  // --- checkpoint/restart (ckpt::Coordinator only) ---
  /// Everything needed to rebuild this agent's dispatch state on a
  /// fresh engine. Units are referenced by uid; pending events carry
  /// the original engine (time, seq) so the coordinator can repost them
  /// globally sorted across agents.
  struct SavedState {
    struct PendingEvent {
      std::string uid;
      UnitEventKind kind = UnitEventKind::kExecStart;
      TimePoint time = 0.0;
      std::uint64_t seq = 0;
    };
    Count capacity = 0;
    Count free = 0;
    std::size_t running = 0;
    std::uint64_t next_launch_seq = 0;
    std::uint64_t scheduler_cycles = 0;
    Duration spawn_total = 0.0;
    std::vector<TimePoint> spawner_free_at;
    std::vector<std::string> waiting;  ///< uids in arrival order
    std::vector<std::pair<std::uint64_t, std::string>> active;
    std::vector<PendingEvent> events;
  };
  using UnitResolver = std::function<ComputeUnitPtr(const std::string&)>;
  /// Captures the agent at an engine-step boundary. Requires started().
  SavedState save_state() const;
  /// Injects a saved state into a freshly started agent. Does NOT
  /// repost events — the coordinator reposts them globally sorted.
  void restore_state(const SavedState& saved, const UnitResolver& resolve);
  /// Re-schedules one captured lifecycle event at its original firing
  /// time, with the same (epoch, state) guards as the original.
  void repost_event(const ComputeUnitPtr& unit, UnitEventKind kind,
                    TimePoint at);
  bool started() const { return started_; }

 private:
  void schedule_loop();
  void launch(ComputeUnitPtr unit);
  void finalize(const ComputeUnitPtr& unit);
  // Guarded lifecycle-event factories shared by launch()/finalize()
  // and repost_event(); each schedules at `at` and tracks the id.
  void schedule_launch_fail(const ComputeUnitPtr& unit, Count epoch,
                            TimePoint at);
  void schedule_exec_start(const ComputeUnitPtr& unit, Count epoch,
                           TimePoint at);
  void schedule_complete(const ComputeUnitPtr& unit, Count epoch,
                         TimePoint at);
  void schedule_timeout(const ComputeUnitPtr& unit, Count epoch,
                        TimePoint at);
  void schedule_stage_out(const ComputeUnitPtr& unit, Count epoch,
                          TimePoint at);
  void record_event(const ComputeUnit* unit, UnitEventKind kind,
                    Count epoch, sim::EventId id);
  /// Returns the unit's cores to the pool if it still occupies them.
  void release(const ComputeUnitPtr& unit);
  /// Removes a unit from the active set; returns false when absent.
  bool deactivate(const ComputeUnit* unit);
  /// One node of this pilot died: shrink capacity and kill the units
  /// that were executing on it.
  void handle_node_failure();

  sim::Engine& engine_;
  const sim::MachineProfile machine_;
  const Count initial_cores_;
  std::unique_ptr<Scheduler> scheduler_;
  sim::FaultModel* faults_;

  bool start_requested_ = false;
  bool started_ = false;  ///< true once the bootstrap delay elapsed
  Count capacity_;  ///< Current cores (shrinks on node failures).
  Count free_;
  WaitingIndex waiting_;
  std::size_t running_ = 0;
  /// Units currently holding cores (launch -> release window), keyed
  /// by launch order — node failures kill from the back (newest first)
  /// and release() finds any unit in O(log active).
  std::map<std::uint64_t, ComputeUnitPtr> active_;
  std::unordered_map<const ComputeUnit*, std::uint64_t> active_seq_;
  /// Engine events scheduled for each active unit. Fixed capacity: at
  /// most 3 are pending at once (exec_start + complete + timeout), but
  /// stale (already-fired) records linger until compacted, so keep one
  /// spare. Stale entries are filtered by generation at capture time;
  /// the whole record dies with the unit's active_ entry.
  struct TrackedEvents {
    struct Entry {
      sim::EventId id = sim::kInvalidEvent;
      UnitEventKind kind = UnitEventKind::kExecStart;
      Count epoch = 0;
    };
    std::array<Entry, 4> entries;
    std::uint8_t count = 0;
  };
  std::unordered_map<const ComputeUnit*, TrackedEvents> unit_events_;
  std::uint64_t next_launch_seq_ = 0;
  std::uint64_t scheduler_cycles_ = 0;
  const std::uint32_t trace_ordinal_;
  /// Per-spawner-worker busy-until times: each launch occupies the
  /// earliest-free worker for unit_spawn_overhead (RP runs a small pool
  /// of spawner workers; launches queue when all are busy).
  std::vector<TimePoint> spawner_free_at_;
  Duration spawn_total_ = 0.0;
};

}  // namespace entk::pilot
