// Agent implementation for the simulated backend.
//
// Drives the full unit lifecycle on the event engine:
//   select (scheduler) -> input staging -> serialized spawn ->
//   launch latency -> execution -> output staging -> done
// Core accounting is exact: cores are reserved at selection and
// released when the unit leaves the machine, so the scheduler can never
// over-subscribe the pilot.
//
// The backlog lives in a core-count-bucketed WaitingIndex fed
// incrementally on submit/settle, and units holding cores are tracked
// in a launch-ordered map — both keep every per-unit bookkeeping step
// sublinear in the backlog, which is what lets a single agent absorb
// 100k-unit ensembles (see docs/PERFORMANCE.md).
//
// When the machine profile carries an enabled FaultSpec the agent also
// models faults: node failures shrink its capacity and kill the units
// executing on the lost node, launches can fail transiently, and units
// can hang (reclaimed only by their RetryPolicy execution timeout).
// Every scheduled lifecycle event carries the unit's epoch so events
// belonging to a dead attempt never act on a relaunched unit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "pilot/agent.hpp"
#include "pilot/waiting_index.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/machine.hpp"

namespace entk::pilot {

class SimAgent final : public Agent {
 public:
  SimAgent(sim::Engine& engine, sim::MachineProfile machine, Count cores,
           std::unique_ptr<Scheduler> scheduler,
           sim::FaultModel* faults = nullptr);

  void start(std::function<void()> on_ready) override;
  Status submit(std::vector<ComputeUnitPtr> units) override;
  void cancel_waiting() override;
  Status cancel_unit(const ComputeUnitPtr& unit) override;
  std::vector<ComputeUnitPtr> evict_inflight() override;

  Count total_cores() const override { return capacity_; }
  Count free_cores() const override { return free_; }
  std::size_t waiting_units() const override { return waiting_.size(); }
  std::size_t running_units() const override { return running_; }
  Duration total_spawn_overhead() const override { return spawn_total_; }

  /// Cores lost to node failures so far.
  Count lost_cores() const { return initial_cores_ - capacity_; }

  /// Scheduler cycles run so far (profiling hook for the scale bench).
  std::uint64_t scheduler_cycles() const { return scheduler_cycles_; }

  /// Trace identity: maps to a Chrome-trace pid (see src/obs).
  std::uint32_t trace_ordinal() const { return trace_ordinal_; }

 private:
  void schedule_loop();
  void launch(ComputeUnitPtr unit);
  void finalize(const ComputeUnitPtr& unit);
  /// Returns the unit's cores to the pool if it still occupies them.
  void release(const ComputeUnitPtr& unit);
  /// Removes a unit from the active set; returns false when absent.
  bool deactivate(const ComputeUnit* unit);
  /// One node of this pilot died: shrink capacity and kill the units
  /// that were executing on it.
  void handle_node_failure();

  sim::Engine& engine_;
  const sim::MachineProfile machine_;
  const Count initial_cores_;
  std::unique_ptr<Scheduler> scheduler_;
  sim::FaultModel* faults_;

  bool start_requested_ = false;
  bool started_ = false;  ///< true once the bootstrap delay elapsed
  Count capacity_;  ///< Current cores (shrinks on node failures).
  Count free_;
  WaitingIndex waiting_;
  std::size_t running_ = 0;
  /// Units currently holding cores (launch -> release window), keyed
  /// by launch order — node failures kill from the back (newest first)
  /// and release() finds any unit in O(log active).
  std::map<std::uint64_t, ComputeUnitPtr> active_;
  std::unordered_map<const ComputeUnit*, std::uint64_t> active_seq_;
  std::uint64_t next_launch_seq_ = 0;
  std::uint64_t scheduler_cycles_ = 0;
  const std::uint32_t trace_ordinal_;
  /// Per-spawner-worker busy-until times: each launch occupies the
  /// earliest-free worker for unit_spawn_overhead (RP runs a small pool
  /// of spawner workers; launches queue when all are busy).
  std::vector<TimePoint> spawner_free_at_;
  Duration spawn_total_ = 0.0;
};

}  // namespace entk::pilot
