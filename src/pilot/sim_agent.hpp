// Agent implementation for the simulated backend.
//
// Drives the full unit lifecycle on the event engine:
//   select (scheduler) -> input staging -> serialized spawn ->
//   launch latency -> execution -> output staging -> done
// Core accounting is exact: cores are reserved at selection and
// released when the unit leaves the machine, so the scheduler can never
// over-subscribe the pilot.
#pragma once

#include <deque>
#include <memory>
#include <unordered_set>

#include "pilot/agent.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"

namespace entk::pilot {

class SimAgent final : public Agent {
 public:
  SimAgent(sim::Engine& engine, sim::MachineProfile machine, Count cores,
           std::unique_ptr<Scheduler> scheduler);

  void start(std::function<void()> on_ready) override;
  Status submit(std::vector<ComputeUnitPtr> units) override;
  void cancel_waiting() override;
  Status cancel_unit(const ComputeUnitPtr& unit) override;

  Count total_cores() const override { return cores_; }
  Count free_cores() const override { return free_; }
  std::size_t waiting_units() const override { return waiting_.size(); }
  std::size_t running_units() const override { return running_; }
  Duration total_spawn_overhead() const override { return spawn_total_; }

 private:
  void schedule_loop();
  void launch(ComputeUnitPtr unit);
  void finalize(const ComputeUnitPtr& unit);

  sim::Engine& engine_;
  const sim::MachineProfile machine_;
  const Count cores_;
  std::unique_ptr<Scheduler> scheduler_;

  bool start_requested_ = false;
  bool started_ = false;  ///< true once the bootstrap delay elapsed
  Count free_;
  std::deque<ComputeUnitPtr> waiting_;
  std::size_t running_ = 0;
  /// Units currently holding cores (launch -> release window).
  std::unordered_set<const ComputeUnit*> occupying_;
  /// Per-spawner-worker busy-until times: each launch occupies the
  /// earliest-free worker for unit_spawn_overhead (RP runs a small pool
  /// of spawner workers; launches queue when all are busy).
  std::vector<TimePoint> spawner_free_at_;
  Duration spawn_total_ = 0.0;
};

}  // namespace entk::pilot
