#include "pilot/sim_backend.hpp"

#include "pilot/sim_agent.hpp"

namespace entk::pilot {

SimBackend::SimBackend(sim::MachineProfile machine,
                       sim::BatchPolicy batch_policy)
    : cluster_(machine), batch_(engine_, cluster_, batch_policy) {
  adaptor_ = std::make_unique<saga::SimBatchAdaptor>(engine_, batch_,
                                                     machine.name);
  if (machine.fault.enabled()) {
    faults_ = std::make_unique<sim::FaultModel>(engine_, machine.fault);
  }
}

Result<std::unique_ptr<Agent>> SimBackend::make_agent(
    Count cores, const std::string& scheduler_policy) {
  auto scheduler = make_scheduler(scheduler_policy);
  if (!scheduler.ok()) return scheduler.status();
  return std::unique_ptr<Agent>(std::make_unique<SimAgent>(
      engine_, cluster_.profile(), cores, scheduler.take(),
      faults_.get()));
}

Status SimBackend::drive_until(const std::function<bool()>& done,
                               Duration timeout) {
  const TimePoint deadline =
      timeout == kTimeInfinity ? kTimeInfinity : engine_.now() + timeout;
  while (!done()) {
    // Between engine steps every callback cascade has run to
    // completion, so this is a crash-consistent capture point.
    for (const auto& [token, hook] : step_hooks_) {
      Status status = hook();
      if (!status.is_ok()) return status;
    }
    const TimePoint next = engine_.next_event_time();
    if (next == kTimeInfinity) {
      // Drained queue: the condition can never become true.
      if (deadline == kTimeInfinity) {
        return make_error(Errc::kInternal,
                          "simulation drained with the wait condition "
                          "unmet (deadlock in the modelled system?)");
      }
      engine_.run_until(deadline);
      return make_error(Errc::kTimedOut,
                        "simulation passed the wait deadline");
    }
    // Never step past the deadline: the next event may lie hours ahead
    // of it (a hung unit, a long task), and a finite wait must expire
    // at its deadline, not whenever the simulation next wakes up.
    if (next > deadline) {
      engine_.run_until(deadline);
      return make_error(Errc::kTimedOut,
                        "simulation passed the wait deadline");
    }
    engine_.step();
  }
  return Status::ok();
}

}  // namespace entk::pilot
