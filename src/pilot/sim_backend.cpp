#include "pilot/sim_backend.hpp"

#include "pilot/sim_agent.hpp"

namespace entk::pilot {

SimBackend::SimBackend(sim::MachineProfile machine,
                       sim::BatchPolicy batch_policy)
    : cluster_(machine), batch_(engine_, cluster_, batch_policy) {
  adaptor_ = std::make_unique<saga::SimBatchAdaptor>(engine_, batch_,
                                                     machine.name);
}

Result<std::unique_ptr<Agent>> SimBackend::make_agent(
    Count cores, const std::string& scheduler_policy) {
  auto scheduler = make_scheduler(scheduler_policy);
  if (!scheduler.ok()) return scheduler.status();
  return std::unique_ptr<Agent>(std::make_unique<SimAgent>(
      engine_, cluster_.profile(), cores, scheduler.take()));
}

Status SimBackend::drive_until(const std::function<bool()>& done,
                               Duration timeout) {
  const TimePoint deadline =
      timeout == kTimeInfinity ? kTimeInfinity : engine_.now() + timeout;
  while (!done()) {
    if (engine_.now() > deadline) {
      return make_error(Errc::kTimedOut,
                        "simulation passed the wait deadline");
    }
    if (!engine_.step()) {
      return make_error(Errc::kInternal,
                        "simulation drained with the wait condition unmet "
                        "(deadlock in the modelled system?)");
    }
  }
  return Status::ok();
}

}  // namespace entk::pilot
