// Simulated execution backend: owns one machine's discrete-event world
// (engine, cluster, batch queue, SAGA adaptor).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "pilot/backend.hpp"
#include "saga/sim_batch_adaptor.hpp"
#include "sim/batch.hpp"
#include "sim/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"

namespace entk::pilot {

class SimBackend final : public ExecutionBackend {
 public:
  explicit SimBackend(sim::MachineProfile machine,
                      sim::BatchPolicy batch_policy =
                          sim::BatchPolicy::kFifo);

  saga::JobService& job_service() override { return *adaptor_; }
  const Clock& clock() const override { return engine_.clock(); }
  const sim::MachineProfile& machine() const override {
    return cluster_.profile();
  }
  Result<std::unique_ptr<Agent>> make_agent(
      Count cores, const std::string& scheduler_policy) override;
  Status drive_until(const std::function<bool()>& done,
                     Duration timeout = kTimeInfinity) override;
  std::uint64_t schedule_after(Duration delay,
                               std::function<void()> fn) override {
    return engine_.schedule(delay, std::move(fn));
  }
  void advance(Duration cost) override {
    // Re-entrant advancement (a pattern submitting from inside an
    // event callback) must not step the engine recursively; the cost
    // is absorbed into the event-driven flow instead.
    if (engine_.dispatching()) return;
    engine_.run_until(engine_.now() + cost);
  }
  std::string name() const override {
    return "sim:" + cluster_.profile().name;
  }

  // Direct access for tests and benches.
  sim::Engine& engine() { return engine_; }
  sim::Cluster& cluster() { return cluster_; }
  sim::BatchQueue& batch() { return batch_; }
  /// Non-null iff the machine profile's FaultSpec is enabled.
  sim::FaultModel* faults() { return faults_.get(); }

  /// Checkpoint hook, invoked at every engine-step boundary inside
  /// drive_until — a consistent cut: no event callback is mid-flight.
  /// A non-ok return aborts drive_until with that status (used by the
  /// kill/resume tests to simulate a crash at an exact point).
  /// Multi-slot so N sessions' checkpoint coordinators can observe one
  /// shared engine: hooks run in registration order, first error wins.
  using StepHook = std::function<Status()>;
  /// Registers a hook; returns a token for remove_step_hook.
  std::uint64_t add_step_hook(StepHook hook) {
    const std::uint64_t token = next_hook_token_++;
    step_hooks_.emplace_back(token, std::move(hook));
    return token;
  }
  void remove_step_hook(std::uint64_t token) {
    for (auto it = step_hooks_.begin(); it != step_hooks_.end(); ++it) {
      if (it->first == token) {
        step_hooks_.erase(it);
        return;
      }
    }
  }

 private:
  sim::Engine engine_;
  sim::Cluster cluster_;
  sim::BatchQueue batch_;
  std::unique_ptr<saga::SimBatchAdaptor> adaptor_;
  std::unique_ptr<sim::FaultModel> faults_;
  // Owner-serialized like the rest of the sim world (driver thread).
  std::vector<std::pair<std::uint64_t, StepHook>> step_hooks_;
  std::uint64_t next_hook_token_ = 1;
};

}  // namespace entk::pilot
