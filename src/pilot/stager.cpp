#include "pilot/stager.hpp"

#include <system_error>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace entk::pilot {

namespace fs = std::filesystem;

Status execute_staging(const std::vector<StagingDirective>& directives,
                       const fs::path& from_base, const fs::path& to_base) {
  ENTK_TRACE_SPAN("stager.execute", "stager");
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kStagingDirectives)
      .add(directives.size());
  for (const auto& directive : directives) {
    const fs::path source = from_base / directive.source;
    const fs::path target =
        to_base / (directive.target.empty()
                       ? fs::path(directive.source).filename().string()
                       : directive.target);
    std::error_code ec;
    if (!fs::exists(source, ec)) {
      return make_error(Errc::kIoError,
                        "staging source missing: " + source.string());
    }
    fs::create_directories(target.parent_path(), ec);
    switch (directive.action) {
      case StagingDirective::Action::kCopy:
        fs::copy(source, target, fs::copy_options::overwrite_existing, ec);
        break;
      case StagingDirective::Action::kLink:
        fs::remove(target, ec);
        fs::create_hard_link(source, target, ec);
        // Cross-device links fall back to copy.
        if (ec) {
          ec.clear();
          fs::copy(source, target, fs::copy_options::overwrite_existing, ec);
        }
        break;
      case StagingDirective::Action::kMove:
        fs::rename(source, target, ec);
        if (ec) {  // cross-device rename fallback
          ec.clear();
          fs::copy(source, target, fs::copy_options::overwrite_existing, ec);
          if (!ec) fs::remove(source, ec);
        }
        break;
    }
    if (ec) {
      return make_error(Errc::kIoError, "staging " + source.string() +
                                            " -> " + target.string() +
                                            " failed: " + ec.message());
    }
  }
  return Status::ok();
}

Duration staging_delay(const sim::MachineProfile& machine,
                       const std::vector<StagingDirective>& directives) {
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kStagingDirectives)
      .add(directives.size());
  Duration delay = 0.0;
  for (const auto& directive : directives) {
    delay += machine.staging_latency;
    if (directive.size_mb > 0.0) {
      delay += directive.size_mb / machine.staging_bandwidth_mb_per_s;
    }
  }
  return delay;
}

}  // namespace entk::pilot
