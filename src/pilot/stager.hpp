// Data staging: real file movement (local backend) and transfer-cost
// modelling (simulated backend).
//
// Conventions: input directives read `source` relative to the pilot's
// shared space and write `target` (default: basename of source) into
// the unit sandbox; output directives read `source` relative to the
// sandbox and write `target` into the shared space.
#pragma once

#include <filesystem>
#include <vector>

#include "common/status.hpp"
#include "pilot/descriptions.hpp"
#include "sim/machine.hpp"

namespace entk::pilot {

/// Executes staging directives with real filesystem operations.
/// `from_base`/`to_base` are the resolution roots for source/target.
Status execute_staging(const std::vector<StagingDirective>& directives,
                       const std::filesystem::path& from_base,
                       const std::filesystem::path& to_base);

/// Models the (simulated) time the given transfers take on `machine`:
/// one latency charge per directive plus size/bandwidth.
Duration staging_delay(const sim::MachineProfile& machine,
                       const std::vector<StagingDirective>& directives);

}  // namespace entk::pilot
