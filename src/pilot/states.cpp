#include "pilot/states.hpp"

namespace entk::pilot {

const char* pilot_state_name(PilotState state) {
  switch (state) {
    case PilotState::kNew: return "new";
    case PilotState::kPendingQueue: return "pending_queue";
    case PilotState::kActive: return "active";
    case PilotState::kDone: return "done";
    case PilotState::kFailed: return "failed";
    case PilotState::kCanceled: return "canceled";
  }
  return "unknown";
}

const char* unit_state_name(UnitState state) {
  switch (state) {
    case UnitState::kNew: return "new";
    case UnitState::kPendingExecution: return "pending_execution";
    case UnitState::kStagingInput: return "staging_input";
    case UnitState::kExecuting: return "executing";
    case UnitState::kStagingOutput: return "staging_output";
    case UnitState::kDone: return "done";
    case UnitState::kFailed: return "failed";
    case UnitState::kCanceled: return "canceled";
  }
  return "unknown";
}

bool is_final(PilotState state) {
  return state == PilotState::kDone || state == PilotState::kFailed ||
         state == PilotState::kCanceled;
}

bool is_final(UnitState state) {
  return state == UnitState::kDone || state == UnitState::kFailed ||
         state == UnitState::kCanceled;
}

bool is_valid_transition(UnitState from, UnitState to) {
  if (is_final(from)) return false;
  if (to == UnitState::kFailed || to == UnitState::kCanceled) return true;
  // Pilot-loss rewind: an in-flight unit whose pilot died is requeued
  // for execution elsewhere without burning retry budget.
  if (to == UnitState::kPendingExecution &&
      (from == UnitState::kStagingInput || from == UnitState::kExecuting ||
       from == UnitState::kStagingOutput)) {
    return true;
  }
  switch (from) {
    case UnitState::kNew:
      return to == UnitState::kPendingExecution;
    case UnitState::kPendingExecution:
      return to == UnitState::kStagingInput || to == UnitState::kExecuting;
    case UnitState::kStagingInput:
      return to == UnitState::kExecuting;
    case UnitState::kExecuting:
      return to == UnitState::kStagingOutput || to == UnitState::kDone;
    case UnitState::kStagingOutput:
      return to == UnitState::kDone;
    default:
      return false;
  }
}

bool is_valid_transition(PilotState from, PilotState to) {
  if (is_final(from)) return false;
  if (to == PilotState::kFailed || to == PilotState::kCanceled) return true;
  switch (from) {
    case PilotState::kNew:
      return to == PilotState::kPendingQueue;
    case PilotState::kPendingQueue:
      return to == PilotState::kActive;
    case PilotState::kActive:
      return to == PilotState::kDone;
    default:
      return false;
  }
}

}  // namespace entk::pilot
