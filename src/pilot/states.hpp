// State models for pilots and compute units.
//
// These mirror the RADICAL-Pilot state models the paper's profiling is
// based on, collapsed to the states that matter for overhead
// accounting: a unit spends time in scheduling queues, input staging,
// execution and output staging, and each boundary is timestamped.
#pragma once

namespace entk::pilot {

enum class PilotState {
  kNew,           ///< Described, not yet submitted.
  kPendingQueue,  ///< Container job waiting in the batch queue.
  kActive,        ///< Agent bootstrapped; units can execute.
  kDone,          ///< Deallocated normally.
  kFailed,        ///< Container job failed/expired.
  kCanceled,      ///< Cancelled by the application.
};

enum class UnitState {
  kNew,              ///< Described, not yet accepted by a unit manager.
  kPendingExecution, ///< In an agent's scheduling queue.
  kStagingInput,     ///< Input staging in progress.
  kExecuting,        ///< Occupying cores.
  kStagingOutput,    ///< Output staging in progress.
  kDone,
  kFailed,
  kCanceled,
};

const char* pilot_state_name(PilotState state);
const char* unit_state_name(UnitState state);

bool is_final(PilotState state);
bool is_final(UnitState state);

/// Legal transitions of the unit state machine: a forward-only
/// pipeline with failure/cancel exits from every non-final state, plus
/// the pilot-loss rewind (kStagingInput / kExecuting / kStagingOutput
/// -> kPendingExecution) used to requeue in-flight units of a failed
/// pilot onto survivors.
bool is_valid_transition(UnitState from, UnitState to);
bool is_valid_transition(PilotState from, PilotState to);

}  // namespace entk::pilot
